//! Property tests pinning the async admission queue to the direct
//! engine path: across random knowledge graphs, producer counts, queue
//! bounds, linger windows, methods, both backends (single engine and
//! sharded), and interleaved mutation barriers, results returned
//! through [`xsum::core::SummaryTicket`]s must be **bit-identical** to
//! one direct `SummaryEngine::summarize_batch` call over the same
//! inputs. Backpressure (queue-full rejection) and shutdown-drain
//! semantics are pinned explicitly.

use proptest::prelude::*;

use xsum::core::{
    AdmissionConfig, AdmissionError, AdmissionQueue, BatchMethod, PcstConfig, ShardedEngine,
    SteinerConfig, Summary, SummaryEngine, SummaryInput,
};
use xsum::graph::{EdgeId, EdgeKind, Graph, LoosePath, NodeId, NodeKind};

/// A random small KG shape: users, items, entities, random interaction
/// and attribute edges, plus guaranteed 3-hop paths (the `prop_shard`
/// generator).
#[derive(Debug, Clone)]
struct RandomKg {
    g: Graph,
    users: Vec<NodeId>,
    paths: Vec<LoosePath>,
    /// Paths sourced at `users[1]` — a second routing anchor, so the
    /// sharded backend genuinely scatters the batches below.
    alt_paths: Vec<LoosePath>,
}

fn arb_kg() -> impl Strategy<Value = RandomKg> {
    (
        2usize..5, // users
        3usize..8, // items
        2usize..5, // entities
        proptest::collection::vec((0usize..64, 0usize..64, 1u8..=5), 5..40),
        proptest::collection::vec((0usize..64, 0usize..64), 4..30),
        0usize..1000, // path-shape selector
    )
        .prop_map(|(nu, ni, na, interactions, attributes, path_sel)| {
            let mut g = Graph::new();
            let users: Vec<NodeId> = (0..nu).map(|_| g.add_node(NodeKind::User)).collect();
            let items: Vec<NodeId> = (0..ni).map(|_| g.add_node(NodeKind::Item)).collect();
            let entities: Vec<NodeId> = (0..na).map(|_| g.add_node(NodeKind::Entity)).collect();
            let mut seen = std::collections::HashSet::new();
            for (u, i, r) in interactions {
                let (u, i) = (u % nu, i % ni);
                if seen.insert((u, i)) {
                    g.add_edge(users[u], items[i], r as f64, EdgeKind::Interaction);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for (i, a) in attributes {
                let (i, a) = (i % ni, a % na);
                if seen.insert((i, a)) {
                    g.add_edge(items[i], entities[a], 0.0, EdgeKind::Attribute);
                }
            }
            if g.find_edge(users[0], items[0]).is_none() {
                g.add_edge(users[0], items[0], 5.0, EdgeKind::Interaction);
            }
            if g.find_edge(users[1], items[0]).is_none() {
                g.add_edge(users[1], items[0], 4.0, EdgeKind::Interaction);
            }
            if g.find_edge(items[0], entities[0]).is_none() {
                g.add_edge(items[0], entities[0], 0.0, EdgeKind::Attribute);
            }
            if g.find_edge(items[1], entities[0]).is_none() {
                g.add_edge(items[1], entities[0], 0.0, EdgeKind::Attribute);
            }
            let mut paths = vec![LoosePath::ground(
                &g,
                vec![users[0], items[0], entities[0], items[1]],
            )];
            let extra: Vec<NodeId> = g
                .neighbors(entities[0])
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| g.kind(*n) == NodeKind::Item && *n != items[0] && *n != items[1])
                .collect();
            if !extra.is_empty() {
                let pick = extra[path_sel % extra.len()];
                paths.push(LoosePath::ground(
                    &g,
                    vec![users[0], items[0], entities[0], pick],
                ));
            }
            let alt_paths = vec![LoosePath::ground(
                &g,
                vec![users[1], items[0], entities[0], items[1]],
            )];
            RandomKg {
                g,
                users,
                paths,
                alt_paths,
            }
        })
}

/// A mixed batch of every scenario shape, replicated for volume so the
/// coalescer has something to coalesce.
fn inputs_for(kg: &RandomKg, replicate: usize) -> Vec<SummaryInput> {
    let base = [
        SummaryInput::user_centric(kg.users[0], kg.paths.clone()),
        SummaryInput::user_centric(kg.users[1], kg.alt_paths.clone()),
        SummaryInput::user_group(&kg.users, kg.paths.clone()),
        SummaryInput::item_centric(kg.alt_paths[0].target(), kg.alt_paths.clone()),
    ];
    let mut out = Vec::with_capacity(base.len() * replicate);
    for _ in 0..replicate {
        out.extend(base.iter().cloned());
    }
    out
}

fn assert_bit_identical(want: &Summary, got: &Summary) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.method, got.method);
    prop_assert_eq!(&want.terminals, &got.terminals);
    prop_assert_eq!(want.subgraph.sorted_edges(), got.subgraph.sorted_edges());
    prop_assert_eq!(want.subgraph.sorted_nodes(), got.subgraph.sorted_nodes());
    Ok(())
}

const METHODS: [fn() -> BatchMethod; 3] = [
    || BatchMethod::Steiner(SteinerConfig::default()),
    || BatchMethod::SteinerFast(SteinerConfig::default()),
    || BatchMethod::Pcst(PcstConfig::default()),
];

/// Push `inputs` through `queue` from `producers` concurrent threads
/// (round-robin split), wait every ticket, and return the results in
/// input order.
fn serve_via_admission(
    queue: &AdmissionQueue,
    inputs: &[SummaryInput],
    method: BatchMethod,
    producers: usize,
) -> Vec<Summary> {
    let mut slots: Vec<Option<Summary>> = (0..inputs.len()).map(|_| None).collect();
    let results = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for p in 0..producers {
            let results = &results;
            scope.spawn(move || {
                // Each producer owns the input indices ≡ p (mod producers).
                let mine: Vec<usize> = (p..inputs.len()).step_by(producers.max(1)).collect();
                let tickets: Vec<_> = mine
                    .iter()
                    .map(|&i| {
                        queue
                            .submit(inputs[i].clone(), method)
                            .expect("queue admits while live")
                    })
                    .collect();
                for (i, t) in mine.into_iter().zip(tickets) {
                    let summary = t.wait().expect("well-formed input serves");
                    results.lock().unwrap()[i] = Some(summary);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all resolved"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn coalesced_results_match_direct_batches(
        kg in arb_kg(),
        producers_sel in 0usize..3,
        bound_sel in 0usize..3,
        linger_sel in 0usize..3,
    ) {
        let producers = [1usize, 2, 4][producers_sel];
        let queue_bound = [2usize, 8, 256][bound_sel];
        let linger = [1usize, 4, 16][linger_sel];
        // Producer counts × queue bounds × linger windows × methods:
        // whatever batches the coalescer forms, ticket results must be
        // bit-identical to one direct `summarize_batch` over the same
        // inputs (warm engines on both sides — two rounds each).
        let inputs = inputs_for(&kg, 3);
        let mut direct = SummaryEngine::with_threads(2);
        let queue = AdmissionQueue::for_engine(
            kg.g.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig { queue_bound, max_batch: 8, linger_tickets: linger },
        );
        for make_method in METHODS {
            let method = make_method();
            let want = direct.summarize_batch(&kg.g, &inputs, method);
            for _ in 0..2 {
                let got = serve_via_admission(&queue, &inputs, method, producers);
                prop_assert_eq!(got.len(), want.len());
                for (w, s) in want.iter().zip(&got) {
                    assert_bit_identical(w, s)?;
                }
            }
        }
        let stats = queue.stats();
        prop_assert_eq!(stats.submitted, (inputs.len() * 2 * METHODS.len()) as u64);
        prop_assert_eq!(stats.completed, stats.submitted);
        prop_assert_eq!(stats.failed, 0);
    }

    #[test]
    fn sharded_backend_matches_direct_batches(
        kg in arb_kg(),
        producers_sel in 0usize..2,
        shards_sel in 0usize..2,
    ) {
        let producers = [1usize, 3][producers_sel];
        let shards = [2usize, 4][shards_sel];
        // The admission queue over a ShardedEngine: coalesced batches
        // scatter/gather across replicas and still come back
        // bit-identical to the single-engine direct path.
        let inputs = inputs_for(&kg, 2);
        let mut direct = SummaryEngine::with_threads(2);
        let queue = AdmissionQueue::for_sharded(
            ShardedEngine::with_threads(&kg.g, shards, 1),
            AdmissionConfig { queue_bound: 64, max_batch: 8, linger_tickets: 4 },
        );
        for make_method in METHODS {
            let method = make_method();
            let want = direct.summarize_batch(&kg.g, &inputs, method);
            let got = serve_via_admission(&queue, &inputs, method, producers);
            for (w, s) in want.iter().zip(&got) {
                assert_bit_identical(w, s)?;
            }
        }
    }

    #[test]
    fn admission_tracks_interleaved_mutation_barriers(
        mut kg in arb_kg(),
        weights in proptest::collection::vec(1u8..=200, 1..4),
        edge_sel in 0usize..1000,
    ) {
        // Serving rounds with mutation barriers between them: after
        // every `AdmissionQueue::mutate`, results must match a direct
        // engine over an identically mutated reference graph.
        let inputs = inputs_for(&kg, 2);
        let queue = AdmissionQueue::for_engine(
            kg.g.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig { queue_bound: 64, max_batch: 8, linger_tickets: 2 },
        );
        let mut direct = SummaryEngine::with_threads(2);
        for (round, w) in weights.iter().enumerate() {
            let method = METHODS[round % METHODS.len()]();
            let want = direct.summarize_batch(&kg.g, &inputs, method);
            let got = serve_via_admission(&queue, &inputs, method, 2);
            for (wnt, s) in want.iter().zip(&got) {
                assert_bit_identical(wnt, s)?;
            }
            // Mutate the same edge the same way on both sides.
            let e = EdgeId((edge_sel % kg.g.edge_count().max(1)) as u32);
            let new_w = *w as f64 * 0.05;
            queue.mutate(move |g| g.set_weight(e, new_w)).expect("barrier applies");
            kg.g.set_weight(e, new_w);
        }
        // Final post-mutation agreement.
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let want = direct.summarize_batch(&kg.g, &inputs, method);
        let got = serve_via_admission(&queue, &inputs, method, 1);
        for (w, s) in want.iter().zip(&got) {
            assert_bit_identical(w, s)?;
        }
        prop_assert_eq!(queue.stats().mutations_applied, weights.len() as u64);
    }

    #[test]
    fn backpressure_rejects_then_recovers(kg in arb_kg()) {
        // Queue-full semantics: with an infinite linger window the
        // bound fills deterministically; `try_submit` rejects without
        // side effects, and after a drain the queue admits again.
        let inputs = inputs_for(&kg, 2);
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let bound = 3usize;
        let queue = AdmissionQueue::for_engine(
            kg.g.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: bound,
                max_batch: 8,
                linger_tickets: usize::MAX,
            },
        );
        let mut tickets = Vec::new();
        for i in 0..bound {
            tickets.push(queue.try_submit(inputs[i % inputs.len()].clone(), method)
                .expect("below the bound"));
        }
        prop_assert_eq!(queue.queued(), bound);
        for _ in 0..2 {
            match queue.try_submit(inputs[0].clone(), method) {
                Err(AdmissionError::QueueFull) => {}
                other => prop_assert!(false, "expected QueueFull, got {other:?}"),
            }
        }
        prop_assert_eq!(queue.stats().rejected, 2);
        queue.drain();
        let mut direct = SummaryEngine::with_threads(1);
        for (i, t) in tickets.into_iter().enumerate() {
            let want = direct.summarize(&kg.g, &inputs[i % inputs.len()], method);
            assert_bit_identical(&want, &t.wait().expect("drained ticket resolves"))?;
        }
        // Recovered: admission works again.
        let t = queue.try_submit(inputs[0].clone(), method).expect("room again");
        assert_bit_identical(
            &direct.summarize(&kg.g, &inputs[0], method),
            &t.wait().expect("serves"),
        )?;
    }

    #[test]
    fn shutdown_drains_every_admitted_ticket(kg in arb_kg()) {
        // Shutdown-drain: tickets admitted before shutdown all resolve
        // (bit-identically), later submissions are refused.
        let inputs = inputs_for(&kg, 3);
        let method = BatchMethod::SteinerFast(SteinerConfig::default());
        let queue = AdmissionQueue::for_engine(
            kg.g.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 256,
                max_batch: 4,
                linger_tickets: usize::MAX, // only shutdown flushes
            },
        );
        let tickets: Vec<_> = inputs
            .iter()
            .map(|i| queue.submit(i.clone(), method).expect("admits before shutdown"))
            .collect();
        queue.shutdown();
        let mut direct = SummaryEngine::with_threads(2);
        let want = direct.summarize_batch(&kg.g, &inputs, method);
        for (w, t) in want.iter().zip(tickets) {
            assert_bit_identical(w, &t.wait().expect("drained on shutdown"))?;
        }
        match queue.submit(inputs[0].clone(), method) {
            Err(AdmissionError::ShutDown) => {}
            other => prop_assert!(false, "expected ShutDown, got {other:?}"),
        }
        let stats = queue.stats();
        prop_assert_eq!(stats.completed, inputs.len() as u64);
        prop_assert_eq!(stats.queued, 0);
    }

    #[test]
    fn worker_panic_isolates_to_affected_tickets(kg in arb_kg()) {
        // Satellite: panic recovery under admission, on both backends —
        // a poisoned input coalesced among good ones fails only its own
        // ticket; the co-batched requests and later traffic complete
        // bit-identically (dirty-buffer recovery under the queued path).
        let inputs = inputs_for(&kg, 1);
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut bad = inputs[0].clone();
        bad.terminals = vec![NodeId(u32::MAX - 2), NodeId(u32::MAX - 1)];
        let mut direct = SummaryEngine::with_threads(2);
        let want = direct.summarize_batch(&kg.g, &inputs, method);
        let backends: [fn(&Graph) -> AdmissionQueue; 2] = [
            |g| AdmissionQueue::for_engine(
                g.clone(),
                SummaryEngine::with_threads(2),
                AdmissionConfig { queue_bound: 64, max_batch: 8, linger_tickets: 5 },
            ),
            |g| AdmissionQueue::for_sharded(
                ShardedEngine::with_threads(g, 2, 1),
                AdmissionConfig { queue_bound: 64, max_batch: 8, linger_tickets: 5 },
            ),
        ];
        for make_queue in backends {
            let queue = make_queue(&kg.g);
            let good: Vec<_> = inputs
                .iter()
                .map(|i| queue.submit(i.clone(), method).expect("admits"))
                .collect();
            let poisoned = queue.submit(bad.clone(), method).expect("admits");
            queue.drain();
            for (w, t) in want.iter().zip(good) {
                assert_bit_identical(w, &t.wait().expect("good ticket unaffected"))?;
            }
            prop_assert!(poisoned.wait().is_err(), "poisoned ticket must error");
            // Later queued requests still complete.
            let later = queue.submit(inputs[0].clone(), method).expect("still admits");
            assert_bit_identical(&want[0], &later.wait().expect("keeps serving"))?;
            let stats = queue.stats();
            prop_assert_eq!(stats.failed, 1);
            prop_assert_eq!(stats.completed, inputs.len() as u64 + 1);
        }
    }
}
