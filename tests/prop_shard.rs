//! Property tests pinning the sharded serving front-end to the single-
//! engine path: across random knowledge graphs, shard counts {1, 2, 4},
//! mixed ST / ST-fast / PCST batches, and interleaved weight mutations,
//! `ShardedEngine` outputs must be **bit-identical** to one
//! `SummaryEngine` (and hence to the sequential free functions). That
//! identity is full-replica sharding's contract — routing, the
//! scatter/gather planner, and per-replica warm state must all be
//! invisible in the outputs.

use proptest::prelude::*;

use xsum::core::{
    BatchMethod, PcstConfig, SessionKey, ShardedEngine, SteinerConfig, Summary, SummaryEngine,
    SummaryInput,
};
use xsum::graph::{EdgeId, EdgeKind, Graph, LoosePath, NodeId, NodeKind};

/// A random small KG shape: users, items, entities, random interaction
/// and attribute edges, plus guaranteed 3-hop paths (the `prop_engine`
/// generator).
#[derive(Debug, Clone)]
struct RandomKg {
    g: Graph,
    users: Vec<NodeId>,
    paths: Vec<LoosePath>,
    /// Paths sourced at `users[1]` — a second routing anchor, so the
    /// default router genuinely scatters the batches below (paths
    /// sourced at one user all hash to one shard).
    alt_paths: Vec<LoosePath>,
}

fn arb_kg() -> impl Strategy<Value = RandomKg> {
    (
        2usize..5, // users
        3usize..8, // items
        2usize..5, // entities
        proptest::collection::vec((0usize..64, 0usize..64, 1u8..=5), 5..40),
        proptest::collection::vec((0usize..64, 0usize..64), 4..30),
        0usize..1000, // path-shape selector
    )
        .prop_map(|(nu, ni, na, interactions, attributes, path_sel)| {
            let mut g = Graph::new();
            let users: Vec<NodeId> = (0..nu).map(|_| g.add_node(NodeKind::User)).collect();
            let items: Vec<NodeId> = (0..ni).map(|_| g.add_node(NodeKind::Item)).collect();
            let entities: Vec<NodeId> = (0..na).map(|_| g.add_node(NodeKind::Entity)).collect();
            let mut seen = std::collections::HashSet::new();
            for (u, i, r) in interactions {
                let (u, i) = (u % nu, i % ni);
                if seen.insert((u, i)) {
                    g.add_edge(users[u], items[i], r as f64, EdgeKind::Interaction);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for (i, a) in attributes {
                let (i, a) = (i % ni, a % na);
                if seen.insert((i, a)) {
                    g.add_edge(items[i], entities[a], 0.0, EdgeKind::Attribute);
                }
            }
            // Guaranteed scaffolding: u0 and u1 rated i0, i0–e0, e0–i1
            // so 3-hop explanations exist from two distinct anchors.
            if g.find_edge(users[0], items[0]).is_none() {
                g.add_edge(users[0], items[0], 5.0, EdgeKind::Interaction);
            }
            if g.find_edge(users[1], items[0]).is_none() {
                g.add_edge(users[1], items[0], 4.0, EdgeKind::Interaction);
            }
            if g.find_edge(items[0], entities[0]).is_none() {
                g.add_edge(items[0], entities[0], 0.0, EdgeKind::Attribute);
            }
            if g.find_edge(items[1], entities[0]).is_none() {
                g.add_edge(items[1], entities[0], 0.0, EdgeKind::Attribute);
            }
            let mut paths = vec![LoosePath::ground(
                &g,
                vec![users[0], items[0], entities[0], items[1]],
            )];
            let extra: Vec<NodeId> = g
                .neighbors(entities[0])
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| g.kind(*n) == NodeKind::Item && *n != items[0] && *n != items[1])
                .collect();
            if !extra.is_empty() {
                let pick = extra[path_sel % extra.len()];
                paths.push(LoosePath::ground(
                    &g,
                    vec![users[0], items[0], entities[0], pick],
                ));
            }
            let alt_paths = vec![LoosePath::ground(
                &g,
                vec![users[1], items[0], entities[0], items[1]],
            )];
            RandomKg {
                g,
                users,
                paths,
                alt_paths,
            }
        })
}

/// A mixed batch with two routing anchors (`users[0]` and `users[1]`
/// first-path sources) so multi-shard runs genuinely scatter — pinned
/// by the `busy >= 2` assertion in the property below.
fn inputs_for(kg: &RandomKg) -> Vec<SummaryInput> {
    vec![
        SummaryInput::user_centric(kg.users[0], kg.paths.clone()),
        SummaryInput::user_centric(kg.users[1], kg.alt_paths.clone()),
        SummaryInput::user_group(&kg.users, kg.paths.clone()),
        SummaryInput::item_centric(kg.alt_paths[0].target(), kg.alt_paths.clone()),
    ]
}

fn assert_bit_identical(want: &Summary, got: &Summary) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.method, got.method);
    prop_assert_eq!(&want.terminals, &got.terminals);
    prop_assert_eq!(want.subgraph.sorted_edges(), got.subgraph.sorted_edges());
    prop_assert_eq!(want.subgraph.sorted_nodes(), got.subgraph.sorted_nodes());
    Ok(())
}

const METHODS: [fn() -> BatchMethod; 3] = [
    || BatchMethod::Steiner(SteinerConfig::default()),
    || BatchMethod::SteinerFast(SteinerConfig::default()),
    || BatchMethod::Pcst(PcstConfig::default()),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_equals_single_engine_across_shard_counts(kg in arb_kg()) {
        // Shard counts {1, 2, 4} × mixed ST / ST-fast / PCST batches,
        // warm engines on both sides (two passes each).
        let inputs = inputs_for(&kg);
        for shards in [1usize, 2, 4] {
            let mut sharded = ShardedEngine::with_threads(&kg.g, shards, 2);
            if shards >= 2 {
                // The whole point: the scatter/gather path must be
                // exercised with at least two busy replicas.
                let mut busy: Vec<usize> =
                    inputs.iter().map(|i| sharded.shard_of_input(i)).collect();
                busy.sort_unstable();
                busy.dedup();
                prop_assert!(busy.len() >= 2, "batch degenerated to one shard");
            }
            let mut single = SummaryEngine::with_threads(2);
            for make_method in METHODS {
                let method = make_method();
                for _ in 0..2 {
                    let got = sharded.summarize_batch(&inputs, method);
                    let want = single.summarize_batch(&kg.g, &inputs, method);
                    prop_assert_eq!(got.len(), inputs.len());
                    for (w, s) in want.iter().zip(&got) {
                        assert_bit_identical(w, s)?;
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_tracks_interleaved_weight_mutations(
        mut kg in arb_kg(),
        weights in proptest::collection::vec(1u8..=200, 1..4),
        edge_sel in 0usize..1000,
    ) {
        // Serving loop with mutations interleaved between batches: after
        // every `ShardedEngine::mutate`, all shard counts must agree
        // with a single engine over an identically mutated graph.
        let inputs = inputs_for(&kg);
        let mut sharded2 = ShardedEngine::with_threads(&kg.g, 2, 1);
        let mut sharded4 = ShardedEngine::with_threads(&kg.g, 4, 1);
        let mut single = SummaryEngine::with_threads(2);
        for (round, w) in weights.iter().enumerate() {
            let method = METHODS[round % METHODS.len()]();
            let want = single.summarize_batch(&kg.g, &inputs, method);
            let got2 = sharded2.summarize_batch(&inputs, method);
            let got4 = sharded4.summarize_batch(&inputs, method);
            for ((w, s2), s4) in want.iter().zip(&got2).zip(&got4) {
                assert_bit_identical(w, s2)?;
                assert_bit_identical(w, s4)?;
            }
            // Mutate the same edge the same way everywhere.
            let e = EdgeId((edge_sel % kg.g.edge_count().max(1)) as u32);
            let new_w = *w as f64 * 0.05;
            sharded2.set_weight(e, new_w);
            sharded4.mutate(|g| g.set_weight(e, new_w));
            kg.g.set_weight(e, new_w);
        }
        // Final post-mutation agreement, including the single-summary
        // routing path.
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let want = single.summarize_batch(&kg.g, &inputs, method);
        let got2 = sharded2.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&got2) {
            assert_bit_identical(w, s)?;
        }
        for input in &inputs {
            assert_bit_identical(
                &single.summarize(&kg.g, input, method),
                &sharded4.summarize(input, method),
            )?;
        }
    }

    #[test]
    fn sharded_sessions_match_store_semantics(kg in arb_kg()) {
        // Shard-affine sessions: growing a session through the sharded
        // front-end produces the same summaries as a plain session
        // store over the same graph.
        let cfg = SteinerConfig::default();
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let mut sharded = ShardedEngine::with_threads(&kg.g, 4, 1);
        let mut reference = xsum::core::SessionStore::new(16);
        for round in 1..=input.terminals.len() {
            let key = SessionKey::new(11, "pgpr");
            let got = sharded.session_summary(key, &input, &cfg, &input.terminals[..round]);
            let want = xsum::core::session_summary(
                &mut reference,
                &kg.g,
                SessionKey::new(11, "pgpr"),
                &input,
                &cfg,
                &input.terminals[..round],
            );
            assert_bit_identical(&want, &got)?;
        }
        let home = sharded.shard_of_session(&SessionKey::new(11, "pgpr"));
        prop_assert_eq!(sharded.sessions(home).misses(), 1);
        prop_assert_eq!(
            sharded.sessions(home).hits(),
            input.terminals.len() as u64 - 1
        );
    }
}
