//! Property tests for the [`xsum::core::TicketSet`] completion
//! surface: under producers {1, 4} × backends {engine, sharded(2)} ×
//! {clean, mutation-barrier, fault-tape} schedules,
//! `wait_any`/`wait_any_timeout` yield **every** admitted ticket
//! **exactly once** with its submission tag intact, successful
//! outcomes are bit-identical to a direct fault-free
//! `SummaryEngine::summarize` oracle, and a set dropped with tickets
//! still in flight never wedges the queue — `drain` still completes
//! every dispatched batch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use xsum::core::{
    AdmissionConfig, AdmissionQueue, BatchMethod, CompletedTicket, EngineBackend, FaultInjector,
    FaultPlan, OverloadPolicy, PcstConfig, ShardedEngine, SteinerConfig, Summary, SummaryEngine,
    SummaryInput, TicketSet,
};
use xsum::graph::{EdgeId, EdgeKind, Graph, LoosePath, NodeId, NodeKind};

/// The `prop_admission`/`prop_faults` random KG generator: users,
/// items, entities, random interaction and attribute edges, plus
/// guaranteed 3-hop paths from two different routing anchors.
#[derive(Debug, Clone)]
struct RandomKg {
    g: Graph,
    users: Vec<NodeId>,
    paths: Vec<LoosePath>,
    alt_paths: Vec<LoosePath>,
}

fn arb_kg() -> impl Strategy<Value = RandomKg> {
    (
        2usize..5, // users
        3usize..8, // items
        2usize..5, // entities
        proptest::collection::vec((0usize..64, 0usize..64, 1u8..=5), 5..40),
        proptest::collection::vec((0usize..64, 0usize..64), 4..30),
        0usize..1000, // path-shape selector
    )
        .prop_map(|(nu, ni, na, interactions, attributes, path_sel)| {
            let mut g = Graph::new();
            let users: Vec<NodeId> = (0..nu).map(|_| g.add_node(NodeKind::User)).collect();
            let items: Vec<NodeId> = (0..ni).map(|_| g.add_node(NodeKind::Item)).collect();
            let entities: Vec<NodeId> = (0..na).map(|_| g.add_node(NodeKind::Entity)).collect();
            let mut seen = std::collections::HashSet::new();
            for (u, i, r) in interactions {
                let (u, i) = (u % nu, i % ni);
                if seen.insert((u, i)) {
                    g.add_edge(users[u], items[i], r as f64, EdgeKind::Interaction);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for (i, a) in attributes {
                let (i, a) = (i % ni, a % na);
                if seen.insert((i, a)) {
                    g.add_edge(items[i], entities[a], 0.0, EdgeKind::Attribute);
                }
            }
            if g.find_edge(users[0], items[0]).is_none() {
                g.add_edge(users[0], items[0], 5.0, EdgeKind::Interaction);
            }
            if g.find_edge(users[1], items[0]).is_none() {
                g.add_edge(users[1], items[0], 4.0, EdgeKind::Interaction);
            }
            if g.find_edge(items[0], entities[0]).is_none() {
                g.add_edge(items[0], entities[0], 0.0, EdgeKind::Attribute);
            }
            if g.find_edge(items[1], entities[0]).is_none() {
                g.add_edge(items[1], entities[0], 0.0, EdgeKind::Attribute);
            }
            let mut paths = vec![LoosePath::ground(
                &g,
                vec![users[0], items[0], entities[0], items[1]],
            )];
            let extra: Vec<NodeId> = g
                .neighbors(entities[0])
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| g.kind(*n) == NodeKind::Item && *n != items[0] && *n != items[1])
                .collect();
            if !extra.is_empty() {
                let pick = extra[path_sel % extra.len()];
                paths.push(LoosePath::ground(
                    &g,
                    vec![users[0], items[0], entities[0], pick],
                ));
            }
            let alt_paths = vec![LoosePath::ground(
                &g,
                vec![users[1], items[0], entities[0], items[1]],
            )];
            RandomKg {
                g,
                users,
                paths,
                alt_paths,
            }
        })
}

fn inputs_for(kg: &RandomKg, replicate: usize) -> Vec<SummaryInput> {
    let base = [
        SummaryInput::user_centric(kg.users[0], kg.paths.clone()),
        SummaryInput::user_centric(kg.users[1], kg.alt_paths.clone()),
        SummaryInput::user_group(&kg.users, kg.paths.clone()),
        SummaryInput::item_centric(kg.alt_paths[0].target(), kg.alt_paths.clone()),
    ];
    let mut out = Vec::with_capacity(base.len() * replicate);
    for _ in 0..replicate {
        out.extend(base.iter().cloned());
    }
    out
}

fn assert_bit_identical(want: &Summary, got: &Summary) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.method, got.method);
    prop_assert_eq!(&want.terminals, &got.terminals);
    prop_assert_eq!(want.subgraph.sorted_edges(), got.subgraph.sorted_edges());
    prop_assert_eq!(want.subgraph.sorted_nodes(), got.subgraph.sorted_nodes());
    Ok(())
}

const METHODS: [fn() -> BatchMethod; 3] = [
    || BatchMethod::Steiner(SteinerConfig::default()),
    || BatchMethod::SteinerFast(SteinerConfig::default()),
    || BatchMethod::Pcst(PcstConfig::default()),
];

const CFG: AdmissionConfig = AdmissionConfig {
    queue_bound: 256,
    max_batch: 8,
    linger_tickets: 2,
};

fn build_queue(g: &Graph, sharded: bool) -> AdmissionQueue {
    if sharded {
        AdmissionQueue::for_sharded(ShardedEngine::with_threads(g, 2, 1), CFG)
    } else {
        AdmissionQueue::for_engine(g.clone(), SummaryEngine::with_threads(2), CFG)
    }
}

/// Submit `inputs` from `producers` threads, tagging each ticket with
/// its input index, while a consumer thread concurrently drains the
/// shared set via `wait_any_timeout`. Returns the completions the
/// consumer observed (the act of returning asserts liveness: a lost
/// wakeup hangs the test).
fn serve_via_set(
    queue: &AdmissionQueue,
    inputs: &[SummaryInput],
    method: BatchMethod,
    producers: usize,
) -> Vec<CompletedTicket> {
    let set = TicketSet::new();
    let added = AtomicUsize::new(0);
    let collected = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for p in 0..producers {
            let (set, added) = (&set, &added);
            scope.spawn(move || {
                for i in (p..inputs.len()).step_by(producers.max(1)) {
                    let ticket = queue
                        .submit(inputs[i].clone(), method)
                        .expect("queue admits while live");
                    set.add(i as u64, ticket);
                    added.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        let (set, added, collected) = (&set, &added, &collected);
        scope.spawn(move || {
            let mut got = Vec::new();
            // The consumer races the producers: the set may be
            // momentarily empty (wait_any_timeout → None) while
            // submissions are still inbound, so exit only once every
            // planned ticket has been added AND observed.
            while got.len() < inputs.len() {
                if let Some(done) = set.wait_any_timeout(Duration::from_millis(50)) {
                    got.push(done);
                } else {
                    assert!(
                        added.load(Ordering::SeqCst) <= inputs.len(),
                        "added count never exceeds the plan"
                    );
                }
            }
            *collected.lock().unwrap() = got;
        });
    });
    collected.into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Clean schedules: every tag yields exactly once, and every
    /// outcome is bit-identical to the direct oracle — across
    /// producers {1, 4} and both backends.
    #[test]
    fn wait_any_yields_each_ticket_exactly_once(
        kg in arb_kg(),
        method_sel in 0usize..3,
        producers_sel in any::<bool>(),
        sharded in any::<bool>(),
    ) {
        let inputs = inputs_for(&kg, 3);
        let method = METHODS[method_sel]();
        let producers = if producers_sel { 4 } else { 1 };
        let queue = build_queue(&kg.g, sharded);
        let completions = serve_via_set(&queue, &inputs, method, producers);
        queue.shutdown();

        prop_assert_eq!(completions.len(), inputs.len());
        let mut seen = vec![0usize; inputs.len()];
        let mut direct = SummaryEngine::with_threads(2);
        for done in &completions {
            let tag = done.tag as usize;
            prop_assert!(tag < inputs.len(), "tags correlate to submissions");
            seen[tag] += 1;
            let got = done.result.as_ref().map_err(|e| {
                TestCaseError::fail(format!("clean schedule serves tag {tag}: {e}"))
            })?;
            let want = direct.summarize(&kg.g, &inputs[tag], method);
            assert_bit_identical(&want, got)?;
            prop_assert!(done.meta.batch > 0, "served tickets carry a batch id");
        }
        prop_assert!(seen.iter().all(|&n| n == 1), "exactly-once per tag: {seen:?}");
    }

    /// Mutation barriers between waves: each wave's completions match
    /// an oracle over the graph state at its submission time, while
    /// the set is drained across all waves at once.
    #[test]
    fn barriers_partition_completions_by_graph_version(
        kg in arb_kg(),
        method_sel in 0usize..3,
        sharded in any::<bool>(),
        edge_sel in 0usize..1000,
        weight_step in 1u8..=100,
    ) {
        let method = METHODS[method_sel]();
        let inputs = inputs_for(&kg, 1);
        let queue = build_queue(&kg.g, sharded);
        let set = TicketSet::new();
        let mut reference = kg.g.clone();
        let mut oracle: HashMap<u64, Summary> = HashMap::new();
        let mut direct = SummaryEngine::with_threads(2);

        let waves = 3usize;
        for wave in 0..waves {
            for (i, input) in inputs.iter().enumerate() {
                let tag = (wave * 100 + i) as u64;
                oracle.insert(tag, direct.summarize(&reference, input, method));
                let ticket = queue.submit(input.clone(), method)
                    .map_err(|e| TestCaseError::fail(format!("admits: {e}")))?;
                set.add(tag, ticket);
            }
            // The barrier: tickets above see the pre-mutation graph,
            // the next wave sees the post-mutation one.
            let e = EdgeId(((edge_sel + wave) % kg.g.edge_count()) as u32);
            let w = 0.1 + weight_step as f64 * 0.01 * (wave + 1) as f64;
            queue.mutate(move |g| g.set_weight(e, w))
                .map_err(|e| TestCaseError::fail(format!("barrier applies: {e}")))?;
            reference.set_weight(e, w);
        }

        let mut yielded = 0usize;
        while let Some(done) = set.wait_any() {
            yielded += 1;
            let got = done.result.as_ref().map_err(|e| {
                TestCaseError::fail(format!("clean schedule serves tag {}: {e}", done.tag))
            })?;
            let want = oracle.remove(&done.tag).ok_or_else(|| {
                TestCaseError::fail(format!("tag {} yields once", done.tag))
            })?;
            assert_bit_identical(&want, got)?;
        }
        prop_assert_eq!(yielded, waves * inputs.len());
        prop_assert!(oracle.is_empty(), "every wave ticket completed");
        queue.shutdown();
    }

    /// Seeded fault tapes (panics + transients + delays at every hook
    /// site): the set still yields every ticket exactly once, and
    /// whatever resolves Ok is bit-identical to the fault-free oracle.
    #[test]
    fn fault_tapes_cannot_double_or_drop_tickets(
        kg in arb_kg(),
        method_sel in 0usize..3,
        producers_sel in any::<bool>(),
        sharded in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let inputs = inputs_for(&kg, 3);
        let method = METHODS[method_sel]();
        let producers = if producers_sel { 4 } else { 1 };
        let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(seed)));
        let queue = if sharded {
            let mut backend = ShardedEngine::with_threads(&kg.g, 2, 1);
            backend.set_fault_injector(Some(Arc::clone(&injector)));
            AdmissionQueue::with_faults(
                backend,
                CFG,
                OverloadPolicy::default(),
                Some(Arc::clone(&injector)),
            )
        } else {
            let mut engine = SummaryEngine::with_threads(2);
            engine.set_fault_hook(Some(injector.pool_hook()));
            AdmissionQueue::with_faults(
                EngineBackend::new(kg.g.clone(), engine),
                CFG,
                OverloadPolicy::default(),
                Some(Arc::clone(&injector)),
            )
        };

        let completions = serve_via_set(&queue, &inputs, method, producers);
        prop_assert_eq!(completions.len(), inputs.len());
        let mut seen = vec![0usize; inputs.len()];
        let mut direct = SummaryEngine::with_threads(2);
        for done in &completions {
            let tag = done.tag as usize;
            prop_assert!(tag < inputs.len(), "tags correlate to submissions");
            seen[tag] += 1;
            if let Ok(got) = &done.result {
                let want = direct.summarize(&kg.g, &inputs[tag], method);
                assert_bit_identical(&want, got)?;
            }
        }
        prop_assert!(seen.iter().all(|&n| n == 1), "exactly-once per tag: {seen:?}");

        // Quiesce dispatcher bookkeeping before auditing the ledger.
        queue.drain();
        let stats = queue.stats();
        prop_assert_eq!(stats.completed + stats.failed, stats.submitted);
        queue.shutdown();
    }

    /// Dropping a set with tickets still in flight must not wedge the
    /// dispatcher: `drain` completes every admitted batch and the
    /// stats account for every submission.
    #[test]
    fn dropped_set_never_wedges_the_queue(
        kg in arb_kg(),
        method_sel in 0usize..3,
        sharded in any::<bool>(),
    ) {
        let inputs = inputs_for(&kg, 2);
        let method = METHODS[method_sel]();
        let queue = build_queue(&kg.g, sharded);
        {
            let set = TicketSet::new();
            for (i, input) in inputs.iter().enumerate() {
                let ticket = queue.submit(input.clone(), method)
                    .map_err(|e| TestCaseError::fail(format!("admits: {e}")))?;
                set.add(i as u64, ticket);
            }
            // Dropped here — tickets may be queued, in flight, or done.
        }
        queue.drain();
        let stats = queue.stats();
        prop_assert_eq!(stats.submitted, inputs.len() as u64);
        prop_assert_eq!(stats.completed + stats.failed, stats.submitted);
        prop_assert_eq!(stats.queued, 0);
        prop_assert_eq!(stats.in_flight, 0);

        // The queue is still serviceable afterwards.
        let ticket = queue.submit(inputs[0].clone(), method)
            .map_err(|e| TestCaseError::fail(format!("admits after drop: {e}")))?;
        let got = ticket.wait().map_err(|e| TestCaseError::fail(format!("serves: {e}")))?;
        let mut direct = SummaryEngine::with_threads(2);
        let want = direct.summarize(&kg.g, &inputs[0], method);
        assert_bit_identical(&want, &got)?;
        queue.shutdown();
    }
}
