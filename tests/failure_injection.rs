//! Failure-injection and degenerate-input tests: the summarization
//! pipeline must degrade gracefully, never panic, on pathological
//! inputs — at every layer of the stack. The first half abuses the
//! sequential free functions; the second half drives the serving
//! layers (engine, sharded engine, admission queue) through malformed
//! inputs and seeded [`FaultInjector`] tapes, asserting that failures
//! surface as recoverable errors on exactly the affected calls and
//! that every layer keeps serving bit-identically afterwards.

use std::sync::Arc;

use xsum::core::{
    gw_pcst_summary, pcst_summary, pcst_summary_with_policy, render_path, render_summary,
    steiner_summary, AdmissionConfig, AdmissionError, AdmissionQueue, BatchMethod, FaultInjector,
    FaultPlan, FaultSite, IncrementalSteiner, PcstConfig, PcstScope, PrizePolicy, ShardedEngine,
    SteinerConfig, Summary, SummaryEngine, SummaryInput,
};
use xsum::graph::{EdgeKind, Graph, LoosePath, NodeId, NodeKind, Subgraph};
use xsum::metrics::{consistency, ExplanationView, MetricReport};

/// One user, one item, connected.
fn minimal_graph() -> (Graph, xsum::graph::NodeId, xsum::graph::NodeId) {
    let mut g = Graph::new();
    let u = g.add_labeled_node(NodeKind::User, "u");
    let i = g.add_labeled_node(NodeKind::Item, "i");
    g.add_edge(u, i, 5.0, EdgeKind::Interaction);
    (g, u, i)
}

#[test]
fn empty_path_set_all_methods() {
    let (g, u, _) = minimal_graph();
    let input = SummaryInput::user_centric(u, vec![]);
    for s in [
        steiner_summary(&g, &input, &SteinerConfig::default()),
        pcst_summary(&g, &input, &PcstConfig::default()),
        gw_pcst_summary(&g, &input, &PcstConfig::default()),
    ] {
        assert!(
            s.subgraph.contains_node(u),
            "{} must mention the focus",
            s.method
        );
        assert_eq!(s.terminal_coverage(), 1.0);
    }
}

#[test]
fn single_node_graph() {
    let mut g = Graph::new();
    let u = g.add_node(NodeKind::User);
    let input = SummaryInput::user_centric(u, vec![LoosePath::ground(&g, vec![u])]);
    let s = steiner_summary(&g, &input, &SteinerConfig::default());
    assert_eq!(s.subgraph.edge_count(), 0);
    assert_eq!(s.terminal_coverage(), 1.0);
    let s = pcst_summary(&g, &input, &PcstConfig::default());
    assert_eq!(s.terminal_coverage(), 1.0);
}

#[test]
fn fully_hallucinated_paths() {
    // Every hop is fabricated: no real edge to boost or span.
    let mut g = Graph::new();
    let u = g.add_node(NodeKind::User);
    let i1 = g.add_node(NodeKind::Item);
    let i2 = g.add_node(NodeKind::Item);
    let fake1 = LoosePath::ground(&g, vec![u, i1]);
    let fake2 = LoosePath::ground(&g, vec![u, i2]);
    assert!(!fake1.is_faithful() && !fake2.is_faithful());
    let input = SummaryInput::user_centric(u, vec![fake1, fake2]);
    // No edges exist at all → summaries are bags of isolated terminals.
    for s in [
        steiner_summary(&g, &input, &SteinerConfig::default()),
        pcst_summary(&g, &input, &PcstConfig::default()),
    ] {
        assert_eq!(s.subgraph.edge_count(), 0);
        assert_eq!(s.terminal_coverage(), 1.0, "terminals still mentioned");
    }
    // Metrics stay well-defined.
    let v = ExplanationView::from_paths(&input.paths);
    let r = MetricReport::evaluate(&g, &v);
    assert_eq!(r.relevance, 0.0);
    assert!(r.comprehensibility > 0.0);
}

#[test]
fn duplicate_recommendations_collapse() {
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p.clone(), p.clone(), p]);
    assert_eq!(input.anchor_count, 1, "same item counted once in |S|");
    let s = steiner_summary(&g, &input, &SteinerConfig::default());
    assert_eq!(s.subgraph.edge_count(), 1);
}

#[test]
fn zero_weight_graph_is_summarizable() {
    let mut g = Graph::new();
    let u = g.add_node(NodeKind::User);
    let i = g.add_node(NodeKind::Item);
    let a = g.add_node(NodeKind::Entity);
    g.add_edge(u, i, 0.0, EdgeKind::Interaction);
    g.add_edge(i, a, 0.0, EdgeKind::Attribute);
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p]);
    let s = steiner_summary(&g, &input, &SteinerConfig::default());
    assert_eq!(s.terminal_coverage(), 1.0);
    // λ cannot boost zero weights (multiplicative), but costs stay finite.
    let s = steiner_summary(
        &g,
        &input,
        &SteinerConfig {
            lambda: 1e9,
            delta: 1.0,
        },
    );
    assert_eq!(s.terminal_coverage(), 1.0);
}

#[test]
fn extreme_lambda_and_delta_values() {
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p]);
    for (lambda, delta) in [(0.0, 1e-6), (1e12, 1e6), (0.01, 0.01)] {
        let s = steiner_summary(&g, &input, &SteinerConfig { lambda, delta });
        assert_eq!(s.terminal_coverage(), 1.0, "λ={lambda}, δ={delta}");
    }
}

#[test]
fn pcst_zero_and_negativeish_prizes() {
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p]);
    // All-zero prizes: nothing worth connecting, but terminals mentioned.
    let s = pcst_summary(
        &g,
        &input,
        &PcstConfig {
            terminal_prize: 0.0,
            nonterminal_prize: 0.0,
            ..PcstConfig::default()
        },
    );
    assert_eq!(s.terminal_coverage(), 1.0);
    assert_eq!(s.subgraph.edge_count(), 0);
}

#[test]
fn pcst_policies_on_degenerate_inputs() {
    let (g, u, _) = minimal_graph();
    let input = SummaryInput::user_centric(u, vec![]);
    for policy in [
        PrizePolicy::Uniform,
        PrizePolicy::PathFrequency { weight: 1.0 },
        PrizePolicy::DegreeCentrality { weight: 1.0 },
        PrizePolicy::Betweenness {
            weight: 1.0,
            sources: 4,
        },
    ] {
        let s = pcst_summary_with_policy(&g, &input, &PcstConfig::default(), policy);
        assert_eq!(s.terminal_coverage(), 1.0, "{policy:?}");
    }
}

#[test]
fn scope_variants_on_disconnected_terminals() {
    // Two disjoint user-item components; terminals span both.
    let mut g = Graph::new();
    let u1 = g.add_node(NodeKind::User);
    let i1 = g.add_node(NodeKind::Item);
    let u2 = g.add_node(NodeKind::User);
    let i2 = g.add_node(NodeKind::Item);
    g.add_edge(u1, i1, 5.0, EdgeKind::Interaction);
    g.add_edge(u2, i2, 5.0, EdgeKind::Interaction);
    let p1 = LoosePath::ground(&g, vec![u1, i1]);
    let p2 = LoosePath::ground(&g, vec![u2, i2]);
    let input = SummaryInput::user_group(&[u1, u2], vec![p1, p2]);
    for scope in [
        PcstScope::UnionOfPaths,
        PcstScope::ExpandedUnion(2),
        PcstScope::FullGraph,
    ] {
        let s = pcst_summary(
            &g,
            &input,
            &PcstConfig {
                scope,
                ..PcstConfig::default()
            },
        );
        // Cross-component connection is impossible; both components'
        // terminals must still be present (forest summary).
        assert_eq!(s.terminal_coverage(), 1.0, "{scope:?}");
        assert!(!s.subgraph.is_weakly_connected(&g) || s.subgraph.edge_count() == 0);
    }
    let s = steiner_summary(&g, &input, &SteinerConfig::default());
    assert_eq!(s.terminal_coverage(), 1.0);
}

#[test]
fn incremental_summarizer_survives_abuse() {
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p]);
    let mut inc = IncrementalSteiner::new(&g, &input, &SteinerConfig::default());
    // Adding the same terminal many times, starting from the item side.
    for _ in 0..5 {
        inc.add_terminal(&g, i);
        inc.add_terminal(&g, u);
    }
    assert_eq!(inc.terminal_count(), 2);
    assert!(inc.size() <= 1);
}

#[test]
fn renderers_never_panic_on_odd_graphs() {
    let mut g = Graph::new();
    let u = g.add_node(NodeKind::User); // unlabeled
    let i = g.add_node(NodeKind::Item);
    let p = LoosePath::ground(&g, vec![u, i]); // hallucinated hop
    let text = render_path(&g, &p);
    assert!(text.contains("unverified"));
    let empty = Subgraph::new();
    let t = render_summary(&g, &empty, u);
    assert!(t.contains("no summarized connections"));
}

#[test]
fn consistency_of_empty_and_mixed_series() {
    assert_eq!(consistency(&[]), 1.0);
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let filled = ExplanationView::from_paths(&[p]);
    let empty = ExplanationView::default();
    // Empty → filled transition has zero overlap.
    let c = consistency(&[empty, filled]);
    assert_eq!(c, 0.0);
}

// ---------------------------------------------------------------------
// Serving-layer failure injection: engine, sharded engine, admission.
// ---------------------------------------------------------------------

fn assert_same(a: &Summary, b: &Summary) {
    assert_eq!(a.method, b.method);
    assert_eq!(a.terminals, b.terminals);
    assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
    assert_eq!(a.subgraph.sorted_nodes(), b.subgraph.sorted_nodes());
}

/// An input whose terminals point outside the graph — the worker that
/// draws it panics, and the panic must surface as a recoverable error.
fn hallucinated_input(input: &SummaryInput) -> SummaryInput {
    let mut bad = input.clone();
    bad.terminals = vec![NodeId(u32::MAX - 2), NodeId(u32::MAX - 1)];
    bad
}

#[test]
fn engine_layer_surfaces_malformed_inputs_as_errors() {
    let ex = xsum::core::table1_example();
    let input = ex.input();
    let method = BatchMethod::Steiner(SteinerConfig::default());
    let mut engine = SummaryEngine::with_threads(2);
    let bad = hallucinated_input(&input);
    assert!(engine.try_summarize(&ex.graph, &bad, method).is_err());
    let batch = vec![input.clone(), bad, input.clone()];
    assert!(engine
        .try_summarize_batch(&ex.graph, &batch, method)
        .is_err());
    // The engine stays fully serviceable and bit-identical after both.
    let got = engine
        .try_summarize(&ex.graph, &input, method)
        .expect("engine recovered");
    assert_same(&got, &method.run(&ex.graph, &input));
}

#[test]
fn engine_layer_recovers_from_injected_pool_faults() {
    let ex = xsum::core::table1_example();
    let input = ex.input();
    let method = BatchMethod::SteinerFast(SteinerConfig::default());
    let injector = Arc::new(FaultInjector::new(FaultPlan {
        rate: 1.0,
        budget: 2,
        transients: false,
        delays: false,
        ..FaultPlan::seeded(21)
    }));
    let mut engine = SummaryEngine::with_threads(2);
    engine.set_fault_hook(Some(injector.pool_hook()));
    // Two budgeted dispatch faults: each call fails recoverably.
    for _ in 0..2 {
        assert!(engine
            .try_summarize_batch(&ex.graph, std::slice::from_ref(&input), method)
            .is_err());
    }
    assert_eq!(injector.injected_at(FaultSite::PoolDispatch), 2);
    // Budget spent: the tape is exhausted, serving is clean again even
    // with the hook still installed, and unsetting it removes the site.
    let got = engine
        .try_summarize(&ex.graph, &input, method)
        .expect("budget exhausted");
    assert_same(&got, &method.run(&ex.graph, &input));
    engine.set_fault_hook(None);
    let got = engine.summarize(&ex.graph, &input, method);
    assert_same(&got, &method.run(&ex.graph, &input));
}

#[test]
fn sharded_layer_fails_over_injected_serve_faults() {
    let ex = xsum::core::table1_example();
    let input = ex.input();
    let method = BatchMethod::Steiner(SteinerConfig::default());
    let want = method.run(&ex.graph, &input);
    // A single budgeted transient: the very first sub-batch dispatch
    // draws it (ShardServe fires before any replica pool runs), the
    // budget is then spent, so the failover retry on the other replica
    // is guaranteed clean — callers never see the fault at all.
    let injector = Arc::new(FaultInjector::new(FaultPlan {
        rate: 1.0,
        budget: 1,
        panics: false,
        delays: false,
        ..FaultPlan::seeded(33)
    }));
    let mut sharded = ShardedEngine::with_threads(&ex.graph, 2, 1);
    sharded.set_fault_injector(Some(Arc::clone(&injector)));
    let batch = vec![input.clone(), input.clone()];
    for _ in 0..4 {
        let got = sharded
            .try_summarize_batch(&batch, method)
            .expect("failover hides transient faults");
        for s in &got {
            assert_same(s, &want);
        }
    }
    assert_eq!(injector.budget_left(), 0, "tape was actually consumed");
}

#[test]
fn sharded_single_replica_total_failure_is_recoverable() {
    let ex = xsum::core::table1_example();
    let input = ex.input();
    let method = BatchMethod::SteinerFast(SteinerConfig::default());
    // One replica, and enough budget that the failover retry on the
    // same replica can fail too (via its pool hook): the batch call
    // errs instead of panicking, and the engine recovers afterwards.
    let injector = Arc::new(FaultInjector::new(FaultPlan {
        rate: 1.0,
        budget: 2,
        panics: false,
        delays: false,
        ..FaultPlan::seeded(5)
    }));
    let mut sharded = ShardedEngine::with_threads(&ex.graph, 1, 1);
    sharded.set_fault_injector(Some(Arc::clone(&injector)));
    let batch = vec![input.clone()];
    let mut saw_error = false;
    for _ in 0..4 {
        match sharded.try_summarize_batch(&batch, method) {
            Ok(got) => assert_same(&got[0], &method.run(&ex.graph, &input)),
            Err(_) => saw_error = true,
        }
    }
    assert!(saw_error, "total replica failure surfaced as an error");
    assert_eq!(injector.budget_left(), 0);
    // Tape exhausted: clean serving resumes on the same instance.
    let got = sharded
        .try_summarize_batch(&batch, method)
        .expect("replica serves again");
    assert_same(&got[0], &method.run(&ex.graph, &input));
}

#[test]
fn admission_layer_resolves_everything_under_chaos() {
    let ex = xsum::core::table1_example();
    let input = ex.input();
    let method = BatchMethod::Steiner(SteinerConfig::default());
    let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(99)));
    let mut sharded = ShardedEngine::with_threads(&ex.graph, 2, 1);
    sharded.set_fault_injector(Some(Arc::clone(&injector)));
    let queue = AdmissionQueue::with_faults(
        sharded,
        AdmissionConfig {
            queue_bound: 32,
            max_batch: 4,
            linger_tickets: 2,
        },
        xsum::core::OverloadPolicy::default(),
        Some(Arc::clone(&injector)),
    );
    let want = method.run(&ex.graph, &input);
    let bad = hallucinated_input(&input);
    // Good and malformed traffic interleaved under an active fault
    // tape: every ticket resolves (no hangs), malformed tickets always
    // fail, good tickets either succeed bit-identically or carry a
    // recoverable engine error from the tape.
    for round in 0..6 {
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                let submit = if (round + i) % 4 == 3 {
                    bad.clone()
                } else {
                    input.clone()
                };
                (i, queue.submit(submit, method).expect("admits"))
            })
            .collect();
        for (i, t) in tickets {
            match t.wait() {
                Ok(got) => {
                    assert_ne!((round + i) % 4, 3, "malformed input cannot succeed");
                    assert_same(&got, &want);
                }
                Err(AdmissionError::Engine(_)) => {}
                Err(other) => panic!("unexpected admission error: {other:?}"),
            }
        }
    }
    // Stats never drift from the ticket outcomes.
    let stats = queue.stats();
    assert_eq!(stats.submitted, 24);
    assert_eq!(stats.completed + stats.failed, 24);
    queue.shutdown();
}
