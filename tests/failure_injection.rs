//! Failure-injection and degenerate-input tests: the summarization
//! pipeline must degrade gracefully, never panic, on pathological inputs.

use xsum::core::{
    gw_pcst_summary, pcst_summary, pcst_summary_with_policy, render_path, render_summary,
    steiner_summary, IncrementalSteiner, PcstConfig, PcstScope, PrizePolicy, SteinerConfig,
    SummaryInput,
};
use xsum::graph::{EdgeKind, Graph, LoosePath, NodeKind, Subgraph};
use xsum::metrics::{consistency, ExplanationView, MetricReport};

/// One user, one item, connected.
fn minimal_graph() -> (Graph, xsum::graph::NodeId, xsum::graph::NodeId) {
    let mut g = Graph::new();
    let u = g.add_labeled_node(NodeKind::User, "u");
    let i = g.add_labeled_node(NodeKind::Item, "i");
    g.add_edge(u, i, 5.0, EdgeKind::Interaction);
    (g, u, i)
}

#[test]
fn empty_path_set_all_methods() {
    let (g, u, _) = minimal_graph();
    let input = SummaryInput::user_centric(u, vec![]);
    for s in [
        steiner_summary(&g, &input, &SteinerConfig::default()),
        pcst_summary(&g, &input, &PcstConfig::default()),
        gw_pcst_summary(&g, &input, &PcstConfig::default()),
    ] {
        assert!(
            s.subgraph.contains_node(u),
            "{} must mention the focus",
            s.method
        );
        assert_eq!(s.terminal_coverage(), 1.0);
    }
}

#[test]
fn single_node_graph() {
    let mut g = Graph::new();
    let u = g.add_node(NodeKind::User);
    let input = SummaryInput::user_centric(u, vec![LoosePath::ground(&g, vec![u])]);
    let s = steiner_summary(&g, &input, &SteinerConfig::default());
    assert_eq!(s.subgraph.edge_count(), 0);
    assert_eq!(s.terminal_coverage(), 1.0);
    let s = pcst_summary(&g, &input, &PcstConfig::default());
    assert_eq!(s.terminal_coverage(), 1.0);
}

#[test]
fn fully_hallucinated_paths() {
    // Every hop is fabricated: no real edge to boost or span.
    let mut g = Graph::new();
    let u = g.add_node(NodeKind::User);
    let i1 = g.add_node(NodeKind::Item);
    let i2 = g.add_node(NodeKind::Item);
    let fake1 = LoosePath::ground(&g, vec![u, i1]);
    let fake2 = LoosePath::ground(&g, vec![u, i2]);
    assert!(!fake1.is_faithful() && !fake2.is_faithful());
    let input = SummaryInput::user_centric(u, vec![fake1, fake2]);
    // No edges exist at all → summaries are bags of isolated terminals.
    for s in [
        steiner_summary(&g, &input, &SteinerConfig::default()),
        pcst_summary(&g, &input, &PcstConfig::default()),
    ] {
        assert_eq!(s.subgraph.edge_count(), 0);
        assert_eq!(s.terminal_coverage(), 1.0, "terminals still mentioned");
    }
    // Metrics stay well-defined.
    let v = ExplanationView::from_paths(&input.paths);
    let r = MetricReport::evaluate(&g, &v);
    assert_eq!(r.relevance, 0.0);
    assert!(r.comprehensibility > 0.0);
}

#[test]
fn duplicate_recommendations_collapse() {
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p.clone(), p.clone(), p]);
    assert_eq!(input.anchor_count, 1, "same item counted once in |S|");
    let s = steiner_summary(&g, &input, &SteinerConfig::default());
    assert_eq!(s.subgraph.edge_count(), 1);
}

#[test]
fn zero_weight_graph_is_summarizable() {
    let mut g = Graph::new();
    let u = g.add_node(NodeKind::User);
    let i = g.add_node(NodeKind::Item);
    let a = g.add_node(NodeKind::Entity);
    g.add_edge(u, i, 0.0, EdgeKind::Interaction);
    g.add_edge(i, a, 0.0, EdgeKind::Attribute);
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p]);
    let s = steiner_summary(&g, &input, &SteinerConfig::default());
    assert_eq!(s.terminal_coverage(), 1.0);
    // λ cannot boost zero weights (multiplicative), but costs stay finite.
    let s = steiner_summary(
        &g,
        &input,
        &SteinerConfig {
            lambda: 1e9,
            delta: 1.0,
        },
    );
    assert_eq!(s.terminal_coverage(), 1.0);
}

#[test]
fn extreme_lambda_and_delta_values() {
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p]);
    for (lambda, delta) in [(0.0, 1e-6), (1e12, 1e6), (0.01, 0.01)] {
        let s = steiner_summary(&g, &input, &SteinerConfig { lambda, delta });
        assert_eq!(s.terminal_coverage(), 1.0, "λ={lambda}, δ={delta}");
    }
}

#[test]
fn pcst_zero_and_negativeish_prizes() {
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p]);
    // All-zero prizes: nothing worth connecting, but terminals mentioned.
    let s = pcst_summary(
        &g,
        &input,
        &PcstConfig {
            terminal_prize: 0.0,
            nonterminal_prize: 0.0,
            ..PcstConfig::default()
        },
    );
    assert_eq!(s.terminal_coverage(), 1.0);
    assert_eq!(s.subgraph.edge_count(), 0);
}

#[test]
fn pcst_policies_on_degenerate_inputs() {
    let (g, u, _) = minimal_graph();
    let input = SummaryInput::user_centric(u, vec![]);
    for policy in [
        PrizePolicy::Uniform,
        PrizePolicy::PathFrequency { weight: 1.0 },
        PrizePolicy::DegreeCentrality { weight: 1.0 },
        PrizePolicy::Betweenness {
            weight: 1.0,
            sources: 4,
        },
    ] {
        let s = pcst_summary_with_policy(&g, &input, &PcstConfig::default(), policy);
        assert_eq!(s.terminal_coverage(), 1.0, "{policy:?}");
    }
}

#[test]
fn scope_variants_on_disconnected_terminals() {
    // Two disjoint user-item components; terminals span both.
    let mut g = Graph::new();
    let u1 = g.add_node(NodeKind::User);
    let i1 = g.add_node(NodeKind::Item);
    let u2 = g.add_node(NodeKind::User);
    let i2 = g.add_node(NodeKind::Item);
    g.add_edge(u1, i1, 5.0, EdgeKind::Interaction);
    g.add_edge(u2, i2, 5.0, EdgeKind::Interaction);
    let p1 = LoosePath::ground(&g, vec![u1, i1]);
    let p2 = LoosePath::ground(&g, vec![u2, i2]);
    let input = SummaryInput::user_group(&[u1, u2], vec![p1, p2]);
    for scope in [
        PcstScope::UnionOfPaths,
        PcstScope::ExpandedUnion(2),
        PcstScope::FullGraph,
    ] {
        let s = pcst_summary(
            &g,
            &input,
            &PcstConfig {
                scope,
                ..PcstConfig::default()
            },
        );
        // Cross-component connection is impossible; both components'
        // terminals must still be present (forest summary).
        assert_eq!(s.terminal_coverage(), 1.0, "{scope:?}");
        assert!(!s.subgraph.is_weakly_connected(&g) || s.subgraph.edge_count() == 0);
    }
    let s = steiner_summary(&g, &input, &SteinerConfig::default());
    assert_eq!(s.terminal_coverage(), 1.0);
}

#[test]
fn incremental_summarizer_survives_abuse() {
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let input = SummaryInput::user_centric(u, vec![p]);
    let mut inc = IncrementalSteiner::new(&g, &input, &SteinerConfig::default());
    // Adding the same terminal many times, starting from the item side.
    for _ in 0..5 {
        inc.add_terminal(&g, i);
        inc.add_terminal(&g, u);
    }
    assert_eq!(inc.terminal_count(), 2);
    assert!(inc.size() <= 1);
}

#[test]
fn renderers_never_panic_on_odd_graphs() {
    let mut g = Graph::new();
    let u = g.add_node(NodeKind::User); // unlabeled
    let i = g.add_node(NodeKind::Item);
    let p = LoosePath::ground(&g, vec![u, i]); // hallucinated hop
    let text = render_path(&g, &p);
    assert!(text.contains("unverified"));
    let empty = Subgraph::new();
    let t = render_summary(&g, &empty, u);
    assert!(t.contains("no summarized connections"));
}

#[test]
fn consistency_of_empty_and_mixed_series() {
    assert_eq!(consistency(&[]), 1.0);
    let (g, u, i) = minimal_graph();
    let p = LoosePath::ground(&g, vec![u, i]);
    let filled = ExplanationView::from_paths(&[p]);
    let empty = ExplanationView::default();
    // Empty → filled transition has zero overlap.
    let c = consistency(&[empty, filled]);
    assert_eq!(c, 0.0);
}
