//! End-to-end integration: dataset → recommenders → all four scenarios →
//! every summarizer → structural invariants.

use xsum::core::{
    gw_pcst_summary, pcst_summary, steiner_summary, PcstConfig, Scenario, SteinerConfig,
    SummaryInput,
};
use xsum::datasets::{ml1m_scaled, sample_users_by_gender};
use xsum::graph::{FxHashMap, LoosePath, NodeId};
use xsum::rec::{
    Cafe, CafeConfig, MfConfig, MfModel, PathRecommender, Pearlm, Pgpr, PgprConfig, Plm, PlmConfig,
};

struct Pipeline {
    ds: xsum::datasets::Dataset,
    mf: MfModel,
}

fn pipeline() -> Pipeline {
    let ds = ml1m_scaled(5, 0.02);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    Pipeline { ds, mf }
}

fn assert_summary_invariants(
    g: &xsum::graph::Graph,
    summary: &xsum::core::Summary,
    input: &SummaryInput,
) {
    // Every terminal is mentioned (R_u ⊆ V_S / C_i ⊆ V_S).
    assert_eq!(
        summary.terminal_coverage(),
        1.0,
        "{} must cover all terminals",
        summary.method
    );
    // Edges only from the parent graph, nodes consistent with edges.
    for &e in summary.subgraph.edges() {
        assert!(e.index() < g.edge_count());
        let edge = g.edge(e);
        assert!(summary.subgraph.contains_node(edge.src));
        assert!(summary.subgraph.contains_node(edge.dst));
    }
    // Acyclic output: |E| ≤ |V| − components ⇒ |E| < |V| always for forests.
    assert!(
        summary.subgraph.edge_count() < summary.subgraph.node_count().max(1),
        "{} output must be a forest",
        summary.method
    );
    assert_eq!(summary.scenario, input.scenario);
}

#[test]
fn full_pipeline_all_scenarios_all_methods() {
    let p = pipeline();
    let g = &p.ds.kg.graph;
    let pgpr = Pgpr::new(&p.ds.kg, &p.ds.ratings, &p.mf, PgprConfig::default());
    let users = sample_users_by_gender(&p.ds, 6);
    assert!(users.len() >= 8, "sample too small: {}", users.len());

    // Collect outputs.
    let mut outputs = Vec::new();
    for &u in &users {
        outputs.push((u, pgpr.recommend(u, 10)));
    }

    // --- user-centric -------------------------------------------------
    let mut checked = 0;
    for (u, out) in &outputs {
        if out.is_empty() {
            continue;
        }
        let input = SummaryInput::user_centric(p.ds.kg.user_node(*u), out.paths(10));
        assert_eq!(input.scenario, Scenario::UserCentric);
        for summary in [
            steiner_summary(g, &input, &SteinerConfig::default()),
            pcst_summary(g, &input, &PcstConfig::default()),
            gw_pcst_summary(g, &input, &PcstConfig::default()),
        ] {
            assert_summary_invariants(g, &summary, &input);
        }
        checked += 1;
    }
    assert!(checked > 3, "too few users produced recommendations");

    // --- item-centric ---------------------------------------------------
    let mut per_item: FxHashMap<NodeId, Vec<LoosePath>> = FxHashMap::default();
    for (_, out) in &outputs {
        for r in out.all() {
            per_item.entry(r.item).or_default().push(r.path.clone());
        }
    }
    let (item, paths) = per_item
        .into_iter()
        .max_by_key(|(n, v)| (v.len(), std::cmp::Reverse(n.0)))
        .expect("some item recommended");
    let input = SummaryInput::item_centric(item, paths);
    for summary in [
        steiner_summary(g, &input, &SteinerConfig::default()),
        pcst_summary(g, &input, &PcstConfig::default()),
    ] {
        assert_summary_invariants(g, &summary, &input);
    }

    // --- user-group -----------------------------------------------------
    let nodes: Vec<NodeId> = outputs.iter().map(|(u, _)| p.ds.kg.user_node(*u)).collect();
    let mut all_paths = Vec::new();
    for (_, out) in &outputs {
        all_paths.extend(out.paths(10));
    }
    let input = SummaryInput::user_group(&nodes, all_paths.clone());
    for summary in [
        steiner_summary(g, &input, &SteinerConfig::default()),
        pcst_summary(g, &input, &PcstConfig::default()),
    ] {
        assert_summary_invariants(g, &summary, &input);
    }

    // --- item-group -----------------------------------------------------
    let items: Vec<NodeId> = {
        let mut v: Vec<NodeId> = all_paths.iter().map(|p| p.target()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let input = SummaryInput::item_group(&items, all_paths);
    for summary in [
        steiner_summary(g, &input, &SteinerConfig::default()),
        pcst_summary(g, &input, &PcstConfig::default()),
    ] {
        assert_summary_invariants(g, &summary, &input);
    }
}

#[test]
fn summaries_are_deterministic() {
    let p = pipeline();
    let g = &p.ds.kg.graph;
    let pgpr = Pgpr::new(&p.ds.kg, &p.ds.ratings, &p.mf, PgprConfig::default());
    let out = pgpr.recommend(1, 10);
    if out.is_empty() {
        return;
    }
    let input = SummaryInput::user_centric(p.ds.kg.user_node(1), out.paths(10));
    let a = steiner_summary(g, &input, &SteinerConfig::default());
    let b = steiner_summary(g, &input, &SteinerConfig::default());
    assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
    let a = pcst_summary(g, &input, &PcstConfig::default());
    let b = pcst_summary(g, &input, &PcstConfig::default());
    assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
}

#[test]
fn all_four_baselines_feed_the_summarizer() {
    let p = pipeline();
    let g = &p.ds.kg.graph;
    let pgpr = Pgpr::new(&p.ds.kg, &p.ds.ratings, &p.mf, PgprConfig::default());
    let cafe = Cafe::new(&p.ds.kg, &p.ds.ratings, &p.mf, CafeConfig::default());
    let plm = Plm::new(&p.ds.kg, &p.ds.ratings, &p.mf, PlmConfig::default());
    let pearlm = Pearlm::new(&p.ds.kg, &p.ds.ratings, &p.mf, PlmConfig::default());
    let recs: [&dyn PathRecommender; 4] = [&pgpr, &cafe, &plm, &pearlm];
    for rec in recs {
        let mut summarized = 0;
        for u in 0..6 {
            let out = rec.recommend(u, 8);
            if out.is_empty() {
                continue;
            }
            let input = SummaryInput::user_centric(p.ds.kg.user_node(u), out.paths(8));
            let s = steiner_summary(g, &input, &SteinerConfig::default());
            assert_eq!(s.terminal_coverage(), 1.0, "baseline {}", rec.name());
            summarized += 1;
        }
        assert!(summarized > 0, "baseline {} produced nothing", rec.name());
    }
}

#[test]
fn incremental_k_is_monotone_in_coverage() {
    // S_k's terminal set is a prefix-superset chain: R_u(k) ⊆ R_u(k+1)
    // up to item dedup; every S_k must cover its own terminals.
    let p = pipeline();
    let g = &p.ds.kg.graph;
    let pgpr = Pgpr::new(&p.ds.kg, &p.ds.ratings, &p.mf, PgprConfig::default());
    let out = pgpr.recommend(0, 10);
    if out.len() < 3 {
        return;
    }
    let mut prev_items = 0;
    for k in 1..=out.len() {
        let input = SummaryInput::user_centric(p.ds.kg.user_node(0), out.paths(k));
        assert!(input.terminals.len() >= prev_items);
        prev_items = input.terminals.len();
        let s = steiner_summary(g, &input, &SteinerConfig::default());
        assert_eq!(s.terminal_coverage(), 1.0, "k = {k}");
    }
}
