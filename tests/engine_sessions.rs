//! Integration tests for the engine's incremental serving layer: the
//! session store's LRU/eviction/invalidation behavior under workspace
//! reuse, `add_terminal` monotonicity as k grows, and the staleness
//! contract of the (graph-epoch, config)-keyed cost-model cache.

use xsum::core::{
    pcst_summary, steiner_costs, steiner_summary, BatchMethod, PcstConfig, Scenario, SessionKey,
    SessionStore, ShardedEngine, SteinerConfig, SummaryEngine, SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::graph::{EdgeId, NodeId};

/// A small but real corpus: the scaled synthetic ML1M graph plus one
/// user-centric input per sampled user (3-hop explanation paths).
fn corpus(users: usize, k: usize) -> (xsum::datasets::Dataset, Vec<(u64, NodeId, SummaryInput)>) {
    let ds = ml1m_scaled(7, 0.02);
    let mut inputs = Vec::new();
    for u in 0..users.min(ds.kg.n_users()) {
        let mut paths = Vec::new();
        for i in 0..k {
            if let Some(p) = xsum::datasets::random_explanation_path(
                &ds,
                u,
                3,
                7 ^ ((u as u64) << 8) ^ i as u64,
                30,
            ) {
                paths.push(xsum::graph::LoosePath::from_path(&p));
            }
        }
        if !paths.is_empty() {
            let focus = ds.kg.user_node(u);
            inputs.push((u as u64, focus, SummaryInput::user_centric(focus, paths)));
        }
    }
    assert!(inputs.len() >= 4, "corpus must produce real inputs");
    (ds, inputs)
}

#[test]
fn add_terminal_cost_is_monotone_as_k_grows() {
    // The satellite contract: a session's summary only ever grows —
    // under Eq. 1 costs, the summed edge cost (and edge count) never
    // decreases when another terminal is attached, across every user
    // and with reused workspaces in between.
    let (ds, inputs) = corpus(12, 8);
    let g = &ds.kg.graph;
    let cfg = SteinerConfig::default();
    let mut store = SessionStore::new(4); // smaller than the user count: forces reuse
    for (user, focus, input) in &inputs {
        let costs = steiner_costs(g, input, &cfg);
        let session = store.steiner_session(g, SessionKey::new(*user, "pgpr"), input, &cfg);
        session.add_terminal(g, *focus);
        let mut prev_cost = 0.0f64;
        let mut prev_edges = 0usize;
        for &t in &input.terminals {
            session.add_terminal(g, t);
            let s = session.summary();
            let cost: f64 = s.subgraph.edges().iter().map(|e| costs.get(*e)).sum();
            assert!(
                cost >= prev_cost - 1e-12,
                "summary cost decreased: {prev_cost} -> {cost}"
            );
            assert!(s.subgraph.edge_count() >= prev_edges, "summary shrank");
            prev_cost = cost;
            prev_edges = s.subgraph.edge_count();
        }
        let s = session.summary();
        assert_eq!(
            s.terminal_coverage(),
            1.0,
            "every attached terminal mentioned"
        );
    }
    assert!(store.evictions() > 0, "capacity 4 over 12 users must evict");
}

#[test]
fn lru_order_respects_recency_across_users() {
    let (ds, inputs) = corpus(6, 4);
    let g = &ds.kg.graph;
    let cfg = SteinerConfig::default();
    let mut store = SessionStore::new(3);
    for (user, _, input) in inputs.iter().take(3) {
        store.steiner_session(g, SessionKey::new(*user, "pgpr"), input, &cfg);
    }
    // Re-touch the oldest, then insert a fourth: the *second* oldest
    // must be the one evicted.
    let (u0, _, in0) = &inputs[0];
    store.steiner_session(g, SessionKey::new(*u0, "pgpr"), in0, &cfg);
    let (u3, _, in3) = &inputs[3];
    store.steiner_session(g, SessionKey::new(*u3, "pgpr"), in3, &cfg);
    assert!(store.contains(&SessionKey::new(*u0, "pgpr")));
    assert!(!store.contains(&SessionKey::new(inputs[1].0, "pgpr")));
    assert!(store.contains(&SessionKey::new(inputs[2].0, "pgpr")));
    assert!(store.contains(&SessionKey::new(*u3, "pgpr")));
    // Same user under a different baseline is a distinct session.
    store.steiner_session(g, SessionKey::new(*u0, "cafe"), in0, &cfg);
    assert!(store.contains(&SessionKey::new(*u0, "cafe")));
    assert_eq!(store.len(), 3);
}

#[test]
fn capacity_zero_never_hits_and_epoch_change_invalidates() {
    let (mut ds, inputs) = corpus(4, 4);
    let cfg = SteinerConfig::default();
    let (user, focus, input) = &inputs[0];
    // Capacity 0: every lookup is a rebuild, nothing is retained, and
    // the dropped pass-through sessions are neither counted as
    // evictions nor harvested for workspaces (satellite regression).
    let mut store = SessionStore::new(0);
    for _ in 0..3 {
        let g = &ds.kg.graph;
        let s = store.steiner_session(g, SessionKey::new(*user, "pgpr"), input, &cfg);
        assert_eq!(s.terminal_count(), 0);
        s.add_terminal(g, *focus);
    }
    assert_eq!(store.hits(), 0);
    assert_eq!(store.misses(), 3);
    assert_eq!(store.len(), 0, "capacity 0 retains nothing");
    assert!(!store.contains(&SessionKey::new(*user, "pgpr")));
    assert_eq!(store.evictions(), 0, "pass-through drops are not evictions");

    // Epoch invalidation: a mutation between requests drops sessions.
    let mut store = SessionStore::new(8);
    {
        let g = &ds.kg.graph;
        let s = store.steiner_session(g, SessionKey::new(*user, "pgpr"), input, &cfg);
        s.add_terminal(g, *focus);
        assert_eq!(s.terminal_count(), 1);
    }
    ds.kg.graph.set_weight(EdgeId(0), 123.0);
    let g = &ds.kg.graph;
    let s = store.steiner_session(g, SessionKey::new(*user, "pgpr"), input, &cfg);
    assert_eq!(s.terminal_count(), 0, "stale session must not survive");
    assert_eq!(store.invalidations(), 1);
}

#[test]
fn pcst_sessions_store_and_grow() {
    let (ds, inputs) = corpus(4, 6);
    let g = &ds.kg.graph;
    let (user, _, input) = &inputs[0];
    let mut store = SessionStore::new(2);
    let mut sizes = Vec::new();
    for path in &input.paths {
        let s = store.pcst_session(
            g,
            SessionKey::new(*user, "pgpr"),
            Scenario::UserCentric,
            PcstConfig::default(),
        );
        s.add_recommendation(g, path);
        sizes.push(s.size());
    }
    assert!(
        sizes.windows(2).all(|w| w[0] <= w[1]),
        "PCST summary shrank"
    );
    let s = store.pcst_session(
        g,
        SessionKey::new(*user, "pgpr"),
        Scenario::UserCentric,
        PcstConfig::default(),
    );
    let summary = s.summary();
    assert_eq!(summary.terminal_coverage(), 1.0);
    assert_eq!(summary.method, "PCST-incremental");
    // The grown structure stays inside the absorbed scope, like the
    // one-shot PCST stays inside its path-union scope.
    let batch = pcst_summary(g, input, &PcstConfig::default());
    assert!(batch.terminal_coverage() > 0.0);
}

#[test]
fn cost_model_cache_staleness_contract() {
    // Satellite: mutate an edge weight, assert the (epoch, config)
    // cache misses, and the recomputed summary matches a cold engine.
    let (mut ds, inputs) = corpus(4, 6);
    let (_, _, input) = &inputs[0];
    let cfg = SteinerConfig::default();
    let method = BatchMethod::Steiner(cfg);

    let mut warm = SummaryEngine::with_threads(2);
    let before = warm.summarize(&ds.kg.graph, input, method);
    let (hits0, misses0) = warm.cost_cache_stats();
    assert_eq!((hits0, misses0), (0, 1));
    // Second call, unmutated graph: hit.
    warm.summarize(&ds.kg.graph, input, method);
    assert_eq!(warm.cost_cache_stats(), (1, 1));

    // Find an edge the first summary actually used and reweight it.
    let touched = *before
        .subgraph
        .sorted_edges()
        .first()
        .expect("summary has edges");
    let old_w = ds.kg.graph.weight(touched);
    ds.kg.graph.set_weight(touched, old_w + 50.0);

    let after = warm.summarize(&ds.kg.graph, input, method);
    assert_eq!(
        warm.cost_cache_stats(),
        (1, 2),
        "epoch change must miss the cost-model cache"
    );
    let cold = SummaryEngine::with_threads(2).summarize(&ds.kg.graph, input, method);
    assert_eq!(after.subgraph.sorted_edges(), cold.subgraph.sorted_edges());
    assert_eq!(after.subgraph.sorted_nodes(), cold.subgraph.sorted_nodes());
    // And the free function agrees (its thread-local cache revalidates
    // through the same epoch key).
    let free = steiner_summary(&ds.kg.graph, input, &cfg);
    assert_eq!(after.subgraph.sorted_edges(), free.subgraph.sorted_edges());
}

#[test]
fn engine_sessions_accessor_serves_scrolling_users() {
    // The end-to-end serving shape: one engine, users scroll (k grows),
    // sessions resume across requests through the engine's store.
    let (ds, inputs) = corpus(6, 6);
    let g = &ds.kg.graph;
    let cfg = SteinerConfig::default();
    let mut engine = SummaryEngine::with_threads(2);
    for round in 1..=3usize {
        for (user, focus, input) in &inputs {
            let session =
                engine
                    .sessions()
                    .steiner_session(g, SessionKey::new(*user, "pgpr"), input, &cfg);
            session.add_terminal(g, *focus);
            for &t in input.terminals.iter().take(round * 2) {
                session.add_terminal(g, t);
            }
        }
    }
    let n = inputs.len() as u64;
    assert_eq!(engine.sessions().misses(), n, "one session per user");
    assert_eq!(engine.sessions().hits(), 2 * n, "rounds 2 and 3 resume");
}

#[test]
fn sharded_sessions_stay_affine_and_invalidate_on_mutation() {
    // The sharded serving shape on a real corpus: scrolling users route
    // to stable home shards, resume there across rounds, and a graph
    // mutation through the front-end drops the stale sessions on every
    // replica that held any.
    let (ds, inputs) = corpus(8, 6);
    let cfg = SteinerConfig::default();
    let mut sharded = ShardedEngine::with_threads(&ds.kg.graph, 4, 1);
    let homes: Vec<usize> = inputs
        .iter()
        .map(|(user, _, _)| sharded.shard_of_session(&SessionKey::new(*user, "pgpr")))
        .collect();
    for round in 1..=3usize {
        for (user, _, input) in &inputs {
            let s = sharded.session_summary(
                SessionKey::new(*user, "pgpr"),
                input,
                &cfg,
                &input.terminals[..(round * 2).min(input.terminals.len())],
            );
            assert!(s.terminal_coverage() > 0.0);
        }
    }
    let n = inputs.len() as u64;
    let (mut misses, mut hits) = (0u64, 0u64);
    for shard in 0..sharded.shards() {
        misses += sharded.sessions(shard).misses();
        hits += sharded.sessions(shard).hits();
        let residents = homes.iter().filter(|&&h| h == shard).count();
        assert_eq!(
            sharded.sessions(shard).len(),
            residents,
            "shard {shard} holds exactly its routed users"
        );
    }
    assert_eq!(misses, n, "one session per user across all shards");
    assert_eq!(hits, 2 * n, "rounds 2 and 3 resume on the home shard");

    // Mutation through the front-end: next request on any shard that
    // held sessions must rebuild from a fresh epoch.
    sharded.set_weight(EdgeId(0), 99.0);
    for (user, _, input) in &inputs {
        sharded.session_summary(SessionKey::new(*user, "pgpr"), input, &cfg, &[]);
    }
    for shard in 0..sharded.shards() {
        if homes.contains(&shard) {
            assert_eq!(
                sharded.sessions(shard).invalidations(),
                1,
                "shard {shard} kept pre-mutation sessions"
            );
        }
    }
}
