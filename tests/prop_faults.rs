//! Property tests for the fault-tolerance layer: under any seeded
//! fault tape (injected worker panics, transient errors, artificial
//! delays at every hook site) every admitted ticket resolves — no
//! hangs, no panics escaping the API — and every ticket that resolves
//! successfully is **bit-identical** to a fault-free oracle. Degraded
//! requests match a direct ST-fast oracle, shed and expired tickets
//! error with `DeadlineExceeded` without consuming worker time, a
//! zeroed overload policy is bit-identical to the PR-default queue,
//! and a poisoned queue recovered with [`AdmissionQueue::recover`]
//! serves bit-identically to a freshly built stack.

use std::sync::Arc;

use proptest::prelude::*;

use xsum::core::{
    AdmissionConfig, AdmissionError, AdmissionQueue, BatchMethod, DegradePolicy, EngineBackend,
    FaultInjector, FaultPlan, OverloadPolicy, PcstConfig, ShardedEngine, SteinerConfig,
    SubmitOptions, Summary, SummaryEngine, SummaryInput,
};
use xsum::graph::{EdgeId, EdgeKind, Graph, LoosePath, NodeId, NodeKind};
use xsum_bench::traffic::{run_traffic_on, schedule, TrafficConfig};

/// The `prop_admission`/`prop_shard` random KG generator: users, items,
/// entities, random interaction and attribute edges, plus guaranteed
/// 3-hop paths from two different routing anchors.
#[derive(Debug, Clone)]
struct RandomKg {
    g: Graph,
    users: Vec<NodeId>,
    paths: Vec<LoosePath>,
    alt_paths: Vec<LoosePath>,
}

fn arb_kg() -> impl Strategy<Value = RandomKg> {
    (
        2usize..5, // users
        3usize..8, // items
        2usize..5, // entities
        proptest::collection::vec((0usize..64, 0usize..64, 1u8..=5), 5..40),
        proptest::collection::vec((0usize..64, 0usize..64), 4..30),
        0usize..1000, // path-shape selector
    )
        .prop_map(|(nu, ni, na, interactions, attributes, path_sel)| {
            let mut g = Graph::new();
            let users: Vec<NodeId> = (0..nu).map(|_| g.add_node(NodeKind::User)).collect();
            let items: Vec<NodeId> = (0..ni).map(|_| g.add_node(NodeKind::Item)).collect();
            let entities: Vec<NodeId> = (0..na).map(|_| g.add_node(NodeKind::Entity)).collect();
            let mut seen = std::collections::HashSet::new();
            for (u, i, r) in interactions {
                let (u, i) = (u % nu, i % ni);
                if seen.insert((u, i)) {
                    g.add_edge(users[u], items[i], r as f64, EdgeKind::Interaction);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for (i, a) in attributes {
                let (i, a) = (i % ni, a % na);
                if seen.insert((i, a)) {
                    g.add_edge(items[i], entities[a], 0.0, EdgeKind::Attribute);
                }
            }
            if g.find_edge(users[0], items[0]).is_none() {
                g.add_edge(users[0], items[0], 5.0, EdgeKind::Interaction);
            }
            if g.find_edge(users[1], items[0]).is_none() {
                g.add_edge(users[1], items[0], 4.0, EdgeKind::Interaction);
            }
            if g.find_edge(items[0], entities[0]).is_none() {
                g.add_edge(items[0], entities[0], 0.0, EdgeKind::Attribute);
            }
            if g.find_edge(items[1], entities[0]).is_none() {
                g.add_edge(items[1], entities[0], 0.0, EdgeKind::Attribute);
            }
            let mut paths = vec![LoosePath::ground(
                &g,
                vec![users[0], items[0], entities[0], items[1]],
            )];
            let extra: Vec<NodeId> = g
                .neighbors(entities[0])
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| g.kind(*n) == NodeKind::Item && *n != items[0] && *n != items[1])
                .collect();
            if !extra.is_empty() {
                let pick = extra[path_sel % extra.len()];
                paths.push(LoosePath::ground(
                    &g,
                    vec![users[0], items[0], entities[0], pick],
                ));
            }
            let alt_paths = vec![LoosePath::ground(
                &g,
                vec![users[1], items[0], entities[0], items[1]],
            )];
            RandomKg {
                g,
                users,
                paths,
                alt_paths,
            }
        })
}

fn inputs_for(kg: &RandomKg, replicate: usize) -> Vec<SummaryInput> {
    let base = [
        SummaryInput::user_centric(kg.users[0], kg.paths.clone()),
        SummaryInput::user_centric(kg.users[1], kg.alt_paths.clone()),
        SummaryInput::user_group(&kg.users, kg.paths.clone()),
        SummaryInput::item_centric(kg.alt_paths[0].target(), kg.alt_paths.clone()),
    ];
    let mut out = Vec::with_capacity(base.len() * replicate);
    for _ in 0..replicate {
        out.extend(base.iter().cloned());
    }
    out
}

fn assert_bit_identical(want: &Summary, got: &Summary) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.method, got.method);
    prop_assert_eq!(&want.terminals, &got.terminals);
    prop_assert_eq!(want.subgraph.sorted_edges(), got.subgraph.sorted_edges());
    prop_assert_eq!(want.subgraph.sorted_nodes(), got.subgraph.sorted_nodes());
    Ok(())
}

const METHODS: [fn() -> BatchMethod; 3] = [
    || BatchMethod::Steiner(SteinerConfig::default()),
    || BatchMethod::SteinerFast(SteinerConfig::default()),
    || BatchMethod::Pcst(PcstConfig::default()),
];

/// Build an admission queue with `injector` wired into every hook site
/// the backend exposes: the admission dispatcher itself, plus either
/// the engine's worker pool or the sharded replicas (pool + per-shard
/// serve + circuit breakers).
fn chaos_queue(
    g: &Graph,
    shards: Option<usize>,
    injector: &Arc<FaultInjector>,
    cfg: AdmissionConfig,
) -> AdmissionQueue {
    if let Some(shards) = shards {
        let mut sharded = ShardedEngine::with_threads(g, shards, 1);
        sharded.set_fault_injector(Some(Arc::clone(injector)));
        AdmissionQueue::with_faults(
            sharded,
            cfg,
            OverloadPolicy::default(),
            Some(Arc::clone(injector)),
        )
    } else {
        let mut engine = SummaryEngine::with_threads(2);
        engine.set_fault_hook(Some(injector.pool_hook()));
        AdmissionQueue::with_faults(
            EngineBackend::new(g.clone(), engine),
            cfg,
            OverloadPolicy::default(),
            Some(Arc::clone(injector)),
        )
    }
}

/// Push `inputs` through `queue` from `producers` threads and return
/// every ticket's full outcome in input order. The act of returning is
/// itself the liveness assertion: a hung ticket hangs the test.
fn chaos_serve(
    queue: &AdmissionQueue,
    inputs: &[SummaryInput],
    method: BatchMethod,
    producers: usize,
) -> Vec<(Result<Summary, AdmissionError>, xsum::core::DispatchMeta)> {
    let mut slots: Vec<Option<_>> = (0..inputs.len()).map(|_| None).collect();
    let results = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for p in 0..producers {
            let results = &results;
            scope.spawn(move || {
                let mine: Vec<usize> = (p..inputs.len()).step_by(producers.max(1)).collect();
                let tickets: Vec<_> = mine
                    .iter()
                    .map(|&i| {
                        queue
                            .submit(inputs[i].clone(), method)
                            .expect("queue admits while live")
                    })
                    .collect();
                for (i, t) in mine.into_iter().zip(tickets) {
                    results.lock().unwrap()[i] = Some(t.wait_meta());
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every admitted ticket resolves"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn chaos_tapes_resolve_and_successes_match_oracle(
        kg in arb_kg(),
        seed in 0u64..1_000_000,
        producers_sel in 0usize..2,
        backend_sel in 0usize..4,
    ) {
        // Both backends × shard counts {1, 2, 4} × producer counts,
        // under a seeded fault tape firing at every hook site. Every
        // ticket resolves; every successful ticket is bit-identical to
        // the fault-free oracle; failed tickets carry engine errors.
        let producers = [1usize, 2][producers_sel];
        // 0 = single-engine backend; 1..=3 = sharded with 1/2/4 shards.
        let shards = [None, Some(1usize), Some(2), Some(4)][backend_sel];
        let inputs = inputs_for(&kg, 2);
        let method = METHODS[(seed % 3) as usize]();
        let mut direct = SummaryEngine::with_threads(2);
        let want = direct.summarize_batch(&kg.g, &inputs, method);
        let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(seed)));
        let queue = chaos_queue(
            &kg.g,
            shards,
            &injector,
            AdmissionConfig { queue_bound: 8, max_batch: 4, linger_tickets: 2 },
        );
        let mut failures = 0u64;
        for _ in 0..2 {
            let outcomes = chaos_serve(&queue, &inputs, method, producers);
            prop_assert_eq!(outcomes.len(), want.len());
            for (w, (outcome, meta)) in want.iter().zip(&outcomes) {
                prop_assert!(!meta.degraded, "no degrade policy in play");
                match outcome {
                    Ok(got) => assert_bit_identical(w, got)?,
                    Err(AdmissionError::Engine(_)) => failures += 1,
                    Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
                }
            }
        }
        // Injection is bounded by the budget, and stats stay coherent.
        prop_assert!(injector.total_injected() <= u64::from(injector.plan().budget));
        let stats = queue.stats();
        prop_assert_eq!(stats.failed, failures);
        prop_assert_eq!(stats.completed + stats.failed, stats.submitted);
        // A drained, budget-bounded queue ends a clean round: spend
        // whatever budget remains, then everything succeeds again.
        while injector.budget_left() > 0 {
            let _ = chaos_serve(&queue, &inputs, method, 1);
        }
        let clean = chaos_serve(&queue, &inputs, method, producers);
        for (w, (outcome, _)) in want.iter().zip(&clean) {
            match outcome {
                Ok(got) => assert_bit_identical(w, got)?,
                Err(e) => prop_assert!(false, "clean round must succeed: {e:?}"),
            }
        }
    }

    #[test]
    fn degraded_tickets_match_stfast_oracle(kg in arb_kg()) {
        // Under the degrade watermark, opted-in Steiner requests are
        // downgraded to ST-fast and their results are bit-identical to
        // a direct ST-fast oracle; strict requests keep full Steiner.
        let inputs = inputs_for(&kg, 2);
        let steiner = BatchMethod::Steiner(SteinerConfig::default());
        let st_fast = BatchMethod::SteinerFast(SteinerConfig::default());
        let mut direct = SummaryEngine::with_threads(2);
        let want_full = direct.summarize_batch(&kg.g, &inputs, steiner);
        let want_fast = direct.summarize_batch(&kg.g, &inputs, st_fast);
        let queue = AdmissionQueue::with_policy(
            EngineBackend::new(kg.g.clone(), SummaryEngine::with_threads(2)),
            AdmissionConfig { queue_bound: 256, max_batch: 8, linger_tickets: usize::MAX },
            OverloadPolicy { shed_watermark: 0, degrade_watermark: 1 },
        );
        let opted_in: Vec<_> = inputs
            .iter()
            .map(|i| {
                queue
                    .submit_with(i.clone(), steiner, SubmitOptions {
                        degrade: DegradePolicy::AllowStFast,
                        ..Default::default()
                    })
                    .expect("admits")
            })
            .collect();
        let strict: Vec<_> = inputs
            .iter()
            .map(|i| queue.submit(i.clone(), steiner).expect("admits"))
            .collect();
        queue.drain();
        let mut degraded = 0u64;
        for (i, t) in opted_in.into_iter().enumerate() {
            let (outcome, meta) = t.wait_meta();
            let got = outcome.expect("serves");
            if meta.degraded {
                degraded += 1;
                assert_bit_identical(&want_fast[i], &got)?;
            } else {
                assert_bit_identical(&want_full[i], &got)?;
            }
        }
        for (i, t) in strict.into_iter().enumerate() {
            let (outcome, meta) = t.wait_meta();
            prop_assert!(!meta.degraded, "strict requests never degrade");
            assert_bit_identical(&want_full[i], &outcome.expect("serves"))?;
        }
        // The first opted-in submission saw an empty queue; the rest
        // crossed the watermark.
        prop_assert_eq!(degraded, inputs.len() as u64 - 1);
        prop_assert_eq!(queue.stats().degraded, degraded);
    }

    #[test]
    fn shed_tickets_fail_fast_and_survivors_serve(kg in arb_kg()) {
        // Above the shed watermark the lowest-urgency (unranked,
        // newest) work is dropped with `DeadlineExceeded`; ranked
        // requests under the watermark serve bit-identically.
        let inputs = inputs_for(&kg, 1);
        let method = BatchMethod::SteinerFast(SteinerConfig::default());
        let mut direct = SummaryEngine::with_threads(2);
        let want = direct.summarize_batch(&kg.g, &inputs, method);
        let queue = AdmissionQueue::with_policy(
            EngineBackend::new(kg.g.clone(), SummaryEngine::with_threads(2)),
            AdmissionConfig { queue_bound: 256, max_batch: 8, linger_tickets: usize::MAX },
            OverloadPolicy { shed_watermark: inputs.len(), degrade_watermark: 0 },
        );
        let ranked: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                queue
                    .submit_with_deadline(input.clone(), method, i as u64 + 1)
                    .expect("admits under the watermark")
            })
            .collect();
        // Unranked overload traffic: each submission crosses the
        // watermark and is itself the least-urgent entry.
        let shed: Vec<_> = (0..3)
            .map(|_| queue.submit(inputs[0].clone(), method).expect("admitted then shed"))
            .collect();
        for t in shed {
            let (outcome, meta) = t.wait_meta();
            prop_assert!(
                matches!(outcome, Err(AdmissionError::DeadlineExceeded)),
                "shed tickets resolve DeadlineExceeded"
            );
            prop_assert_eq!(meta.coalesced, 0, "shed work never reaches a batch");
        }
        queue.drain();
        for (i, t) in ranked.into_iter().enumerate() {
            assert_bit_identical(&want[i], &t.wait().expect("survivors serve"))?;
        }
        let stats = queue.stats();
        prop_assert_eq!(stats.shed, 3);
        prop_assert_eq!(stats.completed, inputs.len() as u64);
        prop_assert_eq!(stats.failed, 0);
    }

    #[test]
    fn expired_deadlines_resolve_without_worker_time(kg in arb_kg()) {
        // A request whose wall-clock deadline already passed resolves
        // `DeadlineExceeded` without dispatching a batch; the queue
        // keeps serving ordinary traffic bit-identically.
        let inputs = inputs_for(&kg, 1);
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let queue = AdmissionQueue::for_engine(
            kg.g.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig { queue_bound: 64, max_batch: 8, linger_tickets: 1 },
        );
        let expired: Vec<_> = inputs
            .iter()
            .map(|i| {
                queue
                    .submit_with(i.clone(), method, SubmitOptions {
                        expires_at: Some(
                            std::time::Instant::now() - std::time::Duration::from_millis(1),
                        ),
                        ..Default::default()
                    })
                    .expect("admission itself succeeds")
            })
            .collect();
        for t in expired {
            let (outcome, meta) = t.wait_meta();
            prop_assert!(matches!(outcome, Err(AdmissionError::DeadlineExceeded)));
            prop_assert_eq!(meta.coalesced, 0);
        }
        let stats = queue.stats();
        prop_assert_eq!(stats.expired, inputs.len() as u64);
        prop_assert_eq!(stats.batches_dispatched, 0, "no worker time consumed");
        let mut direct = SummaryEngine::with_threads(2);
        let want = direct.summarize(&kg.g, &inputs[0], method);
        let t = queue.submit(inputs[0].clone(), method).expect("still admits");
        assert_bit_identical(&want, &t.wait().expect("serves"))?;
    }

    #[test]
    fn zeroed_policy_is_bit_identical_to_default_queue(
        kg in arb_kg(),
        deadlines in proptest::collection::vec(0u64..50, 6..12),
    ) {
        // Shedding disabled (zero watermarks) must leave the PR-4
        // deadline-urgency dispatch order untouched: same tickets, same
        // batch ids, same coalescing, bit-identical results.
        let method = BatchMethod::SteinerFast(SteinerConfig::default());
        let input = inputs_for(&kg, 1)[0].clone();
        let cfg = AdmissionConfig { queue_bound: 256, max_batch: 4, linger_tickets: usize::MAX };
        let baseline = AdmissionQueue::for_engine(
            kg.g.clone(),
            SummaryEngine::with_threads(1),
            cfg,
        );
        let zeroed = AdmissionQueue::with_policy(
            EngineBackend::new(kg.g.clone(), SummaryEngine::with_threads(1)),
            cfg,
            OverloadPolicy { shed_watermark: 0, degrade_watermark: 0 },
        );
        let mut outcomes = Vec::new();
        for queue in [&baseline, &zeroed] {
            let tickets: Vec<_> = deadlines
                .iter()
                .map(|&d| {
                    queue
                        .submit_with_deadline(input.clone(), method, d)
                        .expect("admits")
                })
                .collect();
            queue.drain();
            outcomes.push(
                tickets
                    .into_iter()
                    .map(|t| t.wait_meta())
                    .collect::<Vec<_>>(),
            );
        }
        let zero_run = outcomes.pop().expect("zeroed run");
        let base_run = outcomes.pop().expect("baseline run");
        for ((base_out, base_meta), (zero_out, zero_meta)) in base_run.iter().zip(&zero_run) {
            prop_assert_eq!(base_meta.batch, zero_meta.batch);
            prop_assert_eq!(base_meta.coalesced, zero_meta.coalesced);
            prop_assert_eq!(base_meta.degraded, zero_meta.degraded);
            assert_bit_identical(
                base_out.as_ref().expect("baseline serves"),
                zero_out.as_ref().expect("zeroed serves"),
            )?;
        }
        let (b, z) = (baseline.stats(), zeroed.stats());
        prop_assert_eq!(b.batches_dispatched, z.batches_dispatched);
        prop_assert_eq!(b.max_coalesced, z.max_coalesced);
        prop_assert_eq!(z.shed, 0);
        prop_assert_eq!(z.degraded, 0);
    }

    #[test]
    fn poisoned_queue_recovers_bit_identical_to_fresh_stack(
        kg in arb_kg(),
        w1 in 1u8..=200,
        edge_sel in 0usize..1000,
        use_sharded in any::<bool>(),
    ) {
        // A good mutation, then a mutation that panics mid-replica
        // (diverging state on the sharded backend), then recovery: the
        // failed barrier must be a rollback no-op, and post-recovery
        // serving must be bit-identical to a fresh stack that only ever
        // saw the successful mutation. Both backends.
        let inputs = inputs_for(&kg, 1);
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let cfg = AdmissionConfig { queue_bound: 64, max_batch: 8, linger_tickets: 2 };
        let queue = if use_sharded {
            AdmissionQueue::for_sharded(ShardedEngine::with_threads(&kg.g, 2, 1), cfg)
        } else {
            AdmissionQueue::for_engine(kg.g.clone(), SummaryEngine::with_threads(2), cfg)
        };
        let e = EdgeId((edge_sel % kg.g.edge_count().max(1)) as u32);
        let good_w = w1 as f64 * 0.05;
        queue.mutate(move |g| g.set_weight(e, good_w)).expect("good barrier applies");
        // On the sharded backend the bad mutation panics on its second
        // per-replica application — after replica 0 already wrote — so
        // the backend genuinely diverges before poisoning. The engine
        // backend applies a closure exactly once, so there it panics
        // immediately.
        let panic_on = if use_sharded { 2u32 } else { 1 };
        let mut applications = 0u32;
        let bad = queue.mutate(move |g| {
            applications += 1;
            if applications == panic_on {
                panic!("mutation torn mid-replica");
            }
            g.set_weight(e, 123.0);
        });
        prop_assert!(bad.is_err(), "torn barrier reports failure");
        prop_assert!(matches!(
            queue.submit(inputs[0].clone(), method),
            Err(AdmissionError::Poisoned)
        ));
        queue.recover().expect("recovery restores coherence");
        // Oracle: a fresh stack over a reference graph that saw only
        // the successful mutation.
        let mut reference = kg.g.clone();
        reference.set_weight(e, good_w);
        let mut direct = SummaryEngine::with_threads(2);
        let want = direct.summarize_batch(&reference, &inputs, method);
        for (i, input) in inputs.iter().enumerate() {
            let t = queue.submit(input.clone(), method).expect("admits after recovery");
            assert_bit_identical(&want[i], &t.wait().expect("serves after recovery"))?;
        }
        // The recovered queue accepts new barriers too.
        queue.mutate(move |g| g.set_weight(e, 0.5)).expect("post-recovery barrier");
        reference.set_weight(e, 0.5);
        let want = direct.summarize(&reference, &inputs[0], method);
        let t = queue.submit(inputs[0].clone(), method).expect("admits");
        assert_bit_identical(&want, &t.wait().expect("serves"))?;
        let stats = queue.stats();
        prop_assert_eq!(stats.recoveries, 1);
        prop_assert_eq!(stats.mutations_applied, 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The open-loop traffic harness replayed against a faulted
    /// sharded backend: the tape is deterministic in its config, every
    /// offered request is accounted for exactly once (admitted →
    /// served/failed, or refused at admission), the replay returns at
    /// all (liveness — a lost wakeup or wedged barrier hangs the
    /// test), and the queue's own ledger agrees with the report's.
    #[test]
    fn traffic_harness_survives_chaos_tapes(
        kg in arb_kg(),
        seed in 0u64..1_000_000,
        sharded in 0usize..2,
    ) {
        let inputs = inputs_for(&kg, 2);
        let mut cfg = TrafficConfig::new(2_000.0, 48);
        cfg.seed = seed;
        cfg.mutation_every = 12;
        cfg.expire_after = None; // no expiry: admitted ⇒ served or failed

        // The tape is pure in (config, input count, edge count).
        let tape = schedule(&cfg, inputs.len(), kg.g.edge_count());
        prop_assert_eq!(&tape, &schedule(&cfg, inputs.len(), kg.g.edge_count()));
        let planned_mutations = tape.len() - cfg.requests;

        let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(seed)));
        let queue = chaos_queue(
            &kg.g,
            [None, Some(2usize)][sharded],
            &injector,
            cfg.admission,
        );
        let report = run_traffic_on(&queue, &inputs, kg.g.edge_count(), &cfg);

        // Every summary arrival lands in exactly one bucket at
        // admission, and every admitted ticket resolves exactly once.
        prop_assert_eq!(report.submitted + report.refused, cfg.requests as u64);
        prop_assert_eq!(report.served + report.failed, report.submitted);
        prop_assert_eq!(report.mutations + report.mutation_failures, planned_mutations as u64);
        prop_assert_eq!(report.shed, 0);
        prop_assert_eq!(report.expired, 0);

        // The queue's ledger agrees: nothing queued or in flight, and
        // completions plus failures cover every submission it saw.
        // (`drain` quiesces the dispatcher's bookkeeping first — a
        // ticket resolves to its waiter a beat before the in-flight
        // counter decrements.)
        queue.drain();
        let stats = queue.stats();
        prop_assert_eq!(stats.queued, 0);
        prop_assert_eq!(stats.in_flight, 0);
        prop_assert_eq!(stats.completed + stats.failed, stats.submitted);
        prop_assert_eq!(stats.submitted, report.submitted);
        prop_assert!(injector.total_injected() <= u64::from(injector.plan().budget));

        // The drained queue still serves, bit-identically to the
        // (possibly mutated) live graph — read it back through a
        // fault-free barrier-synchronised submission pair.
        let method = METHODS[(seed % 3) as usize]();
        let t = queue.submit(inputs[0].clone(), method);
        if let Ok(t) = t {
            if let Ok(got) = t.wait() {
                prop_assert_eq!(got.method, method.name());
            }
        }
    }
}
