//! Expected-shape assertions: the qualitative findings of the paper's
//! evaluation that the reproduction must preserve (see DESIGN.md §4 and
//! EXPERIMENTS.md). These run on a small synthetic ML1M so they are CI-
//! fast yet still average over dozens of summarization units.

use xsum::core::{pcst_summary, steiner_summary, PcstConfig, SteinerConfig, SummaryInput};
use xsum::datasets::ml1m_scaled;
use xsum::metrics::{ExplanationView, MetricReport};
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pearlm, Pgpr, PgprConfig, Plm, PlmConfig};

struct Setup {
    ds: xsum::datasets::Dataset,
    mf: MfModel,
}

fn setup() -> Setup {
    let ds = ml1m_scaled(21, 0.02);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    Setup { ds, mf }
}

/// Average a metric over user-centric inputs for each method.
fn averages(s: &Setup, k: usize, metric: impl Fn(&MetricReport) -> f64) -> (f64, f64, f64) {
    let g = &s.ds.kg.graph;
    let pgpr = Pgpr::new(&s.ds.kg, &s.ds.ratings, &s.mf, PgprConfig::default());
    let (mut base, mut st, mut pcst) = (0.0, 0.0, 0.0);
    let mut n = 0;
    for u in 0..s.ds.kg.n_users().min(25) {
        let out = pgpr.recommend(u, k);
        if out.len() < k.min(5) {
            continue;
        }
        let input = SummaryInput::user_centric(s.ds.kg.user_node(u), out.paths(k));
        base += metric(&MetricReport::evaluate(
            g,
            &ExplanationView::from_paths(&input.paths),
        ));
        let sv = steiner_summary(g, &input, &SteinerConfig::default());
        st += metric(&MetricReport::evaluate(
            g,
            &ExplanationView::from_subgraph(g, &sv.subgraph),
        ));
        let pv = pcst_summary(g, &input, &PcstConfig::default());
        pcst += metric(&MetricReport::evaluate(
            g,
            &ExplanationView::from_subgraph(g, &pv.subgraph),
        ));
        n += 1;
    }
    assert!(n >= 5, "not enough users with full outputs ({n})");
    (base / n as f64, st / n as f64, pcst / n as f64)
}

#[test]
fn fig2_shape_st_most_comprehensible() {
    let s = setup();
    let (base, st, pcst) = averages(&s, 10, |r| r.comprehensibility);
    // Fig. 2: "the ST method outperforms all methods"; PCST builds larger
    // trees than ST.
    assert!(st > base, "ST {st:.4} must beat baseline {base:.4}");
    assert!(
        st >= pcst,
        "ST {st:.4} must be at least as compact as PCST {pcst:.4}"
    );
}

#[test]
fn fig4_shape_baseline_paths_least_diverse() {
    let s = setup();
    let (base, st, pcst) = averages(&s, 10, |r| r.diversity);
    // Fig. 4: "original PGPR and CAFE paths have the lowest diversity due
    // to their fixed 3-hop structure".
    assert!(st > base, "ST diversity {st:.4} vs baseline {base:.4}");
    assert!(
        pcst > base,
        "PCST diversity {pcst:.4} vs baseline {base:.4}"
    );
}

#[test]
fn fig5_shape_summaries_less_redundant() {
    let s = setup();
    let (base, st, pcst) = averages(&s, 10, |r| r.redundancy);
    // Fig. 5: "PGPR and CAFE produce repetitive explanations, while PCST
    // and ST yield more efficient summaries with minimal duplication".
    assert!(st < base, "ST redundancy {st:.4} vs baseline {base:.4}");
    assert!(
        pcst < base,
        "PCST redundancy {pcst:.4} vs baseline {base:.4}"
    );
}

#[test]
fn fig7_shape_baselines_most_relevant_user_centric() {
    let s = setup();
    let (base, st, pcst) = averages(&s, 10, |r| r.relevance);
    // Fig. 7: "PGPR and CAFE provide the most relevant explanations in
    // user-centric scenarios by prioritizing user-item interaction
    // history" (they duplicate heavy interaction edges across paths).
    assert!(base > st, "baseline relevance {base:.1} vs ST {st:.1}");
    assert!(
        base > pcst,
        "baseline relevance {base:.1} vs PCST {pcst:.1}"
    );
}

#[test]
fn lambda_increases_alignment_with_input_paths() {
    // §IV-A: λ controls how much the summary reuses the input explanation
    // edges; λ = 0 "generates a new explanation".
    let s = setup();
    let g = &s.ds.kg.graph;
    let pgpr = Pgpr::new(&s.ds.kg, &s.ds.ratings, &s.mf, PgprConfig::default());
    let mut reuse_low = 0.0;
    let mut reuse_high = 0.0;
    let mut n = 0;
    for u in 0..s.ds.kg.n_users().min(25) {
        let out = pgpr.recommend(u, 10);
        if out.len() < 5 {
            continue;
        }
        let input = SummaryInput::user_centric(s.ds.kg.user_node(u), out.paths(10));
        let path_edges: std::collections::HashSet<_> = input
            .paths
            .iter()
            .flat_map(|p| p.grounded_edges())
            .collect();
        for (lambda, acc) in [(0.0, &mut reuse_low), (100.0, &mut reuse_high)] {
            let sv = steiner_summary(g, &input, &SteinerConfig { lambda, delta: 1.0 });
            let total = sv.subgraph.edge_count().max(1);
            let reused = sv
                .subgraph
                .edges()
                .iter()
                .filter(|e| path_edges.contains(*e))
                .count();
            *acc += reused as f64 / total as f64;
        }
        n += 1;
    }
    assert!(n >= 5);
    assert!(
        reuse_high > reuse_low,
        "λ=100 reuse {reuse_high:.2} must exceed λ=0 reuse {reuse_low:.2} over {n} users"
    );
}

#[test]
fn figs12_13_shape_plm_hallucinates_pearlm_does_not() {
    let s = setup();
    let plm = Plm::new(&s.ds.kg, &s.ds.ratings, &s.mf, PlmConfig::default());
    let pearlm = Pearlm::new(&s.ds.kg, &s.ds.ratings, &s.mf, PlmConfig::default());
    let mut plm_faithful = 0.0;
    let mut plm_hops = 0.0;
    for u in 0..10 {
        for r in plm.recommend(u, 10).all() {
            plm_faithful += r.path.hops().iter().filter(|h| h.is_some()).count() as f64;
            plm_hops += r.path.len() as f64;
        }
        for r in pearlm.recommend(u, 10).all() {
            assert!(r.path.is_faithful(), "PEARLM must stay on the KG");
        }
    }
    assert!(plm_hops > 0.0);
    assert!(
        plm_faithful / plm_hops < 1.0,
        "PLM must hallucinate at least sometimes"
    );
}

#[test]
fn faithfulness_metric_separates_plm_from_pearlm() {
    // The same shape, read off the metric suite instead of raw hops:
    // PEARLM's report-level faithfulness is exactly 1.0, PLM's is lower.
    let s = setup();
    let g = &s.ds.kg.graph;
    let plm = Plm::new(&s.ds.kg, &s.ds.ratings, &s.mf, PlmConfig::default());
    let pearlm = Pearlm::new(&s.ds.kg, &s.ds.ratings, &s.mf, PlmConfig::default());
    let mean_faithfulness = |rec: &dyn PathRecommender| -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for u in 0..10 {
            let out = rec.recommend(u, 10);
            if out.is_empty() {
                continue;
            }
            let view = ExplanationView::from_paths(&out.paths(10));
            total += MetricReport::evaluate(g, &view).faithfulness;
            n += 1;
        }
        total / n.max(1) as f64
    };
    let f_plm = mean_faithfulness(&plm);
    let f_pearlm = mean_faithfulness(&pearlm);
    assert!(
        (f_pearlm - 1.0).abs() < 1e-12,
        "PEARLM faithfulness {f_pearlm}"
    );
    assert!(
        f_plm < f_pearlm,
        "PLM {f_plm} must be below PEARLM {f_pearlm}"
    );
}

#[test]
fn group_summary_much_smaller_than_union_of_paths() {
    // The headline group-scenario claim: summarizing a group's paths
    // compresses drastically because members share explanation structure.
    let s = setup();
    let g = &s.ds.kg.graph;
    let pgpr = Pgpr::new(&s.ds.kg, &s.ds.ratings, &s.mf, PgprConfig::default());
    let mut nodes = Vec::new();
    let mut paths = Vec::new();
    for u in 0..s.ds.kg.n_users().min(20) {
        let out = pgpr.recommend(u, 10);
        if out.is_empty() {
            continue;
        }
        nodes.push(s.ds.kg.user_node(u));
        paths.extend(out.paths(10));
    }
    let total_len: usize = paths.iter().map(|p| p.len()).sum();
    let input = SummaryInput::user_group(&nodes, paths);
    let st = steiner_summary(g, &input, &SteinerConfig::default());
    assert!(
        st.subgraph.edge_count() * 2 < total_len,
        "group ST summary ({}) should be <50% of the union length ({total_len})",
        st.subgraph.edge_count()
    );
}

#[test]
fn metric_bounds_hold_everywhere() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let pgpr = Pgpr::new(&s.ds.kg, &s.ds.ratings, &s.mf, PgprConfig::default());
    for u in 0..10 {
        let out = pgpr.recommend(u, 10);
        if out.is_empty() {
            continue;
        }
        let input = SummaryInput::user_centric(s.ds.kg.user_node(u), out.paths(10));
        for view in [
            ExplanationView::from_paths(&input.paths),
            ExplanationView::from_subgraph(
                g,
                &steiner_summary(g, &input, &SteinerConfig::default()).subgraph,
            ),
            ExplanationView::from_subgraph(
                g,
                &pcst_summary(g, &input, &PcstConfig::default()).subgraph,
            ),
        ] {
            let r = MetricReport::evaluate(g, &view);
            assert!((0.0..=1.0).contains(&r.comprehensibility));
            assert!((0.0..=1.0).contains(&r.actionability));
            assert!((0.0..=1.0).contains(&r.diversity));
            assert!((0.0..=1.0).contains(&r.redundancy));
            assert!((0.0..=1.0).contains(&r.privacy));
            assert!(r.relevance >= 0.0);
        }
    }
}
