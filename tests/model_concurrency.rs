//! Model-checked concurrency suite — the `#[test]` surface over
//! [`xsum_core::modelcheck`].
//!
//! Compiled (and meaningful) only under `RUSTFLAGS="--cfg xsum_loom"`,
//! which swaps the `xsum_graph::sync` facade onto the vendored loom
//! shim so the scenarios run every thread interleaving the shim's
//! scheduler can enumerate (bounded DFS plus seeded random sampling).
//! See CONCURRENCY.md for how to run and read these, and `repro
//! modelcheck` for the benched variant that records
//! `schedules_explored` in BENCH_batch.json.
#![cfg(xsum_loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use xsum_core::modelcheck;

#[test]
fn pool_map_with_and_drop_is_race_free() {
    let stats = modelcheck::pool_map_with_and_drop();
    assert!(stats.schedules_explored > 1, "scheduler never branched");
}

#[test]
fn pool_shutdown_protocol_is_race_free() {
    let stats = modelcheck::pool_shutdown_protocol(false);
    assert!(stats.schedules_explored > 1, "scheduler never branched");
}

/// The teeth of the suite: re-introducing the pre-PR 4 worker ordering
/// (sequence observation before the shutdown check, job slot
/// `expect`ed) must make the checker report a failing schedule. If
/// this test ever fails, the model lost the ability to see the
/// shutdown/seq race and the whole suite is vacuous.
#[test]
fn pool_shutdown_mutant_is_caught() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        modelcheck::pool_shutdown_protocol(true);
    }));
    let payload = outcome.expect_err("the old ordering must fail the model");
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("");
    assert!(
        msg.contains("loom model failure"),
        "expected a model-checker failure report, got: {msg:?}"
    );
    assert!(
        msg.contains("seq bumped without a job"),
        "expected the mutant's expect-crash to be the failure, got: {msg:?}"
    );
}

#[test]
fn ticket_set_yields_exactly_once() {
    let stats = modelcheck::ticket_set_exactly_once();
    assert!(stats.schedules_explored > 1, "scheduler never branched");
}

#[test]
fn linger_window_cannot_deadlock_a_waiter() {
    let stats = modelcheck::linger_flush_no_deadlock();
    assert!(stats.schedules_explored > 1, "scheduler never branched");
}

#[test]
fn poisoned_queue_loses_no_ticket_and_recovers() {
    let stats = modelcheck::poison_recover_no_lost_ticket();
    assert!(stats.schedules_explored > 1, "scheduler never branched");
}

#[test]
fn breaker_transitions_are_race_free() {
    let stats = modelcheck::breaker_transitions_race_free();
    assert!(stats.schedules_explored > 1, "scheduler never branched");
}

#[test]
fn partitioned_scatter_and_mutation_barrier_are_race_free() {
    let stats = modelcheck::partitioned_scatter_mutation_barrier();
    assert!(stats.schedules_explored > 1, "scheduler never branched");
}
