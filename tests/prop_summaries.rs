//! Property-based tests on the summarizers over randomized knowledge
//! graphs and explanation paths.

use proptest::prelude::*;

use xsum::core::{
    adjusted_weights, exact_steiner_cost, gw_pcst_summary, pcst_summary, steiner_costs,
    steiner_summary, steiner_summary_fast, summarize_batch, BatchMethod, PcstConfig, PcstScope,
    SteinerConfig, SummaryInput,
};
use xsum::graph::{EdgeKind, Graph, LoosePath, NodeId, NodeKind};

/// A random small KG shape: `u` users, `i` items, `a` entities, random
/// interaction and attribute edges, plus guaranteed 3-hop paths.
#[derive(Debug, Clone)]
struct RandomKg {
    g: Graph,
    users: Vec<NodeId>,
    paths: Vec<LoosePath>,
}

fn arb_kg() -> impl Strategy<Value = RandomKg> {
    (
        2usize..5, // users
        3usize..8, // items
        2usize..5, // entities
        proptest::collection::vec((0usize..64, 0usize..64, 1u8..=5), 5..40),
        proptest::collection::vec((0usize..64, 0usize..64), 4..30),
        0usize..1000, // path-shape selector
    )
        .prop_map(|(nu, ni, na, interactions, attributes, path_sel)| {
            let mut g = Graph::new();
            let users: Vec<NodeId> = (0..nu).map(|_| g.add_node(NodeKind::User)).collect();
            let items: Vec<NodeId> = (0..ni).map(|_| g.add_node(NodeKind::Item)).collect();
            let entities: Vec<NodeId> = (0..na).map(|_| g.add_node(NodeKind::Entity)).collect();
            let mut seen = std::collections::HashSet::new();
            for (u, i, r) in interactions {
                let (u, i) = (u % nu, i % ni);
                if seen.insert((u, i)) {
                    g.add_edge(users[u], items[i], r as f64, EdgeKind::Interaction);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for (i, a) in attributes {
                let (i, a) = (i % ni, a % na);
                if seen.insert((i, a)) {
                    g.add_edge(items[i], entities[a], 0.0, EdgeKind::Attribute);
                }
            }
            // Guaranteed scaffolding: u0 rated i0, i0–e0, e0–i1 so at
            // least one 3-hop explanation exists.
            if g.find_edge(users[0], items[0]).is_none() {
                g.add_edge(users[0], items[0], 5.0, EdgeKind::Interaction);
            }
            if g.find_edge(items[0], entities[0]).is_none() {
                g.add_edge(items[0], entities[0], 0.0, EdgeKind::Attribute);
            }
            if g.find_edge(items[1], entities[0]).is_none() {
                g.add_edge(items[1], entities[0], 0.0, EdgeKind::Attribute);
            }
            // Derive 1–3 explanation paths for u0 by walking the scaffold
            // and any extra item adjacent to e0.
            let mut paths = vec![LoosePath::ground(
                &g,
                vec![users[0], items[0], entities[0], items[1]],
            )];
            let extra: Vec<NodeId> = g
                .neighbors(entities[0])
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| g.kind(*n) == NodeKind::Item && *n != items[0] && *n != items[1])
                .collect();
            if !extra.is_empty() {
                let pick = extra[path_sel % extra.len()];
                paths.push(LoosePath::ground(
                    &g,
                    vec![users[0], items[0], entities[0], pick],
                ));
            }
            RandomKg { g, users, paths }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn st_covers_terminals_and_is_forest(kg in arb_kg()) {
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let s = steiner_summary(&kg.g, &input, &SteinerConfig::default());
        prop_assert_eq!(s.terminal_coverage(), 1.0);
        // Forest: edge count strictly below node count.
        prop_assert!(s.subgraph.edge_count() < s.subgraph.node_count().max(1));
    }

    #[test]
    fn pcst_covers_terminals_on_path_scope(kg in arb_kg()) {
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let s = pcst_summary(&kg.g, &input, &PcstConfig::default());
        // Paths connect user to every recommended item, so the union
        // scope is connected and every terminal must be covered.
        prop_assert_eq!(s.terminal_coverage(), 1.0);
        prop_assert!(s.subgraph.edge_count() < s.subgraph.node_count().max(1));
    }

    #[test]
    fn gw_covers_terminals_with_uniform_prizes(kg in arb_kg()) {
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let s = gw_pcst_summary(&kg.g, &input, &PcstConfig::default());
        prop_assert_eq!(s.terminal_coverage(), 1.0);
    }

    #[test]
    fn st_respects_lambda_zero_semantics(kg in arb_kg()) {
        // λ = 0: adjusted weights equal raw weights exactly.
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let w = adjusted_weights(&kg.g, &input, 0.0);
        for e in kg.g.edge_ids() {
            prop_assert!((w[e.index()] - kg.g.weight(e)).abs() < 1e-12);
        }
    }

    #[test]
    fn adjusted_weights_monotone_in_lambda(kg in arb_kg()) {
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let w1 = adjusted_weights(&kg.g, &input, 1.0);
        let w2 = adjusted_weights(&kg.g, &input, 10.0);
        for e in kg.g.edge_ids() {
            prop_assert!(w2[e.index()] >= w1[e.index()] - 1e-12);
            prop_assert!(w1[e.index()] >= kg.g.weight(e) - 1e-12);
        }
    }

    #[test]
    fn st_cost_within_2x_of_union_connector(kg in arb_kg()) {
        // KMB's 2-approximation guarantee, checked against a concrete
        // feasible solution: the union of the input paths connects every
        // terminal (all paths share the user), so
        // cost(KMB tree) ≤ 2·OPT ≤ 2·cost(union edges).
        let cfg = SteinerConfig { lambda: 100.0, delta: 1.0 };
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let costs = steiner_costs(&kg.g, &input, &cfg);
        let distinct: std::collections::HashSet<_> =
            input.paths.iter().flat_map(|p| p.grounded_edges()).collect();
        let union_cost: f64 = distinct.iter().map(|e| costs.get(*e)).sum();
        let s = steiner_summary(&kg.g, &input, &cfg);
        let tree_cost: f64 = s.subgraph.edges().iter().map(|e| costs.get(*e)).sum();
        prop_assert!(
            tree_cost <= 2.0 * union_cost + 1e-9,
            "tree cost {tree_cost:.4} vs 2 × union cost {:.4}",
            2.0 * union_cost
        );
    }

    #[test]
    fn kmb_within_2x_of_exact_optimum(kg in arb_kg()) {
        // The paper's §IV-A approximation claim, verified against the
        // true Dreyfus–Wagner optimum rather than a feasible surrogate.
        let cfg = SteinerConfig::default();
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let costs = steiner_costs(&kg.g, &input, &cfg);
        if let Some(opt) = exact_steiner_cost(&kg.g, &costs, &input.terminals) {
            let s = steiner_summary(&kg.g, &input, &cfg);
            let kmb: f64 = s.subgraph.edges().iter().map(|e| costs.get(*e)).sum();
            prop_assert!(
                opt <= kmb + 1e-9,
                "exact optimum {opt:.4} must not exceed KMB cost {kmb:.4}"
            );
            prop_assert!(
                kmb <= 2.0 * opt + 1e-9,
                "KMB cost {kmb:.4} above 2 × optimum {:.4}",
                2.0 * opt
            );
        }
    }

    #[test]
    fn fast_st_covers_terminals_and_is_forest(kg in arb_kg()) {
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let s = steiner_summary_fast(&kg.g, &input, &SteinerConfig::default());
        prop_assert_eq!(s.terminal_coverage(), 1.0);
        prop_assert!(s.subgraph.edge_count() < s.subgraph.node_count().max(1));
    }

    #[test]
    fn fast_st_within_2x_of_exact_optimum(kg in arb_kg()) {
        // Mehlhorn's closure carries the same factor-2 guarantee as KMB.
        let cfg = SteinerConfig::default();
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let costs = steiner_costs(&kg.g, &input, &cfg);
        if let Some(opt) = exact_steiner_cost(&kg.g, &costs, &input.terminals) {
            let s = steiner_summary_fast(&kg.g, &input, &cfg);
            let fast: f64 = s.subgraph.edges().iter().map(|e| costs.get(*e)).sum();
            prop_assert!(opt <= fast + 1e-9);
            prop_assert!(
                fast <= 2.0 * opt + 1e-9,
                "Mehlhorn cost {fast:.4} above 2 × optimum {:.4}",
                2.0 * opt
            );
        }
    }

    #[test]
    fn batch_equals_sequential_input_for_input(kg in arb_kg()) {
        // Three inputs sharing the graph: the batched engine (cost-model
        // patching, reused workspaces) must reproduce each sequential
        // call exactly, in order, for ST, ST-fast and PCST alike.
        let inputs = vec![
            SummaryInput::user_centric(kg.users[0], kg.paths.clone()),
            SummaryInput::user_centric(kg.users[1], kg.paths.clone()),
            SummaryInput::user_group(&kg.users, kg.paths.clone()),
        ];
        let st = SteinerConfig::default();
        let pc = PcstConfig::default();
        for method in [
            BatchMethod::Steiner(st),
            BatchMethod::SteinerFast(st),
            BatchMethod::Pcst(pc),
        ] {
            let batch = summarize_batch(&kg.g, &inputs, method);
            prop_assert_eq!(batch.len(), inputs.len());
            for (input, got) in inputs.iter().zip(&batch) {
                let want = method.run(&kg.g, input);
                prop_assert_eq!(&want.terminals, &got.terminals);
                prop_assert_eq!(want.subgraph.sorted_edges(), got.subgraph.sorted_edges());
                prop_assert_eq!(want.subgraph.sorted_nodes(), got.subgraph.sorted_nodes());
            }
        }
    }

    #[test]
    fn pcst_full_scope_never_worse_coverage(kg in arb_kg()) {
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let narrow = pcst_summary(&kg.g, &input, &PcstConfig::default());
        let wide = pcst_summary(
            &kg.g,
            &input,
            &PcstConfig { scope: PcstScope::FullGraph, ..PcstConfig::default() },
        );
        prop_assert!(wide.terminal_coverage() >= narrow.terminal_coverage() - 1e-12);
    }
}
