//! Property tests for the wire protocol (`xsum::core::wire`):
//!
//! * **canonical round-trips** — decode∘encode is the identity on
//!   bytes for every record kind, including NaN and `−0.0` f64 params
//!   (compared via `to_bits`, since `PartialEq` cannot);
//! * **robust decoding** — truncations at every byte boundary, random
//!   byte flips, wrong versions, and unknown kinds produce typed
//!   [`xsum::core::WireError`]s and never panic; whenever a corrupted
//!   buffer *does* decode, re-encoding reproduces it byte-for-byte
//!   (canonicality survives corruption);
//! * **serving equivalence** — a [`xsum::core::serve_stream`] session
//!   over framed requests (mutation barriers included) answers every
//!   request id with a summary bit-identical to a direct
//!   `SummaryEngine::summarize` over an identically mutated reference
//!   graph.

use std::collections::HashMap;

use proptest::prelude::*;

use xsum::core::wire::{
    decode_frame, encode_frame, serve_stream, MutationRequest, MutationResponse, SummaryRequest,
    SummaryResponse, WireError, WireFrame, WireMutation, WireSummary, WIRE_VERSION,
};
use xsum::core::{
    AdmissionConfig, AdmissionQueue, BatchMethod, PcstConfig, PcstScope, Scenario, SteinerConfig,
    Summary, SummaryEngine, SummaryInput,
};
use xsum::graph::{EdgeId, EdgeKind, Graph, LoosePath, NodeId, NodeKind};

/// The f64 population the protocol must carry bit-exactly: the
/// interesting IEEE corners alongside ordinary magnitudes.
fn arb_f64() -> impl Strategy<Value = f64> {
    (0usize..7, -1000i32..1000).prop_map(|(sel, v)| match sel {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => f64::MIN_POSITIVE,
        _ => v as f64 * 0.125,
    })
}

fn arb_method() -> impl Strategy<Value = BatchMethod> {
    (
        0usize..4,
        arb_f64(),
        arb_f64(),
        any::<bool>(),
        0usize..3,
        0usize..5,
        any::<bool>(),
    )
        .prop_map(|(kind, a, b, use_edge_weights, scope_sel, hops, prune)| {
            let st = SteinerConfig {
                lambda: a,
                delta: b,
            };
            let pcst = PcstConfig {
                terminal_prize: a,
                nonterminal_prize: b,
                use_edge_weights,
                scope: match scope_sel {
                    0 => PcstScope::UnionOfPaths,
                    1 => PcstScope::ExpandedUnion(hops),
                    _ => PcstScope::FullGraph,
                },
                prune,
            };
            match kind {
                0 => BatchMethod::Steiner(st),
                1 => BatchMethod::SteinerFast(st),
                2 => BatchMethod::Pcst(pcst),
                _ => BatchMethod::GwPcst(pcst),
            }
        })
}

/// A structurally valid graph-free input: loose paths with optional
/// (hallucinated) hops, arbitrary ids.
fn arb_input() -> impl Strategy<Value = SummaryInput> {
    let path = (
        proptest::collection::vec(0u32..500, 1..6),
        proptest::collection::vec((any::<bool>(), 0u32..500), 5),
    )
        .prop_map(|(nodes, hops)| {
            let hops: Vec<Option<EdgeId>> = hops
                .into_iter()
                .take(nodes.len() - 1)
                .map(|(known, h)| known.then_some(EdgeId(h)))
                .collect();
            let nodes: Vec<NodeId> = nodes.into_iter().map(NodeId).collect();
            LoosePath::from_parts(nodes, hops).expect("lengths match by construction")
        });
    (
        0usize..4,
        proptest::collection::vec(0u32..500, 1..6),
        proptest::collection::vec(path, 0..5),
    )
        .prop_map(|(scenario_sel, anchors, paths)| {
            let anchors: Vec<NodeId> = anchors.into_iter().map(NodeId).collect();
            match scenario_sel {
                0 => SummaryInput::user_centric(anchors[0], paths),
                1 => SummaryInput::item_centric(anchors[0], paths),
                2 => SummaryInput::user_group(&anchors, paths),
                _ => SummaryInput::item_group(&anchors, paths),
            }
        })
}

fn arb_frame() -> impl Strategy<Value = WireFrame> {
    (
        0usize..4,
        any::<u64>(),
        arb_method(),
        arb_input(),
        0u32..1000,
        arb_f64(),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(kind, id, method, input, edge, weight, ok, msg_sel)| match kind {
                0 => WireFrame::SummaryRequest(SummaryRequest { id, method, input }),
                1 => WireFrame::MutationRequest(MutationRequest {
                    id,
                    mutation: WireMutation::SetWeight {
                        edge: EdgeId(edge),
                        weight,
                    },
                }),
                2 => WireFrame::SummaryResponse(SummaryResponse {
                    id,
                    result: if ok {
                        Ok(WireSummary {
                            method: "ST".to_string(),
                            scenario: Scenario::UserCentric,
                            nodes: vec![NodeId(1), NodeId(2)],
                            edges: vec![EdgeId(0)],
                            terminals: vec![NodeId(1)],
                        })
                    } else {
                        Err(format!("engine error #{msg_sel}"))
                    },
                }),
                _ => WireFrame::MutationResponse(MutationResponse {
                    id,
                    result: if ok {
                        Ok(())
                    } else {
                        Err(format!("barrier error #{msg_sel}"))
                    },
                }),
            },
        )
}

/// The chaos graph of `prop_admission`, in miniature: enough structure
/// that every method serves every input.
fn tiny_kg() -> (Graph, Vec<SummaryInput>) {
    let mut g = Graph::new();
    let u0 = g.add_node(NodeKind::User);
    let u1 = g.add_node(NodeKind::User);
    let items: Vec<NodeId> = (0..4).map(|_| g.add_node(NodeKind::Item)).collect();
    let a = g.add_node(NodeKind::Entity);
    for (i, &item) in items.iter().enumerate() {
        g.add_edge(u0, item, 1.0 + i as f64, EdgeKind::Interaction);
        g.add_edge(item, a, 0.0, EdgeKind::Attribute);
    }
    g.add_edge(u1, items[0], 4.0, EdgeKind::Interaction);
    let p0 = LoosePath::ground(&g, vec![u0, items[0], a, items[1]]);
    let p1 = LoosePath::ground(&g, vec![u0, items[2], a, items[3]]);
    let alt = LoosePath::ground(&g, vec![u1, items[0], a, items[2]]);
    let inputs = vec![
        SummaryInput::user_centric(u0, vec![p0.clone(), p1.clone()]),
        SummaryInput::user_centric(u1, vec![alt.clone()]),
        SummaryInput::user_group(&[u0, u1], vec![p0, p1, alt]),
    ];
    (g, inputs)
}

fn assert_wire_matches(want: &Summary, got: &WireSummary) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.method, got.method.as_str());
    prop_assert_eq!(&want.terminals, &got.terminals);
    prop_assert_eq!(want.subgraph.sorted_nodes(), got.nodes.clone());
    prop_assert_eq!(want.subgraph.sorted_edges(), got.edges.clone());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_round_trip_to_identical_bytes(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        let (decoded, consumed) = decode_frame(&bytes)
            .map_err(|e| TestCaseError::fail(format!("well-formed frame decodes: {e}")))?;
        prop_assert_eq!(consumed, bytes.len());
        // Byte identity subsumes every field — including NaN configs
        // `PartialEq` could never compare — because the encoding is
        // canonical.
        prop_assert_eq!(encode_frame(&decoded), bytes);
    }

    #[test]
    fn f64_params_survive_bit_exact(lambda in arb_f64(), delta in arb_f64(), id in any::<u64>()) {
        let frame = WireFrame::SummaryRequest(SummaryRequest {
            id,
            method: BatchMethod::Steiner(SteinerConfig { lambda, delta }),
            input: SummaryInput::user_centric(NodeId(0), Vec::new()),
        });
        let (decoded, _) = decode_frame(&encode_frame(&frame)).expect("decodes");
        let WireFrame::SummaryRequest(req) = decoded else {
            return Err(TestCaseError::fail("kind preserved"));
        };
        prop_assert_eq!(req.id, id);
        let BatchMethod::Steiner(cfg) = req.method else {
            return Err(TestCaseError::fail("method preserved"));
        };
        prop_assert_eq!(cfg.lambda.to_bits(), lambda.to_bits());
        prop_assert_eq!(cfg.delta.to_bits(), delta.to_bits());
    }

    #[test]
    fn truncations_error_and_never_panic(frame in arb_frame(), cut_sel in 0usize..10_000) {
        let bytes = encode_frame(&frame);
        let cut = cut_sel % bytes.len();
        // Every strict prefix fails typed — the length prefix promises
        // more payload than remains.
        if decode_frame(&bytes[..cut]).is_ok() {
            return Err(TestCaseError::fail("strict prefix must not decode"));
        }
    }

    #[test]
    fn byte_flips_decode_typed_or_canonical(
        frame in arb_frame(),
        pos_sel in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let mut bytes = encode_frame(&frame);
        let pos = pos_sel % bytes.len();
        bytes[pos] ^= xor;
        // A flipped byte may still parse (e.g. inside an f64 image) —
        // then canonicality must hold; otherwise the error is typed
        // and the decoder must not panic.
        match decode_frame(&bytes) {
            Ok((decoded, consumed)) => {
                prop_assert_eq!(encode_frame(&decoded), bytes[..consumed].to_vec());
            }
            Err(
                WireError::Truncated
                | WireError::UnsupportedVersion(_)
                | WireError::UnknownKind(_)
                | WireError::TrailingBytes { .. }
                | WireError::Corrupt(_),
            ) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error class: {other}")))
            }
        }
    }

    #[test]
    fn wrong_version_and_kind_are_typed(frame in arb_frame(), v in 0u8..=255, k in 5u8..=255) {
        let bytes = encode_frame(&frame);
        if v != WIRE_VERSION {
            let mut wrong = bytes.clone();
            wrong[4] = v;
            match decode_frame(&wrong) {
                Err(WireError::UnsupportedVersion(got)) => prop_assert_eq!(got, v),
                other => return Err(TestCaseError::fail(format!(
                    "expected UnsupportedVersion, got {}",
                    describe(&other)
                ))),
            }
        }
        let mut wrong = bytes;
        wrong[5] = k;
        match decode_frame(&wrong) {
            Err(WireError::UnknownKind(got)) => prop_assert_eq!(got, k),
            other => return Err(TestCaseError::fail(format!(
                "expected UnknownKind, got {}",
                describe(&other)
            ))),
        }
    }
}

fn describe(r: &Result<(WireFrame, usize), WireError>) -> String {
    match r {
        Ok((_, consumed)) => format!("Ok(frame, {consumed})"),
        Err(e) => format!("Err({e})"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn serve_stream_matches_direct_submission(
        method_sels in proptest::collection::vec(0usize..3, 3..9),
        edge_sel in 0usize..1000,
        new_weight in 1u8..=200,
    ) {
        let (mut g, inputs) = tiny_kg();
        g.freeze();
        let methods = [
            BatchMethod::Steiner(SteinerConfig::default()),
            BatchMethod::SteinerFast(SteinerConfig::default()),
            BatchMethod::Pcst(PcstConfig::default()),
        ];
        // Frame a session: a request wave, one mutation barrier, then a
        // second wave over the post-mutation graph.
        let e = EdgeId((edge_sel % g.edge_count()) as u32);
        let w = new_weight as f64 * 0.05;
        let mut stream = Vec::new();
        let mut pre_ids = Vec::new();
        let mut post_ids = Vec::new();
        for (i, &sel) in method_sels.iter().enumerate() {
            let id = i as u64;
            stream.extend_from_slice(&encode_frame(&WireFrame::SummaryRequest(SummaryRequest {
                id,
                method: methods[sel],
                input: inputs[i % inputs.len()].clone(),
            })));
            pre_ids.push((id, sel, i % inputs.len()));
        }
        stream.extend_from_slice(&encode_frame(&WireFrame::MutationRequest(MutationRequest {
            id: 9_000,
            mutation: WireMutation::SetWeight { edge: e, weight: w },
        })));
        for (i, &sel) in method_sels.iter().enumerate() {
            let id = 100 + i as u64;
            stream.extend_from_slice(&encode_frame(&WireFrame::SummaryRequest(SummaryRequest {
                id,
                method: methods[sel],
                input: inputs[i % inputs.len()].clone(),
            })));
            post_ids.push((id, sel, i % inputs.len()));
        }

        let queue = AdmissionQueue::for_engine(
            g.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig { queue_bound: 64, max_batch: 8, linger_tickets: 2 },
        );
        let mut responses = Vec::new();
        let report = serve_stream(&stream[..], &mut responses, &queue)
            .map_err(|e| TestCaseError::fail(format!("clean stream serves: {e}")))?;
        prop_assert_eq!(report.summaries, 2 * method_sels.len() as u64);
        prop_assert_eq!(report.mutations, 1);
        prop_assert_eq!(report.responses, 2 * method_sels.len() as u64 + 1);

        // Decode the response stream into an id → summary map.
        let mut got: HashMap<u64, WireSummary> = HashMap::new();
        let mut mutation_acked = false;
        let mut rest = &responses[..];
        while !rest.is_empty() {
            let (frame, consumed) = decode_frame(rest)
                .map_err(|e| TestCaseError::fail(format!("valid response frame: {e}")))?;
            rest = &rest[consumed..];
            match frame {
                WireFrame::SummaryResponse(resp) => {
                    let summary = resp.result
                        .map_err(|e| TestCaseError::fail(format!("request serves: {e}")))?;
                    prop_assert!(got.insert(resp.id, summary).is_none(), "ids answer once");
                }
                WireFrame::MutationResponse(resp) => {
                    prop_assert_eq!(resp.id, 9_000);
                    prop_assert!(resp.result.is_ok());
                    mutation_acked = true;
                }
                _ => return Err(TestCaseError::fail("request frame on the response stream")),
            }
        }
        prop_assert!(mutation_acked);
        prop_assert_eq!(got.len(), 2 * method_sels.len());

        // Direct reference: same methods, same inputs, identically
        // mutated reference graph.
        let mut direct = SummaryEngine::with_threads(2);
        for &(id, sel, input) in &pre_ids {
            let want = direct.summarize(&g, &inputs[input], methods[sel]);
            assert_wire_matches(&want, &got[&id])?;
        }
        g.set_weight(e, w);
        for &(id, sel, input) in &post_ids {
            let want = direct.summarize(&g, &inputs[input], methods[sel]);
            assert_wire_matches(&want, &got[&id])?;
        }
    }
}

#[test]
fn corrupt_stream_still_answers_admitted_requests() {
    // A truncated tail must not strand the requests decoded before it:
    // serve_stream drains the ticket set before surfacing the error.
    let (g, inputs) = tiny_kg();
    g.freeze();
    let queue = AdmissionQueue::for_engine(
        g.clone(),
        SummaryEngine::with_threads(2),
        AdmissionConfig {
            queue_bound: 64,
            max_batch: 8,
            linger_tickets: 2,
        },
    );
    let method = BatchMethod::Steiner(SteinerConfig::default());
    let mut stream = encode_frame(&WireFrame::SummaryRequest(SummaryRequest {
        id: 1,
        method,
        input: inputs[0].clone(),
    }));
    stream.extend_from_slice(&[7, 0, 0]); // torn length prefix
    let mut responses = Vec::new();
    let err = serve_stream(&stream[..], &mut responses, &queue)
        .expect_err("torn frame surfaces an error");
    assert!(matches!(err, WireError::Truncated), "typed: {err}");
    let (frame, _) = decode_frame(&responses).expect("the admitted request was answered");
    let WireFrame::SummaryResponse(resp) = frame else {
        panic!("summary response expected");
    };
    assert_eq!(resp.id, 1);
    let mut direct = SummaryEngine::with_threads(2);
    let want = direct.summarize(&g, &inputs[0], method);
    let got = resp.result.expect("serves");
    assert_eq!(want.method, got.method.as_str());
    assert_eq!(want.subgraph.sorted_edges(), got.edges);
    assert_eq!(want.subgraph.sorted_nodes(), got.nodes);
}
