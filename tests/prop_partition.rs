//! Property tests pinning the partitioned serving mode to the single-
//! engine path, and the partition substrate to its structural
//! invariants. Across random knowledge graphs, shard counts {1, 2, 4},
//! mixed ST / ST-fast / PCST batches, and interleaved weight mutations,
//! a partitioned `ShardedEngine` (true sub-graph replicas + coverage)
//! must be **bit-identical** to one `SummaryEngine` — the
//! certify-or-escalate split must be invisible in the outputs.
//!
//! Substrate invariants pinned here:
//! * the partitioner's resident sets cover every node, and ownership is
//!   total, in-range, and deterministic;
//! * local↔global id remaps round-trip for every resident and halo
//!   node and every materialized edge;
//! * every cut edge's outside endpoint is materialized in the halo
//!   (depth 1), so owned-edge weight sync reaches all copies;
//! * ownership balance respects the partitioner's floor
//!   (`≥ max(1, ⌊0.5·n/shards⌋)` owned nodes per shard).

use proptest::prelude::*;

use xsum::core::{
    BatchMethod, PcstConfig, ShardedEngine, SteinerConfig, Summary, SummaryEngine, SummaryInput,
};
use xsum::graph::{
    EdgeId, EdgeKind, Graph, LoosePath, NodeId, NodeKind, Partition, PartitionConfig,
};
use xsum::kg::{partition_nodes, PartitionerConfig};

/// A random small KG shape: users, items, entities, random interaction
/// and attribute edges, plus guaranteed 3-hop paths (the `prop_shard`
/// generator).
#[derive(Debug, Clone)]
struct RandomKg {
    g: Graph,
    users: Vec<NodeId>,
    paths: Vec<LoosePath>,
    /// Paths sourced at `users[1]` — a second routing anchor.
    alt_paths: Vec<LoosePath>,
}

fn arb_kg() -> impl Strategy<Value = RandomKg> {
    (
        2usize..5, // users
        3usize..8, // items
        2usize..5, // entities
        proptest::collection::vec((0usize..64, 0usize..64, 1u8..=5), 5..40),
        proptest::collection::vec((0usize..64, 0usize..64), 4..30),
        0usize..1000, // path-shape selector
    )
        .prop_map(|(nu, ni, na, interactions, attributes, path_sel)| {
            let mut g = Graph::new();
            let users: Vec<NodeId> = (0..nu).map(|_| g.add_node(NodeKind::User)).collect();
            let items: Vec<NodeId> = (0..ni).map(|_| g.add_node(NodeKind::Item)).collect();
            let entities: Vec<NodeId> = (0..na).map(|_| g.add_node(NodeKind::Entity)).collect();
            let mut seen = std::collections::HashSet::new();
            for (u, i, r) in interactions {
                let (u, i) = (u % nu, i % ni);
                if seen.insert((u, i)) {
                    g.add_edge(users[u], items[i], r as f64, EdgeKind::Interaction);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for (i, a) in attributes {
                let (i, a) = (i % ni, a % na);
                if seen.insert((i, a)) {
                    g.add_edge(items[i], entities[a], 0.0, EdgeKind::Attribute);
                }
            }
            if g.find_edge(users[0], items[0]).is_none() {
                g.add_edge(users[0], items[0], 5.0, EdgeKind::Interaction);
            }
            if g.find_edge(users[1], items[0]).is_none() {
                g.add_edge(users[1], items[0], 4.0, EdgeKind::Interaction);
            }
            if g.find_edge(items[0], entities[0]).is_none() {
                g.add_edge(items[0], entities[0], 0.0, EdgeKind::Attribute);
            }
            if g.find_edge(items[1], entities[0]).is_none() {
                g.add_edge(items[1], entities[0], 0.0, EdgeKind::Attribute);
            }
            let mut paths = vec![LoosePath::ground(
                &g,
                vec![users[0], items[0], entities[0], items[1]],
            )];
            let extra: Vec<NodeId> = g
                .neighbors(entities[0])
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| g.kind(*n) == NodeKind::Item && *n != items[0] && *n != items[1])
                .collect();
            if !extra.is_empty() {
                let pick = extra[path_sel % extra.len()];
                paths.push(LoosePath::ground(
                    &g,
                    vec![users[0], items[0], entities[0], pick],
                ));
            }
            let alt_paths = vec![LoosePath::ground(
                &g,
                vec![users[1], items[0], entities[0], items[1]],
            )];
            RandomKg {
                g,
                users,
                paths,
                alt_paths,
            }
        })
}

fn inputs_for(kg: &RandomKg) -> Vec<SummaryInput> {
    vec![
        SummaryInput::user_centric(kg.users[0], kg.paths.clone()),
        SummaryInput::user_centric(kg.users[1], kg.alt_paths.clone()),
        SummaryInput::user_group(&kg.users, kg.paths.clone()),
        SummaryInput::item_centric(kg.alt_paths[0].target(), kg.alt_paths.clone()),
    ]
}

fn assert_bit_identical(want: &Summary, got: &Summary) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.method, got.method);
    prop_assert_eq!(&want.terminals, &got.terminals);
    prop_assert_eq!(want.subgraph.sorted_edges(), got.subgraph.sorted_edges());
    prop_assert_eq!(want.subgraph.sorted_nodes(), got.subgraph.sorted_nodes());
    Ok(())
}

const METHODS: [fn() -> BatchMethod; 3] = [
    || BatchMethod::Steiner(SteinerConfig::default()),
    || BatchMethod::SteinerFast(SteinerConfig::default()),
    || BatchMethod::Pcst(PcstConfig::default()),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partition_plan_and_substrate_invariants(kg in arb_kg(), seed in 0u64..1000) {
        let g = &kg.g;
        let n = g.node_count();
        for shards in [1usize, 2, 4] {
            let cfg = PartitionerConfig::default();
            let plan = partition_nodes(g, shards, seed, &cfg);
            prop_assert_eq!(&plan, &partition_nodes(g, shards, seed, &cfg),
                "partitioner must be deterministic");
            prop_assert_eq!(plan.owner.len(), n);
            prop_assert!(plan.owner.iter().all(|&s| (s as usize) < shards));

            // Ownership balance floor.
            let mut owned = vec![0usize; shards];
            for &s in &plan.owner {
                owned[s as usize] += 1;
            }
            let floor = (((n as f64 / shards as f64) * 0.5).floor() as usize).max(1);
            for (s, &c) in owned.iter().enumerate() {
                prop_assert!(c >= floor, "shard {} owns {} < floor {}", s, c, floor);
            }

            // Resident cover, remap round-trips, halo containment.
            let mut covered = vec![false; n];
            let hcfg = PartitionConfig::default();
            for (s, res) in plan.residents.iter().enumerate() {
                let part = Partition::build(g, res, &hcfg);
                prop_assert_eq!(part.resident_count(), res.len());
                for &v in res {
                    covered[v.index()] = true;
                    let lv = part.to_local(v).expect("resident node must be materialized");
                    prop_assert_eq!(part.to_global(lv), v, "node remap must round-trip");
                    prop_assert!(part.is_resident(v) && !part.is_halo(v));
                    // Depth-1 halo: every global neighbor of a resident
                    // is materialized (resident or halo), so every cut
                    // edge's outside endpoint holds a synced copy.
                    for &(w, _) in g.neighbors(v) {
                        prop_assert!(
                            part.to_local(w).is_some(),
                            "shard {}: cut-edge endpoint {:?} of resident {:?} not in halo",
                            s, w, v
                        );
                    }
                }
                for le in 0..part.edge_count() {
                    let le = EdgeId(le as u32);
                    let ge = part.to_global_edge(le);
                    prop_assert_eq!(part.to_local_edge(ge), Some(le), "edge remap must round-trip");
                    prop_assert_eq!(
                        part.graph().weight(le).to_bits(),
                        g.weight(ge).to_bits(),
                        "materialized weights must equal the global graph's"
                    );
                }
            }
            prop_assert!(covered.iter().all(|&c| c), "resident union must cover V");
        }
    }

    #[test]
    fn partitioned_equals_single_engine_across_shard_counts(kg in arb_kg()) {
        // Shard counts {1, 2, 4} × mixed ST / ST-fast / PCST batches,
        // warm engines on both sides (two passes each): the
        // certify-or-escalate split must be invisible.
        let inputs = inputs_for(&kg);
        for shards in [1usize, 2, 4] {
            let mut parted = ShardedEngine::new_partitioned(&kg.g, shards, 42);
            prop_assert!(parted.is_partitioned());
            let mut single = SummaryEngine::with_threads(2);
            for make_method in METHODS {
                let method = make_method();
                for _ in 0..2 {
                    let got = parted.summarize_batch(&inputs, method);
                    let want = single.summarize_batch(&kg.g, &inputs, method);
                    prop_assert_eq!(got.len(), inputs.len());
                    for (w, s) in want.iter().zip(&got) {
                        assert_bit_identical(w, s)?;
                    }
                }
            }
            // Every serve accounted exactly once, locally or on coverage.
            let (local, coverage) = parted.partition_stats();
            prop_assert_eq!(
                local + coverage,
                (inputs.len() * METHODS.len() * 2) as u64,
                "partition_stats must account for every serve"
            );
        }
    }

    #[test]
    fn partitioned_tracks_interleaved_weight_mutations(
        mut kg in arb_kg(),
        weights in proptest::collection::vec(1u8..=200, 1..4),
        edge_sel in 0usize..1000,
    ) {
        // Serving loop with mutations interleaved between batches:
        // after every mutation (fast-path `set_weight` on one engine,
        // closure `mutate` on the other) partitioned serving must agree
        // with a single engine over an identically mutated graph.
        let inputs = inputs_for(&kg);
        let mut parted2 = ShardedEngine::new_partitioned(&kg.g, 2, 7);
        let mut parted4 = ShardedEngine::new_partitioned(&kg.g, 4, 7);
        let mut single = SummaryEngine::with_threads(2);
        for (round, w) in weights.iter().enumerate() {
            let method = METHODS[round % METHODS.len()]();
            let want = single.summarize_batch(&kg.g, &inputs, method);
            let got2 = parted2.summarize_batch(&inputs, method);
            let got4 = parted4.summarize_batch(&inputs, method);
            for ((w, s2), s4) in want.iter().zip(&got2).zip(&got4) {
                assert_bit_identical(w, s2)?;
                assert_bit_identical(w, s4)?;
            }
            let e = EdgeId((edge_sel % kg.g.edge_count().max(1)) as u32);
            let new_w = *w as f64 * 0.05;
            parted2.set_weight(e, new_w);
            parted4.mutate(|g| g.set_weight(e, new_w));
            kg.g.set_weight(e, new_w);
        }
        // Final post-mutation agreement, including the single-summary
        // routing path.
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let want = single.summarize_batch(&kg.g, &inputs, method);
        let got2 = parted2.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&got2) {
            assert_bit_identical(w, s)?;
        }
        for input in &inputs {
            assert_bit_identical(
                &single.summarize(&kg.g, input, method),
                &parted4.summarize(input, method),
            )?;
        }
    }
}

/// Two weight-identical communities with no edges between them: a
/// separating partitioning has empty boundaries and equal local/global
/// maximum weights, so community-local requests certify and serve
/// entirely inside their home partitions — pinning that the local path
/// genuinely runs (a front-end escalating everything would pass the
/// bit-identity properties above vacuously).
#[test]
fn separated_communities_serve_locally() {
    let mut g = Graph::new();
    let mut inputs = Vec::new();
    for _c in 0..2 {
        let users: Vec<NodeId> = (0..5).map(|_| g.add_node(NodeKind::User)).collect();
        let items: Vec<NodeId> = (0..5).map(|_| g.add_node(NodeKind::Item)).collect();
        for i in 0..5 {
            g.add_edge(
                users[i],
                items[i],
                1.0 + i as f64 * 0.1,
                EdgeKind::Interaction,
            );
            g.add_edge(items[i], users[(i + 1) % 5], 0.5, EdgeKind::Interaction);
        }
        // Identical per-community maximum weight: certification's
        // cost-anchor condition holds in both partitions.
        g.add_edge(users[0], items[3], 2.0, EdgeKind::Interaction);
        let path = LoosePath::ground(&g, vec![users[0], items[0], users[1]]);
        inputs.push(SummaryInput::user_centric(users[0], vec![path]));
        let path2 = LoosePath::ground(&g, vec![users[2], items[2], users[3]]);
        inputs.push(SummaryInput::user_centric(users[2], vec![path2]));
    }
    let n = g.node_count();
    let community = |v: usize| v / (n / 2);
    // The partitioner is deterministic: scan for a seed whose Voronoi
    // seeds land one per community, making the cut empty.
    let seed = (0..64u64)
        .find(|&s| {
            let plan = partition_nodes(&g, 2, s, &PartitionerConfig::default());
            (0..n).all(|v| plan.owner[v] == plan.owner[community(v) * (n / 2)])
                && plan.owner[0] != plan.owner[n / 2]
        })
        .expect("some seed must separate two equal disjoint communities");
    let mut parted = ShardedEngine::partitioned_with(
        &g,
        2,
        seed,
        1,
        PartitionerConfig::default(),
        PartitionConfig::default(),
    );
    let method = BatchMethod::Steiner(SteinerConfig::default());
    let want: Vec<Summary> = inputs
        .iter()
        .map(|i| {
            let mut single = SummaryEngine::with_threads(1);
            single.summarize(&g, i, method)
        })
        .collect();
    let got = parted.summarize_batch(&inputs, method);
    for (w, s) in want.iter().zip(&got) {
        assert_eq!(w.terminals, s.terminals);
        assert_eq!(w.subgraph.sorted_edges(), s.subgraph.sorted_edges());
        assert_eq!(w.subgraph.sorted_nodes(), s.subgraph.sorted_nodes());
    }
    assert_eq!(
        parted.partition_stats(),
        (inputs.len() as u64, 0),
        "all community-local requests must certify and serve locally"
    );
}
