//! Integration tests for the second extension wave: the exact Steiner
//! oracle, path-free (black-box recommender) summarization, item-kNN,
//! behavioural clustering, PageRank prizes, and graph export — all
//! through the public `xsum` façade.

use xsum::core::{
    exact_steiner_cost, optimality_gap, overlay_to_dot, path_free_user_centric,
    pcst_summary_with_policy, steiner_costs, steiner_summary, summary_to_dot, summary_to_tsv,
    PathGenConfig, PcstConfig, PrizePolicy, SteinerConfig, SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::graph::{pagerank, NodeId, PageRankConfig};
use xsum::rec::{
    cluster_users, ItemKnn, ItemKnnConfig, KMeansConfig, MfConfig, MfModel, PathRecommender,
};

struct Setup {
    ds: xsum::datasets::Dataset,
    mf: MfModel,
}

fn setup() -> Setup {
    let ds = ml1m_scaled(91, 0.02);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    Setup { ds, mf }
}

#[test]
fn kmb_stays_within_factor_two_on_pipeline_inputs() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let knn = ItemKnn::new(&s.ds.kg, &s.ds.ratings, &ItemKnnConfig::default());
    let cfg = SteinerConfig::default();
    let mut measured = 0;
    for u in 0..12 {
        let out = knn.recommend(u, 6);
        if out.is_empty() {
            continue;
        }
        let input = SummaryInput::user_centric(s.ds.kg.user_node(u), out.paths(6));
        if let Some(gap) = optimality_gap(g, &input, &cfg) {
            assert!(
                gap.ratio() <= 2.0 + 1e-9,
                "user {u}: KMB ratio {} breaks the 2-approximation bound",
                gap.ratio()
            );
            assert!(gap.exact_cost <= gap.kmb_cost + 1e-9);
            measured += 1;
        }
    }
    assert!(measured > 0, "no input produced a measurable gap");
}

#[test]
fn exact_cost_matches_tree_cost_on_real_subgraphs() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let knn = ItemKnn::new(&s.ds.kg, &s.ds.ratings, &ItemKnnConfig::default());
    let out = knn.recommend(0, 4);
    if out.is_empty() {
        return;
    }
    let input = SummaryInput::user_centric(s.ds.kg.user_node(0), out.paths(4));
    let costs = steiner_costs(g, &input, &SteinerConfig::default());
    // The full-graph exact cost must lower-bound the ST summary's cost.
    if let Some(opt) = exact_steiner_cost(g, &costs, &input.terminals) {
        let st = steiner_summary(g, &input, &SteinerConfig::default());
        let st_cost: f64 = st.subgraph.edges().iter().map(|e| costs.get(*e)).sum();
        assert!(
            opt <= st_cost + 1e-9,
            "optimum {opt} above ST cost {st_cost}"
        );
    }
}

#[test]
fn black_box_pipeline_summarizes_without_recommender_paths() {
    let s = setup();
    let g = &s.ds.kg.graph;
    // MF alone ranks items; paths come from the KG.
    let top: Vec<NodeId> =
        s.mf.top_k_items(&s.ds.ratings, 2, 8)
            .into_iter()
            .map(|(i, _)| s.ds.kg.item_node(i))
            .collect();
    assert!(!top.is_empty());
    let input = path_free_user_centric(g, s.ds.kg.user_node(2), &top, &PathGenConfig::default());
    assert!(!input.paths.is_empty());
    for p in &input.paths {
        assert!(
            p.hops().iter().all(|h| h.is_some()),
            "generated paths are faithful"
        );
    }
    let st = steiner_summary(g, &input, &SteinerConfig::default());
    assert_eq!(st.terminal_coverage(), 1.0);
}

#[test]
fn clustered_groups_feed_user_group_summaries() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let knn = ItemKnn::new(&s.ds.kg, &s.ds.ratings, &ItemKnnConfig::default());
    let clusters = cluster_users(
        &s.mf,
        &KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        },
    );
    assert_eq!(clusters.assignment.len(), s.ds.kg.n_users());
    let mut summarized = 0;
    for c in 0..clusters.k() {
        let members: Vec<usize> = clusters.members(c).into_iter().take(8).collect();
        let nodes: Vec<NodeId> = members.iter().map(|&u| s.ds.kg.user_node(u)).collect();
        let mut paths = Vec::new();
        for &u in &members {
            paths.extend(knn.recommend(u, 5).paths(5));
        }
        if paths.is_empty() {
            continue;
        }
        let input = SummaryInput::user_group(&nodes, paths);
        let st = steiner_summary(g, &input, &SteinerConfig::default());
        assert!(st.terminal_coverage() > 0.99, "cluster {c} under-covered");
        summarized += 1;
    }
    assert!(summarized >= 2, "most clusters should be summarizable");
}

#[test]
fn pagerank_prizes_produce_valid_summaries() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let knn = ItemKnn::new(&s.ds.kg, &s.ds.ratings, &ItemKnnConfig::default());
    let out = knn.recommend(1, 6);
    if out.is_empty() {
        return;
    }
    let input = SummaryInput::user_centric(s.ds.kg.user_node(1), out.paths(6));
    let summary = pcst_summary_with_policy(
        g,
        &input,
        &PcstConfig::default(),
        PrizePolicy::PageRank { weight: 1.0 },
    );
    assert_eq!(summary.method, "PCST-pagerank");
    assert_eq!(summary.terminal_coverage(), 1.0);
}

#[test]
fn pagerank_on_kg_is_a_distribution_favoring_hubs() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let pr = pagerank(g, &PageRankConfig::default());
    let total: f64 = pr.iter().sum();
    assert!((total - 1.0).abs() < 1e-6);
    // The best-connected node must beat the median node.
    let hub = g
        .node_ids()
        .max_by_key(|&n| g.degree(n))
        .expect("non-empty graph");
    let mut sorted = pr.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    assert!(pr[hub.index()] > median);
}

#[test]
fn export_round_trip_on_pipeline_summary() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let knn = ItemKnn::new(&s.ds.kg, &s.ds.ratings, &ItemKnnConfig::default());
    let out = knn.recommend(3, 6);
    if out.is_empty() {
        return;
    }
    let paths = out.paths(6);
    let input = SummaryInput::user_centric(s.ds.kg.user_node(3), paths.clone());
    let st = steiner_summary(g, &input, &SteinerConfig::default());

    let dot = summary_to_dot(g, &st);
    assert!(dot.starts_with("graph summary {") && dot.trim_end().ends_with('}'));
    assert_eq!(dot.matches(" -- ").count(), st.subgraph.edge_count());

    let overlay = overlay_to_dot(g, &paths, &st);
    assert_eq!(
        overlay.matches("#198754").count(),
        st.subgraph.edge_count(),
        "every summary edge drawn green"
    );

    let tsv = summary_to_tsv(g, &st);
    assert_eq!(tsv.lines().count(), st.subgraph.edge_count() + 1);
}

#[test]
fn item_knn_is_a_drop_in_fifth_baseline() {
    // The summarizers only need the PathRecommender contract; item-kNN
    // satisfies it exactly like the four emulated baselines.
    let s = setup();
    let g = &s.ds.kg.graph;
    let knn = ItemKnn::new(&s.ds.kg, &s.ds.ratings, &ItemKnnConfig::default());
    assert_eq!(knn.name(), "ItemKNN");
    let mut covered = 0;
    for u in 0..10 {
        let out = knn.recommend(u, 10);
        for r in out.all() {
            assert!(r.path.len() <= 3, "path budget matches §V-A");
        }
        if out.is_empty() {
            continue;
        }
        let input = SummaryInput::user_centric(s.ds.kg.user_node(u), out.paths(10));
        let st = steiner_summary(g, &input, &SteinerConfig::default());
        assert_eq!(st.terminal_coverage(), 1.0);
        covered += 1;
    }
    assert!(covered > 5, "item-kNN should produce output for most users");
}
