//! Integration tests for the extension surface (DESIGN.md §5.1): prize
//! policies, incremental summaries, fairness comparisons, subgraph
//! extraction, ranking evaluation, and the real-data loader — all driven
//! through the public `xsum` façade like a downstream user would.

use xsum::core::{
    pcst_summary_with_policy, steiner_summary, PcstConfig, PrizePolicy, SteinerConfig, SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::graph::NodeKind;
use xsum::metrics::{fairness, ExplanationView};
use xsum::rec::{
    catalogue_coverage, evaluate, leave_last_out, MfConfig, MfModel, MostPop, PathRecommender,
    Pgpr, PgprConfig,
};

struct Setup {
    ds: xsum::datasets::Dataset,
    mf: MfModel,
}

fn setup() -> Setup {
    let ds = ml1m_scaled(51, 0.02);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    Setup { ds, mf }
}

#[test]
fn prize_policies_cover_terminals_and_differ_in_label() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let pgpr = Pgpr::new(&s.ds.kg, &s.ds.ratings, &s.mf, PgprConfig::default());
    let out = pgpr.recommend(0, 10);
    if out.is_empty() {
        return;
    }
    let input = SummaryInput::user_centric(s.ds.kg.user_node(0), out.paths(10));
    let labels: Vec<&str> = [
        PrizePolicy::Uniform,
        PrizePolicy::PathFrequency { weight: 1.0 },
        PrizePolicy::DegreeCentrality { weight: 1.0 },
    ]
    .into_iter()
    .map(|p| {
        let summary = pcst_summary_with_policy(g, &input, &PcstConfig::default(), p);
        assert_eq!(summary.terminal_coverage(), 1.0);
        summary.method
    })
    .collect();
    assert_eq!(labels, vec!["PCST", "PCST-freq", "PCST-degree"]);
}

#[test]
fn summary_extraction_is_self_contained() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let pgpr = Pgpr::new(&s.ds.kg, &s.ds.ratings, &s.mf, PgprConfig::default());
    let out = pgpr.recommend(1, 8);
    if out.is_empty() {
        return;
    }
    let input = SummaryInput::user_centric(s.ds.kg.user_node(1), out.paths(8));
    let summary = steiner_summary(g, &input, &SteinerConfig::default());
    let (sub_g, map) = summary.subgraph.extract(g);
    assert_eq!(sub_g.node_count(), summary.subgraph.node_count());
    assert_eq!(sub_g.edge_count(), summary.subgraph.edge_count());
    // Kinds survive; the focus user is present.
    let focus = map[&s.ds.kg.user_node(1)];
    assert_eq!(sub_g.kind(focus), NodeKind::User);
    // Labels survive (renderable without the parent graph).
    assert_eq!(sub_g.label(focus), g.label(s.ds.kg.user_node(1)));
}

#[test]
fn fairness_report_over_gender_groups() {
    let s = setup();
    let g = &s.ds.kg.graph;
    let pgpr = Pgpr::new(&s.ds.kg, &s.ds.ratings, &s.mf, PgprConfig::default());
    let mut male = Vec::new();
    let mut female = Vec::new();
    for u in 0..s.ds.kg.n_users().min(20) {
        let out = pgpr.recommend(u, 8);
        if out.is_empty() {
            continue;
        }
        let input = SummaryInput::user_centric(s.ds.kg.user_node(u), out.paths(8));
        let summary = steiner_summary(g, &input, &SteinerConfig::default());
        let view = ExplanationView::from_subgraph(g, &summary.subgraph);
        match s.ds.genders[u] {
            xsum::datasets::Gender::Male => male.push(view),
            xsum::datasets::Gender::Female => female.push(view),
        }
    }
    let report = fairness(g, &[("male", male), ("female", female)], |r| {
        r.comprehensibility
    });
    assert!(report.gap >= 0.0);
    assert!((0.0..=1.0).contains(&report.disparity_ratio));
    assert!(!report.groups.is_empty());
}

#[test]
fn ranking_eval_personalized_beats_popularity() {
    let s = setup();
    let split = leave_last_out(&s.ds.ratings);
    let mf = MfModel::train(&s.ds.kg, &split.train, &MfConfig::default());
    let pgpr = Pgpr::new(&s.ds.kg, &split.train, &mf, PgprConfig::default());
    let mp = MostPop::new(&s.ds.kg, &split.train);
    let users: Vec<usize> = (0..40).collect();
    let r_pgpr = evaluate(&pgpr, &split, 10, Some(&users));
    let r_pop = evaluate(&mp, &split, 10, Some(&users));
    assert!(r_pgpr.evaluated_users > 10);
    assert!(r_pop.evaluated_users > 10);
    // Not a strict quality bar (tiny corpus), but both must be valid and
    // the personalized model must at least diversify more.
    let cov_pgpr = catalogue_coverage(&pgpr, s.ds.kg.n_items(), &users, 10);
    let cov_pop = catalogue_coverage(&mp, s.ds.kg.n_items(), &users, 10);
    assert!(cov_pgpr > cov_pop);
}

#[test]
fn loader_output_feeds_the_summarizer() {
    // Build a miniature "real" corpus through the MovieLens parser and
    // run the whole pipeline on it.
    use std::collections::BTreeMap;
    use xsum::datasets::io::{assemble, parse_ratings, parse_users};

    let ratings_txt = "\
1::10::5::100\n1::11::4::200\n1::12::5::300\n\
2::10::4::100\n2::13::5::150\n\
3::11::3::120\n3::13::4::180\n3::10::5::90\n";
    let users_txt = "1::F::1::1::0\n2::M::1::1::0\n3::M::1::1::0\n";
    let attrs = vec![(10u64, 100u64), (11, 100), (12, 101), (13, 101)];
    let ratings = parse_ratings(ratings_txt.as_bytes()).unwrap();
    let genders: BTreeMap<u64, xsum::datasets::Gender> = parse_users(users_txt.as_bytes()).unwrap();
    let ds = assemble("mini-real", &ratings, &genders, &attrs);

    let mf = MfModel::train(
        &ds.kg,
        &ds.ratings,
        &MfConfig {
            epochs: 10,
            ..MfConfig::default()
        },
    );
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());
    let out = pgpr.recommend(0, 5);
    assert!(!out.is_empty(), "pipeline must run on loaded data");
    let input = SummaryInput::user_centric(ds.kg.user_node(0), out.paths(5));
    let summary = steiner_summary(&ds.kg.graph, &input, &SteinerConfig::default());
    assert_eq!(summary.terminal_coverage(), 1.0);
}
