//! Property-based tests for the extension surface: PageRank, path-free
//! generation, item-kNN similarity, k-means clustering, and DOT export.

use std::sync::OnceLock;

use proptest::prelude::*;

use xsum::core::{
    generate_explanations, steiner_summary, summary_to_dot, PathGenConfig, Scenario, SteinerConfig,
    Summary, SummaryInput,
};
use xsum::datasets::{ml1m_scaled, Dataset};
use xsum::graph::{pagerank, EdgeKind, Graph, NodeKind, PageRankConfig, Subgraph};
use xsum::kg::RatingMatrix;
use xsum::rec::{cluster_users, ItemKnn, ItemKnnConfig, KMeansConfig, MfConfig, MfModel};

/// Random undirected graph from an edge list over `n` nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..30,
        proptest::collection::vec((0usize..64, 0usize..64), 1..80),
    )
        .prop_map(|(n, edges)| {
            let mut g = Graph::new();
            let ids: Vec<_> = (0..n).map(|_| g.add_node(NodeKind::Entity)).collect();
            let mut seen = std::collections::HashSet::new();
            for (a, b) in edges {
                let (a, b) = (a % n, b % n);
                if a != b && seen.insert((a.min(b), a.max(b))) {
                    g.add_edge(ids[a], ids[b], 1.0, EdgeKind::Attribute);
                }
            }
            g
        })
}

/// Random rating matrix (users × items with sparse positive ratings).
fn arb_ratings() -> impl Strategy<Value = RatingMatrix> {
    (
        2usize..8,
        2usize..10,
        proptest::collection::vec((0usize..64, 0usize..64, 1u8..=5), 3..40),
    )
        .prop_map(|(nu, ni, cells)| {
            let mut m = RatingMatrix::new(nu, ni);
            let mut seen = std::collections::HashSet::new();
            for (idx, (u, i, r)) in cells.into_iter().enumerate() {
                let (u, i) = (u % nu, i % ni);
                if seen.insert((u, i)) {
                    m.rate(u, i, r as f32, idx as f64);
                }
            }
            m
        })
}

/// Shared trained model for the clustering properties (training inside
/// every proptest case would dominate the suite's runtime).
fn shared_model() -> &'static (Dataset, MfModel) {
    static MODEL: OnceLock<(Dataset, MfModel)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let ds = ml1m_scaled(77, 0.02);
        let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
        (ds, mf)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pagerank_is_a_probability_distribution(g in arb_graph()) {
        let pr = pagerank(&g, &PageRankConfig::default());
        prop_assert_eq!(pr.len(), g.node_count());
        let total: f64 = pr.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
        prop_assert!(pr.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pagerank_higher_degree_never_hurts_on_stars(leaves in 2usize..20) {
        // Monotonicity probe on a two-hub graph: the hub with more leaves
        // earns at least as much rank.
        let mut g = Graph::new();
        let h1 = g.add_node(NodeKind::Entity);
        let h2 = g.add_node(NodeKind::Entity);
        g.add_edge(h1, h2, 1.0, EdgeKind::Attribute);
        for i in 0..leaves {
            let l = g.add_node(NodeKind::Entity);
            g.add_edge(h1, l, 1.0, EdgeKind::Attribute);
            if i % 2 == 0 {
                let l2 = g.add_node(NodeKind::Entity);
                g.add_edge(h2, l2, 1.0, EdgeKind::Attribute);
            }
        }
        let pr = pagerank(&g, &PageRankConfig::default());
        prop_assert!(pr[h1.index()] >= pr[h2.index()] - 1e-9);
    }

    #[test]
    fn generated_paths_are_valid_explanations(g in arb_graph(), hops in 1usize..5) {
        let nodes: Vec<_> = g.node_ids().collect();
        if nodes.len() < 2 {
            return Ok(());
        }
        let user = nodes[0];
        let items: Vec<_> = nodes[1..].iter().copied().take(6).collect();
        let cfg = PathGenConfig { max_hops: hops, fallback_unbounded: false, ..PathGenConfig::default() };
        for p in generate_explanations(&g, user, &items, &cfg) {
            prop_assert_eq!(p.nodes()[0], user);
            prop_assert!(items.contains(p.nodes().last().unwrap()));
            prop_assert!(p.nodes().len() - 1 <= hops, "budget exceeded");
            prop_assert!(p.hops().iter().all(|h| h.is_some()), "ungrounded hop");
        }
    }

    #[test]
    fn fallback_only_adds_paths(g in arb_graph()) {
        let nodes: Vec<_> = g.node_ids().collect();
        if nodes.len() < 2 {
            return Ok(());
        }
        let user = nodes[0];
        let items: Vec<_> = nodes[1..].iter().copied().take(6).collect();
        let strict = generate_explanations(
            &g, user, &items,
            &PathGenConfig { max_hops: 2, fallback_unbounded: false, ..PathGenConfig::default() },
        );
        let lax = generate_explanations(
            &g, user, &items,
            &PathGenConfig { max_hops: 2, fallback_unbounded: true, ..PathGenConfig::default() },
        );
        prop_assert!(lax.len() >= strict.len());
    }

    #[test]
    fn itemknn_similarities_are_symmetric_unit_bounded(m in arb_ratings()) {
        // A KG over the matrix (entities unused by the similarity model).
        let mut b = xsum::kg::KgBuilder::new(
            m.n_users(), m.n_items(), 1, xsum::kg::WeightConfig::paper_default(100.0),
        );
        b.link_item(0, 0);
        let kg = b.build(&m);
        let knn = ItemKnn::new(&kg, &m, &ItemKnnConfig { neighbors: usize::MAX, ..ItemKnnConfig::default() });
        for i in 0..m.n_items() {
            for &(j, s) in knn.neighbors(i) {
                prop_assert!(j != i, "self-similarity");
                prop_assert!(s > 0.0 && s <= 1.0 + 1e-9, "cosine {s} out of range");
                let back = knn.neighbors(j).iter().find(|&&(n, _)| n == i);
                prop_assert!(back.is_some(), "asymmetric neighbourhood");
                prop_assert!((back.unwrap().1 - s).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn kmeans_partitions_for_any_k_and_seed(k in 1usize..8, seed in 0u64..1000) {
        let (ds, mf) = shared_model();
        let clusters = cluster_users(mf, &KMeansConfig { k, seed, max_iterations: 20 });
        prop_assert_eq!(clusters.assignment.len(), ds.kg.n_users());
        prop_assert!(clusters.k() <= k.max(1));
        prop_assert_eq!(clusters.sizes().iter().sum::<usize>(), ds.kg.n_users());
        prop_assert!(clusters.inertia >= 0.0);
        // Rerun is bit-identical.
        let again = cluster_users(mf, &KMeansConfig { k, seed, max_iterations: 20 });
        prop_assert_eq!(clusters.assignment, again.assignment);
    }

    #[test]
    fn dot_export_is_parse_safe_for_any_label(label in "[\\x20-\\x7e]{0,24}") {
        let mut g = Graph::new();
        let u = g.add_labeled_node(NodeKind::User, label.clone());
        let i = g.add_labeled_node(NodeKind::Item, label);
        let e = g.add_edge(u, i, 1.0, EdgeKind::Interaction);
        let summary = Summary {
            method: "ST",
            scenario: Scenario::UserCentric,
            subgraph: Subgraph::from_edges(&g, [e]),
            terminals: vec![u, i],
        };
        let dot = summary_to_dot(&g, &summary);
        // Parse safety: every line must contain an even number of
        // *unescaped* quotes (all quoted strings terminate), which is
        // exactly what breaks when a label embeds a raw `"`.
        for line in dot.lines() {
            let mut unescaped = 0usize;
            let mut chars = line.chars();
            while let Some(c) = chars.next() {
                match c {
                    '\\' => {
                        chars.next(); // skip the escaped character
                    }
                    '"' => unescaped += 1,
                    _ => {}
                }
            }
            prop_assert!(unescaped.is_multiple_of(2), "unterminated quote in: {line}");
        }
    }

    #[test]
    fn path_free_summary_covers_requested_items(count in 1usize..6) {
        let (ds, mf) = shared_model();
        let g = &ds.kg.graph;
        let top: Vec<_> = mf
            .top_k_items(&ds.ratings, 0, count)
            .into_iter()
            .map(|(i, _)| ds.kg.item_node(i))
            .collect();
        if top.is_empty() {
            return Ok(());
        }
        let paths = generate_explanations(g, ds.kg.user_node(0), &top, &PathGenConfig::default());
        let input = SummaryInput::user_centric(ds.kg.user_node(0), paths);
        let s = steiner_summary(g, &input, &SteinerConfig::default());
        prop_assert_eq!(s.terminal_coverage(), 1.0);
    }
}
