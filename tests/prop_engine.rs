//! Property tests pinning the persistent `SummaryEngine` to the PR-1
//! paths: across random knowledge graphs, configs, and worker counts,
//! the engine's batched and single-summary outputs must be
//! **bit-identical** to `summarize_batch` and to the sequential entry
//! points (`steiner_summary` / `steiner_summary_fast` / `pcst_summary`).
//! That identity is the engine's contract — all its persistence
//! (pinned pool, resident cost buffers, cost-model cache) must be
//! invisible in the outputs.

use proptest::prelude::*;

use xsum::core::{
    gw_pcst_summary, pcst_summary, steiner_summary, steiner_summary_fast, summarize_batch,
    summarize_batch_threads, BatchMethod, PcstConfig, SteinerConfig, Summary, SummaryEngine,
    SummaryInput,
};
use xsum::graph::{EdgeKind, Graph, LoosePath, NodeId, NodeKind};

/// A random small KG shape: users, items, entities, random interaction
/// and attribute edges, plus guaranteed 3-hop paths (the `prop_summaries`
/// oracle-style generator).
#[derive(Debug, Clone)]
struct RandomKg {
    g: Graph,
    users: Vec<NodeId>,
    paths: Vec<LoosePath>,
}

fn arb_kg() -> impl Strategy<Value = RandomKg> {
    (
        2usize..5, // users
        3usize..8, // items
        2usize..5, // entities
        proptest::collection::vec((0usize..64, 0usize..64, 1u8..=5), 5..40),
        proptest::collection::vec((0usize..64, 0usize..64), 4..30),
        0usize..1000, // path-shape selector
    )
        .prop_map(|(nu, ni, na, interactions, attributes, path_sel)| {
            let mut g = Graph::new();
            let users: Vec<NodeId> = (0..nu).map(|_| g.add_node(NodeKind::User)).collect();
            let items: Vec<NodeId> = (0..ni).map(|_| g.add_node(NodeKind::Item)).collect();
            let entities: Vec<NodeId> = (0..na).map(|_| g.add_node(NodeKind::Entity)).collect();
            let mut seen = std::collections::HashSet::new();
            for (u, i, r) in interactions {
                let (u, i) = (u % nu, i % ni);
                if seen.insert((u, i)) {
                    g.add_edge(users[u], items[i], r as f64, EdgeKind::Interaction);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for (i, a) in attributes {
                let (i, a) = (i % ni, a % na);
                if seen.insert((i, a)) {
                    g.add_edge(items[i], entities[a], 0.0, EdgeKind::Attribute);
                }
            }
            // Guaranteed scaffolding: u0 rated i0, i0–e0, e0–i1 so at
            // least one 3-hop explanation exists.
            if g.find_edge(users[0], items[0]).is_none() {
                g.add_edge(users[0], items[0], 5.0, EdgeKind::Interaction);
            }
            if g.find_edge(items[0], entities[0]).is_none() {
                g.add_edge(items[0], entities[0], 0.0, EdgeKind::Attribute);
            }
            if g.find_edge(items[1], entities[0]).is_none() {
                g.add_edge(items[1], entities[0], 0.0, EdgeKind::Attribute);
            }
            let mut paths = vec![LoosePath::ground(
                &g,
                vec![users[0], items[0], entities[0], items[1]],
            )];
            let extra: Vec<NodeId> = g
                .neighbors(entities[0])
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| g.kind(*n) == NodeKind::Item && *n != items[0] && *n != items[1])
                .collect();
            if !extra.is_empty() {
                let pick = extra[path_sel % extra.len()];
                paths.push(LoosePath::ground(
                    &g,
                    vec![users[0], items[0], entities[0], pick],
                ));
            }
            RandomKg { g, users, paths }
        })
}

fn inputs_for(kg: &RandomKg) -> Vec<SummaryInput> {
    vec![
        SummaryInput::user_centric(kg.users[0], kg.paths.clone()),
        SummaryInput::user_centric(kg.users[1], kg.paths.clone()),
        SummaryInput::user_group(&kg.users, kg.paths.clone()),
    ]
}

fn assert_bit_identical(want: &Summary, got: &Summary) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.method, got.method);
    prop_assert_eq!(&want.terminals, &got.terminals);
    prop_assert_eq!(want.subgraph.sorted_edges(), got.subgraph.sorted_edges());
    prop_assert_eq!(want.subgraph.sorted_nodes(), got.subgraph.sorted_nodes());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_batch_equals_summarize_batch_and_sequential(kg in arb_kg()) {
        // All four methods, three worker counts, one warm engine: every
        // output must equal both the one-shot batch path and the
        // sequential free function.
        let inputs = inputs_for(&kg);
        let st = SteinerConfig::default();
        let pc = PcstConfig::default();
        for method in [
            BatchMethod::Steiner(st),
            BatchMethod::SteinerFast(st),
            BatchMethod::Pcst(pc),
            BatchMethod::GwPcst(pc),
        ] {
            for threads in [1usize, 2, 4] {
                let mut engine = SummaryEngine::with_threads(threads);
                // Twice through the same engine: the second pass runs on
                // fully warm (possibly patched-and-restored) buffers.
                for _ in 0..2 {
                    let got = engine.summarize_batch(&kg.g, &inputs, method);
                    let oneshot = summarize_batch_threads(&kg.g, &inputs, method, threads);
                    prop_assert_eq!(got.len(), inputs.len());
                    for ((input, got), oneshot) in inputs.iter().zip(&got).zip(&oneshot) {
                        let want = method.run(&kg.g, input);
                        assert_bit_identical(&want, got)?;
                        assert_bit_identical(oneshot, got)?;
                    }
                }
            }
        }
    }

    #[test]
    fn engine_single_equals_free_functions(kg in arb_kg()) {
        let inputs = inputs_for(&kg);
        let pc = PcstConfig::default();
        let mut engine = SummaryEngine::with_threads(2);
        // Sweep λ so the engine's model cache cycles between configs
        // mid-stream — a stale or cross-config buffer would show up as a
        // different tree.
        for lambda in [0.01, 1.0, 100.0] {
            let st = SteinerConfig { lambda, delta: 1.0 };
            for input in &inputs {
                assert_bit_identical(
                    &steiner_summary(&kg.g, input, &st),
                    &engine.summarize(&kg.g, input, BatchMethod::Steiner(st)),
                )?;
                assert_bit_identical(
                    &steiner_summary_fast(&kg.g, input, &st),
                    &engine.summarize(&kg.g, input, BatchMethod::SteinerFast(st)),
                )?;
            }
        }
        for input in &inputs {
            assert_bit_identical(
                &pcst_summary(&kg.g, input, &pc),
                &engine.summarize(&kg.g, input, BatchMethod::Pcst(pc)),
            )?;
            assert_bit_identical(
                &gw_pcst_summary(&kg.g, input, &pc),
                &engine.summarize(&kg.g, input, BatchMethod::GwPcst(pc)),
            )?;
        }
    }

    #[test]
    fn engine_tracks_weight_mutations(mut kg in arb_kg(), scale in 1u8..=200) {
        // A warm engine must recompute — not serve stale state — after
        // any weight mutation: its output must match a cold engine and
        // the free function on the mutated graph.
        let input = SummaryInput::user_centric(kg.users[0], kg.paths.clone());
        let st = SteinerConfig::default();
        let method = BatchMethod::Steiner(st);
        let mut engine = SummaryEngine::with_threads(2);
        engine.summarize(&kg.g, &input, method);
        let e = xsum::graph::EdgeId(0);
        kg.g.set_weight(e, scale as f64 * 0.05);
        let warm = engine.summarize(&kg.g, &input, method);
        let cold = SummaryEngine::with_threads(2).summarize(&kg.g, &input, method);
        let free = steiner_summary(&kg.g, &input, &st);
        assert_bit_identical(&cold, &warm)?;
        assert_bit_identical(&free, &warm)?;
    }

    #[test]
    fn mixed_methods_share_one_engine(kg in arb_kg()) {
        // Interleaving ST / ST-fast / PCST batches through one engine
        // must not let one method's scratch leak into another's output.
        let inputs = inputs_for(&kg);
        let st = SteinerConfig { lambda: 100.0, delta: 1.0 };
        let pc = PcstConfig::default();
        let mut engine = SummaryEngine::with_threads(3);
        for method in [
            BatchMethod::SteinerFast(st),
            BatchMethod::Pcst(pc),
            BatchMethod::Steiner(st),
            BatchMethod::SteinerFast(st),
        ] {
            let got = engine.summarize_batch(&kg.g, &inputs, method);
            let want = summarize_batch(&kg.g, &inputs, method);
            for (want, got) in want.iter().zip(&got) {
                assert_bit_identical(want, got)?;
            }
        }
    }
}
