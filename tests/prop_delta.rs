//! Property tests pinning the weight-delta ledger end-to-end: across
//! random weight-delta tapes, every delta-aware consumer — a warm
//! [`SummaryEngine`], [`ShardedEngine`]s at shard counts {1, 2, 4},
//! a partitioned engine, and live [`SessionStore`] sessions — must
//! stay **bit-identical** to a stack rebuilt from scratch over the
//! identically-mutated graph. Whether a given batch takes the
//! O(|touched|) patch path, falls back to a rebuild (anchor moved,
//! ledger chain broken), or invalidates a session must be invisible
//! in the outputs.
//!
//! The ledger itself is pinned at the bit level: replaying a tape's
//! records backwards through [`WeightDeltaRec::inverse`] must restore
//! every weight's exact f64 bits — including NaN payloads, `-0.0`,
//! infinities, and subnormals — and replaying them forward again must
//! restore the exact post-tape bits.

use proptest::prelude::*;

use xsum::core::{
    session_summary, BatchMethod, PcstConfig, SessionKey, SessionStore, ShardedEngine,
    SteinerConfig, Summary, SummaryEngine, SummaryInput,
};
use xsum::graph::{EdgeId, EdgeKind, Graph, LoosePath, NodeId, NodeKind, WeightDeltaRec};

/// A random small KG shape: users, items, entities, random interaction
/// and attribute edges, plus guaranteed 3-hop paths (the `prop_engine`
/// generator).
#[derive(Debug, Clone)]
struct RandomKg {
    g: Graph,
    users: Vec<NodeId>,
    paths: Vec<LoosePath>,
    alt_paths: Vec<LoosePath>,
}

fn arb_kg() -> impl Strategy<Value = RandomKg> {
    (
        2usize..5, // users
        3usize..8, // items
        2usize..5, // entities
        proptest::collection::vec((0usize..64, 0usize..64, 1u8..=5), 5..40),
        proptest::collection::vec((0usize..64, 0usize..64), 4..30),
    )
        .prop_map(|(nu, ni, na, interactions, attributes)| {
            let mut g = Graph::new();
            let users: Vec<NodeId> = (0..nu).map(|_| g.add_node(NodeKind::User)).collect();
            let items: Vec<NodeId> = (0..ni).map(|_| g.add_node(NodeKind::Item)).collect();
            let entities: Vec<NodeId> = (0..na).map(|_| g.add_node(NodeKind::Entity)).collect();
            let mut seen = std::collections::HashSet::new();
            for (u, i, r) in interactions {
                let (u, i) = (u % nu, i % ni);
                if seen.insert((u, i)) {
                    g.add_edge(users[u], items[i], r as f64, EdgeKind::Interaction);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for (i, a) in attributes {
                let (i, a) = (i % ni, a % na);
                if seen.insert((i, a)) {
                    g.add_edge(items[i], entities[a], 0.0, EdgeKind::Attribute);
                }
            }
            // Guaranteed scaffolding: u0 and u1 rated i0, i0–e0, e0–i1
            // so 3-hop explanations exist from two distinct anchors.
            if g.find_edge(users[0], items[0]).is_none() {
                g.add_edge(users[0], items[0], 5.0, EdgeKind::Interaction);
            }
            if g.find_edge(users[1], items[0]).is_none() {
                g.add_edge(users[1], items[0], 4.0, EdgeKind::Interaction);
            }
            if g.find_edge(items[0], entities[0]).is_none() {
                g.add_edge(items[0], entities[0], 0.0, EdgeKind::Attribute);
            }
            if g.find_edge(items[1], entities[0]).is_none() {
                g.add_edge(items[1], entities[0], 0.0, EdgeKind::Attribute);
            }
            let paths = vec![LoosePath::ground(
                &g,
                vec![users[0], items[0], entities[0], items[1]],
            )];
            let alt_paths = vec![LoosePath::ground(
                &g,
                vec![users[1], items[0], entities[0], items[1]],
            )];
            RandomKg {
                g,
                users,
                paths,
                alt_paths,
            }
        })
}

/// A weight-delta tape: per batch, a list of `(edge selector, weight
/// selector)` pairs resolved against the concrete graph at apply time.
/// Selectors (not concrete edges/weights) keep the strategy independent
/// of the generated graph's edge count.
fn arb_tape() -> impl Strategy<Value = Vec<Vec<(usize, usize)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..10_000, 0usize..10_000), 1..6),
        1..5,
    )
}

/// Serve-path weight palette: finite and non-negative, spanning values
/// below, between, and above the generator's weight range so tapes both
/// keep and move the Eq. 1 `base_max` anchor (exercising the patch path
/// *and* the rebuild fallback).
fn serve_weight(sel: usize) -> f64 {
    const PALETTE: [f64; 8] = [0.0, 0.05, 0.5, 1.0, 2.5, 4.75, 5.0, 9.25];
    PALETTE[sel % PALETTE.len()]
}

/// Ledger-path weight palette: every bit-level corner the records must
/// round-trip — NaN (non-default payload included), signed zeros,
/// infinities, subnormals, and ordinary values.
fn ledger_weight(sel: usize) -> f64 {
    const PALETTE: [u64; 10] = [
        0x7ff8_0000_0000_0000, // quiet NaN
        0x7ff8_0000_dead_beef, // NaN with a payload
        0x8000_0000_0000_0000, // -0.0
        0x0000_0000_0000_0000, // +0.0
        0x0000_0000_0000_0001, // smallest subnormal
        0x7ff0_0000_0000_0000, // +inf
        0xfff0_0000_0000_0000, // -inf
        0x3ff8_0000_0000_0000, // 1.5
        0xc00a_0000_0000_0000, // -3.25
        0x4059_0000_0000_0000, // 100.0
    ];
    f64::from_bits(PALETTE[sel % PALETTE.len()])
}

fn edge_of(g: &Graph, sel: usize) -> EdgeId {
    EdgeId((sel % g.edge_count().max(1)) as u32)
}

fn resolve(g: &Graph, batch: &[(usize, usize)], weight: fn(usize) -> f64) -> Vec<(EdgeId, f64)> {
    batch
        .iter()
        .map(|&(e, w)| (edge_of(g, e), weight(w)))
        .collect()
}

fn assert_bit_identical(want: &Summary, got: &Summary) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.method, got.method);
    prop_assert_eq!(&want.terminals, &got.terminals);
    prop_assert_eq!(want.subgraph.sorted_edges(), got.subgraph.sorted_edges());
    prop_assert_eq!(want.subgraph.sorted_nodes(), got.subgraph.sorted_nodes());
    Ok(())
}

fn inputs_for(kg: &RandomKg) -> Vec<SummaryInput> {
    vec![
        SummaryInput::user_centric(kg.users[0], kg.paths.clone()),
        SummaryInput::user_centric(kg.users[1], kg.alt_paths.clone()),
        SummaryInput::user_group(&kg.users, kg.paths.clone()),
    ]
}

const METHODS: [fn() -> BatchMethod; 3] = [
    || BatchMethod::Steiner(SteinerConfig::default()),
    || BatchMethod::SteinerFast(SteinerConfig::default()),
    || BatchMethod::Pcst(PcstConfig::default()),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn warm_engine_tracks_delta_tapes(kg in arb_kg(), tape in arb_tape()) {
        // A warm engine absorbing every batch (patching where the
        // ledger allows, rebuilding where it doesn't) must match a
        // brand-new engine built over the post-delta graph.
        let mut g = kg.g.clone();
        let inputs = inputs_for(&kg);
        let mut warm = SummaryEngine::with_threads(2);
        for (round, batch) in tape.iter().enumerate() {
            let method = METHODS[round % METHODS.len()]();
            std::hint::black_box(warm.summarize_batch(&g, &inputs, method));
            g.apply_delta(&resolve(&g, batch, serve_weight));
            let got = warm.summarize_batch(&g, &inputs, method);
            let want = SummaryEngine::with_threads(2).summarize_batch(&g, &inputs, method);
            for (w, s) in want.iter().zip(&got) {
                assert_bit_identical(w, s)?;
            }
        }
    }

    #[test]
    fn sharded_and_partitioned_track_delta_tapes(kg in arb_kg(), tape in arb_tape()) {
        // Sharded full replicas at {1, 2, 4} and a 2-way partitioned
        // engine, fed the same tape through `apply_weight_delta`, must
        // match a rebuilt single-engine stack after every batch —
        // without the partitioned side re-certifying untouched
        // partitions into different answers.
        let mut g = kg.g.clone();
        let inputs = inputs_for(&kg);
        let mut sharded: Vec<ShardedEngine> = [1usize, 2, 4]
            .iter()
            .map(|&s| ShardedEngine::with_threads(&g, s, 1))
            .collect();
        let mut parted = ShardedEngine::new_partitioned(&g, 2, 7);
        for (round, batch) in tape.iter().enumerate() {
            let updates = resolve(&g, batch, serve_weight);
            g.apply_delta(&updates);
            for engine in &mut sharded {
                engine.apply_weight_delta(&updates);
            }
            parted.apply_weight_delta(&updates);
            let method = METHODS[round % METHODS.len()]();
            let want = SummaryEngine::with_threads(2).summarize_batch(&g, &inputs, method);
            for engine in &mut sharded {
                let got = engine.summarize_batch(&inputs, method);
                for (w, s) in want.iter().zip(&got) {
                    assert_bit_identical(w, s)?;
                }
            }
            let got = parted.summarize_batch(&inputs, method);
            for (w, s) in want.iter().zip(&got) {
                assert_bit_identical(w, s)?;
            }
        }
    }

    #[test]
    fn sessions_survive_deltas_bit_identically(kg in arb_kg(), tape in arb_tape()) {
        // Live sessions revalidated across delta batches — some
        // surviving with patched costs, some invalidated and rebuilt —
        // must answer exactly like sessions grown fresh on the
        // post-delta graph.
        let cfg = SteinerConfig::default();
        let mut g = kg.g.clone();
        let inputs = inputs_for(&kg);
        let mut store = SessionStore::new(16);
        for (round, batch) in tape.iter().enumerate() {
            g.apply_delta(&resolve(&g, batch, serve_weight));
            for (i, input) in inputs.iter().enumerate() {
                // Monotone per session: live sessions only ever grow
                // their terminal set.
                let upto = (1 + round).min(input.terminals.len().max(1));
                let got = session_summary(
                    &mut store,
                    &g,
                    SessionKey::new(i as u64, "pgpr"),
                    input,
                    &cfg,
                    &input.terminals[..upto],
                );
                let want = session_summary(
                    &mut SessionStore::new(16),
                    &g,
                    SessionKey::new(i as u64, "pgpr"),
                    input,
                    &cfg,
                    &input.terminals[..upto],
                );
                assert_bit_identical(&want, &got)?;
            }
        }
        // The tape's batches were judged: every revalidation either
        // survived or was invalidated, never silently dropped.
        prop_assert!(
            store.survived_delta()
                + store.invalidated_delta()
                + store.invalidated_structural()
                + store.misses()
                > 0
        );
    }

    #[test]
    fn undo_redo_restores_exact_bits(kg in arb_kg(), tape in arb_tape()) {
        // Bit-level ledger round-trip over every f64 corner: replaying
        // the recorded per-batch deltas backwards through `inverse()`
        // restores the pre-tape bits exactly; replaying them forward
        // restores the post-tape bits exactly.
        let mut g = kg.g.clone();
        let before: Vec<u64> = g.edge_ids().map(|e| g.weight(e).to_bits()).collect();
        let mut recorded: Vec<Vec<WeightDeltaRec>> = Vec::new();
        for batch in &tape {
            let prev = g.epoch();
            let updates = resolve(&g, batch, ledger_weight);
            g.apply_delta(&updates);
            recorded.push(
                g.delta_since(prev)
                    .expect("weight-only batch keeps the ledger chain alive"),
            );
        }
        let after: Vec<u64> = g.edge_ids().map(|e| g.weight(e).to_bits()).collect();
        // Undo: inverse records, newest batch first.
        for recs in recorded.iter().rev() {
            let undo: Vec<(EdgeId, f64)> = recs
                .iter()
                .map(|r| {
                    let inv = r.inverse();
                    (inv.edge, f64::from_bits(inv.new_bits))
                })
                .collect();
            g.apply_delta(&undo);
        }
        let restored: Vec<u64> = g.edge_ids().map(|e| g.weight(e).to_bits()).collect();
        prop_assert_eq!(&restored, &before, "undo did not restore pre-tape bits");
        // Redo: recorded records, oldest batch first.
        for recs in &recorded {
            let redo: Vec<(EdgeId, f64)> = recs
                .iter()
                .map(|r| (r.edge, f64::from_bits(r.new_bits)))
                .collect();
            g.apply_delta(&redo);
        }
        let replayed: Vec<u64> = g.edge_ids().map(|e| g.weight(e).to_bits()).collect();
        prop_assert_eq!(&replayed, &after, "redo did not restore post-tape bits");
    }
}
