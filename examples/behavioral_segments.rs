//! Marketer workflow: discover behavioural user segments, then explain
//! each segment's recommendations with one group summary.
//!
//! §III: user-group summaries "apply to any group of users, whether
//! defined manually (for example, based on demographics) or identified
//! through machine learning techniques (for example, by clustering
//! behavioral patterns)" — and "marketers can use them to tailor
//! group-specific marketing strategies". This example walks the
//! machine-learning route end to end:
//!
//! 1. train the BPR-MF scorer and k-means-cluster its user embeddings,
//! 2. produce PGPR-style explained recommendations per segment member,
//! 3. summarize each segment with ST and PCST and compare the quality
//!    profile (PCST is the scalable choice for large groups — Fig. 10).
//!
//! ```text
//! cargo run --release --example behavioral_segments
//! ```

use xsum::core::{pcst_summary, steiner_summary, PcstConfig, SteinerConfig, SummaryInput};
use xsum::datasets::ml1m_scaled;
use xsum::metrics::{ExplanationView, MetricReport};
use xsum::rec::{
    cluster_users, KMeansConfig, MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig,
};

fn main() {
    let ds = ml1m_scaled(13, 0.03);
    let g = &ds.kg.graph;
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());

    // Discover behavioural segments in embedding space.
    let clusters = cluster_users(
        &mf,
        &KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        },
    );
    println!(
        "clustered {} users into {} segments (sizes {:?}, inertia {:.1}, {} iterations)\n",
        ds.kg.n_users(),
        clusters.k(),
        clusters.sizes(),
        clusters.inertia,
        clusters.iterations
    );

    println!("segment\tusers\tmethod\tedges\tcomprehensibility\tdiversity\tprivacy");
    for c in 0..clusters.k() {
        // Cap segment size so the demo stays fast; real audits use all.
        let members: Vec<usize> = clusters.members(c).into_iter().take(12).collect();
        if members.is_empty() {
            continue;
        }
        let nodes: Vec<_> = members.iter().map(|&u| ds.kg.user_node(u)).collect();
        let mut paths = Vec::new();
        for &u in &members {
            paths.extend(pgpr.recommend(u, 5).paths(5));
        }
        if paths.is_empty() {
            continue;
        }
        let input = SummaryInput::user_group(&nodes, paths);

        let st = steiner_summary(g, &input, &SteinerConfig::default());
        let pcst = pcst_summary(g, &input, &PcstConfig::default());
        for s in [&st, &pcst] {
            let view = ExplanationView::from_subgraph(g, &s.subgraph);
            let r = MetricReport::evaluate(g, &view);
            println!(
                "{c}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}",
                members.len(),
                s.method,
                r.size,
                r.comprehensibility,
                r.diversity,
                r.privacy
            );
        }
    }

    println!(
        "\nReading: segments with low-comprehensibility summaries receive \
         scattered explanations — candidates for targeted campaigns or \
         model debugging (§III)."
    );
}
