//! Serving summaries from a long-lived `SummaryEngine`.
//!
//! The free functions (`steiner_summary`, `summarize_batch`) rebuild
//! their worker state on every call; a serving process instead holds
//! one engine for the lifetime of the graph and gets:
//!
//! * a pinned worker pool (threads parked between batches),
//! * per-worker Steiner workspaces and Eq. 1 cost buffers that stay
//!   warm across calls,
//! * a (graph-epoch, config)-keyed cost-model cache,
//! * an LRU session store for users whose k grows as they scroll.
//!
//! ```text
//! cargo run --release --example summary_engine
//! ```

use std::time::Instant;

use xsum::core::{
    summarize_batch, BatchMethod, SessionKey, SteinerConfig, SummaryEngine, SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig};

fn main() {
    let ds = ml1m_scaled(42, 0.03);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());
    let g = &ds.kg.graph;

    // One explanation input per user — the serving workload.
    let users: Vec<usize> = (0..24.min(ds.kg.n_users())).collect();
    let inputs: Vec<SummaryInput> = users
        .iter()
        .filter_map(|&u| {
            let out = pgpr.recommend(u, 10);
            let paths = out.paths(out.len());
            (!paths.is_empty()).then(|| SummaryInput::user_centric(ds.kg.user_node(u), paths))
        })
        .collect();
    let method = BatchMethod::Steiner(SteinerConfig::default());

    // The engine is constructed once and held for the process lifetime.
    let mut engine = SummaryEngine::new();
    println!(
        "engine: {} pinned workers, {} inputs\n",
        engine.threads(),
        inputs.len()
    );

    // Serving loop: many batches against one graph. The first call pays
    // the Eq. 1 model build + buffer warmup; later calls reuse it all.
    for round in 0..3 {
        let t = Instant::now();
        let summaries = engine.summarize_batch(g, &inputs, method);
        let (hits, misses) = engine.cost_cache_stats();
        println!(
            "batch round {round}: {} summaries in {:.2} ms (cost-model cache: {hits} hits / {misses} misses)",
            summaries.len(),
            t.elapsed().as_secs_f64() * 1e3,
        );
    }

    // One-shot comparison: the free function rebuilds its engine per
    // call, so issuing the same batch through it costs the setup again.
    let t = Instant::now();
    let free = summarize_batch(g, &inputs, method);
    println!(
        "one-shot summarize_batch:        {} summaries in {:.2} ms (worker state rebuilt)\n",
        free.len(),
        t.elapsed().as_secs_f64() * 1e3,
    );

    // Warm single-summary serving: the engine patches O(|paths|) edges
    // per call instead of re-materializing the O(|E|) cost table.
    let t = Instant::now();
    for input in &inputs {
        std::hint::black_box(engine.summarize(g, input, method));
    }
    println!(
        "warm single-summary serving:     {:.3} ms/summary",
        t.elapsed().as_secs_f64() * 1e3 / inputs.len() as f64
    );

    // Incremental sessions: k grows as a user scrolls; the session
    // store resumes each user's summary where it left off. Size the
    // store for the live user population — an LRU smaller than a
    // cyclically-scanned working set degrades to all-misses.
    let cfg = SteinerConfig::default();
    engine.sessions().set_capacity(inputs.len() + 8);
    for (scroll, k) in [4usize, 7, 10].iter().enumerate() {
        for (idx, input) in inputs.iter().enumerate() {
            let session = engine.sessions().steiner_session(
                g,
                SessionKey::new(idx as u64, "pgpr"),
                input,
                &cfg,
            );
            for &t in input.terminals.iter().take(*k) {
                session.add_terminal(g, t);
            }
            if idx == 0 {
                let s = session.summary();
                println!(
                    "user 0 scroll {}: k≤{} → {} edges, {} terminals (grows, never reshuffles)",
                    scroll,
                    k,
                    s.subgraph.edge_count(),
                    s.terminals.len()
                );
            }
        }
    }
    println!(
        "session store: {} live sessions, {} hits / {} misses / {} evictions",
        engine.sessions().len(),
        engine.sessions().hits(),
        engine.sessions().misses(),
        engine.sessions().evictions(),
    );
}
