//! Async serving through the admission queue: many producer threads,
//! one coalescing dispatcher, no second thread pool.
//!
//! `SummaryEngine` is synchronous — a front-end wanting to ingest
//! requests while a batch is in flight would need its own thread pool.
//! `AdmissionQueue` closes the gap with a bounded submission queue:
//! producers submit from any thread and get a completion ticket
//! (condvar-backed — no async runtime); a dispatcher thread coalesces
//! queued singles into engine batches (ticket-count linger window),
//! orders them by optional deadlines, and applies graph mutations as
//! barriers between batches.
//!
//! ```text
//! cargo run --release --example async_serving
//! ```

use std::time::Instant;

use xsum::core::{
    AdmissionConfig, AdmissionQueue, BatchMethod, SteinerConfig, SummaryEngine, SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig};

fn main() {
    let ds = ml1m_scaled(42, 0.03);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());
    let g = &ds.kg.graph;

    // One explanation input per user.
    let users: Vec<usize> = (0..48.min(ds.kg.n_users())).collect();
    let inputs: Vec<SummaryInput> = users
        .iter()
        .filter_map(|&u| {
            let out = pgpr.recommend(u, 10);
            let paths = out.paths(out.len());
            (!paths.is_empty()).then(|| SummaryInput::user_centric(ds.kg.user_node(u), paths))
        })
        .collect();
    let method = BatchMethod::Steiner(SteinerConfig::default());

    // The queue owns graph + engine on its dispatcher thread; the
    // linger window (8 tickets) lets singles pile into real batches.
    let queue = AdmissionQueue::for_engine(
        g.clone(),
        SummaryEngine::new(),
        AdmissionConfig {
            queue_bound: 256,
            max_batch: 32,
            linger_tickets: 8,
        },
    );
    println!(
        "admission queue: bound {}, max batch {}, linger {} tickets\n",
        queue.config().queue_bound,
        queue.config().max_batch,
        queue.config().linger_tickets,
    );

    // Four producer threads submitting concurrently — the overlap the
    // queue exists for: requests keep arriving while a coalesced batch
    // is in flight on the engine's pinned pool.
    let producers = 4;
    let t = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let queue = &queue;
            let inputs = &inputs;
            scope.spawn(move || {
                let mine: Vec<&SummaryInput> = inputs.iter().skip(p).step_by(producers).collect();
                let tickets: Vec<_> = mine
                    .iter()
                    .map(|input| {
                        queue
                            .submit((*input).clone(), method)
                            .expect("queue is live")
                    })
                    .collect();
                for ticket in tickets {
                    let (result, meta) = ticket.wait_meta();
                    let summary = result.expect("well-formed input");
                    assert!(summary.terminal_coverage() > 0.0);
                    assert!(meta.coalesced >= 1);
                }
            });
        }
    });
    let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
    let stats = queue.stats();
    println!(
        "{} summaries from {} producers in {:.1} ms ({:.0}/s)",
        stats.completed,
        producers,
        elapsed_ms,
        stats.completed as f64 / (elapsed_ms / 1e3),
    );
    println!(
        "coalescing: {} batches, largest {}, {} requests admitted while a batch was in flight",
        stats.batches_dispatched, stats.max_coalesced, stats.overlap_submissions,
    );

    // Deadline-ranked requests jump the queue: more work than one
    // max_batch can hold is queued at once, and the ranked pair —
    // admitted *last* — still rides the first dispatch.
    let backlog: Vec<_> = inputs
        .iter()
        .map(|i| queue.submit(i.clone(), method).expect("live"))
        .collect();
    let urgent_a = queue
        .submit_with_deadline(inputs[0].clone(), method, 0)
        .expect("live");
    let urgent_b = queue
        .submit_with_deadline(inputs[1].clone(), method, 0)
        .expect("live");
    let (_, meta_a) = urgent_a.wait_meta();
    let (_, meta_b) = urgent_b.wait_meta();
    let last_backlog_batch = backlog
        .into_iter()
        .map(|t| t.wait_meta().1.batch)
        .max()
        .unwrap_or(0);
    println!(
        "\ndeadlines: urgent pair (admitted last) served in batch {} / {}, \
         unranked backlog finished in batch {}",
        meta_a.batch, meta_b.batch, last_backlog_batch,
    );

    // A graph mutation is a barrier: requests before it serve the old
    // weights, requests after it the new ones — no replica/epoch skew.
    let before = queue.submit(inputs[0].clone(), method).expect("live");
    queue
        .mutate(|g| g.set_weight(xsum::graph::EdgeId(0), 4.5))
        .expect("mutation applies");
    let after = queue.submit(inputs[0].clone(), method).expect("live");
    let pre = before.wait().expect("serves pre-mutation");
    let post = after.wait().expect("serves post-mutation");
    println!(
        "mutation barrier: pre-mutation summary {} edges, post-mutation {} edges, \
         {} mutation(s) applied",
        pre.subgraph.edge_count(),
        post.subgraph.edge_count(),
        queue.stats().mutations_applied,
    );

    // Shutdown drains: every admitted ticket resolves before the
    // dispatcher exits.
    let tail: Vec<_> = inputs
        .iter()
        .take(8)
        .map(|i| queue.submit(i.clone(), method).expect("live"))
        .collect();
    queue.shutdown();
    let mut drained = 0usize;
    for t in tail {
        t.wait().expect("tickets admitted before shutdown resolve");
        drained += 1;
    }
    println!("\nshutdown-drain: {drained} tail tickets admitted before shutdown all resolved");
}
