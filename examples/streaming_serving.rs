//! Streaming serving over the wire protocol: framed requests in,
//! completion-ordered framed responses out, one admission queue in
//! the middle.
//!
//! A remote front-end does not hold `SummaryInput`s — it holds bytes.
//! `xsum::core::wire` gives those bytes a shape (versioned,
//! length-prefixed frames with bit-exact f64 configs) and
//! `serve_stream` runs the whole serving loop: decode each request,
//! submit it through the `AdmissionQueue`, apply mutation frames as
//! barriers, and write responses back in completion order with the
//! client's request id attached. This demo plays the client and the
//! server in one process over in-memory buffers — swap the `Vec<u8>`s
//! for a socket and nothing else changes.
//!
//! ```text
//! cargo run --release --example streaming_serving
//! ```

use std::time::Instant;

use xsum::core::wire::{
    decode_frame, encode_frame, serve_stream, MutationRequest, SummaryRequest, WireFrame,
    WireMutation,
};
use xsum::core::{
    AdmissionConfig, AdmissionQueue, BatchMethod, PcstConfig, SteinerConfig, SummaryEngine,
    SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::graph::EdgeId;
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig};

fn main() {
    let ds = ml1m_scaled(42, 0.03);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());
    let g = &ds.kg.graph;

    // ---- client side: frame a session into a byte stream ----------
    let methods = [
        BatchMethod::Steiner(SteinerConfig::default()),
        BatchMethod::SteinerFast(SteinerConfig::default()),
        BatchMethod::Pcst(PcstConfig::default()),
    ];
    let mut stream: Vec<u8> = Vec::new();
    let mut framed = 0u64;
    for u in 0..24.min(ds.kg.n_users()) {
        let out = pgpr.recommend(u, 10);
        let paths = out.paths(out.len());
        if paths.is_empty() {
            continue;
        }
        let input = SummaryInput::user_centric(ds.kg.user_node(u), paths);
        stream.extend_from_slice(&encode_frame(&WireFrame::SummaryRequest(SummaryRequest {
            id: framed,
            method: methods[u % methods.len()],
            input,
        })));
        framed += 1;
        // Every eighth request, a reweighting barrier: requests framed
        // before it are served on the old weights, requests after on
        // the new ones.
        if framed.is_multiple_of(8) {
            stream.extend_from_slice(&encode_frame(&WireFrame::MutationRequest(
                MutationRequest {
                    id: 10_000 + framed,
                    mutation: WireMutation::SetWeight {
                        edge: EdgeId((framed as u32 * 7) % g.edge_count() as u32),
                        weight: 0.5 + (framed as f64) * 0.01,
                    },
                },
            )));
        }
    }
    println!(
        "client framed {framed} summary requests ({} bytes on the wire)",
        stream.len()
    );

    // ---- server side: one call serves the whole session ------------
    let queue = AdmissionQueue::for_engine(
        g.clone(),
        SummaryEngine::new(),
        AdmissionConfig {
            queue_bound: 256,
            max_batch: 32,
            linger_tickets: 8,
        },
    );
    let mut responses: Vec<u8> = Vec::new();
    let t0 = Instant::now();
    let report = serve_stream(&stream[..], &mut responses, &queue).expect("clean session");
    println!(
        "served {} summaries + {} mutation barriers in {:.1} ms ({} response bytes)",
        report.summaries,
        report.mutations,
        t0.elapsed().as_secs_f64() * 1e3,
        responses.len()
    );

    // ---- client side again: decode completion-ordered responses ----
    let mut rest = &responses[..];
    let mut shown = 0;
    while !rest.is_empty() {
        let (frame, consumed) = decode_frame(rest).expect("well-formed response");
        rest = &rest[consumed..];
        match frame {
            WireFrame::SummaryResponse(resp) => {
                let s = resp.result.expect("request served");
                if shown < 5 {
                    println!(
                        "  id {:>3} [{}] {:?}: {} nodes / {} edges over {} terminals",
                        resp.id,
                        s.method,
                        s.scenario,
                        s.nodes.len(),
                        s.edges.len(),
                        s.terminals.len()
                    );
                }
                shown += 1;
            }
            WireFrame::MutationResponse(resp) => {
                println!(
                    "  id {:>3} barrier applied: {}",
                    resp.id,
                    resp.result.is_ok()
                );
            }
            _ => unreachable!("the server writes only responses"),
        }
    }
    println!("decoded {shown} summary responses (first 5 shown)");
}
