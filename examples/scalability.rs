//! Fig. 10/11 in miniature: how ST and PCST summarization times scale
//! with group size and graph size.
//!
//! ST runs |T| Dijkstra searches over the whole graph (`O(|T|(|E| +
//! |V| log |V|))`), so it degrades with both axes; PCST grows only the
//! explanation paths' own neighbourhood and stays nearly flat — the
//! paper's argument for using PCST on large groups.
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use std::time::Instant;

use xsum::core::{pcst_summary, steiner_summary, PcstConfig, SteinerConfig, SummaryInput};
use xsum::datasets::{random_explanation_path, scaling::scaling_graph_scaled, ScalingLevel};
use xsum::graph::LoosePath;

fn main() {
    println!("graph\tnodes\tedges\tgroup\tst_ms\tpcst_ms");
    for level in [ScalingLevel::G1, ScalingLevel::G3, ScalingLevel::G5] {
        let ds = scaling_graph_scaled(level, 3, 0.05);
        let g = &ds.kg.graph;
        for group_size in [5usize, 20, 60] {
            // k = 10 random 3-hop explanation paths per group member.
            let mut nodes = Vec::new();
            let mut paths: Vec<LoosePath> = Vec::new();
            for u in 0..group_size.min(ds.kg.n_users()) {
                let mut any = false;
                for i in 0..10u64 {
                    if let Some(p) = random_explanation_path(&ds, u, 3, (u as u64) << 8 | i, 30) {
                        paths.push(LoosePath::from_path(&p));
                        any = true;
                    }
                }
                if any {
                    nodes.push(ds.kg.user_node(u));
                }
            }
            if paths.is_empty() {
                continue;
            }
            let input = SummaryInput::user_group(&nodes, paths);

            let t = Instant::now();
            let st = steiner_summary(g, &input, &SteinerConfig::default());
            let st_ms = t.elapsed().as_secs_f64() * 1e3;

            let t = Instant::now();
            let pc = pcst_summary(g, &input, &PcstConfig::default());
            let pcst_ms = t.elapsed().as_secs_f64() * 1e3;

            println!(
                "{}\t{}\t{}\t{}\t{:.2}\t{:.2}",
                level.name(),
                g.node_count(),
                g.edge_count(),
                nodes.len(),
                st_ms,
                pcst_ms
            );
            let _ = (st, pc);
        }
    }
}
