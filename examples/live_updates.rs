//! Live weight updates without rebuilds or barriers: the delta ledger
//! end-to-end.
//!
//! A recommender's edge weights move constantly (new ratings, decayed
//! interactions) while its topology barely changes. This example walks
//! the delta-aware mutation pipeline that makes weight-only writes
//! cheap at every layer:
//!
//! 1. the [`Graph`] ledger — `apply_delta` records `(edge, old_bits,
//!    new_bits)` and `delta_since` replays it, invertibly;
//! 2. a warm [`SummaryEngine`] patching its resident Eq. 1 cost tables
//!    in O(|touched|) instead of rebuilding O(|E|) state;
//! 3. a [`SessionStore`] keeping live sessions alive when their
//!    read-set is disjoint from the delta;
//! 4. an [`AdmissionQueue`] applying coalesced weight updates
//!    *without* a mutation barrier, while summaries keep flowing.
//!
//! ```text
//! cargo run --release --example live_updates
//! ```

use std::time::Instant;

use xsum::core::{
    AdmissionConfig, AdmissionQueue, BatchMethod, SessionKey, SessionStore, SteinerConfig,
    SummaryEngine, SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::graph::EdgeId;
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig};

fn main() {
    let ds = ml1m_scaled(42, 0.03);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());
    let mut g = ds.kg.graph.clone();
    g.freeze();

    let users: Vec<usize> = (0..32.min(ds.kg.n_users())).collect();
    let inputs: Vec<SummaryInput> = users
        .iter()
        .filter_map(|&u| {
            let out = pgpr.recommend(u, 10);
            let paths = out.paths(out.len());
            (!paths.is_empty()).then(|| SummaryInput::user_centric(ds.kg.user_node(u), paths))
        })
        .collect();
    let cfg = SteinerConfig::default();
    let method = BatchMethod::Steiner(cfg);

    // Anchor-safe update stream: rescale existing weights downward so
    // the Eq. 1 anchor (`base_max`) never moves and every layer below
    // can take its O(|touched|) patch path instead of a rebuild.
    let base_max = g.edge_ids().fold(0.0f64, |m, e| m.max(g.weight(e)));
    let delta_for = |g: &xsum::graph::Graph, round: u64| -> Vec<(EdgeId, f64)> {
        let m = g.edge_count();
        (0..m / 100)
            .map(|i| EdgeId(((i * 97 + round as usize * 13) % m) as u32))
            .filter(|e| g.weight(*e).to_bits() != base_max.to_bits())
            .map(|e| (e, g.weight(e) * 0.75))
            .collect()
    };

    // 1. The ledger: one epoch per batch, invertible bit-exact records.
    let pre_bits = g.weight(EdgeId(0)).to_bits();
    let epoch_before = g.epoch();
    let batch = delta_for(&g, 0);
    g.apply_delta(&batch);
    let recs = g
        .delta_since(epoch_before)
        .expect("weight-only batch keeps the ledger chain alive");
    println!(
        "ledger: {} updates -> 1 delta epoch, {} bit-changing records",
        batch.len(),
        recs.len(),
    );
    let undo: Vec<(EdgeId, f64)> = recs
        .iter()
        .map(|r| {
            let inv = r.inverse();
            (inv.edge, f64::from_bits(inv.new_bits))
        })
        .collect();
    g.apply_delta(&undo);
    assert_eq!(g.weight(EdgeId(0)).to_bits(), pre_bits);
    println!("ledger: inverse() replay restored the exact pre-delta bits\n");

    // 2. Warm engine: absorb a stream of deltas by patching resident
    // cost tables, and compare against rebuilding a cold engine.
    let mut warm = SummaryEngine::new();
    warm.summarize_batch(&g, &inputs, method); // warm the resident state
    let rounds = 8u64;
    let t = Instant::now();
    for round in 1..=rounds {
        g.apply_delta(&delta_for(&g, round));
        warm.summarize(&g, &inputs[0], method);
    }
    let patched_ms = t.elapsed().as_secs_f64() * 1e3 / rounds as f64;
    let t = Instant::now();
    for round in 1..=rounds {
        g.apply_delta(&delta_for(&g, round));
        SummaryEngine::new().summarize(&g, &inputs[0], method);
    }
    let rebuilt_ms = t.elapsed().as_secs_f64() * 1e3 / rounds as f64;
    println!(
        "warm engine: {} deltas absorbed with {} cost-table patches \
         ({:.3} ms/round patched vs {:.3} ms/round cold rebuild)\n",
        rounds,
        warm.cost_cache_patches(),
        patched_ms,
        rebuilt_ms,
    );

    // 3. Sessions: live sessions whose read-set is disjoint from the
    // delta survive with patched costs; only intersecting ones rebuild.
    let mut store = SessionStore::new(inputs.len());
    for (i, input) in inputs.iter().enumerate() {
        store.steiner_session(&g, SessionKey::new(i as u64, "pgpr"), input, &cfg);
    }
    g.apply_delta(&delta_for(&g, 99));
    for (i, input) in inputs.iter().enumerate() {
        store.steiner_session(&g, SessionKey::new(i as u64, "pgpr"), input, &cfg);
    }
    println!(
        "sessions: {} live, a 1% delta later: {} survived (disjoint read-set), \
         {} invalidated by the delta, {} by structure",
        inputs.len(),
        store.survived_delta(),
        store.invalidated_delta(),
        store.invalidated_structural(),
    );

    // 4. The admission queue: weight updates are NOT barriers — they
    // coalesce in admission order and ride ahead of the next batch
    // while the linger window stays open and summaries keep flowing.
    let queue = AdmissionQueue::for_engine(
        g.clone(),
        SummaryEngine::new(),
        AdmissionConfig {
            queue_bound: 256,
            max_batch: 32,
            linger_tickets: 4,
        },
    );
    let t = Instant::now();
    let mut tickets = Vec::new();
    for round in 0..4u64 {
        for (i, input) in inputs.iter().enumerate() {
            if i % 4 == 0 {
                // Fire-and-forget: dropping the ticket is allowed.
                let _ = queue
                    .submit_weight_update(delta_for(&g, 100 + round * 8 + i as u64))
                    .expect("queue is live");
            }
            tickets.push(queue.submit(input.clone(), method).expect("queue is live"));
        }
    }
    let served = tickets.len();
    for ticket in tickets {
        ticket.wait().expect("well-formed input serves");
    }
    let elapsed = t.elapsed().as_secs_f64();
    let stats = queue.stats();
    println!(
        "\nadmission queue: {} summaries at {:.0}/s while {} live edge updates \
         landed in {} coalesced non-barrier batches ({} structural barriers)",
        served,
        served as f64 / elapsed,
        stats.weight_updates_applied,
        stats.weight_update_batches,
        stats.mutations_applied,
    );
    queue.shutdown();
}
