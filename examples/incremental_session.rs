//! A live recommendation session: items arrive one at a time and the
//! summary explanation updates *incrementally*, never discarding what the
//! user has already read — the mechanism behind the paper's consistency
//! discussion ("ST minimally extends the tree with the necessary edges to
//! connect one additional terminal node with each k increment", Fig. 6).
//!
//! ```text
//! cargo run --release --example incremental_session
//! ```

use xsum::core::{
    render_summary, steiner_summary, IncrementalPcst, IncrementalSteiner, PcstConfig, Scenario,
    SteinerConfig, SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig};

fn main() {
    let ds = ml1m_scaled(42, 0.03);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());
    let g = &ds.kg.graph;

    let user = 0usize;
    let out = pgpr.recommend(user, 10);
    let input = SummaryInput::user_centric(ds.kg.user_node(user), out.paths(out.len()));

    let mut inc = IncrementalSteiner::new(g, &input, &SteinerConfig::default());
    inc.add_terminal(g, ds.kg.user_node(user));

    println!("k\tadded\ttotal_edges\tbatch_edges");
    for (k, rec) in out.all().iter().enumerate() {
        let added = inc.add_terminal(g, rec.item);
        // Batch recomputation at the same k, for comparison.
        let batch_input = SummaryInput::user_centric(ds.kg.user_node(user), out.paths(k + 1));
        let batch = steiner_summary(g, &batch_input, &SteinerConfig::default());
        println!(
            "{}\t{}\t{}\t{}",
            k + 1,
            added,
            inc.size(),
            batch.subgraph.edge_count()
        );
    }

    let s = inc.summary();
    println!(
        "\nFinal incremental summary ({} edges, {} terminals):",
        s.subgraph.edge_count(),
        s.terminals.len()
    );
    println!(
        "  {}",
        render_summary(g, &s.subgraph, ds.kg.user_node(user))
    );

    // The same session on the prize-collecting side: each arriving
    // recommendation only raises a prize and attaches through the
    // cheapest in-scope connection (the paper's "PCST adjusts only the
    // node's prize, preserving structural coherence", §V-B5).
    let mut pcst = IncrementalPcst::new(Scenario::UserCentric, PcstConfig::default());
    println!("\nPCST session:\nk\tadded\ttotal_edges");
    for (k, rec) in out.all().iter().enumerate() {
        let added = pcst.add_recommendation(g, &rec.path);
        println!("{}\t{}\t{}", k + 1, added, pcst.size());
    }
    println!(
        "\nEvery k-step summary (ST and PCST) was a superset of the previous\n\
         one — the user never saw an explanation element disappear."
    );
}
