//! Sharded serving: per-shard engine replicas behind scatter/gather.
//!
//! A single `SummaryEngine` serves one worker pool, one cost-model
//! cache, and one session store. `ShardedEngine` scales that shape
//! horizontally: N engine replicas over N full graph replicas, a
//! `ShardRouter` pinning each user to a home shard (sessions stay
//! warm), a scatter/gather planner for mixed batches, and coherent
//! cross-replica mutation.
//!
//! ```text
//! cargo run --release --example sharded_serving
//! ```

use std::time::Instant;

use xsum::core::{
    BatchMethod, SessionKey, ShardedEngine, SteinerConfig, SummaryEngine, SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig};

fn main() {
    let ds = ml1m_scaled(42, 0.03);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());
    let g = &ds.kg.graph;

    // One explanation input per user — a mixed batch spanning many
    // routing identities.
    let users: Vec<usize> = (0..32.min(ds.kg.n_users())).collect();
    let inputs: Vec<SummaryInput> = users
        .iter()
        .filter_map(|&u| {
            let out = pgpr.recommend(u, 10);
            let paths = out.paths(out.len());
            (!paths.is_empty()).then(|| SummaryInput::user_centric(ds.kg.user_node(u), paths))
        })
        .collect();
    let method = BatchMethod::Steiner(SteinerConfig::default());

    // The sharded front-end owns its graph replicas: constructed once,
    // mutated only through `mutate`/`set_weight` so replicas stay
    // content-identical.
    let shards = 4;
    let mut sharded = ShardedEngine::new(g, shards);
    let mut spread = vec![0usize; shards];
    for input in &inputs {
        spread[sharded.shard_of_input(input)] += 1;
    }
    println!(
        "sharded engine: {} replicas, {} inputs routed {:?}\n",
        sharded.shards(),
        inputs.len(),
        spread
    );

    // Scatter/gather serving loop — outputs are bit-identical to one
    // engine (full-replica sharding), so correctness never depends on
    // the routing.
    let mut single = SummaryEngine::new();
    for round in 0..3 {
        let t = Instant::now();
        let summaries = sharded.summarize_batch(&inputs, method);
        let sharded_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let reference = single.summarize_batch(g, &inputs, method);
        let single_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(summaries.len(), reference.len());
        for (a, b) in summaries.iter().zip(&reference) {
            assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
        }
        println!(
            "batch round {round}: {} summaries — sharded {:.2} ms vs single engine {:.2} ms \
             (bit-identical)",
            summaries.len(),
            sharded_ms,
            single_ms,
        );
    }

    // Shard-affine sessions: each scrolling user resumes on their home
    // shard; the per-replica stores stay small and hot.
    let cfg = SteinerConfig::default();
    for k in [4usize, 7, 10] {
        for (idx, input) in inputs.iter().enumerate() {
            let key = SessionKey::new(idx as u64, "pgpr");
            sharded.session_summary(
                key,
                input,
                &cfg,
                &input.terminals[..k.min(input.terminals.len())],
            );
        }
    }
    for shard in 0..sharded.shards() {
        let store = sharded.sessions(shard);
        println!(
            "shard {shard} sessions: {} live, {} hits / {} misses",
            store.len(),
            store.hits(),
            store.misses(),
        );
    }

    // Coherent mutation: one write, every replica's epoch moves, every
    // cost cache and session store invalidates on its next request.
    let before: Vec<u64> = sharded.cost_cache_stats().iter().map(|s| s.1).collect();
    sharded.set_weight(xsum::graph::EdgeId(0), 4.5);
    sharded.summarize_batch(&inputs, method);
    let after: Vec<u64> = sharded.cost_cache_stats().iter().map(|s| s.1).collect();
    println!(
        "\nmutation propagated: per-shard cost-model misses {:?} -> {:?} (every serving replica rebuilt)",
        before, after
    );

    // Partitioned mode: each shard holds a *sub-graph* replica (its
    // resident nodes plus a k-hop halo) instead of a full graph clone.
    // Requests certify-or-escalate — served inside the home partition
    // only when the local result is provably identical to the full
    // graph's, otherwise escalated to the one full coverage replica.
    let mut parted = ShardedEngine::new_partitioned(g, 2, 42);
    println!(
        "\npartitioned engine: {} sub-graph replicas + 1 coverage replica",
        parted.shards()
    );
    for shard in 0..parted.shards() {
        let part = parted.partition(shard).expect("partitioned mode");
        println!(
            "  partition {shard}: {} resident + {} halo nodes, {} edges, {} graph bytes",
            part.resident_count(),
            part.halo_count(),
            part.edge_count(),
            part.graph().resident_bytes(),
        );
    }
    let coverage = parted.coverage_graph().expect("partitioned mode");
    println!(
        "  coverage replica: {} nodes, {} edges, {} graph bytes",
        coverage.node_count(),
        coverage.edge_count(),
        coverage.resident_bytes(),
    );
    // `graph(shard)` stays honest in partitioned mode: the per-shard
    // sub-graphs live under partition-local ids, so the accessor
    // resolves to the coverage replica's full-content graph.
    assert_eq!(
        parted.graph(0).node_count(),
        coverage.node_count(),
        "graph(shard) must resolve to full content in partitioned mode"
    );

    // Serving stays bit-identical to a single engine — certification
    // guarantees it, escalation covers the rest.
    let reference = single.summarize_batch(g, &inputs, method);
    for round in 0..2 {
        let summaries = parted.summarize_batch(&inputs, method);
        for (a, b) in summaries.iter().zip(&reference) {
            assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
        }
        let (local, escalated) = parted.partition_stats();
        println!(
            "  round {round}: {} summaries bit-identical — {local} certified local, \
             {escalated} escalated to coverage so far",
            summaries.len(),
        );
    }
}
