//! Quickstart: the paper's Table I worked example.
//!
//! Builds the Fig. 1 mini knowledge graph (User 1, the Angelopoulos
//! filmography, the Drama genre), summarizes the three individual
//! explanation paths with the Steiner-tree method, and prints both forms.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xsum::core::{render_path, render_summary, table1_example};

fn main() {
    let ex = table1_example();

    println!(
        "Individual explanations ({} edges total):",
        ex.total_input_length()
    );
    for (label, path) in ["P1,A", "P1,B", "P1,C"].iter().zip(&ex.paths) {
        println!("  {label}: {}", render_path(&ex.graph, path));
    }

    let summary = ex.summarize();
    println!("\nSummary explanation ({} edges):", summary.edge_count());
    println!("  {}", render_summary(&ex.graph, &summary, ex.user1));

    println!(
        "\nCompression: {} -> {} edges ({:.0}% smaller), all {} recommended \
         movies still covered.",
        ex.total_input_length(),
        summary.edge_count(),
        100.0 * (1.0 - summary.edge_count() as f64 / ex.total_input_length() as f64),
        ex.items.len(),
    );
}
