//! Chaos serving: the fault-tolerance layer end to end, driven by the
//! deterministic injection plane.
//!
//! A seeded [`FaultPlan`] replays the same tape of worker panics,
//! transient errors, and delays on every run; the serving stack has to
//! absorb it. Four sections: (1) `ShardedEngine` failover — injected
//! replica faults retry on healthy shards behind per-replica circuit
//! breakers; (2) `AdmissionQueue` under chaos — every admitted ticket
//! resolves, opted-in requests degrade Steiner → ST-fast under load,
//! and wall-clock-expired tickets fail fast without consuming worker
//! time; (3) watermark load shedding — a lingering backlog over the
//! shed watermark drops lowest-urgency work first, deadline-ranked
//! requests survive; (4) a panicked mutation poisons the queue and
//! [`AdmissionQueue::recover`] restores coherent serving.
//!
//! ```text
//! cargo run --release --example chaos_serving
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use xsum::core::{
    AdmissionConfig, AdmissionError, AdmissionQueue, BatchMethod, DegradePolicy, FaultInjector,
    FaultPlan, FaultSite, OverloadPolicy, ShardedEngine, SteinerConfig, SubmitOptions,
    SummaryEngine, SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig};

fn main() {
    let ds = ml1m_scaled(42, 0.03);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());
    let g = &ds.kg.graph;

    // One explanation input per user, same as the async_serving demo.
    let users: Vec<usize> = (0..48.min(ds.kg.n_users())).collect();
    let inputs: Vec<SummaryInput> = users
        .iter()
        .filter_map(|&u| {
            let out = pgpr.recommend(u, 10);
            let paths = out.paths(out.len());
            (!paths.is_empty()).then(|| SummaryInput::user_centric(ds.kg.user_node(u), paths))
        })
        .collect();
    let method = BatchMethod::Steiner(SteinerConfig::default());

    println!(
        "(backtraces interleaved below are *injected* worker panics — \
         every one is caught and recovered from)\n",
    );

    // ── 1. Sharded failover under an injected fault tape ─────────────
    //
    // The tape is a pure function of the seed: rerun the binary and the
    // same serve calls fail at the same points. Faulted replica serves
    // retry on the remaining healthy shards; repeated failures trip a
    // replica's circuit breaker so routing stops offering it traffic
    // until its cooldown probe succeeds.
    let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(7)));
    let mut sharded = ShardedEngine::with_threads(g, 2, 1);
    sharded.set_fault_injector(Some(Arc::clone(&injector)));
    let (mut ok_batches, mut failed_batches) = (0usize, 0usize);
    for _ in 0..4 {
        match sharded.try_summarize_batch(&inputs[..8], method) {
            Ok(summaries) => {
                assert_eq!(summaries.len(), 8);
                ok_batches += 1;
            }
            Err(_) => failed_batches += 1,
        }
    }
    println!(
        "sharded failover: {} batch(es) served, {} lost to total failure; \
         {} fault(s) drawn at replica serves, breakers now [{:?}, {:?}]",
        ok_batches,
        failed_batches,
        injector.injected_at(FaultSite::ShardServe),
        sharded.breaker_state(0),
        sharded.breaker_state(1),
    );
    // Injection is budgeted: once the tape is spent the stack is clean
    // again, and the same inputs serve without a hitch.
    while injector.budget_left() > 0 {
        let _ = sharded.try_summarize_batch(&inputs[..8], method);
    }
    let clean = sharded.try_summarize_batch(&inputs[..8], method);
    assert!(clean.is_ok(), "spent tape leaves the stack serviceable");
    println!(
        "               tape spent ({} total injections) — post-chaos batch serves cleanly\n",
        injector.total_injected(),
    );

    // ── 2. Admission queue under chaos, with degradation opt-in ──────
    let chaos = Arc::new(FaultInjector::new(FaultPlan::seeded(21)));
    let mut backend = ShardedEngine::with_threads(g, 2, 1);
    backend.set_fault_injector(Some(Arc::clone(&chaos)));
    let queue = AdmissionQueue::with_faults(
        backend,
        AdmissionConfig {
            queue_bound: 256,
            max_batch: 16,
            linger_tickets: 4,
        },
        OverloadPolicy {
            shed_watermark: 0, // shedding off in this section
            degrade_watermark: 4,
        },
        Some(Arc::clone(&chaos)),
    );
    let expired_instant = Instant::now()
        .checked_sub(Duration::from_millis(1))
        .unwrap_or_else(Instant::now);
    let mut tickets = Vec::new();
    for round in 0..3 {
        for (i, input) in inputs.iter().enumerate() {
            let opts = SubmitOptions {
                // Every 5th request carries an already-passed wall-clock
                // expiry: it must fail fast, never reaching a worker.
                expires_at: (i % 5 == 4).then_some(expired_instant),
                // Every 3rd opts into Steiner → ST-fast degradation when
                // the queue is at or above the degrade watermark.
                degrade: if i % 3 == 0 {
                    DegradePolicy::AllowStFast
                } else {
                    DegradePolicy::Strict
                },
                deadline: (i % 7 == 0).then_some(round as u64),
            };
            tickets.push(
                queue
                    .submit_with(input.clone(), method, opts)
                    .expect("live"),
            );
        }
    }
    // Tickets are pollable now: `try_wait` peeks without blocking (and
    // without flushing a lingering batch), `wait_timeout` bounds the
    // blocking wait. Drain the first ticket through that surface.
    let first = tickets.remove(0);
    let first_outcome = match first.try_wait() {
        Ok(outcome) => outcome,
        Err(pending) => pending
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("ticket resolves well within 30s")),
    };
    let (mut served, mut degraded, mut expired, mut faulted) = (1usize, 0usize, 0usize, 0usize);
    assert!(first_outcome.0.is_ok() || matches!(first_outcome.0, Err(AdmissionError::Engine(_))));
    for ticket in tickets {
        match ticket.wait_meta() {
            (Ok(_), meta) => {
                served += 1;
                degraded += meta.degraded as usize;
            }
            (Err(AdmissionError::DeadlineExceeded), meta) => {
                assert_eq!(meta.batch, 0, "expired tickets never dispatch");
                expired += 1;
            }
            (Err(AdmissionError::Engine(_)), _) => faulted += 1,
            (Err(other), _) => panic!("unexpected admission outcome: {other}"),
        }
    }
    let stats = queue.stats();
    println!(
        "admission chaos: {} submitted — {} served ({} degraded to ST-fast), \
         {} expired pre-dispatch, {} lost to injected faults",
        stats.submitted, served, degraded, expired, faulted,
    );
    println!(
        "                 every ticket resolved; {} batches, {} injection(s) drawn, \
         budget left {}\n",
        stats.batches_dispatched,
        chaos.total_injected(),
        chaos.budget_left(),
    );
    queue.shutdown();

    // ── 3. Load shedding: lowest urgency goes first ──────────────────
    //
    // A long linger window piles a backlog over the shed watermark;
    // each admission over the mark sheds the least-urgent queued
    // request (resolved `DeadlineExceeded`, zero worker time). The
    // deadline-ranked requests ride it out.
    let shed_queue = AdmissionQueue::with_policy(
        xsum::core::EngineBackend::new(g.clone(), SummaryEngine::new()),
        AdmissionConfig {
            queue_bound: 256,
            max_batch: 16,
            linger_tickets: 64,
        },
        OverloadPolicy {
            shed_watermark: 8,
            degrade_watermark: 0,
        },
    );
    let ranked: Vec<_> = inputs
        .iter()
        .take(4)
        .enumerate()
        .map(|(i, input)| {
            shed_queue
                .submit_with_deadline(input.clone(), method, i as u64)
                .expect("live")
        })
        .collect();
    let unranked: Vec<_> = inputs
        .iter()
        .take(16)
        .map(|input| shed_queue.submit(input.clone(), method).expect("live"))
        .collect();
    let ranked_served = ranked
        .into_iter()
        .map(|t| t.wait_meta())
        .filter(|(r, _)| r.is_ok())
        .count();
    let (mut unranked_served, mut unranked_shed) = (0usize, 0usize);
    for ticket in unranked {
        match ticket.wait_meta().0 {
            Ok(_) => unranked_served += 1,
            Err(AdmissionError::DeadlineExceeded) => unranked_shed += 1,
            Err(other) => panic!("unexpected shed-section outcome: {other}"),
        }
    }
    assert_eq!(ranked_served, 4, "deadline-ranked work survives shedding");
    println!(
        "load shedding: watermark 8 — all {ranked_served} ranked served; \
         unranked backlog {unranked_served} served / {unranked_shed} shed ({} total shed)\n",
        shed_queue.stats().shed,
    );
    shed_queue.shutdown();

    // ── 4. Poisoned mutation, then recovery ──────────────────────────
    let frail = AdmissionQueue::for_engine(
        g.clone(),
        SummaryEngine::new(),
        AdmissionConfig {
            queue_bound: 64,
            max_batch: 16,
            linger_tickets: 1,
        },
    );
    let poisoned = frail.mutate(|_| panic!("operator error mid-mutation"));
    assert!(poisoned.is_err(), "panicked mutation surfaces as an error");
    let while_poisoned = frail.submit(inputs[0].clone(), method);
    assert!(
        matches!(while_poisoned, Err(AdmissionError::Poisoned)),
        "a poisoned queue refuses new work instead of serving incoherently",
    );
    frail
        .recover()
        .expect("resync from the last coherent snapshot");
    let revived = frail
        .submit(inputs[0].clone(), method)
        .expect("recovered queue admits")
        .wait()
        .expect("and serves");
    assert!(revived.terminal_coverage() > 0.0);
    println!(
        "poison/recover: failed barrier poisoned the queue, recover() resynced — \
         serving again ({} recovery, {} summaries post-recovery)",
        frail.stats().recoveries,
        frail.stats().completed,
    );
    frail.shutdown();
}
