//! Model-developer workflow: audit how the recommender explains itself to
//! user groups and item-popularity strata.
//!
//! Builds gender-based user-group summaries (the §III motivation: "detect
//! underlying regularities in model behavior and identify potential model
//! biases that may affect specific user groups") and the popularity
//! fairness probe of Fig. 17 (comprehensibility of explanations for
//! popular vs unpopular items).
//!
//! ```text
//! cargo run --release --example group_bias_audit
//! ```

use xsum::core::{steiner_summary, SteinerConfig, SummaryInput};
use xsum::datasets::{ml1m_scaled, popular_unpopular_items, sample_users_by_gender, Gender};
use xsum::metrics::{ExplanationView, MetricReport};
use xsum::rec::{Cafe, CafeConfig, MfConfig, MfModel, PathRecommender};

fn main() {
    let ds = ml1m_scaled(7, 0.03);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let cafe = Cafe::new(&ds.kg, &ds.ratings, &mf, CafeConfig::default());
    let g = &ds.kg.graph;

    // --- user-group audit: male vs female cohorts --------------------
    let sample = sample_users_by_gender(&ds, 12);
    println!("group\tusers\tsummary_edges\tactionability\tprivacy\tdiversity");
    for gender in [Gender::Male, Gender::Female] {
        let members: Vec<usize> = sample
            .iter()
            .copied()
            .filter(|u| ds.genders[*u] == gender)
            .collect();
        let nodes: Vec<_> = members.iter().map(|u| ds.kg.user_node(*u)).collect();
        let mut paths = Vec::new();
        for &u in &members {
            paths.extend(cafe.recommend(u, 10).paths(10));
        }
        if paths.is_empty() {
            continue;
        }
        let input = SummaryInput::user_group(&nodes, paths);
        let s = steiner_summary(g, &input, &SteinerConfig::default());
        let r = MetricReport::evaluate(g, &ExplanationView::from_subgraph(g, &s.subgraph));
        println!(
            "{:?}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}",
            gender,
            members.len(),
            s.subgraph.edge_count(),
            r.actionability,
            r.privacy,
            r.diversity
        );
    }

    // --- popularity fairness probe (Fig. 17) -------------------------
    let (popular, unpopular) = popular_unpopular_items(&ds.ratings, 8);
    println!("\nstratum\titems_with_expl\tbaseline_compr\tst_compr");
    for (label, items) in [("popular", &popular), ("unpopular", &unpopular)] {
        let mut base = 0.0;
        let mut st = 0.0;
        let mut n = 0usize;
        for &item in items {
            let node = ds.kg.item_node(item);
            // Collect every sampled user's paths to this item.
            let mut paths = Vec::new();
            for &u in &sample {
                for r in cafe.recommend(u, 10).all() {
                    if r.item == node {
                        paths.push(r.path.clone());
                    }
                }
            }
            if paths.is_empty() {
                continue;
            }
            let input = SummaryInput::item_centric(node, paths);
            base += MetricReport::evaluate(g, &ExplanationView::from_paths(&input.paths))
                .comprehensibility;
            let s = steiner_summary(g, &input, &SteinerConfig::default());
            st += MetricReport::evaluate(g, &ExplanationView::from_subgraph(g, &s.subgraph))
                .comprehensibility;
            n += 1;
        }
        if n > 0 {
            println!("{label}\t{n}\t{:.3}\t{:.3}", base / n as f64, st / n as f64);
        }
    }
    println!(
        "\nPaper's finding: baselines explain unpopular items much less\n\
         comprehensibly than popular ones; the ST summaries close that gap."
    );
}
