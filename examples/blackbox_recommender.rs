//! Summarizing a recommender that outputs *items only* — no paths.
//!
//! The paper's summarizers normally consume the explanation paths a
//! graph recommender emits, but §II notes the approach also covers
//! black-box models: "for methods that do not output paths but provide
//! recommended items and access to underlying graph data, our approach
//! can generate new path explanations based on the graph structure"
//! (and §VII lists non-graph recommenders as future work).
//!
//! This example treats the BPR-MF scorer as exactly such a black box —
//! it ranks items from embeddings and produces no paths — then:
//!
//! 1. generates hop-bounded explanation paths from the knowledge graph
//!    (`path_free_user_centric`),
//! 2. summarizes them with ST and PCST,
//! 3. exports the ST summary as Graphviz DOT for visual inspection.
//!
//! ```text
//! cargo run --example blackbox_recommender
//! ```

use xsum::core::{
    path_free_user_centric, pcst_summary, render_summary, steiner_summary, summary_to_dot,
    PathGenConfig, PcstConfig, SteinerConfig,
};
use xsum::datasets::ml1m_scaled;
use xsum::graph::NodeId;
use xsum::metrics::{ExplanationView, MetricReport};
use xsum::rec::{MfConfig, MfModel};

fn main() {
    // A small ML1M-like corpus and a black-box scorer over it.
    let ds = ml1m_scaled(7, 0.02);
    let g = &ds.kg.graph;
    println!(
        "corpus: {} users / {} items / {} entities",
        ds.kg.n_users(),
        ds.kg.n_items(),
        ds.kg.n_entities()
    );

    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let user = 3usize;
    let top: Vec<NodeId> = mf
        .top_k_items(&ds.ratings, user, 8)
        .into_iter()
        .map(|(i, _)| ds.kg.item_node(i))
        .collect();
    println!(
        "\nblack-box top-8 for user {user}: {} items, zero paths",
        top.len()
    );

    // Bridge: generate ≤3-hop weight-preferring paths from the KG.
    let input = path_free_user_centric(g, ds.kg.user_node(user), &top, &PathGenConfig::default());
    println!(
        "generated {} explanation paths covering {} terminals",
        input.paths.len(),
        input.terminal_count()
    );

    // Summarize exactly as if a path recommender had produced them.
    let st = steiner_summary(g, &input, &SteinerConfig::default());
    let pcst = pcst_summary(g, &input, &PcstConfig::default());
    for s in [&st, &pcst] {
        let view = ExplanationView::from_subgraph(g, &s.subgraph);
        let report = MetricReport::evaluate(g, &view);
        println!(
            "\n{}: {} edges, comprehensibility {:.3}, diversity {:.3}, \
             coverage {:.0}%",
            s.method,
            s.size(),
            report.comprehensibility,
            report.diversity,
            100.0 * s.terminal_coverage()
        );
    }
    println!(
        "\nST summary:\n  {}",
        render_summary(g, &st.subgraph, ds.kg.user_node(user))
    );

    // Export for rendering: `dot -Tsvg blackbox_summary.dot -o out.svg`.
    let dot = summary_to_dot(g, &st);
    let path = std::env::temp_dir().join("blackbox_summary.dot");
    std::fs::write(&path, &dot).expect("write DOT file");
    println!("\nDOT export written to {}", path.display());
}
