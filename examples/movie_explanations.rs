//! End-to-end user-centric pipeline on an ML1M-like corpus:
//! generate data → train the BPR-MF scorer → produce PGPR-style top-10
//! recommendations with explanation paths → summarize with ST and PCST →
//! score both against the raw paths with the paper's metrics.
//!
//! ```text
//! cargo run --release --example movie_explanations
//! ```

use xsum::core::{
    pcst_summary, render_path, render_summary, steiner_summary, PcstConfig, SteinerConfig,
    SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::metrics::{ExplanationView, MetricReport};
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig};

fn main() {
    // 3% of ML1M keeps this example under a second; crank it up at will.
    let ds = ml1m_scaled(42, 0.03);
    println!(
        "Corpus: {} users, {} movies, {} DBpedia-like entities, {} ratings",
        ds.kg.n_users(),
        ds.kg.n_items(),
        ds.kg.n_entities(),
        ds.ratings.n_ratings()
    );

    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());

    let user = 0usize;
    let out = pgpr.recommend(user, 10);
    println!(
        "\nTop-{} recommendations for u{user} with PGPR-style paths:",
        out.len()
    );
    for r in out.all() {
        println!("  {}", render_path(&ds.kg.graph, &r.path));
    }

    let g = &ds.kg.graph;
    let input = SummaryInput::user_centric(ds.kg.user_node(user), out.paths(10));

    let st = steiner_summary(
        g,
        &input,
        &SteinerConfig {
            lambda: 1.0,
            delta: 1.0,
        },
    );
    let pcst = pcst_summary(g, &input, &PcstConfig::default());

    println!("\nST summary ({} edges):", st.subgraph.edge_count());
    println!(
        "  {}",
        render_summary(g, &st.subgraph, ds.kg.user_node(user))
    );
    println!("\nPCST summary ({} edges):", pcst.subgraph.edge_count());
    println!(
        "  {}",
        render_summary(g, &pcst.subgraph, ds.kg.user_node(user))
    );

    println!("\nmethod\tsize\tcomprehensibility\tactionability\tdiversity\tprivacy");
    for (name, view) in [
        ("paths", ExplanationView::from_paths(&input.paths)),
        ("ST", ExplanationView::from_subgraph(g, &st.subgraph)),
        ("PCST", ExplanationView::from_subgraph(g, &pcst.subgraph)),
    ] {
        let r = MetricReport::evaluate(g, &view);
        println!(
            "{name}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            r.size, r.comprehensibility, r.actionability, r.diversity, r.privacy
        );
    }
}
