//! Item-provider workflow: "why is my item being recommended?"
//!
//! Builds the item-centric summary of §III for the most-recommended item
//! in a sampled cohort — the consolidated view that lets providers see
//! "the collective reasons behind the item's recommendations, and what
//! key features appeal to users".
//!
//! ```text
//! cargo run --release --example provider_dashboard
//! ```

use xsum::core::{
    gw_pcst_summary, pcst_summary, render_summary, steiner_summary, PcstConfig, SteinerConfig,
    SummaryInput,
};
use xsum::datasets::ml1m_scaled;
use xsum::graph::{FxHashMap, NodeId};
use xsum::metrics::{ExplanationView, MetricReport};
use xsum::rec::{MfConfig, MfModel, PathRecommender, Pgpr, PgprConfig};

fn main() {
    let ds = ml1m_scaled(11, 0.03);
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let pgpr = Pgpr::new(&ds.kg, &ds.ratings, &mf, PgprConfig::default());
    let g = &ds.kg.graph;

    // Find the item recommended to the most users in a 40-user cohort.
    let mut per_item: FxHashMap<NodeId, Vec<xsum::graph::LoosePath>> = FxHashMap::default();
    for u in 0..ds.kg.n_users().min(40) {
        for r in pgpr.recommend(u, 10).all() {
            per_item.entry(r.item).or_default().push(r.path.clone());
        }
    }
    let (item, paths) = per_item
        .into_iter()
        .max_by_key(|(n, paths)| (paths.len(), std::cmp::Reverse(n.0)))
        .expect("some item was recommended");
    println!(
        "Most-recommended item: {} (recommended to {} users)",
        g.label(item),
        paths.len()
    );

    let input = SummaryInput::item_centric(item, paths);
    println!(
        "Item-centric terminals: {} (the item + its audience)",
        input.terminal_count()
    );

    for (name, summary) in [
        (
            "ST   ",
            steiner_summary(g, &input, &SteinerConfig::default()),
        ),
        ("PCST ", pcst_summary(g, &input, &PcstConfig::default())),
        ("GW   ", gw_pcst_summary(g, &input, &PcstConfig::default())),
    ] {
        let r = MetricReport::evaluate(g, &ExplanationView::from_subgraph(g, &summary.subgraph));
        println!(
            "\n{name} {} edges | comprehensibility {:.3} | privacy {:.3} | coverage {:.0}%",
            summary.subgraph.edge_count(),
            r.comprehensibility,
            r.privacy,
            100.0 * summary.terminal_coverage()
        );
        println!("  {}", render_summary(g, &summary.subgraph, item));
    }
}
