//! `cargo run --bin xlint` — the repo-invariant lint engine.
//!
//! Thin CLI over [`xsum_bench::lint`]: scans the workspace sources,
//! prints every finding, and exits non-zero when any survive. The
//! same scan is available as `repro lint` and runs in CI's
//! `static-analysis` job; `xlint --rules` lists the rules.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--rules" || a == "-r") {
        for rule in xsum_bench::lint::RULES {
            let allow = if rule.allowable {
                "allowlistable"
            } else {
                "not allowlistable"
            };
            println!("{:<26} {} [{}]", rule.name, rule.summary, allow);
        }
        return ExitCode::SUCCESS;
    }

    // `cargo run` sets CARGO_MANIFEST_DIR to the workspace root (the
    // root package); a direct binary invocation falls back to cwd.
    let root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    match xsum_bench::lint::lint_workspace(&root) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{finding}\n");
            }
            println!(
                "xlint: {} file(s) scanned, {} finding(s)",
                report.files_scanned,
                report.findings.len()
            );
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xlint: scan failed: {e}");
            ExitCode::FAILURE
        }
    }
}
