//! `xsum` — command-line summary explanations.
//!
//! The downstream-user entry point: point it at a MovieLens-format
//! corpus (or let it generate the synthetic ML1M-like one), pick a
//! recommender and a summarization method, and get the explanation —
//! rendered as text, TSV, or Graphviz DOT.
//!
//! ```text
//! xsum --user 42                                # synthetic corpus, PGPR + ST
//! xsum --ratings ratings.dat --attributes a.tsv --user 7 --method pcst
//! xsum --user 3 --recommender itemknn --k 5 --format dot > summary.dot
//! xsum --item 12 --method st --lambda 100       # item-centric summary
//! ```
//!
//! Flags:
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--ratings PATH` | (synthetic) | MovieLens `ratings.dat` |
//! | `--users PATH` | — | MovieLens `users.dat` (genders) |
//! | `--attributes PATH` | — | item-attribute TSV |
//! | `--scale F` | 0.05 | synthetic corpus scale when no `--ratings` |
//! | `--seed N` | 42 | RNG seed |
//! | `--user N` / `--item N` | user 0 | focus of the summary |
//! | `--recommender R` | pgpr | pgpr, cafe, plm, pearlm, itemknn, mostpop, blackbox |
//! | `--method M` | st | st (Mehlhorn closure), st-kmb (paper-exact Algorithm 1), pcst, gw |
//! | `--lambda F` | 1.0 | Eq. 1 path boost for ST |
//! | `--k N` | 10 | top-k recommendations to summarize |
//! | `--format F` | text | text, tsv, dot, overlay |

use std::path::PathBuf;
use std::process::ExitCode;

use xsum::core::{
    gw_pcst_summary, overlay_to_dot, path_free_user_centric, pcst_summary, render_path,
    render_summary, steiner_summary, steiner_summary_fast, summary_to_dot, summary_to_tsv,
    PathGenConfig, PcstConfig, SteinerConfig, Summary, SummaryInput,
};
use xsum::datasets::{load_movielens, ml1m_scaled, Dataset};
use xsum::graph::{LoosePath, NodeId};
use xsum::rec::{
    Cafe, CafeConfig, ItemKnn, ItemKnnConfig, MfConfig, MfModel, MostPop, PathRecommender, Pearlm,
    Pgpr, PgprConfig, Plm, PlmConfig,
};

#[derive(Debug)]
struct Args {
    ratings: Option<PathBuf>,
    users_file: Option<PathBuf>,
    attributes: Option<PathBuf>,
    scale: f64,
    seed: u64,
    user: Option<usize>,
    item: Option<usize>,
    recommender: String,
    method: String,
    lambda: f64,
    k: usize,
    format: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            ratings: None,
            users_file: None,
            attributes: None,
            scale: 0.05,
            seed: 42,
            user: None,
            item: None,
            recommender: "pgpr".into(),
            method: "st".into(),
            lambda: 1.0,
            k: 10,
            format: "text".into(),
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut a = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |name: &str| -> Result<String, String> {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--ratings" => a.ratings = Some(PathBuf::from(value("--ratings")?)),
            "--users" => a.users_file = Some(PathBuf::from(value("--users")?)),
            "--attributes" => a.attributes = Some(PathBuf::from(value("--attributes")?)),
            "--scale" => {
                a.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--seed" => {
                a.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--user" => {
                a.user = Some(
                    value("--user")?
                        .parse()
                        .map_err(|e| format!("--user: {e}"))?,
                )
            }
            "--item" => {
                a.item = Some(
                    value("--item")?
                        .parse()
                        .map_err(|e| format!("--item: {e}"))?,
                )
            }
            "--recommender" => a.recommender = value("--recommender")?,
            "--method" => a.method = value("--method")?,
            "--lambda" => {
                a.lambda = value("--lambda")?
                    .parse()
                    .map_err(|e| format!("--lambda: {e}"))?
            }
            "--k" => a.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--format" => a.format = value("--format")?,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += if flag == "--help" || flag == "-h" {
            1
        } else {
            2
        };
    }
    if a.user.is_some() && a.item.is_some() {
        return Err("--user and --item are mutually exclusive".into());
    }
    Ok(a)
}

fn load(a: &Args) -> Result<Dataset, String> {
    match &a.ratings {
        Some(path) => load_movielens(
            "cli",
            path,
            a.users_file.as_deref(),
            a.attributes.as_deref(),
        )
        .map_err(|e| format!("loading corpus: {e}")),
        None => Ok(ml1m_scaled(a.seed, a.scale)),
    }
}

/// The chosen recommender as a per-user path source, built once.
fn make_path_source<'a>(
    a: &'a Args,
    ds: &'a Dataset,
    mf: &'a MfModel,
) -> Result<Box<dyn Fn(usize) -> Vec<LoosePath> + 'a>, String> {
    let k = a.k;
    Ok(match a.recommender.as_str() {
        "pgpr" => {
            let r = Pgpr::new(&ds.kg, &ds.ratings, mf, PgprConfig::default());
            Box::new(move |u| r.recommend(u, k).paths(k))
        }
        "cafe" => {
            let r = Cafe::new(&ds.kg, &ds.ratings, mf, CafeConfig::default());
            Box::new(move |u| r.recommend(u, k).paths(k))
        }
        "plm" => {
            let r = Plm::new(&ds.kg, &ds.ratings, mf, PlmConfig::default());
            Box::new(move |u| r.recommend(u, k).paths(k))
        }
        "pearlm" => {
            let r = Pearlm::new(&ds.kg, &ds.ratings, mf, PlmConfig::default());
            Box::new(move |u| r.recommend(u, k).paths(k))
        }
        "itemknn" => {
            let r = ItemKnn::new(&ds.kg, &ds.ratings, &ItemKnnConfig::default());
            Box::new(move |u| r.recommend(u, k).paths(k))
        }
        "mostpop" => {
            let r = MostPop::new(&ds.kg, &ds.ratings);
            Box::new(move |u| r.recommend(u, k).paths(k))
        }
        "blackbox" => Box::new(move |u| {
            // Items-only model: rank with MF, generate paths from the KG.
            let items: Vec<NodeId> = mf
                .top_k_items(&ds.ratings, u, k)
                .into_iter()
                .map(|(i, _)| ds.kg.item_node(i))
                .collect();
            path_free_user_centric(
                &ds.kg.graph,
                ds.kg.user_node(u),
                &items,
                &PathGenConfig::default(),
            )
            .paths
        }),
        other => return Err(format!("unknown recommender {other}")),
    })
}

/// Paths of every user whose top-k contains `item`.
fn item_paths(
    source: &dyn Fn(usize) -> Vec<LoosePath>,
    ds: &Dataset,
    item: usize,
) -> Vec<LoosePath> {
    let node = ds.kg.item_node(item);
    let mut paths = Vec::new();
    for u in 0..ds.kg.n_users() {
        for p in source(u) {
            if p.target() == node {
                paths.push(p);
            }
        }
        if paths.len() >= 64 {
            break; // enough evidence for a summary
        }
    }
    paths
}

fn summarize(a: &Args, ds: &Dataset, input: &SummaryInput) -> Result<Summary, String> {
    let g = &ds.kg.graph;
    let st_cfg = SteinerConfig {
        lambda: a.lambda,
        ..SteinerConfig::default()
    };
    match a.method.as_str() {
        // The default ST path is the Mehlhorn closure: the §V-B quality
        // sweep (`repro quality_stfast`) shows its deltas vs KMB are
        // noise, at a fraction of the cost. `st-kmb` keeps the
        // paper-exact Algorithm 1 as the fidelity reference.
        "st" => Ok(steiner_summary_fast(g, input, &st_cfg)),
        "st-kmb" => Ok(steiner_summary(g, input, &st_cfg)),
        "pcst" => Ok(pcst_summary(g, input, &PcstConfig::default())),
        "gw" => Ok(gw_pcst_summary(g, input, &PcstConfig::default())),
        other => Err(format!("unknown method {other} (st, st-kmb, pcst, gw)")),
    }
}

fn run(a: &Args) -> Result<String, String> {
    let ds = load(a)?;
    let mf = MfModel::train(&ds.kg, &ds.ratings, &MfConfig::default());
    let g = &ds.kg.graph;

    let source = make_path_source(a, &ds, &mf)?;
    let (input, focus) = match (a.user, a.item) {
        (_, None) => {
            let user = a.user.unwrap_or(0);
            if user >= ds.kg.n_users() {
                return Err(format!(
                    "user {user} out of range (corpus has {})",
                    ds.kg.n_users()
                ));
            }
            let paths = source(user);
            if paths.is_empty() {
                return Err(format!("no recommendations produced for user {user}"));
            }
            let node = ds.kg.user_node(user);
            (SummaryInput::user_centric(node, paths), node)
        }
        (None, Some(item)) => {
            if item >= ds.kg.n_items() {
                return Err(format!(
                    "item {item} out of range (corpus has {})",
                    ds.kg.n_items()
                ));
            }
            let paths = item_paths(&source, &ds, item);
            if paths.is_empty() {
                return Err(format!("item {item} appears in no user's top-{}", a.k));
            }
            let node = ds.kg.item_node(item);
            (SummaryInput::item_centric(node, paths), node)
        }
        _ => unreachable!("validated in parse_args"),
    };

    let summary = summarize(a, &ds, &input)?;
    let out = match a.format.as_str() {
        "text" => {
            let mut s = String::new();
            s.push_str(&format!(
                "# {} {} summary ({} input paths, {} terminals, {} edges)\n",
                summary.method,
                input.scenario.name(),
                input.paths.len(),
                input.terminal_count(),
                summary.size()
            ));
            for p in &input.paths {
                s.push_str(&format!("path: {}\n", render_path(g, p)));
            }
            s.push_str(&format!(
                "\nsummary: {}\n",
                render_summary(g, &summary.subgraph, focus)
            ));
            s
        }
        "tsv" => summary_to_tsv(g, &summary),
        "dot" => summary_to_dot(g, &summary),
        "overlay" => overlay_to_dot(g, &input.paths, &summary),
        other => return Err(format!("unknown format {other} (text, tsv, dot, overlay)")),
    };
    Ok(out)
}

const USAGE: &str = "usage: xsum [--ratings PATH [--users PATH] [--attributes PATH]] \
[--scale F] [--seed N] (--user N | --item N) [--recommender pgpr|cafe|plm|pearlm|itemknn|mostpop|blackbox] \
[--method st|st-kmb|pcst|gw] [--lambda F] [--k N] [--format text|tsv|dot|overlay]";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) if e == "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_parse() {
        let a = parse_args(&[]).unwrap();
        assert_eq!(a.recommender, "pgpr");
        assert_eq!(a.method, "st");
        assert_eq!(a.k, 10);
    }

    #[test]
    fn rejects_user_and_item_together() {
        let e = parse_args(&argv(&["--user", "1", "--item", "2"])).unwrap_err();
        assert!(e.contains("mutually exclusive"));
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse_args(&argv(&["--frobnicate", "1"])).is_err());
    }

    #[test]
    fn end_to_end_text_summary() {
        let a = Args {
            scale: 0.02,
            user: Some(0),
            k: 5,
            ..Args::default()
        };
        let out = run(&a).unwrap();
        assert!(out.contains("ST-fast user-centric summary"));
        assert!(out.contains("summary: "));
    }

    #[test]
    fn end_to_end_kmb_fidelity_option() {
        // `st-kmb` keeps the paper-exact Algorithm 1 reachable.
        let a = Args {
            scale: 0.02,
            user: Some(0),
            method: "st-kmb".into(),
            k: 5,
            ..Args::default()
        };
        let out = run(&a).unwrap();
        assert!(out.contains("ST user-centric summary"));
    }

    #[test]
    fn end_to_end_dot_via_blackbox() {
        let a = Args {
            scale: 0.02,
            user: Some(1),
            recommender: "blackbox".into(),
            format: "dot".into(),
            k: 5,
            ..Args::default()
        };
        let out = run(&a).unwrap();
        assert!(out.starts_with("graph summary {"));
    }

    #[test]
    fn end_to_end_item_centric_pcst() {
        let a = Args {
            scale: 0.02,
            item: Some(0),
            method: "pcst".into(),
            recommender: "itemknn".into(),
            k: 5,
            ..Args::default()
        };
        match run(&a) {
            Ok(out) => assert!(out.contains("PCST item-centric summary")),
            Err(e) => assert!(e.contains("appears in no user's"), "unexpected error {e}"),
        }
    }

    #[test]
    fn out_of_range_user_errors() {
        let a = Args {
            scale: 0.02,
            user: Some(10_000_000),
            ..Args::default()
        };
        assert!(run(&a).unwrap_err().contains("out of range"));
    }
}
