//! # xsum — path-based summary explanations for graph recommenders
//!
//! A production-grade Rust reproduction of *"Path-based summary
//! explanations for graph recommenders"* (Pla Karidi & Pitoura,
//! ICDE 2025): summary explanations that tell a user — or an item
//! provider, or a whole user/item group — *why* a set of recommendations
//! was made, by summarizing the individual explanation paths of a
//! graph-based recommender into one small, weakly connected subgraph via
//! Steiner-tree and prize-collecting Steiner-tree algorithms.
//!
//! ## Crate map
//!
//! * [`graph`] — typed property-graph substrate (storage, Dijkstra, MST,
//!   union-find, connectivity, paths and subgraphs);
//! * [`kg`] — the knowledge-based recommendation graph of §III (rating
//!   matrix, rating/recency weight functions, graph statistics);
//! * [`datasets`] — synthetic ML1M / LFM1M / Table III corpora calibrated
//!   to the paper's statistics;
//! * [`rec`] — path-producing baseline recommenders (BPR-MF scorer plus
//!   PGPR/CAFE/PLM/PEARLM-style explainers);
//! * [`core`] — the paper's contribution: the four summarization
//!   scenarios, Eq. 1 weighting, Algorithm 1 (ST), Algorithm 2 (PCST),
//!   the Goemans–Williamson 2-approximation, the exact Dreyfus–Wagner
//!   oracle, incremental ST/PCST sessions, path-free generation for
//!   black-box recommenders, DOT/TSV export, and the Table I renderer;
//! * [`metrics`] — the §V-B quality metrics and performance
//!   instrumentation.
//!
//! ## Quickstart
//!
//! ```
//! use xsum::core::{table1_example, render_summary};
//!
//! // The paper's worked example: three explanation paths (13 edges)
//! // summarized into a 6-edge tree.
//! let ex = table1_example();
//! let summary = ex.summarize();
//! assert_eq!(ex.total_input_length(), 13);
//! assert_eq!(summary.edge_count(), 6);
//! println!("{}", render_summary(&ex.graph, &summary, ex.user1));
//! ```
//!
//! For the end-to-end pipeline (dataset → recommender → summary →
//! metrics) see `examples/movie_explanations.rs`; to regenerate the
//! paper's tables and figures run the `repro` binary of `xsum-bench`;
//! for one-off summaries from the command line use the `xsum` binary
//! (`cargo run --bin xsum -- --user 42 --format dot`).

#![forbid(unsafe_code)]

pub use xsum_core as core;
pub use xsum_datasets as datasets;
pub use xsum_graph as graph;
pub use xsum_kg as kg;
pub use xsum_metrics as metrics;
pub use xsum_rec as rec;
