//! Verbalization of explanations — the paper's Table I and user-study
//! stimuli.
//!
//! * [`render_path`] verbalizes an individual explanation path:
//!   `"u94 watched item 612 related to external 81 related to item 2405"`;
//! * [`render_summary`] verbalizes a summary subgraph from a focus node:
//!   `"u94 connects to item 2215 via u2772; is directly connected to
//!   item 682"`;
//! * [`table1_example`] reconstructs the paper's worked example — User 1,
//!   the Theo Angelopoulos filmography, and the three explanation paths of
//!   Table I whose 13 edges summarize to 6.

use std::collections::VecDeque;

use xsum_graph::{EdgeKind, FxHashMap, Graph, LoosePath, NodeId, NodeKind, Subgraph};

use crate::input::SummaryInput;
use crate::steiner::steiner_tree;
use crate::weighting::adjusted_weights_of_paths;

fn node_name(g: &Graph, n: NodeId) -> String {
    let label = g.label(n);
    if label.is_empty() {
        format!("{} {}", g.kind(n).label(), n.0)
    } else {
        label.to_string()
    }
}

/// Verb of a hop: user→item interactions read "watched", item→user
/// "watched by", attribute hops "related to", hallucinated hops are
/// flagged as unverified. `from` is the node the walk leaves through this
/// hop, so direction-sensitive verbs read naturally either way.
fn hop_verb(g: &Graph, from: NodeId, hop: Option<xsum_graph::EdgeId>) -> &'static str {
    match hop {
        Some(e) => {
            let edge = g.edge(e);
            match edge.kind {
                EdgeKind::Interaction if from == edge.src => "watched",
                EdgeKind::Interaction => "watched by",
                EdgeKind::Attribute => "related to",
            }
        }
        None => "linked to (unverified)",
    }
}

/// One sentence per explanation path, in the paper's user-study phrasing.
pub fn render_path(g: &Graph, p: &LoosePath) -> String {
    let mut s = node_name(g, p.nodes()[0]);
    for (idx, hop) in p.hops().iter().enumerate() {
        s.push(' ');
        s.push_str(hop_verb(g, p.nodes()[idx], *hop));
        s.push(' ');
        s.push_str(&node_name(g, p.nodes()[idx + 1]));
    }
    s
}

/// Verbalize a summary subgraph as seen from `focus` (the user of a
/// user-centric summary, the item of an item-centric one).
///
/// Every other *terminal-like* node of interest — by default every item
/// node in the subgraph — is reported with its BFS route from the focus:
/// `"connects to X via A, B"`, or `"is directly connected to X"`, or
/// `"also mentions X (not connected)"` for isolated nodes.
pub fn render_summary(g: &Graph, sub: &Subgraph, focus: NodeId) -> String {
    // BFS tree over the subgraph's edges.
    let mut parent: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    let mut depth: FxHashMap<NodeId, usize> = FxHashMap::default();
    if sub.contains_node(focus) {
        depth.insert(focus, 0);
        let mut q = VecDeque::new();
        q.push_back(focus);
        while let Some(v) = q.pop_front() {
            let d = depth[&v];
            let mut nexts: Vec<NodeId> = g
                .neighbors(v)
                .iter()
                .filter(|(nb, e)| sub.contains_edge(*e) && !depth.contains_key(nb))
                .map(|(nb, _)| *nb)
                .collect();
            nexts.sort_unstable();
            nexts.dedup();
            for nb in nexts {
                depth.insert(nb, d + 1);
                parent.insert(nb, v);
                q.push_back(nb);
            }
        }
    }

    let mut clauses: Vec<String> = Vec::new();
    let mut targets: Vec<NodeId> = sub
        .sorted_nodes()
        .into_iter()
        .filter(|n| *n != focus && g.kind(*n) == NodeKind::Item)
        .collect();
    targets.sort_unstable();
    for t in targets {
        match depth.get(&t) {
            Some(1) => clauses.push(format!("is directly connected to {}", node_name(g, t))),
            Some(_) => {
                // Intermediate nodes on the BFS route, nearest-first.
                let mut via = Vec::new();
                let mut cur = parent[&t];
                while cur != focus {
                    via.push(node_name(g, cur));
                    cur = parent[&cur];
                }
                via.reverse();
                clauses.push(format!(
                    "connects to {} via {}",
                    node_name(g, t),
                    via.join(", ")
                ));
            }
            None => clauses.push(format!("also mentions {} (not connected)", node_name(g, t))),
        }
    }
    if clauses.is_empty() {
        return format!("{} has no summarized connections", node_name(g, focus));
    }
    format!("{} {}", node_name(g, focus), clauses.join("; "))
}

/// The reconstructed Table I scenario.
#[derive(Debug, Clone)]
pub struct Table1Example {
    /// The mini knowledge graph of Fig. 1 (users, Angelopoulos movies,
    /// Drama genre, the director entity).
    pub graph: Graph,
    /// User 1 — the explainee.
    pub user1: NodeId,
    /// Items A, B, C (Eternity and a Day / The Beekeeper / The Suspended
    /// Step of the Stork).
    pub items: [NodeId; 3],
    /// The three explanation paths `P_{1,A}`, `P_{1,B}`, `P_{1,C}`.
    pub paths: Vec<LoosePath>,
}

impl Table1Example {
    /// The assembled user-centric summarization input.
    pub fn input(&self) -> SummaryInput {
        SummaryInput::user_centric(self.user1, self.paths.clone())
    }

    /// Run the ST summarizer exactly as in the paper's example (λ = 1,
    /// δ = 1) and return the summary subgraph.
    pub fn summarize(&self) -> Subgraph {
        let input = self.input();
        let weights = adjusted_weights_of_paths(&self.graph, &input.paths, input.anchor_count, 1.0);
        let costs = Graph::cost_transform(&weights, 1.0);
        steiner_tree(&self.graph, &costs, &input.terminals)
    }

    /// Total length of the individual explanations (13 in the paper).
    pub fn total_input_length(&self) -> usize {
        self.paths.iter().map(|p| p.len()).sum()
    }
}

/// Build the Table I / Fig. 1 example.
pub fn table1_example() -> Table1Example {
    let mut g = Graph::new();
    let user1 = g.add_labeled_node(NodeKind::User, "User 1");
    let user2 = g.add_labeled_node(NodeKind::User, "User 2");
    let landscape = g.add_labeled_node(NodeKind::Item, "Landscape in the Mist");
    let travelling = g.add_labeled_node(NodeKind::Item, "The Travelling Players");
    let eternity = g.add_labeled_node(NodeKind::Item, "Eternity and a Day");
    let beekeeper = g.add_labeled_node(NodeKind::Item, "The Beekeeper");
    let suspended = g.add_labeled_node(NodeKind::Item, "The Suspended Step of the Stork");
    let ulysses = g.add_labeled_node(NodeKind::Item, "Ulysses' Gaze");
    let weeping = g.add_labeled_node(NodeKind::Item, "The Weeping Meadow");
    let dust = g.add_labeled_node(NodeKind::Item, "The Dust of Time");
    let drama = g.add_labeled_node(NodeKind::Entity, "Drama");
    let theo = g.add_labeled_node(NodeKind::Entity, "Theo Angelopoulos");

    let rate = 5.0;
    // User 1's history.
    g.add_edge(user1, landscape, rate, EdgeKind::Interaction);
    g.add_edge(user1, ulysses, rate, EdgeKind::Interaction);
    g.add_edge(user1, weeping, rate, EdgeKind::Interaction);
    // User 2's history (the collaborative hop of P_{1,A}).
    g.add_edge(user2, landscape, rate, EdgeKind::Interaction);
    g.add_edge(user2, travelling, rate, EdgeKind::Interaction);
    // Attribute edges (w_A = 0, as in the paper's setup).
    g.add_edge(travelling, drama, 0.0, EdgeKind::Attribute);
    g.add_edge(eternity, drama, 0.0, EdgeKind::Attribute);
    g.add_edge(suspended, drama, 0.0, EdgeKind::Attribute);
    g.add_edge(ulysses, drama, 0.0, EdgeKind::Attribute);
    g.add_edge(ulysses, theo, 0.0, EdgeKind::Attribute);
    g.add_edge(beekeeper, theo, 0.0, EdgeKind::Attribute);
    g.add_edge(weeping, theo, 0.0, EdgeKind::Attribute);
    g.add_edge(dust, theo, 0.0, EdgeKind::Attribute);
    g.add_edge(dust, drama, 0.0, EdgeKind::Attribute);

    // Table I's explanation paths (total length 13).
    let p_a = LoosePath::ground(
        &g,
        vec![user1, landscape, user2, travelling, drama, eternity],
    );
    let p_b = LoosePath::ground(&g, vec![user1, ulysses, theo, beekeeper]);
    let p_c = LoosePath::ground(&g, vec![user1, weeping, theo, dust, drama, suspended]);
    debug_assert!(p_a.is_faithful() && p_b.is_faithful() && p_c.is_faithful());

    Table1Example {
        graph: g,
        user1,
        items: [eternity, beekeeper, suspended],
        paths: vec![p_a, p_b, p_c],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_paths_total_13_edges() {
        let ex = table1_example();
        assert_eq!(ex.total_input_length(), 13);
        assert_eq!(ex.paths[0].len(), 5);
        assert_eq!(ex.paths[1].len(), 3);
        assert_eq!(ex.paths[2].len(), 5);
    }

    #[test]
    fn table1_summary_achieves_length_6() {
        let ex = table1_example();
        let sub = ex.summarize();
        assert_eq!(
            sub.edge_count(),
            6,
            "the paper's summarization reduces 13 edges to 6"
        );
        // All terminals covered.
        assert!(sub.contains_node(ex.user1));
        for i in ex.items {
            assert!(sub.contains_node(i));
        }
        assert!(sub.is_tree(&ex.graph));
    }

    #[test]
    fn table1_summary_keeps_the_key_entities() {
        let ex = table1_example();
        let sub = ex.summarize();
        // "Drama and Theo Angelopoulos are key nodes" (§III).
        let names: Vec<String> = sub
            .sorted_nodes()
            .iter()
            .map(|n| ex.graph.label(*n).to_string())
            .collect();
        assert!(names.iter().any(|s| s == "Drama"));
        assert!(names.iter().any(|s| s == "Theo Angelopoulos"));
        // The clutter of P_{1,C} is gone.
        assert!(!names.iter().any(|s| s == "The Dust of Time"));
        assert!(!names.iter().any(|s| s == "The Weeping Meadow"));
    }

    #[test]
    fn path_rendering_matches_paper_phrasing() {
        let ex = table1_example();
        let text = render_path(&ex.graph, &ex.paths[1]);
        assert_eq!(
            text,
            "User 1 watched Ulysses' Gaze related to Theo Angelopoulos related to The Beekeeper"
        );
    }

    #[test]
    fn summary_rendering_mentions_all_items() {
        let ex = table1_example();
        let sub = ex.summarize();
        let text = render_summary(&ex.graph, &sub, ex.user1);
        assert!(text.starts_with("User 1"));
        for i in ex.items {
            assert!(
                text.contains(ex.graph.label(i)),
                "summary text must mention {}",
                ex.graph.label(i)
            );
        }
        assert!(text.contains("via"));
    }

    #[test]
    fn rendering_handles_unlabeled_nodes_and_hallucinations() {
        let mut g = Graph::new();
        let u = g.add_node(NodeKind::User);
        let i = g.add_node(NodeKind::Item);
        // No edge between them → hallucinated hop.
        let p = LoosePath::ground(&g, vec![u, i]);
        let text = render_path(&g, &p);
        assert_eq!(text, "user 0 linked to (unverified) item 1");
    }

    #[test]
    fn empty_summary_text() {
        let mut g = Graph::new();
        let u = g.add_labeled_node(NodeKind::User, "solo");
        let sub = Subgraph::new();
        assert_eq!(
            render_summary(&g, &sub, u),
            "solo has no summarized connections"
        );
        let _ = g.add_node(NodeKind::Item);
    }

    #[test]
    fn disconnected_item_reported_as_mention() {
        let mut g = Graph::new();
        let u = g.add_labeled_node(NodeKind::User, "u");
        let i1 = g.add_labeled_node(NodeKind::Item, "near");
        let i2 = g.add_labeled_node(NodeKind::Item, "far");
        let e = g.add_edge(u, i1, 1.0, EdgeKind::Interaction);
        let mut sub = Subgraph::from_edges(&g, [e]);
        sub.insert_node(i2);
        let text = render_summary(&g, &sub, u);
        assert!(text.contains("is directly connected to near"));
        assert!(text.contains("also mentions far (not connected)"));
    }
}
