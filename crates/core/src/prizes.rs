//! Alternative PCST prize-assignment policies.
//!
//! §VII lists as future work "testing additional PCST prize assignment
//! policies and considering incorporating node centrality measures". This
//! module implements that extension:
//!
//! * [`PrizePolicy::Uniform`] — the §V-A experimental policy (`α` for
//!   terminals, `β` otherwise);
//! * [`PrizePolicy::PathFrequency`] — non-terminals earn prize
//!   proportional to how many input explanation paths traverse them, so
//!   the growth prefers the hubs the individual explanations already
//!   agree on (the same intuition as Eq. 1, moved from edges to nodes);
//! * [`PrizePolicy::DegreeCentrality`] / [`PrizePolicy::Betweenness`] /
//!   [`PrizePolicy::PageRank`] — non-terminals earn prize proportional
//!   to an importance score, following the importance-driven
//!   summarization line the paper cites (\[45\]).

use xsum_graph::{
    betweenness_centrality, degree_centrality, pagerank, FxHashMap, FxHashSet, Graph, NodeId,
    PageRankConfig,
};

use crate::input::SummaryInput;
use crate::pcst::{build_scope, pcst_grow_with_prizes, PcstConfig};
use crate::summary::Summary;

/// How node prizes are assigned during PCST growth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrizePolicy {
    /// `p(v) = α` for terminals, `β` otherwise (the paper's experiments).
    Uniform,
    /// Terminals keep `α`; a non-terminal `v` earns
    /// `β + weight · freq(v) / |P|` where `freq(v)` counts the input
    /// paths traversing `v`.
    PathFrequency {
        /// Scale of the frequency bonus.
        weight: f64,
    },
    /// Terminals keep `α`; non-terminals earn `β + weight · degree-centrality`.
    DegreeCentrality {
        /// Scale of the centrality bonus.
        weight: f64,
    },
    /// Terminals keep `α`; non-terminals earn `β + weight · betweenness`
    /// (sampled Brandes with `sources` BFS sources).
    Betweenness {
        /// Scale of the centrality bonus.
        weight: f64,
        /// BFS source budget for the Brandes estimate.
        sources: usize,
    },
    /// Terminals keep `α`; non-terminals earn `β + weight · n · PR(v)`
    /// (PageRank scaled by the node count so the bonus is comparable to
    /// the degree-centrality policy on graphs of any size).
    PageRank {
        /// Scale of the importance bonus.
        weight: f64,
    },
}

/// Materialized per-node prizes for one summarization input.
pub fn node_prizes(
    g: &Graph,
    input: &SummaryInput,
    cfg: &PcstConfig,
    policy: PrizePolicy,
) -> FxHashMap<NodeId, f64> {
    let term_set: FxHashSet<NodeId> = input.terminals.iter().copied().collect();
    let mut prizes: FxHashMap<NodeId, f64> = FxHashMap::default();
    for &t in &input.terminals {
        prizes.insert(t, cfg.terminal_prize);
    }
    match policy {
        PrizePolicy::Uniform => {}
        PrizePolicy::PathFrequency { weight } => {
            let mut freq: FxHashMap<NodeId, usize> = FxHashMap::default();
            for p in &input.paths {
                let mut seen: FxHashSet<NodeId> = FxHashSet::default();
                for &n in p.nodes() {
                    if seen.insert(n) {
                        *freq.entry(n).or_default() += 1;
                    }
                }
            }
            let denom = input.paths.len().max(1) as f64;
            for (n, f) in freq {
                if !term_set.contains(&n) {
                    prizes.insert(n, cfg.nonterminal_prize + weight * f as f64 / denom);
                }
            }
        }
        PrizePolicy::DegreeCentrality { weight } => {
            let dc = degree_centrality(g);
            for n in g.node_ids() {
                if !term_set.contains(&n) && dc[n.index()] > 0.0 {
                    prizes.insert(n, cfg.nonterminal_prize + weight * dc[n.index()]);
                }
            }
        }
        PrizePolicy::Betweenness { weight, sources } => {
            let bc = betweenness_centrality(g, sources);
            for n in g.node_ids() {
                if !term_set.contains(&n) && bc[n.index()] > 0.0 {
                    prizes.insert(n, cfg.nonterminal_prize + weight * bc[n.index()]);
                }
            }
        }
        PrizePolicy::PageRank { weight } => {
            let pr = pagerank(g, &PageRankConfig::default());
            let scale = g.node_count() as f64;
            for n in g.node_ids() {
                let bonus = weight * scale * pr[n.index()];
                if !term_set.contains(&n) && bonus > 0.0 {
                    prizes.insert(n, cfg.nonterminal_prize + bonus);
                }
            }
        }
    }
    prizes
}

/// [`crate::pcst_summary`] under an alternative prize policy.
pub fn pcst_summary_with_policy(
    g: &Graph,
    input: &SummaryInput,
    cfg: &PcstConfig,
    policy: PrizePolicy,
) -> Summary {
    let scope = build_scope(g, input, cfg.scope);
    let prizes = node_prizes(g, input, cfg, policy);
    let default = cfg.nonterminal_prize;
    let prize = move |n: NodeId| -> f64 { prizes.get(&n).copied().unwrap_or(default) };
    let subgraph = pcst_grow_with_prizes(g, &scope, input, cfg, &prize);
    Summary {
        method: match policy {
            PrizePolicy::Uniform => "PCST",
            PrizePolicy::PathFrequency { .. } => "PCST-freq",
            PrizePolicy::DegreeCentrality { .. } => "PCST-degree",
            PrizePolicy::Betweenness { .. } => "PCST-betweenness",
            PrizePolicy::PageRank { .. } => "PCST-pagerank",
        },
        scenario: input.scenario,
        subgraph,
        terminals: input.terminals.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcst::pcst_summary;
    use xsum_graph::LoosePath;
    use xsum_kg::{KgBuilder, KnowledgeGraph, RatingMatrix, WeightConfig};

    fn fixture() -> (KnowledgeGraph, Vec<LoosePath>) {
        let mut m = RatingMatrix::new(1, 3);
        m.rate(0, 0, 5.0, 1.0);
        let mut b = KgBuilder::new(1, 3, 2, WeightConfig::paper_default(1.0));
        b.link_item(0, 0).link_item(1, 0).link_item(2, 0);
        b.link_item(2, 1);
        let kg = b.build(&m);
        let g = &kg.graph;
        let hub = kg.entity_node(0);
        let p1 = LoosePath::ground(
            g,
            vec![kg.user_node(0), kg.item_node(0), hub, kg.item_node(1)],
        );
        let p2 = LoosePath::ground(
            g,
            vec![kg.user_node(0), kg.item_node(0), hub, kg.item_node(2)],
        );
        (kg, vec![p1, p2])
    }

    #[test]
    fn uniform_policy_matches_default_pcst() {
        let (kg, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let cfg = PcstConfig::default();
        let a = pcst_summary(&kg.graph, &input, &cfg);
        let b = pcst_summary_with_policy(&kg.graph, &input, &cfg, PrizePolicy::Uniform);
        assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
    }

    #[test]
    fn frequency_policy_rewards_shared_nodes() {
        let (kg, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let cfg = PcstConfig::default();
        let prizes = node_prizes(
            &kg.graph,
            &input,
            &cfg,
            PrizePolicy::PathFrequency { weight: 1.0 },
        );
        let hub = kg.entity_node(0);
        let shared_item = kg.item_node(0);
        // Hub and the shared anchor item appear on both paths → prize 1.0.
        assert!((prizes[&hub] - 1.0).abs() < 1e-12);
        assert!(prizes.contains_key(&shared_item)); // terminal? item 0 is not a target
                                                    // Terminals keep the terminal prize.
        assert!((prizes[&kg.user_node(0)] - cfg.terminal_prize).abs() < 1e-12);
    }

    #[test]
    fn centrality_policies_produce_valid_summaries() {
        let (kg, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let cfg = PcstConfig::default();
        for policy in [
            PrizePolicy::DegreeCentrality { weight: 0.5 },
            PrizePolicy::Betweenness {
                weight: 0.5,
                sources: usize::MAX,
            },
            PrizePolicy::PathFrequency { weight: 0.5 },
            PrizePolicy::PageRank { weight: 0.5 },
        ] {
            let s = pcst_summary_with_policy(&kg.graph, &input, &cfg, policy);
            assert_eq!(s.terminal_coverage(), 1.0, "{:?}", policy);
            assert!(s.subgraph.edge_count() < s.subgraph.node_count().max(1));
        }
    }

    #[test]
    fn method_labels_distinguish_policies() {
        let (kg, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let cfg = PcstConfig::default();
        let s = pcst_summary_with_policy(
            &kg.graph,
            &input,
            &cfg,
            PrizePolicy::PathFrequency { weight: 1.0 },
        );
        assert_eq!(s.method, "PCST-freq");
    }
}
