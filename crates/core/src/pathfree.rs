//! Generate explanation paths for recommenders that output items only.
//!
//! §II of the paper: *"for methods that do not output paths but provide
//! recommended items and access to underlying graph data, our approach
//! can generate new path explanations based on the graph structure"* —
//! and §VII lists summaries for non-graph recommenders as future work.
//! This module is that bridge: any black-box model (a plain
//! matrix-factorization scorer, a remote service, a non-graph
//! collaborative filter) becomes summarizable by grounding its top-k
//! items into hop-bounded, weight-preferring paths over the knowledge
//! graph.
//!
//! Paths are found with a layered (hop-bounded) Bellman–Ford over the
//! §IV-A weight→cost transform, so within the hop budget the generated
//! path maximizes interaction weight — the same preference the weighted
//! summarizers apply. The paper's baselines reach items "within a
//! maximum of three edges", which is the default budget.

use xsum_graph::{EdgeCosts, Graph, LoosePath, NodeId};

use crate::input::SummaryInput;

/// Parameters for path generation.
#[derive(Debug, Clone, Copy)]
pub struct PathGenConfig {
    /// Maximum number of edges per generated path (paper baselines: 3).
    pub max_hops: usize,
    /// Base edge cost of the weight→cost transform (see
    /// [`Graph::cost_transform`]).
    pub delta: f64,
    /// When an item is unreachable within `max_hops`, fall back to the
    /// unbounded shortest path instead of skipping it.
    pub fallback_unbounded: bool,
}

impl Default for PathGenConfig {
    fn default() -> Self {
        PathGenConfig {
            max_hops: 3,
            delta: 1.0,
            fallback_unbounded: true,
        }
    }
}

/// Layered Bellman–Ford from `source`: `dist[h][v]` = cheapest cost of a
/// walk source→v using exactly ≤ h edges; parents reconstruct nodes.
struct HopSearch {
    /// `dist[h * n + v]`.
    dist: Vec<f64>,
    /// Predecessor node choice per (h, v).
    parent: Vec<Option<NodeId>>,
    n: usize,
    max_hops: usize,
}

impl HopSearch {
    fn run(g: &Graph, costs: &EdgeCosts, source: NodeId, max_hops: usize) -> Self {
        let n = g.node_count();
        let layers = max_hops + 1;
        let mut dist = vec![f64::INFINITY; layers * n];
        let mut parent: Vec<Option<NodeId>> = vec![None; layers * n];
        dist[source.index()] = 0.0;
        for h in 1..layers {
            let (prev, cur) = (h - 1, h);
            // Start each layer from the previous one (a walk of ≤ h hops
            // is at least as good as one of ≤ h−1 hops).
            for v in 0..n {
                dist[cur * n + v] = dist[prev * n + v];
                parent[cur * n + v] = parent[prev * n + v];
            }
            for v in 0..n {
                let dv = dist[prev * n + v];
                if !dv.is_finite() {
                    continue;
                }
                for &(nb, e) in g.neighbors(NodeId(v as u32)) {
                    let nd = dv + costs.get(e);
                    if nd < dist[cur * n + nb.index()] {
                        dist[cur * n + nb.index()] = nd;
                        parent[cur * n + nb.index()] = Some(NodeId(v as u32));
                    }
                }
            }
        }
        HopSearch {
            dist,
            parent,
            n,
            max_hops,
        }
    }

    /// Node sequence source→t of the cheapest ≤ max_hops walk, if any.
    fn path_to(&self, source: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
        let h = self.max_hops;
        if !self.dist[h * self.n + t.index()].is_finite() {
            return None;
        }
        // Walk parents back through the layers. The parent stored at
        // layer h is the best predecessor for the ≤ h-hop walk; stepping
        // back one layer per hop terminates in ≤ max_hops steps.
        let mut nodes = vec![t];
        let mut cur = t;
        let mut layer = h;
        while cur != source {
            let p = self.parent[layer * self.n + cur.index()]?;
            nodes.push(p);
            cur = p;
            layer = layer.saturating_sub(1);
            if nodes.len() > self.max_hops + 1 {
                return None; // defensive: malformed parent chain
            }
        }
        nodes.reverse();
        Some(nodes)
    }
}

/// Generate one explanation path per reachable item for `user`.
///
/// Items unreachable within the hop budget are skipped unless
/// `fallback_unbounded` is set (then the plain weighted shortest path is
/// used, whatever its length). Items with no path at all are always
/// skipped — the caller can compare the output length with `items.len()`.
pub fn generate_explanations(
    g: &Graph,
    user: NodeId,
    items: &[NodeId],
    cfg: &PathGenConfig,
) -> Vec<LoosePath> {
    let costs = g.cost_transform_own(cfg.delta);
    let search = HopSearch::run(g, &costs, user, cfg.max_hops);
    let mut out = Vec::with_capacity(items.len());
    let mut fallback: Option<xsum_graph::DijkstraResult> = None;
    for &item in items {
        if let Some(nodes) = search.path_to(user, item) {
            out.push(LoosePath::ground(g, nodes));
            continue;
        }
        if cfg.fallback_unbounded {
            let run = fallback.get_or_insert_with(|| xsum_graph::dijkstra(g, &costs, user, &[]));
            if let Some(edges) = run.path_to(g, item) {
                let mut nodes = vec![user];
                let mut cur = user;
                for e in edges {
                    cur = g.edge(e).other(cur);
                    nodes.push(cur);
                }
                out.push(LoosePath::ground(g, nodes));
            }
        }
    }
    out
}

/// A user-centric [`SummaryInput`] for a path-free recommender: paths
/// are generated from the graph, then fed to the summarizers unchanged.
pub fn path_free_user_centric(
    g: &Graph,
    user: NodeId,
    items: &[NodeId],
    cfg: &PathGenConfig,
) -> SummaryInput {
    SummaryInput::user_centric(user, generate_explanations(g, user, items, cfg))
}

/// A user-group [`SummaryInput`] for a path-free recommender: each
/// member's recommended items are grounded into generated paths, then
/// pooled (the §III group construction over `E_D`).
pub fn path_free_user_group(
    g: &Graph,
    members: &[(NodeId, Vec<NodeId>)],
    cfg: &PathGenConfig,
) -> SummaryInput {
    let users: Vec<NodeId> = members.iter().map(|(u, _)| *u).collect();
    let mut paths = Vec::new();
    for (u, items) in members {
        paths.extend(generate_explanations(g, *u, items, cfg));
    }
    SummaryInput::user_group(&users, paths)
}

/// An item-centric [`SummaryInput`] for a path-free recommender: one
/// generated path per recommended-to user.
pub fn path_free_item_centric(
    g: &Graph,
    item: NodeId,
    users: &[NodeId],
    cfg: &PathGenConfig,
) -> SummaryInput {
    let mut paths = Vec::with_capacity(users.len());
    for &u in users {
        paths.extend(generate_explanations(g, u, &[item], cfg));
    }
    SummaryInput::item_centric(item, paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsum_graph::{EdgeKind, NodeKind};

    /// u —5— i0 —0— e —0— i1, plus a long detour u—1—i2—0—e.
    fn fixture() -> (Graph, NodeId, Vec<NodeId>) {
        let mut g = Graph::new();
        let u = g.add_node(NodeKind::User);
        let i0 = g.add_node(NodeKind::Item);
        let i1 = g.add_node(NodeKind::Item);
        let i2 = g.add_node(NodeKind::Item);
        let e = g.add_node(NodeKind::Entity);
        g.add_edge(u, i0, 5.0, EdgeKind::Interaction);
        g.add_edge(i0, e, 0.0, EdgeKind::Attribute);
        g.add_edge(e, i1, 0.0, EdgeKind::Attribute);
        g.add_edge(u, i2, 1.0, EdgeKind::Interaction);
        g.add_edge(i2, e, 0.0, EdgeKind::Attribute);
        (g, u, vec![i0, i1, i2])
    }

    #[test]
    fn generates_one_path_per_reachable_item() {
        let (g, u, items) = fixture();
        let paths = generate_explanations(&g, u, &items, &PathGenConfig::default());
        assert_eq!(paths.len(), 3);
        for (p, &i) in paths.iter().zip(items.iter()) {
            assert_eq!(p.nodes()[0], u);
            assert_eq!(*p.nodes().last().unwrap(), i);
            assert!(p.nodes().len() - 1 <= 3, "hop budget respected");
        }
    }

    #[test]
    fn paths_are_fully_grounded() {
        let (g, u, items) = fixture();
        for p in generate_explanations(&g, u, &items, &PathGenConfig::default()) {
            assert!(p.hops().iter().all(|h| h.is_some()));
        }
    }

    #[test]
    fn prefers_heavier_route_within_budget() {
        let (g, u, items) = fixture();
        // i1 is reachable via i0 (weight 5) or i2 (weight 1), both 3
        // hops; the cheaper transform cost is through i0.
        let paths = generate_explanations(&g, u, &[items[1]], &PathGenConfig::default());
        assert_eq!(paths.len(), 1);
        assert!(
            paths[0].nodes().contains(&items[0]),
            "route via the 5-star item"
        );
    }

    #[test]
    fn hop_budget_excludes_far_items() {
        let (g, u, items) = fixture();
        let cfg = PathGenConfig {
            max_hops: 1,
            fallback_unbounded: false,
            ..PathGenConfig::default()
        };
        let paths = generate_explanations(&g, u, &items, &cfg);
        // Only the directly-rated items are within one hop.
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn fallback_reaches_far_items() {
        let (g, u, items) = fixture();
        let cfg = PathGenConfig {
            max_hops: 1,
            fallback_unbounded: true,
            ..PathGenConfig::default()
        };
        let paths = generate_explanations(&g, u, &items, &cfg);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn unreachable_items_are_skipped() {
        let (mut g, u, mut items) = fixture();
        let island = g.add_node(NodeKind::Item);
        items.push(island);
        let paths = generate_explanations(&g, u, &items, &PathGenConfig::default());
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn path_free_input_feeds_summarizers() {
        use crate::steiner::{steiner_summary, SteinerConfig};
        let (g, u, items) = fixture();
        let input = path_free_user_centric(&g, u, &items, &PathGenConfig::default());
        assert_eq!(input.terminal_count(), 4); // u + 3 items
        let s = steiner_summary(&g, &input, &SteinerConfig::default());
        assert_eq!(s.terminal_coverage(), 1.0);
    }

    #[test]
    fn user_group_generation_pools_member_paths() {
        use crate::input::Scenario;
        let (g, u, items) = fixture();
        let mut g = g;
        let u2 = g.add_node(NodeKind::User);
        g.add_edge(u2, items[2], 4.0, EdgeKind::Interaction);
        let input = path_free_user_group(
            &g,
            &[(u, vec![items[0], items[1]]), (u2, vec![items[2]])],
            &PathGenConfig::default(),
        );
        assert_eq!(input.scenario, Scenario::UserGroup);
        assert_eq!(input.paths.len(), 3);
        // Terminals: both users plus the three recommended items.
        assert_eq!(input.terminal_count(), 5);
    }

    #[test]
    fn item_centric_generation() {
        let (g, u, items) = fixture();
        let mut g = g;
        let u2 = g.add_node(NodeKind::User);
        g.add_edge(u2, items[1], 4.0, EdgeKind::Interaction);
        let input = path_free_item_centric(&g, items[1], &[u, u2], &PathGenConfig::default());
        assert_eq!(input.paths.len(), 2);
        assert_eq!(input.terminal_count(), 3); // item + 2 users
    }
}
