//! Eq. 1 — path-aware weight adjustment.
//!
//! `w(e) = w_M(e) · (1 + λ · Σ_{x∈S} 1_{e∈P} / |S|)`
//!
//! Without the boost, the summarizer would "create entirely new
//! explanations instead of summarizing the individual ones" (§IV-A): the
//! λ term raises the weight (and therefore lowers the search cost) of
//! edges that appear in the input explanation paths, proportionally to how
//! many paths use them. `λ = 0` reduces to the raw graph weights, which
//! the paper explicitly calls out as "generating a new explanation".

use xsum_graph::{Graph, LoosePath};

use crate::input::SummaryInput;

/// Per-edge adjusted weights (aligned with the graph's edge ids).
///
/// Only *grounded* hops of the input paths contribute to the frequency
/// term — a hallucinated PLM hop names no edge of `G` to boost.
pub fn adjusted_weights(g: &Graph, input: &SummaryInput, lambda: f64) -> Vec<f64> {
    adjusted_weights_of_paths(g, &input.paths, input.anchor_count, lambda)
}

/// [`adjusted_weights`] over an explicit path set and `|S|`.
pub fn adjusted_weights_of_paths(
    g: &Graph,
    paths: &[LoosePath],
    anchor_count: usize,
    lambda: f64,
) -> Vec<f64> {
    let mut freq = vec![0u32; g.edge_count()];
    for p in paths {
        for e in p.grounded_edges() {
            freq[e.index()] += 1;
        }
    }
    let denom = anchor_count.max(1) as f64;
    g.edge_ids()
        .map(|e| {
            let boost = 1.0 + lambda * freq[e.index()] as f64 / denom;
            g.weight(e) * boost
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::SummaryInput;
    use xsum_graph::{EdgeKind, Graph, NodeKind};

    fn fixture() -> (Graph, Vec<xsum_graph::NodeId>, Vec<LoosePath>) {
        let mut g = Graph::new();
        let u = g.add_node(NodeKind::User);
        let i1 = g.add_node(NodeKind::Item);
        let a = g.add_node(NodeKind::Entity);
        let i2 = g.add_node(NodeKind::Item);
        let i3 = g.add_node(NodeKind::Item);
        g.add_edge(u, i1, 4.0, EdgeKind::Interaction); // e0: on both paths
        g.add_edge(i1, a, 2.0, EdgeKind::Attribute); // e1: on both paths
        g.add_edge(i2, a, 2.0, EdgeKind::Attribute); // e2: on path 1
        g.add_edge(i3, a, 2.0, EdgeKind::Attribute); // e3: on path 2
        let p1 = LoosePath::ground(&g, vec![u, i1, a, i2]);
        let p2 = LoosePath::ground(&g, vec![u, i1, a, i3]);
        (g, vec![u, i1, a, i2, i3], vec![p1, p2])
    }

    #[test]
    fn shared_edges_get_double_boost() {
        let (g, n, paths) = fixture();
        let input = SummaryInput::user_centric(n[0], paths);
        assert_eq!(input.anchor_count, 2); // R_u = {i2, i3}
        let w = adjusted_weights(&g, &input, 1.0);
        // e0: 4 · (1 + 1·2/2) = 8; e1: 2 · 2 = 4; e2: 2 · 1.5 = 3.
        assert!((w[0] - 8.0).abs() < 1e-12);
        assert!((w[1] - 4.0).abs() < 1e-12);
        assert!((w[2] - 3.0).abs() < 1e-12);
        assert!((w[3] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_zero_returns_raw_weights() {
        let (g, n, paths) = fixture();
        let input = SummaryInput::user_centric(n[0], paths);
        let w = adjusted_weights(&g, &input, 0.0);
        for e in g.edge_ids() {
            assert!((w[e.index()] - g.weight(e)).abs() < 1e-12);
        }
    }

    #[test]
    fn large_lambda_dominates() {
        let (g, n, paths) = fixture();
        let input = SummaryInput::user_centric(n[0], paths);
        let w = adjusted_weights(&g, &input, 100.0);
        // Path edges dwarf non-path weights by ~λ.
        assert!(w[0] > 100.0);
        // Zero-weight edges stay zero regardless of λ (multiplicative).
        let (mut g2, _, _) = fixture();
        g2.edge_mut(xsum_graph::EdgeId(1)).weight = 0.0;
        let w2 = adjusted_weights_of_paths(&g2, &input.paths, input.anchor_count, 100.0);
        assert_eq!(w2[1], 0.0);
    }

    #[test]
    fn hallucinated_hops_do_not_boost() {
        let (g, n, _) = fixture();
        // A loose path with a fabricated hop u→i2 (no such edge).
        let fake = LoosePath::ground(&g, vec![n[0], n[3]]);
        assert!(!fake.is_faithful());
        let w = adjusted_weights_of_paths(&g, &[fake], 1, 10.0);
        for e in g.edge_ids() {
            assert!((w[e.index()] - g.weight(e)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_paths_mean_no_boost() {
        let (g, _, _) = fixture();
        let w = adjusted_weights_of_paths(&g, &[], 0, 5.0);
        for e in g.edge_ids() {
            assert!((w[e.index()] - g.weight(e)).abs() < 1e-12);
        }
    }
}
