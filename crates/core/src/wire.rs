//! Wire protocol for streaming summary serving: versioned
//! request/response records in a compact length-prefixed binary
//! framing, plus [`serve_stream`] — the loop that turns any
//! `Read`/`Write` pair into a front-end over an
//! [`AdmissionQueue`](crate::admission::AdmissionQueue).
//!
//! # Framing
//!
//! Every frame is `[len: u32 LE][payload]`, where the payload is
//! `[version: u8][kind: u8][body]` and `len` counts the payload bytes
//! (version byte onward). Integers are little-endian; every `f64`
//! travels as its [`f64::to_bits`] image, so configs round-trip
//! **bit-exact** — NaN params survive, and `−0.0` stays distinct from
//! `0.0` (the same fingerprint discipline as
//! [`CostModelKey`](crate::steiner::CostModelKey) and the admission
//! coalescer). Strings are `u32` length + UTF-8 bytes; vectors are
//! `u32` length + elements; `Option<EdgeId>` is a one-byte tag.
//!
//! | kind | record |
//! |---|---|
//! | 1 | [`SummaryRequest`] |
//! | 2 | [`MutationRequest`] |
//! | 3 | [`SummaryResponse`] |
//! | 4 | [`MutationResponse`] |
//!
//! # Robustness contract
//!
//! Decoding **never panics**: truncated buffers, unknown versions or
//! kinds, trailing bytes, invalid enum tags, and invalid UTF-8 all
//! surface as typed [`WireError`]s (`tests/prop_wire.rs` pins this
//! under random corruption). Encoding is canonical — decode∘encode is
//! the identity on bytes — so byte equality is the round-trip test
//! even for NaN-carrying configs that `PartialEq` could not compare.
//!
//! # Serving
//!
//! [`serve_stream`] decodes request frames, submits summaries through
//! the queue, registers the tickets in a
//! [`TicketSet`](crate::admission::TicketSet) tagged by request id,
//! and writes [`SummaryResponse`] frames back in **completion order**
//! (the id is the correlation handle; mutation barriers are applied
//! in stream order and answered synchronously). Results are
//! bit-identical to direct [`AdmissionQueue::submit`] +
//! [`SummaryTicket::wait`](crate::admission::SummaryTicket::wait).

use std::io::{Read, Write};

use xsum_graph::{EdgeId, LoosePath, NodeId};

use crate::admission::{AdmissionQueue, CompletedTicket, TicketSet};
use crate::batch::BatchMethod;
use crate::input::{Scenario, SummaryInput};
use crate::pcst::{PcstConfig, PcstScope};
use crate::steiner::SteinerConfig;
use crate::summary::Summary;

/// The wire format version this build encodes and accepts.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on one frame's payload (64 MiB) — a corrupt length
/// prefix must not drive an unbounded allocation.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Typed decode/IO failures; decoding never panics.
#[derive(Debug)]
pub enum WireError {
    /// The buffer or stream ended mid-frame.
    Truncated,
    /// The frame's version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The frame's kind byte names no known record.
    UnknownKind(u8),
    /// The payload decoded cleanly but left unread bytes behind.
    TrailingBytes {
        /// How many payload bytes were left over.
        extra: usize,
    },
    /// A field held an invalid value (bad enum tag, bad UTF-8, a
    /// length prefix past [`MAX_FRAME_LEN`], an empty path, ...).
    Corrupt(&'static str),
    /// The underlying reader/writer failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire frame truncated"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown wire record kind {k}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "wire frame has {extra} trailing bytes")
            }
            WireError::Corrupt(what) => write!(f, "corrupt wire frame: {what}"),
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One graph mutation a client may request over the wire.
#[derive(Debug, Clone, Copy)]
pub enum WireMutation {
    /// Set one edge's weight (the Eq. 1 inputs drift as ratings
    /// arrive; applied as a coalescing barrier like
    /// [`AdmissionQueue::mutate`]).
    SetWeight {
        /// The edge to reweight.
        edge: EdgeId,
        /// The new weight (bit-exact over the wire).
        weight: f64,
    },
}

/// Request one summary: `id` is the client's correlation handle,
/// echoed verbatim on the matching [`SummaryResponse`].
#[derive(Debug, Clone)]
pub struct SummaryRequest {
    /// Client-chosen correlation id (need not be unique or ordered).
    pub id: u64,
    /// Method and config, bit-exact.
    pub method: BatchMethod,
    /// The summarization problem.
    pub input: SummaryInput,
}

/// Request one graph mutation (a barrier: requests framed before it
/// serve the pre-mutation graph, requests after it the post-mutation
/// graph).
#[derive(Debug, Clone)]
pub struct MutationRequest {
    /// Client-chosen correlation id.
    pub id: u64,
    /// What to change.
    pub mutation: WireMutation,
}

/// A summary flattened for the wire: deterministic sorted node/edge
/// lists (the [`Subgraph`](xsum_graph::Subgraph) sort order), so equal
/// summaries encode to equal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSummary {
    /// The serving method's label (`"ST"`, `"ST-fast"`, `"PCST"`,
    /// `"GW-PCST"`).
    pub method: String,
    /// The request's scenario.
    pub scenario: Scenario,
    /// Sorted subgraph nodes.
    pub nodes: Vec<NodeId>,
    /// Sorted subgraph edges.
    pub edges: Vec<EdgeId>,
    /// The terminal set `T`.
    pub terminals: Vec<NodeId>,
}

impl WireSummary {
    /// Flatten an in-memory [`Summary`] for the wire.
    pub fn from_summary(s: &Summary) -> Self {
        WireSummary {
            method: s.method.to_string(),
            scenario: s.scenario,
            nodes: s.subgraph.sorted_nodes(),
            edges: s.subgraph.sorted_edges(),
            terminals: s.terminals.clone(),
        }
    }
}

/// The response to a [`SummaryRequest`], correlated by `id`.
#[derive(Debug, Clone)]
pub struct SummaryResponse {
    /// The request's correlation id, echoed.
    pub id: u64,
    /// The summary, or the serving error rendered as a string.
    pub result: Result<WireSummary, String>,
}

/// The response to a [`MutationRequest`], correlated by `id`.
#[derive(Debug, Clone)]
pub struct MutationResponse {
    /// The request's correlation id, echoed.
    pub id: u64,
    /// `Ok` once the barrier applied, else the error as a string.
    pub result: Result<(), String>,
}

/// Any record that can travel in a frame.
#[derive(Debug, Clone)]
pub enum WireFrame {
    /// Kind 1.
    SummaryRequest(SummaryRequest),
    /// Kind 2.
    MutationRequest(MutationRequest),
    /// Kind 3.
    SummaryResponse(SummaryResponse),
    /// Kind 4.
    MutationResponse(MutationResponse),
}

// ---------------------------------------------------------------------
// Encoding (canonical: one byte image per value).

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("wire collections fit in u32"));
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn node(&mut self, n: NodeId) {
        self.u32(n.0);
    }
    fn edge(&mut self, e: EdgeId) {
        self.u32(e.0);
    }
    fn nodes(&mut self, ns: &[NodeId]) {
        self.len(ns.len());
        for &n in ns {
            self.node(n);
        }
    }
    fn edges(&mut self, es: &[EdgeId]) {
        self.len(es.len());
        for &e in es {
            self.edge(e);
        }
    }
    fn scenario(&mut self, s: Scenario) {
        self.u8(match s {
            Scenario::UserCentric => 0,
            Scenario::ItemCentric => 1,
            Scenario::UserGroup => 2,
            Scenario::ItemGroup => 3,
        });
    }
    fn steiner_cfg(&mut self, c: &SteinerConfig) {
        // Exhaustive destructuring: a new config field fails to
        // compile here instead of being silently dropped from the wire.
        let SteinerConfig { lambda, delta } = *c;
        self.f64(lambda);
        self.f64(delta);
    }
    fn pcst_cfg(&mut self, c: &PcstConfig) {
        let PcstConfig {
            terminal_prize,
            nonterminal_prize,
            use_edge_weights,
            scope,
            prune,
        } = *c;
        self.f64(terminal_prize);
        self.f64(nonterminal_prize);
        self.bool(use_edge_weights);
        self.bool(prune);
        match scope {
            PcstScope::UnionOfPaths => self.u8(0),
            PcstScope::ExpandedUnion(h) => {
                self.u8(1);
                self.u32(u32::try_from(h).expect("expansion radius fits in u32"));
            }
            PcstScope::FullGraph => self.u8(2),
        }
    }
    fn method(&mut self, m: &BatchMethod) {
        match m {
            BatchMethod::Steiner(c) => {
                self.u8(0);
                self.steiner_cfg(c);
            }
            BatchMethod::SteinerFast(c) => {
                self.u8(1);
                self.steiner_cfg(c);
            }
            BatchMethod::Pcst(c) => {
                self.u8(2);
                self.pcst_cfg(c);
            }
            BatchMethod::GwPcst(c) => {
                self.u8(3);
                self.pcst_cfg(c);
            }
        }
    }
    fn path(&mut self, p: &LoosePath) {
        self.nodes(p.nodes());
        for hop in p.hops() {
            match hop {
                None => self.u8(0),
                Some(e) => {
                    self.u8(1);
                    self.edge(*e);
                }
            }
        }
    }
    fn input(&mut self, i: &SummaryInput) {
        let SummaryInput {
            scenario,
            terminals,
            paths,
            anchor_count,
        } = i;
        self.scenario(*scenario);
        self.nodes(terminals);
        self.len(paths.len());
        for p in paths {
            self.path(p);
        }
        self.u64(*anchor_count as u64);
    }
    fn result_summary(&mut self, r: &Result<WireSummary, String>) {
        match r {
            Ok(s) => {
                self.u8(1);
                self.str(&s.method);
                self.scenario(s.scenario);
                self.nodes(&s.nodes);
                self.edges(&s.edges);
                self.nodes(&s.terminals);
            }
            Err(msg) => {
                self.u8(0);
                self.str(msg);
            }
        }
    }
}

/// Encode one frame (length prefix included).
pub fn encode_frame(frame: &WireFrame) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.u8(WIRE_VERSION);
    match frame {
        WireFrame::SummaryRequest(r) => {
            e.u8(1);
            e.u64(r.id);
            e.method(&r.method);
            e.input(&r.input);
        }
        WireFrame::MutationRequest(r) => {
            e.u8(2);
            e.u64(r.id);
            match r.mutation {
                WireMutation::SetWeight { edge, weight } => {
                    e.u8(0);
                    e.edge(edge);
                    e.f64(weight);
                }
            }
        }
        WireFrame::SummaryResponse(r) => {
            e.u8(3);
            e.u64(r.id);
            e.result_summary(&r.result);
        }
        WireFrame::MutationResponse(r) => {
            e.u8(4);
            e.u64(r.id);
            match &r.result {
                Ok(()) => e.u8(1),
                Err(msg) => {
                    e.u8(0);
                    e.str(msg);
                }
            }
        }
    }
    let payload = e.buf;
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("payload fits in u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------
// Decoding (typed errors, no panics, bounded allocation).

struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A collection length; each element needs ≥ `min_elem` more bytes,
    /// so a corrupt count fails `Truncated` here instead of driving a
    /// huge allocation downstream.
    fn len(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem) > self.buf.len() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("invalid UTF-8 string"))
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("invalid bool byte")),
        }
    }
    fn node(&mut self) -> Result<NodeId, WireError> {
        Ok(NodeId(self.u32()?))
    }
    fn edge(&mut self) -> Result<EdgeId, WireError> {
        Ok(EdgeId(self.u32()?))
    }
    fn nodes(&mut self) -> Result<Vec<NodeId>, WireError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.node()).collect()
    }
    fn edges(&mut self) -> Result<Vec<EdgeId>, WireError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.edge()).collect()
    }
    fn scenario(&mut self) -> Result<Scenario, WireError> {
        match self.u8()? {
            0 => Ok(Scenario::UserCentric),
            1 => Ok(Scenario::ItemCentric),
            2 => Ok(Scenario::UserGroup),
            3 => Ok(Scenario::ItemGroup),
            _ => Err(WireError::Corrupt("invalid scenario tag")),
        }
    }
    fn steiner_cfg(&mut self) -> Result<SteinerConfig, WireError> {
        Ok(SteinerConfig {
            lambda: self.f64()?,
            delta: self.f64()?,
        })
    }
    fn pcst_cfg(&mut self) -> Result<PcstConfig, WireError> {
        let terminal_prize = self.f64()?;
        let nonterminal_prize = self.f64()?;
        let use_edge_weights = self.bool()?;
        let prune = self.bool()?;
        let scope = match self.u8()? {
            0 => PcstScope::UnionOfPaths,
            1 => PcstScope::ExpandedUnion(self.u32()? as usize),
            2 => PcstScope::FullGraph,
            _ => return Err(WireError::Corrupt("invalid PCST scope tag")),
        };
        Ok(PcstConfig {
            terminal_prize,
            nonterminal_prize,
            use_edge_weights,
            scope,
            prune,
        })
    }
    fn method(&mut self) -> Result<BatchMethod, WireError> {
        match self.u8()? {
            0 => Ok(BatchMethod::Steiner(self.steiner_cfg()?)),
            1 => Ok(BatchMethod::SteinerFast(self.steiner_cfg()?)),
            2 => Ok(BatchMethod::Pcst(self.pcst_cfg()?)),
            3 => Ok(BatchMethod::GwPcst(self.pcst_cfg()?)),
            _ => Err(WireError::Corrupt("invalid method tag")),
        }
    }
    fn path(&mut self) -> Result<LoosePath, WireError> {
        let nodes = self.nodes()?;
        if nodes.is_empty() {
            return Err(WireError::Corrupt("empty path"));
        }
        let hops = (0..nodes.len() - 1)
            .map(|_| {
                Ok(match self.u8()? {
                    0 => None,
                    1 => Some(self.edge()?),
                    _ => return Err(WireError::Corrupt("invalid hop tag")),
                })
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        LoosePath::from_parts(nodes, hops).ok_or(WireError::Corrupt("malformed path"))
    }
    fn input(&mut self) -> Result<SummaryInput, WireError> {
        let scenario = self.scenario()?;
        let terminals = self.nodes()?;
        let n_paths = self.len(4)?;
        let paths = (0..n_paths)
            .map(|_| self.path())
            .collect::<Result<Vec<_>, WireError>>()?;
        let anchor_count = usize::try_from(self.u64()?)
            .map_err(|_| WireError::Corrupt("anchor count exceeds usize"))?;
        Ok(SummaryInput {
            scenario,
            terminals,
            paths,
            anchor_count,
        })
    }
    fn result_summary(&mut self) -> Result<Result<WireSummary, String>, WireError> {
        match self.bool()? {
            false => Ok(Err(self.str()?)),
            true => Ok(Ok(WireSummary {
                method: self.str()?,
                scenario: self.scenario()?,
                nodes: self.nodes()?,
                edges: self.edges()?,
                terminals: self.nodes()?,
            })),
        }
    }
    fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.buf.len(),
            })
        }
    }
}

/// Decode one frame's payload (version byte onward, length prefix
/// already stripped).
fn decode_payload(payload: &[u8]) -> Result<WireFrame, WireError> {
    let mut d = Dec { buf: payload };
    let version = d.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = d.u8()?;
    let frame = match kind {
        1 => {
            let id = d.u64()?;
            let method = d.method()?;
            let input = d.input()?;
            WireFrame::SummaryRequest(SummaryRequest { id, method, input })
        }
        2 => {
            let id = d.u64()?;
            let mutation = match d.u8()? {
                0 => WireMutation::SetWeight {
                    edge: d.edge()?,
                    weight: d.f64()?,
                },
                _ => return Err(WireError::Corrupt("invalid mutation tag")),
            };
            WireFrame::MutationRequest(MutationRequest { id, mutation })
        }
        3 => {
            let id = d.u64()?;
            let result = d.result_summary()?;
            WireFrame::SummaryResponse(SummaryResponse { id, result })
        }
        4 => {
            let id = d.u64()?;
            let result = match d.bool()? {
                true => Ok(()),
                false => Err(d.str()?),
            };
            WireFrame::MutationResponse(MutationResponse { id, result })
        }
        other => return Err(WireError::UnknownKind(other)),
    };
    d.finish()?;
    Ok(frame)
}

/// Decode one frame from the front of `bytes`; returns the frame and
/// how many bytes it consumed (length prefix included).
pub fn decode_frame(bytes: &[u8]) -> Result<(WireFrame, usize), WireError> {
    let mut d = Dec { buf: bytes };
    let len = d.u32()?;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Corrupt("frame length exceeds MAX_FRAME_LEN"));
    }
    let payload = d.take(len as usize)?;
    Ok((decode_payload(payload)?, 4 + len as usize))
}

/// Fill `buf` from `r`. `Ok(false)` on clean EOF at the first byte;
/// EOF mid-buffer is [`WireError::Truncated`].
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(WireError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame from `r`; `Ok(None)` on clean EOF at a frame
/// boundary (EOF mid-frame is [`WireError::Truncated`]).
pub fn read_frame(r: &mut impl Read) -> Result<Option<WireFrame>, WireError> {
    let mut len_buf = [0u8; 4];
    if !read_full(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Corrupt("frame length exceeds MAX_FRAME_LEN"));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(r, &mut payload)? {
        return Err(WireError::Truncated);
    }
    Ok(Some(decode_payload(&payload)?))
}

/// Write one frame to `w` (no flush; callers batch as they like).
pub fn write_frame(w: &mut impl Write, frame: &WireFrame) -> Result<(), WireError> {
    w.write_all(&encode_frame(frame))?;
    Ok(())
}

/// Counters of one [`serve_stream`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Summary requests decoded and submitted.
    pub summaries: u64,
    /// Mutation barriers decoded and applied (or refused).
    pub mutations: u64,
    /// Response frames written (summary + mutation).
    pub responses: u64,
}

fn completed_response(done: CompletedTicket) -> WireFrame {
    WireFrame::SummaryResponse(SummaryResponse {
        id: done.tag,
        result: done
            .result
            .map(|s| WireSummary::from_summary(&s))
            .map_err(|e| e.to_string()),
    })
}

/// Serve a framed request stream against `queue`: decode frames from
/// `reader`, submit summaries (tickets multiplexed through a
/// [`TicketSet`] tagged by request id), apply mutations as barriers,
/// and write responses to `writer` in **completion order**. Returns
/// after a clean EOF once every admitted ticket's response is written.
///
/// On a decode error the in-flight tickets are still drained (their
/// responses written best-effort) before the error is returned — a
/// corrupt frame never strands an admitted request without an answer.
pub fn serve_stream<R: Read, W: Write>(
    mut reader: R,
    mut writer: W,
    queue: &AdmissionQueue,
) -> Result<ServeReport, WireError> {
    let set = TicketSet::new();
    let mut report = ServeReport::default();

    let drain = |set: &TicketSet, writer: &mut W, report: &mut ServeReport| loop {
        match set.wait_any() {
            Some(done) => {
                write_frame(writer, &completed_response(done))?;
                report.responses += 1;
            }
            None => return Ok::<(), WireError>(()),
        }
    };

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(e) => {
                // Best-effort drain: admitted requests still answer.
                let _ = drain(&set, &mut writer, &mut report);
                let _ = writer.flush();
                return Err(e);
            }
        };
        match frame {
            WireFrame::SummaryRequest(req) => {
                report.summaries += 1;
                match queue.submit(req.input, req.method) {
                    Ok(ticket) => set.add(req.id, ticket),
                    Err(e) => {
                        // Refused at admission (shut down / poisoned):
                        // answer immediately, preserving correlation.
                        write_frame(
                            &mut writer,
                            &WireFrame::SummaryResponse(SummaryResponse {
                                id: req.id,
                                result: Err(e.to_string()),
                            }),
                        )?;
                        report.responses += 1;
                    }
                }
                // Opportunistic drain keeps responses flowing while
                // the stream is still producing requests.
                while let Some(done) = set.poll() {
                    write_frame(&mut writer, &completed_response(done))?;
                    report.responses += 1;
                }
            }
            WireFrame::MutationRequest(req) => {
                report.mutations += 1;
                let result = match req.mutation {
                    WireMutation::SetWeight { edge, weight } => {
                        queue.mutate(move |g| g.set_weight(edge, weight))
                    }
                };
                write_frame(
                    &mut writer,
                    &WireFrame::MutationResponse(MutationResponse {
                        id: req.id,
                        result: result.map_err(|e| e.to_string()),
                    }),
                )?;
                report.responses += 1;
            }
            WireFrame::SummaryResponse(_) | WireFrame::MutationResponse(_) => {
                let _ = drain(&set, &mut writer, &mut report);
                let _ = writer.flush();
                return Err(WireError::Corrupt("response frame on the request stream"));
            }
        }
    }
    drain(&set, &mut writer, &mut report)?;
    writer.flush()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::engine::SummaryEngine;
    use crate::render::table1_example;

    fn st_request(id: u64) -> WireFrame {
        let ex = table1_example();
        WireFrame::SummaryRequest(SummaryRequest {
            id,
            method: BatchMethod::Steiner(SteinerConfig::default()),
            input: ex.input(),
        })
    }

    #[test]
    fn frames_round_trip_to_identical_bytes() {
        let ex = table1_example();
        let frames = vec![
            st_request(7),
            WireFrame::MutationRequest(MutationRequest {
                id: 8,
                mutation: WireMutation::SetWeight {
                    edge: EdgeId(3),
                    weight: -0.0,
                },
            }),
            WireFrame::SummaryResponse(SummaryResponse {
                id: 9,
                result: Ok(WireSummary::from_summary(
                    &BatchMethod::Steiner(SteinerConfig::default()).run(&ex.graph, &ex.input()),
                )),
            }),
            WireFrame::SummaryResponse(SummaryResponse {
                id: 10,
                result: Err("engine failure".to_string()),
            }),
            WireFrame::MutationResponse(MutationResponse {
                id: 11,
                result: Ok(()),
            }),
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            let (decoded, consumed) = decode_frame(&bytes).expect("well-formed frame decodes");
            assert_eq!(consumed, bytes.len());
            assert_eq!(encode_frame(&decoded), bytes, "canonical re-encode");
        }
    }

    #[test]
    fn nan_and_negative_zero_configs_survive_bit_exact() {
        let frame = WireFrame::SummaryRequest(SummaryRequest {
            id: 1,
            method: BatchMethod::Steiner(SteinerConfig {
                lambda: f64::NAN,
                delta: -0.0,
            }),
            input: table1_example().input(),
        });
        let bytes = encode_frame(&frame);
        let (decoded, _) = decode_frame(&bytes).expect("decodes");
        let WireFrame::SummaryRequest(req) = &decoded else {
            panic!("kind preserved");
        };
        let BatchMethod::Steiner(cfg) = req.method else {
            panic!("method preserved");
        };
        assert_eq!(cfg.lambda.to_bits(), f64::NAN.to_bits());
        assert_eq!(cfg.delta.to_bits(), (-0.0f64).to_bits());
        assert_ne!(cfg.delta.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn corrupt_frames_error_without_panicking() {
        let bytes = encode_frame(&st_request(1));
        // Truncations at every prefix length.
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err());
        }
        // Wrong version.
        let mut wrong_version = bytes.clone();
        wrong_version[4] = WIRE_VERSION + 1;
        assert!(matches!(
            decode_frame(&wrong_version),
            Err(WireError::UnsupportedVersion(_))
        ));
        // Unknown kind.
        let mut wrong_kind = bytes.clone();
        wrong_kind[5] = 200;
        assert!(matches!(
            decode_frame(&wrong_kind),
            Err(WireError::UnknownKind(200))
        ));
        // Oversized length prefix: bounded error, no huge allocation.
        let mut huge = bytes;
        huge[..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(decode_frame(&huge), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn serve_stream_answers_in_completion_order_with_correlation() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig::default(),
        );
        let mut request_bytes = Vec::new();
        for id in [10u64, 11, 12] {
            request_bytes.extend_from_slice(&encode_frame(&st_request(id)));
        }
        let mut response_bytes = Vec::new();
        let report = serve_stream(&request_bytes[..], &mut response_bytes, &queue)
            .expect("clean stream serves");
        assert_eq!(report.summaries, 3);
        assert_eq!(report.responses, 3);
        let want = WireSummary::from_summary(
            &BatchMethod::Steiner(SteinerConfig::default()).run(&ex.graph, &ex.input()),
        );
        let mut rest = &response_bytes[..];
        let mut ids = Vec::new();
        while !rest.is_empty() {
            let (frame, consumed) = decode_frame(rest).expect("valid response frame");
            rest = &rest[consumed..];
            let WireFrame::SummaryResponse(resp) = frame else {
                panic!("summary responses only");
            };
            assert_eq!(resp.result.expect("serves"), want);
            ids.push(resp.id);
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![10, 11, 12]);
    }
}
