//! Summarization scenarios and their inputs (§III).
//!
//! | Scenario | Terminals `T` | Paths `P` | Eq. 1 anchor `S` |
//! |---|---|---|---|
//! | user-centric | `{u} ∪ R_u` | `E_u` | `R_u` |
//! | item-centric | `{i} ∪ C_i` | `E_i` | `C_i` |
//! | user-group   | `D ∪ R_D`   | `E_D` | `R_D` |
//! | item-group   | `F ∪ C_F`   | `E_F` | `C_F` |

use xsum_graph::{FxHashSet, LoosePath, NodeId};

/// The four summarization granularities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Summarize why one user receives their recommended items.
    UserCentric,
    /// Summarize why one item is recommended to its users.
    ItemCentric,
    /// Summarize a group of users' recommendations.
    UserGroup,
    /// Summarize a group of items' recommendations.
    ItemGroup,
}

impl Scenario {
    /// Figure-label name ("user-centric", ...).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::UserCentric => "user-centric",
            Scenario::ItemCentric => "item-centric",
            Scenario::UserGroup => "user-group",
            Scenario::ItemGroup => "item-group",
        }
    }
}

/// The assembled input of one summarization problem.
#[derive(Debug, Clone)]
pub struct SummaryInput {
    /// Which scenario this input encodes.
    pub scenario: Scenario,
    /// The terminal set `T` (deduplicated, deterministic order).
    pub terminals: Vec<NodeId>,
    /// The individual explanation paths `P`.
    pub paths: Vec<LoosePath>,
    /// `|S|` of Eq. 1 (the recommended-item / receiving-user count).
    pub anchor_count: usize,
}

fn dedup_sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
    v.sort_unstable();
    v.dedup();
    v
}

impl SummaryInput {
    /// User-centric: terminals `{u} ∪ R_u`, where `R_u` are the path
    /// targets; `|S| = |R_u|`.
    pub fn user_centric(user: NodeId, paths: Vec<LoosePath>) -> Self {
        let items: FxHashSet<NodeId> = paths.iter().map(|p| p.target()).collect();
        let anchor_count = items.len();
        let mut terminals: Vec<NodeId> = items.into_iter().collect();
        terminals.push(user);
        SummaryInput {
            scenario: Scenario::UserCentric,
            terminals: dedup_sorted(terminals),
            paths,
            anchor_count,
        }
    }

    /// Item-centric: terminals `{i} ∪ C_i`, where `C_i` are the path
    /// sources; `|S| = |C_i|`.
    pub fn item_centric(item: NodeId, paths: Vec<LoosePath>) -> Self {
        let users: FxHashSet<NodeId> = paths.iter().map(|p| p.source()).collect();
        let anchor_count = users.len();
        let mut terminals: Vec<NodeId> = users.into_iter().collect();
        terminals.push(item);
        SummaryInput {
            scenario: Scenario::ItemCentric,
            terminals: dedup_sorted(terminals),
            paths,
            anchor_count,
        }
    }

    /// User-group: terminals `D ∪ R_D` over the union of the group
    /// members' paths; `|S| = |R_D|`.
    pub fn user_group(users: &[NodeId], paths: Vec<LoosePath>) -> Self {
        let items: FxHashSet<NodeId> = paths.iter().map(|p| p.target()).collect();
        let anchor_count = items.len();
        let mut terminals: Vec<NodeId> = items.into_iter().collect();
        terminals.extend_from_slice(users);
        SummaryInput {
            scenario: Scenario::UserGroup,
            terminals: dedup_sorted(terminals),
            paths,
            anchor_count,
        }
    }

    /// Item-group: terminals `F ∪ C_F`; `|S| = |C_F|`.
    pub fn item_group(items: &[NodeId], paths: Vec<LoosePath>) -> Self {
        let users: FxHashSet<NodeId> = paths.iter().map(|p| p.source()).collect();
        let anchor_count = users.len();
        let mut terminals: Vec<NodeId> = users.into_iter().collect();
        terminals.extend_from_slice(items);
        SummaryInput {
            scenario: Scenario::ItemGroup,
            terminals: dedup_sorted(terminals),
            paths,
            anchor_count,
        }
    }

    /// Number of terminals `|T|`.
    pub fn terminal_count(&self) -> usize {
        self.terminals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsum_graph::{EdgeKind, Graph, NodeKind};

    fn fixture() -> (Graph, Vec<NodeId>, Vec<LoosePath>) {
        let mut g = Graph::new();
        let u1 = g.add_node(NodeKind::User);
        let u2 = g.add_node(NodeKind::User);
        let i1 = g.add_node(NodeKind::Item);
        let i2 = g.add_node(NodeKind::Item);
        let a = g.add_node(NodeKind::Entity);
        g.add_edge(u1, i1, 5.0, EdgeKind::Interaction);
        g.add_edge(u2, i1, 4.0, EdgeKind::Interaction);
        g.add_edge(i1, a, 0.0, EdgeKind::Attribute);
        g.add_edge(i2, a, 0.0, EdgeKind::Attribute);
        let p1 = LoosePath::ground(&g, vec![u1, i1, a, i2]); // u1 → i2
        let p2 = LoosePath::ground(&g, vec![u2, i1, a, i2]); // u2 → i2
        (g, vec![u1, u2, i1, i2, a], vec![p1, p2])
    }

    #[test]
    fn user_centric_terminals() {
        let (_, n, paths) = fixture();
        let input = SummaryInput::user_centric(n[0], vec![paths[0].clone()]);
        assert_eq!(input.scenario, Scenario::UserCentric);
        // {u1} ∪ {i2}
        assert_eq!(input.terminals, vec![n[0], n[3]]);
        assert_eq!(input.anchor_count, 1);
    }

    #[test]
    fn item_centric_terminals() {
        let (_, n, paths) = fixture();
        let input = SummaryInput::item_centric(n[3], paths.clone());
        // {i2} ∪ {u1, u2}
        assert_eq!(input.terminals, vec![n[0], n[1], n[3]]);
        assert_eq!(input.anchor_count, 2);
    }

    #[test]
    fn user_group_terminals_dedup() {
        let (_, n, paths) = fixture();
        let input = SummaryInput::user_group(&[n[0], n[1]], paths.clone());
        // D = {u1, u2}, R_D = {i2}
        assert_eq!(input.terminals, vec![n[0], n[1], n[3]]);
        assert_eq!(input.anchor_count, 1);
        assert_eq!(input.terminal_count(), 3);
    }

    #[test]
    fn item_group_terminals() {
        let (_, n, paths) = fixture();
        let input = SummaryInput::item_group(&[n[3]], paths.clone());
        assert_eq!(input.terminals, vec![n[0], n[1], n[3]]);
        assert_eq!(input.anchor_count, 2);
        assert_eq!(input.scenario.name(), "item-group");
    }

    #[test]
    fn duplicate_targets_counted_once() {
        let (_, n, paths) = fixture();
        // Same item recommended through two paths → R_u = {i2}, |S| = 1.
        let input = SummaryInput::user_centric(n[0], paths.clone());
        assert_eq!(input.anchor_count, 1);
    }

    #[test]
    fn scenario_names() {
        assert_eq!(Scenario::UserCentric.name(), "user-centric");
        assert_eq!(Scenario::ItemCentric.name(), "item-centric");
        assert_eq!(Scenario::UserGroup.name(), "user-group");
    }
}
