//! The summary-explanation output type.

use xsum_graph::{Graph, NodeId, NodeKind, Subgraph};

use crate::input::Scenario;

/// A computed summary explanation `S = (V_S, E_S, w)`.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Which algorithm produced it ("ST", "PCST", "GW-PCST").
    pub method: &'static str,
    /// Scenario of the generating input.
    pub scenario: Scenario,
    /// The summary subgraph.
    pub subgraph: Subgraph,
    /// The terminal set the summary was asked to cover.
    pub terminals: Vec<NodeId>,
}

impl Summary {
    /// Terminals actually covered by the subgraph.
    pub fn covered_terminals(&self) -> usize {
        self.terminals
            .iter()
            .filter(|t| self.subgraph.contains_node(**t))
            .count()
    }

    /// Fraction of terminals covered (1.0 when all of `T ⊆ V_S`).
    pub fn terminal_coverage(&self) -> f64 {
        if self.terminals.is_empty() {
            return 1.0;
        }
        self.covered_terminals() as f64 / self.terminals.len() as f64
    }

    /// `|E_S|` — the size the comprehensibility metric is based on.
    pub fn size(&self) -> usize {
        self.subgraph.edge_count()
    }

    /// Steiner (non-terminal) nodes included for connectivity.
    pub fn steiner_nodes(&self, _g: &Graph) -> usize {
        let term: std::collections::HashSet<_> = self.terminals.iter().collect();
        self.subgraph
            .nodes()
            .iter()
            .filter(|n| !term.contains(n))
            .count()
    }

    /// Item nodes in the summary (actionability numerator).
    pub fn item_nodes(&self, g: &Graph) -> usize {
        self.subgraph.count_kind(g, NodeKind::Item)
    }

    /// User nodes in the summary (privacy numerator).
    pub fn user_nodes(&self, g: &Graph) -> usize {
        self.subgraph.count_kind(g, NodeKind::User)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsum_graph::{EdgeKind, Graph};

    #[test]
    fn coverage_accounting() {
        let mut g = Graph::new();
        let u = g.add_node(NodeKind::User);
        let i = g.add_node(NodeKind::Item);
        let x = g.add_node(NodeKind::Item);
        let e = g.add_edge(u, i, 1.0, EdgeKind::Interaction);
        let sub = Subgraph::from_edges(&g, [e]);
        let s = Summary {
            method: "ST",
            scenario: Scenario::UserCentric,
            subgraph: sub,
            terminals: vec![u, i, x],
        };
        assert_eq!(s.covered_terminals(), 2);
        assert!((s.terminal_coverage() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.size(), 1);
        assert_eq!(s.item_nodes(&g), 1);
        assert_eq!(s.user_nodes(&g), 1);
        assert_eq!(s.steiner_nodes(&g), 0);
    }

    #[test]
    fn empty_terminals_full_coverage() {
        let g = Graph::new();
        let s = Summary {
            method: "PCST",
            scenario: Scenario::ItemGroup,
            subgraph: Subgraph::new(),
            terminals: vec![],
        };
        assert_eq!(s.terminal_coverage(), 1.0);
        assert_eq!(s.size(), 0);
        let _ = g;
    }
}
