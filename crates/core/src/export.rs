//! Export summaries and explanation paths to standard graph formats.
//!
//! The paper presents summaries visually (Fig. 1 draws the individual
//! paths in red and the summary in green over the grey knowledge graph).
//! This module produces that artifact for downstream users:
//!
//! * [`summary_to_dot`] — Graphviz DOT of a [`Summary`], node kinds
//!   shaped/coloured, terminal nodes emphasized (`dot -Tsvg` renders the
//!   paper-style figure);
//! * [`overlay_to_dot`] — the full Fig. 1 overlay: the input explanation
//!   paths plus the summary on one canvas, summary edges bold;
//! * [`summary_to_tsv`] — a plain `src \t dst \t weight \t kind` edge
//!   list for spreadsheet / pandas post-processing.
//!
//! Output is deterministic (nodes and edges emitted in sorted-id order),
//! so golden tests and diffs are stable.

use std::fmt::Write as _;

use xsum_graph::{Graph, LoosePath, NodeId, NodeKind, Subgraph};

use crate::summary::Summary;

/// Escape a label for a double-quoted DOT string.
fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Display label of a node: its graph label when set, otherwise the id.
fn node_label(g: &Graph, n: NodeId) -> String {
    let l = g.label(n);
    if l.is_empty() {
        n.to_string()
    } else {
        l.to_string()
    }
}

fn kind_attrs(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::User => "shape=box, fillcolor=\"#cfe2ff\"",
        NodeKind::Item => "shape=ellipse, fillcolor=\"#d1e7dd\"",
        NodeKind::Entity => "shape=diamond, fillcolor=\"#fff3cd\"",
    }
}

fn write_node(out: &mut String, g: &Graph, n: NodeId, terminal: bool) {
    let extra = if terminal {
        ", penwidth=2.5, color=\"#b02a37\""
    } else {
        ""
    };
    let _ = writeln!(
        out,
        "  {} [label=\"{}\", {}, style=filled{}];",
        n.index(),
        dot_escape(&node_label(g, n)),
        kind_attrs(g.kind(n)),
        extra
    );
}

/// Graphviz DOT of a summary subgraph.
///
/// Terminal nodes get a bold red outline; users are boxes, items
/// ellipses, external entities diamonds. Edges carry their `w_M` weight
/// as label when non-zero.
pub fn summary_to_dot(g: &Graph, summary: &Summary) -> String {
    let terminals: std::collections::HashSet<NodeId> = summary.terminals.iter().copied().collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph summary {{\n  // method={} scenario={}",
        summary.method,
        summary.scenario.name()
    );
    out.push_str("  graph [overlap=false];\n  node [fontsize=10];\n");
    for n in summary.subgraph.sorted_nodes() {
        write_node(&mut out, g, n, terminals.contains(&n));
    }
    for e in summary.subgraph.sorted_edges() {
        let edge = g.edge(e);
        // Unweighted edges (either IEEE zero) get no label; NaN is a
        // label-worthy weight. `abs().to_bits()` keeps exactly those
        // semantics while comparing bit patterns, not floats.
        if edge.weight.abs().to_bits() != 0 {
            let _ = writeln!(
                out,
                "  {} -- {} [label=\"{:.2}\"];",
                edge.src.index(),
                edge.dst.index(),
                edge.weight
            );
        } else {
            let _ = writeln!(out, "  {} -- {};", edge.src.index(), edge.dst.index());
        }
    }
    out.push_str("}\n");
    out
}

/// Fig. 1-style overlay: input paths (thin, red) and the summary
/// (bold, green) on one DOT canvas.
///
/// An edge on both layers is drawn once, bold green — matching the
/// paper's figure where the summary supersedes the path edges it kept.
pub fn overlay_to_dot(g: &Graph, paths: &[LoosePath], summary: &Summary) -> String {
    let terminals: std::collections::HashSet<NodeId> = summary.terminals.iter().copied().collect();
    let mut path_edges = Subgraph::new();
    for p in paths {
        for e in p.grounded_edges() {
            path_edges.insert_edge(g, e);
        }
        for &n in p.nodes() {
            path_edges.insert_node(n);
        }
    }

    let mut nodes = path_edges.sorted_nodes();
    nodes.extend(summary.subgraph.sorted_nodes());
    nodes.sort_unstable();
    nodes.dedup();

    let mut out = String::new();
    let _ = writeln!(out, "graph overlay {{");
    out.push_str("  graph [overlap=false];\n  node [fontsize=10];\n");
    for n in nodes {
        write_node(&mut out, g, n, terminals.contains(&n));
    }
    // Summary edges (bold green), then path-only edges (thin red).
    for e in summary.subgraph.sorted_edges() {
        let edge = g.edge(e);
        let _ = writeln!(
            out,
            "  {} -- {} [color=\"#198754\", penwidth=2.5];",
            edge.src.index(),
            edge.dst.index()
        );
    }
    for e in path_edges.sorted_edges() {
        if summary.subgraph.contains_edge(e) {
            continue;
        }
        let edge = g.edge(e);
        let _ = writeln!(
            out,
            "  {} -- {} [color=\"#dc3545\", style=dashed];",
            edge.src.index(),
            edge.dst.index()
        );
    }
    out.push_str("}\n");
    out
}

/// Tab-separated edge list of a summary:
/// `src_label \t dst_label \t weight \t edge_kind`, one row per edge,
/// sorted by edge id, with a header row.
pub fn summary_to_tsv(g: &Graph, summary: &Summary) -> String {
    let mut out = String::from("src\tdst\tweight\tkind\n");
    for e in summary.subgraph.sorted_edges() {
        let edge = g.edge(e);
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{:?}",
            node_label(g, edge.src),
            node_label(g, edge.dst),
            edge.weight,
            edge.kind
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::Scenario;
    use xsum_graph::EdgeKind;

    fn fixture() -> (Graph, Summary, Vec<LoosePath>) {
        let mut g = Graph::new();
        let u = g.add_labeled_node(NodeKind::User, "User 1");
        let i0 = g.add_labeled_node(NodeKind::Item, "Ulysses\" Gaze"); // quote on purpose
        let e0 = g.add_labeled_node(NodeKind::Entity, "Theo Angelopoulos");
        let i1 = g.add_labeled_node(NodeKind::Item, "The Beekeeper");
        let e1 = g.add_edge(u, i0, 4.0, EdgeKind::Interaction);
        let e2 = g.add_edge(i0, e0, 0.0, EdgeKind::Attribute);
        let e3 = g.add_edge(e0, i1, 0.0, EdgeKind::Attribute);
        let path = LoosePath::ground(&g, vec![u, i0, e0, i1]);
        let sub = Subgraph::from_edges(&g, [e1, e2, e3]);
        let summary = Summary {
            method: "ST",
            scenario: Scenario::UserCentric,
            subgraph: sub,
            terminals: vec![u, i1],
        };
        (g, summary, vec![path])
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let (g, s, _) = fixture();
        let dot = summary_to_dot(&g, &s);
        assert!(dot.starts_with("graph summary {"));
        assert!(dot.contains("User 1"));
        assert!(dot.contains("The Beekeeper"));
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn dot_escapes_quotes_in_labels() {
        let (g, s, _) = fixture();
        let dot = summary_to_dot(&g, &s);
        assert!(dot.contains("Ulysses\\\" Gaze"), "quote must be escaped");
    }

    #[test]
    fn terminals_are_emphasized() {
        let (g, s, _) = fixture();
        let dot = summary_to_dot(&g, &s);
        assert_eq!(dot.matches("penwidth=2.5").count(), 2); // u and i1
    }

    #[test]
    fn weighted_edges_carry_labels() {
        let (g, s, _) = fixture();
        let dot = summary_to_dot(&g, &s);
        assert!(dot.contains("label=\"4.00\""));
    }

    #[test]
    fn deterministic_output() {
        let (g, s, _) = fixture();
        assert_eq!(summary_to_dot(&g, &s), summary_to_dot(&g, &s));
        assert_eq!(summary_to_tsv(&g, &s), summary_to_tsv(&g, &s));
    }

    #[test]
    fn overlay_marks_summary_edges_green() {
        let (g, s, paths) = fixture();
        let dot = overlay_to_dot(&g, &paths, &s);
        // All three edges are in the summary, so no dashed red remains.
        assert_eq!(dot.matches("#198754").count(), 3);
        assert_eq!(dot.matches("#dc3545").count(), 0);
    }

    #[test]
    fn overlay_shows_path_only_edges_dashed() {
        let (mut g, mut s, mut paths) = fixture();
        // Extend the KG with a path edge the summary does not keep.
        let extra = g.add_labeled_node(NodeKind::Item, "Landscape in the Mist");
        let u = paths[0].nodes()[0];
        g.add_edge(u, extra, 3.0, EdgeKind::Interaction);
        paths.push(LoosePath::ground(&g, vec![u, extra]));
        s.terminals.push(extra);
        let dot = overlay_to_dot(&g, &paths, &s);
        assert_eq!(dot.matches("#dc3545").count(), 1);
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let (g, s, _) = fixture();
        let tsv = summary_to_tsv(&g, &s);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 edges
        assert_eq!(lines[0], "src\tdst\tweight\tkind");
        assert!(lines[1].contains('\t'));
    }

    #[test]
    fn empty_summary_exports_cleanly() {
        let g = Graph::new();
        let s = Summary {
            method: "ST",
            scenario: Scenario::UserCentric,
            subgraph: Subgraph::new(),
            terminals: Vec::new(),
        };
        let dot = summary_to_dot(&g, &s);
        assert!(dot.contains("graph summary {"));
        assert!(dot.trim_end().ends_with('}'));
        let tsv = summary_to_tsv(&g, &s);
        assert_eq!(tsv.lines().count(), 1);
    }
}
