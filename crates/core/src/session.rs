//! Incremental serving sessions: per-user growing summaries, stored.
//!
//! The paper's consistency experiments (Fig. 6) model a user scrolling:
//! k grows one recommendation at a time, and the summary should extend
//! — never reshuffle — what the user already read.
//! [`IncrementalSteiner`] / [`IncrementalPcst`] implement that growth;
//! this module keeps such sessions *alive across requests*, which is
//! what a serving deployment needs (the next `add_terminal` for a user
//! arrives on a later request, not in the same call stack).
//!
//! * [`EngineSession`] — one user's growing summary, ST or PCST flavor
//!   behind one surface;
//! * [`SessionKey`] — identity of a session: (user id, baseline input
//!   label), the pair the paper's per-baseline experiments key on;
//! * [`SessionStore`] — an LRU map of sessions with a configurable
//!   capacity, graph-epoch invalidation, and workspace recycling:
//!   evicted ST sessions donate their warm [`DijkstraWorkspace`] to
//!   successor sessions.
//!
//! Epoch validation is **delta-aware**: when the graph's mutation since
//! the store's epoch is a weight-only delta covered by the
//! [`Graph::delta_since`] ledger, each session is checked individually —
//! one whose touched-edge fingerprint is disjoint from the delta (and
//! whose Eq. 1 anchor is provably unmoved) absorbs the delta in place
//! and **survives**, bit-identical to a rebuilt session; the rest are
//! dropped. Structural mutations (or a broken delta chain) still drop
//! everything. The split is observable via
//! [`SessionStore::invalidated_structural`] /
//! [`SessionStore::invalidated_delta`] / [`SessionStore::survived_delta`].

use xsum_graph::{DijkstraWorkspace, FxHashMap, Graph, LoosePath, NodeId, WeightDeltaRec};

use crate::incremental::IncrementalSteiner;
use crate::incremental_pcst::IncrementalPcst;
use crate::input::{Scenario, SummaryInput};
use crate::pcst::PcstConfig;
use crate::steiner::SteinerConfig;
use crate::summary::Summary;

/// Identity of one serving session: which user it belongs to and which
/// baseline recommender produced the explanation input it grows from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// The user (or focus entity) the session serves.
    pub user: u64,
    /// Label of the baseline input the session was seeded with (e.g.
    /// `"pgpr"`); summaries for the same user under different baselines
    /// are distinct sessions. The label stands in for the baseline
    /// *input* — callers must not reuse one label for materially
    /// different inputs of the same user. (Config changes are handled
    /// by the store itself: a lookup under a different
    /// `SteinerConfig`/`PcstConfig` replaces the stored session.)
    pub baseline: String,
}

impl SessionKey {
    /// Key for `user` under `baseline`.
    pub fn new(user: u64, baseline: impl Into<String>) -> Self {
        SessionKey {
            user,
            baseline: baseline.into(),
        }
    }

    /// Key identified by a graph node — the user/focus *node* the
    /// session's batch inputs are anchored at. Sessions keyed this way
    /// are guaranteed shard-coherent with the anchor's batch requests
    /// under the default [`HashRouter`](crate::shard::HashRouter),
    /// which routes both by the same node identity.
    pub fn for_node(node: NodeId, baseline: impl Into<String>) -> Self {
        Self::new(node.0 as u64, baseline)
    }
}

/// The two incremental growth strategies behind one session surface.
#[derive(Debug, Clone)]
enum SessionInner {
    Steiner(IncrementalSteiner),
    Pcst(IncrementalPcst),
}

/// One user's live, growing summary (see module docs).
#[derive(Debug, Clone)]
pub struct EngineSession {
    inner: SessionInner,
}

impl EngineSession {
    /// A fresh ST session: Eq. 1 costs derived once from the baseline
    /// `input` (through the thread-local cost-model cache), terminals
    /// added later in rank order.
    pub fn steiner(g: &Graph, input: &SummaryInput, cfg: &SteinerConfig) -> Self {
        Self::steiner_with_workspace(g, input, cfg, DijkstraWorkspace::new())
    }

    /// [`EngineSession::steiner`] seeded with a recycled workspace.
    pub fn steiner_with_workspace(
        g: &Graph,
        input: &SummaryInput,
        cfg: &SteinerConfig,
        ws: DijkstraWorkspace,
    ) -> Self {
        EngineSession {
            inner: SessionInner::Steiner(IncrementalSteiner::with_workspace(g, input, cfg, ws)),
        }
    }

    /// A fresh PCST session (scope grows with each recommendation).
    pub fn pcst(scenario: Scenario, cfg: PcstConfig) -> Self {
        EngineSession {
            inner: SessionInner::Pcst(IncrementalPcst::new(scenario, cfg)),
        }
    }

    /// Attach one terminal (ST: cheapest path to the tree; PCST: prize
    /// raise + cheapest in-scope connection). Returns edges added.
    pub fn add_terminal(&mut self, g: &Graph, t: NodeId) -> usize {
        match &mut self.inner {
            SessionInner::Steiner(s) => s.add_terminal(g, t),
            SessionInner::Pcst(s) => s.add_terminal(g, t),
        }
    }

    /// Absorb one explained recommendation. For PCST the path extends
    /// the growth scope and both endpoints become terminals; for ST
    /// (whose costs are fixed by the baseline input) it attaches the
    /// path's endpoints as terminals.
    pub fn add_recommendation(&mut self, g: &Graph, path: &LoosePath) -> usize {
        match &mut self.inner {
            SessionInner::Steiner(s) => {
                s.add_terminal(g, path.source()) + s.add_terminal(g, path.target())
            }
            SessionInner::Pcst(s) => s.add_recommendation(g, path),
        }
    }

    /// The current summary snapshot.
    pub fn summary(&self) -> Summary {
        match &self.inner {
            SessionInner::Steiner(s) => s.summary(),
            SessionInner::Pcst(s) => s.summary(),
        }
    }

    /// Number of terminals attached so far.
    pub fn terminal_count(&self) -> usize {
        match &self.inner {
            SessionInner::Steiner(s) => s.terminal_count(),
            SessionInner::Pcst(s) => s.terminal_count(),
        }
    }

    /// Current summary size `|E_S|`.
    pub fn size(&self) -> usize {
        match &self.inner {
            SessionInner::Steiner(s) => s.size(),
            SessionInner::Pcst(s) => s.size(),
        }
    }

    /// Absorb a weight-only delta in place, or report `false` when the
    /// session must be rebuilt. ST sessions survive iff the delta is
    /// disjoint from their touched-edge fingerprint and keeps the Eq. 1
    /// anchor (see [`IncrementalSteiner::try_apply_weight_delta`]); PCST
    /// sessions grow by unit-cost BFS and never read weights, so they
    /// survive any weight-only delta unconditionally.
    pub(crate) fn try_apply_weight_delta(&mut self, touched: &[WeightDeltaRec]) -> bool {
        match &mut self.inner {
            SessionInner::Steiner(s) => s.try_apply_weight_delta(touched),
            SessionInner::Pcst(_) => true,
        }
    }

    /// Tear down, recovering the Dijkstra workspace of an ST session.
    fn harvest_workspace(self) -> Option<DijkstraWorkspace> {
        match self.inner {
            SessionInner::Steiner(s) => Some(s.into_workspace()),
            SessionInner::Pcst(_) => None,
        }
    }
}

/// LRU store of live [`EngineSession`]s keyed by [`SessionKey`].
///
/// Serves one graph at a time: every lookup first compares the graph's
/// mutation epoch against the epoch the stored sessions were built at,
/// and any difference drops them all (their cost tables and subgraphs
/// reference pre-mutation content). A `capacity` of `0` is the
/// degenerate **pass-through** store that retains nothing between
/// lookups — every access is a miss, nothing is ever addressable by
/// key afterwards ([`SessionStore::len`] stays 0), dropped pass-through
/// sessions are never counted as evictions and never donate their
/// workspaces — the correct serving behavior when session reuse is
/// disabled.
#[derive(Debug)]
pub struct SessionStore {
    capacity: usize,
    /// Epoch the stored sessions were built against.
    epoch: Option<u64>,
    /// O(1) keyed access; recency lives in each entry's `last_used`
    /// stamp (monotone `clock` ticks), so lookups never shift a vector.
    /// Eviction scans for the minimum stamp — O(n), but only on
    /// overflow, which is rare next to per-request lookups.
    entries: FxHashMap<SessionKey, StoredSession>,
    /// Capacity-0 landing slot: the one session a pass-through lookup
    /// just built, kept *only* so the returned borrow has somewhere to
    /// live. It is never resumed (the next lookup overwrites it), never
    /// addressable ([`SessionStore::contains`]/[`SessionStore::remove`]
    /// ignore it), and its workspace is dropped — not recycled — with
    /// it.
    passthrough: Option<EngineSession>,
    /// Monotone recency clock.
    clock: u64,
    /// Warm workspaces harvested from evicted/invalidated ST sessions.
    spares: Vec<DijkstraWorkspace>,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Sessions dropped because a structural mutation (or a delta chain
    /// the ledger no longer covers) moved the epoch.
    invalidated_structural: u64,
    /// Sessions dropped by a weight-only delta that overlapped their
    /// fingerprint or moved the Eq. 1 anchor.
    invalidated_delta: u64,
    /// Sessions that absorbed a weight-only delta in place and lived on.
    survived_delta: u64,
    /// Revalidation passes that dropped ≥ 1 session (event-shaped; see
    /// [`SessionStore::invalidations`]).
    invalidation_events: u64,
}

/// A stored session plus the exact config it was built under and its
/// recency stamp.
#[derive(Debug)]
struct StoredSession {
    config: SessionConfig,
    last_used: u64,
    session: EngineSession,
}

/// The exact configuration a session was created with. Compared — not
/// hashed — on lookup, so a session grown under different costs/prizes
/// can never be resumed by accident.
#[derive(Debug, Clone, Copy)]
enum SessionConfig {
    Steiner(SteinerConfig),
    Pcst(Scenario, PcstConfig),
}

/// Config equality is **bit-level** on the f64 parameters (λ/δ/prizes),
/// not IEEE `==`: under IEEE semantics a NaN-parameterized config would
/// never equal itself (every lookup replaces the session it just
/// built — a permanent self-mismatch), while `-0.0 == 0.0` would let a
/// session grown under one sign of zero resume under the other even
/// though the two configs are distinguishable bit patterns (and are
/// distinct keys in [`crate::steiner::CostModelKey`], which already
/// fingerprints via [`f64::to_bits`] — this keeps the two layers'
/// notions of "same config" aligned).
impl PartialEq for SessionConfig {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring on purpose: a field added to either
        // config struct fails to compile here instead of being silently
        // excluded from the fingerprint (which would resume sessions
        // across genuinely different configs).
        match (self, other) {
            (SessionConfig::Steiner(a), SessionConfig::Steiner(b)) => {
                let SteinerConfig { lambda, delta } = *a;
                let SteinerConfig {
                    lambda: lambda_b,
                    delta: delta_b,
                } = *b;
                (lambda.to_bits(), delta.to_bits()) == (lambda_b.to_bits(), delta_b.to_bits())
            }
            (SessionConfig::Pcst(sa, a), SessionConfig::Pcst(sb, b)) => {
                let PcstConfig {
                    terminal_prize,
                    nonterminal_prize,
                    use_edge_weights,
                    scope,
                    prune,
                } = *a;
                let PcstConfig {
                    terminal_prize: terminal_b,
                    nonterminal_prize: nonterminal_b,
                    use_edge_weights: use_edge_weights_b,
                    scope: scope_b,
                    prune: prune_b,
                } = *b;
                sa == sb
                    && terminal_prize.to_bits() == terminal_b.to_bits()
                    && nonterminal_prize.to_bits() == nonterminal_b.to_bits()
                    && use_edge_weights == use_edge_weights_b
                    && scope == scope_b
                    && prune == prune_b
            }
            _ => false,
        }
    }
}

/// Upper bound on retained spare workspaces (a workspace is a few
/// node-sized arrays; keeping a handful covers churn without pinning
/// memory proportional to eviction history).
const MAX_SPARE_WORKSPACES: usize = 16;

impl SessionStore {
    /// A store retaining at most `capacity` sessions.
    pub fn new(capacity: usize) -> Self {
        SessionStore {
            capacity,
            epoch: None,
            entries: FxHashMap::default(),
            passthrough: None,
            clock: 0,
            spares: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidated_structural: 0,
            invalidated_delta: 0,
            survived_delta: 0,
            invalidation_events: 0,
        }
    }

    /// Change the capacity, evicting LRU sessions if shrinking (a shrink
    /// to 0 evicts — and recycles — every retained session, then the
    /// store serves pass-through).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > self.capacity {
            self.evict_lru();
        }
        if capacity > 0 {
            // A leftover pass-through session is dropped outright — it
            // was never part of the retained population.
            self.passthrough = None;
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` has a live session (does not touch LRU order).
    pub fn contains(&self, key: &SessionKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Lookups served from a live session.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that built a fresh session.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Sessions dropped for capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Epoch-invalidation **events**: revalidation passes that dropped
    /// at least one session. A wholesale structural clear counts once,
    /// and so does a delta pass regardless of how many sessions it
    /// dropped — the historical counter, kept event-shaped so one
    /// mutation reads as one invalidation. Per-session magnitudes are
    /// in [`SessionStore::invalidated_structural`] /
    /// [`SessionStore::invalidated_delta`] /
    /// [`SessionStore::survived_delta`].
    pub fn invalidations(&self) -> u64 {
        self.invalidation_events
    }

    /// Sessions dropped because a structural mutation moved the epoch
    /// (or the delta ledger no longer covered the gap).
    pub fn invalidated_structural(&self) -> u64 {
        self.invalidated_structural
    }

    /// Sessions dropped by a weight-only delta that overlapped their
    /// touched-edge fingerprint or moved the Eq. 1 anchor.
    pub fn invalidated_delta(&self) -> u64 {
        self.invalidated_delta
    }

    /// Sessions that absorbed a weight-only delta in place and survived.
    pub fn survived_delta(&self) -> u64 {
        self.survived_delta
    }

    /// Drop every session (retained workspaces are recycled; a
    /// pass-through session is dropped without recycling).
    pub fn clear(&mut self) {
        self.passthrough = None;
        let drained: Vec<StoredSession> = self.entries.drain().map(|(_, e)| e).collect();
        for entry in drained {
            self.recycle(entry.session);
        }
    }

    /// Remove one session, returning it to the caller (its workspace is
    /// *not* recycled — the caller owns the session now). Pass-through
    /// sessions of a capacity-0 store are not addressable here.
    pub fn remove(&mut self, key: &SessionKey) -> Option<EngineSession> {
        self.entries.remove(key).map(|e| e.session)
    }

    /// The live ST session for `key`, creating it from `input`/`cfg` on
    /// miss (seeded with a recycled workspace when one is available).
    pub fn steiner_session(
        &mut self,
        g: &Graph,
        key: SessionKey,
        input: &SummaryInput,
        cfg: &SteinerConfig,
    ) -> &mut EngineSession {
        self.lookup(g, key, SessionConfig::Steiner(*cfg), |store| {
            let ws = store.spares.pop().unwrap_or_default();
            EngineSession::steiner_with_workspace(g, input, cfg, ws)
        })
    }

    /// The live PCST session for `key`, creating it on miss.
    pub fn pcst_session(
        &mut self,
        g: &Graph,
        key: SessionKey,
        scenario: Scenario,
        cfg: PcstConfig,
    ) -> &mut EngineSession {
        self.lookup(g, key, SessionConfig::Pcst(scenario, cfg), |_| {
            EngineSession::pcst(scenario, cfg)
        })
    }

    /// Shared lookup path: epoch validation → pass-through shortcut →
    /// keyed probe (a hit must also match the exact config — a session
    /// grown under different costs/prizes is replaced, not resumed) →
    /// miss construction with LRU pruning.
    ///
    /// Deliberately free of `unwrap`/`expect`: the hit path re-inserts
    /// the removed entry through the vacant-by-construction `entry`
    /// slot, so no access here can ever panic and surface a store bug
    /// as a serving-thread crash.
    fn lookup(
        &mut self,
        g: &Graph,
        key: SessionKey,
        config: SessionConfig,
        make: impl FnOnce(&mut Self) -> EngineSession,
    ) -> &mut EngineSession {
        self.validate_epoch(g);
        if self.capacity == 0 {
            // Pass-through: build, hand out, retain nothing addressable.
            // The previous pass-through session (if any) is dropped here
            // — not evicted, not workspace-harvested.
            self.misses += 1;
            let session = make(self);
            return self.passthrough.insert(session);
        }
        self.clock += 1;
        let stamp = self.clock;
        let stored = match self.entries.remove(&key) {
            Some(entry) if entry.config == config => {
                self.hits += 1;
                StoredSession {
                    last_used: stamp,
                    ..entry
                }
            }
            stale => {
                if let Some(entry) = stale {
                    // Same user/baseline, different config: the stored
                    // growth state reflects other costs — rebuild.
                    self.recycle(entry.session);
                }
                while self.entries.len() + 1 > self.capacity {
                    self.evict_lru();
                }
                self.misses += 1;
                StoredSession {
                    config,
                    last_used: stamp,
                    session: make(self),
                }
            }
        };
        &mut self.entries.entry(key).or_insert(stored).session
    }

    /// Reconcile the store with the graph's current epoch.
    ///
    /// No move: nothing to do. A weight-only move covered by the delta
    /// ledger: each session individually absorbs the delta
    /// ([`EngineSession::try_apply_weight_delta`], O(|delta|) per
    /// session) or is dropped. Anything else (structural mutation,
    /// truncated ledger): every session's derived costs and subgraphs
    /// are pre-mutation state — drop them all.
    fn validate_epoch(&mut self, g: &Graph) {
        let epoch = g.epoch();
        if self.epoch == Some(epoch) {
            return;
        }
        if !self.entries.is_empty() {
            match self.epoch.and_then(|e| g.delta_since(e)) {
                Some(touched) => {
                    let keys: Vec<SessionKey> = self.entries.keys().cloned().collect();
                    let mut dropped = false;
                    for k in keys {
                        let survives = self
                            .entries
                            .get_mut(&k)
                            .is_some_and(|e| e.session.try_apply_weight_delta(&touched));
                        if survives {
                            self.survived_delta += 1;
                        } else {
                            self.invalidated_delta += 1;
                            dropped = true;
                            if let Some(entry) = self.entries.remove(&k) {
                                self.recycle(entry.session);
                            }
                        }
                    }
                    if dropped {
                        self.invalidation_events += 1;
                    }
                }
                None => {
                    self.invalidated_structural += self.entries.len() as u64;
                    self.invalidation_events += 1;
                    self.clear();
                }
            }
        }
        self.epoch = Some(epoch);
    }

    fn evict_lru(&mut self) {
        let oldest = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        if let Some(entry) = oldest.and_then(|k| self.entries.remove(&k)) {
            self.evictions += 1;
            self.recycle(entry.session);
        }
    }

    fn recycle(&mut self, session: EngineSession) {
        if self.spares.len() < MAX_SPARE_WORKSPACES {
            if let Some(ws) = session.harvest_workspace() {
                self.spares.push(ws);
            }
        }
    }

    /// The most-recent→least-recent ordering of live keys (MRU first) —
    /// exposed for tests and observability dashboards.
    pub fn keys_mru(&self) -> Vec<&SessionKey> {
        let mut pairs: Vec<(&SessionKey, u64)> =
            self.entries.iter().map(|(k, e)| (k, e.last_used)).collect();
        pairs.sort_unstable_by_key(|&(_, stamp)| std::cmp::Reverse(stamp));
        pairs.into_iter().map(|(k, _)| k).collect()
    }
}

/// The session summary for a growing user-centric request, one call:
/// look up (or start) the session, attach any new terminals, snapshot.
///
/// Convenience for the common serving shape — the engine's session
/// store equivalent of [`crate::incremental_series`].
pub fn session_summary(
    store: &mut SessionStore,
    g: &Graph,
    key: SessionKey,
    input: &SummaryInput,
    cfg: &SteinerConfig,
    terminals_in_rank_order: &[NodeId],
) -> Summary {
    let session = store.steiner_session(g, key, input, cfg);
    for &t in terminals_in_rank_order {
        session.add_terminal(g, t);
    }
    session.summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::table1_example;

    fn key(u: u64) -> SessionKey {
        SessionKey::new(u, "pgpr")
    }

    #[test]
    fn hit_resumes_the_same_session() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut store = SessionStore::new(4);
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        s.add_terminal(&ex.graph, ex.user1);
        s.add_terminal(&ex.graph, ex.items[0]);
        let edges_before = s.size();
        assert!(edges_before > 0);
        // Same key later: the session resumes where it left off.
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        assert_eq!(s.size(), edges_before);
        assert_eq!(s.terminal_count(), 2);
        assert_eq!((store.hits(), store.misses()), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut store = SessionStore::new(2);
        store.steiner_session(&ex.graph, key(1), &input, &cfg);
        store.steiner_session(&ex.graph, key(2), &input, &cfg);
        // Touch 1 so 2 becomes the LRU.
        store.steiner_session(&ex.graph, key(1), &input, &cfg);
        store.steiner_session(&ex.graph, key(3), &input, &cfg);
        assert!(store.contains(&key(1)), "recently used survives");
        assert!(!store.contains(&key(2)), "LRU evicted");
        assert!(store.contains(&key(3)));
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.keys_mru()[0], &key(3));
    }

    #[test]
    fn capacity_zero_retains_nothing() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut store = SessionStore::new(0);
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        s.add_terminal(&ex.graph, ex.user1);
        s.add_terminal(&ex.graph, ex.items[0]);
        assert!(s.size() > 0);
        // Same key again: never a hit, growth state gone.
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        assert_eq!(s.terminal_count(), 0, "capacity 0 rebuilds from scratch");
        assert_eq!(store.hits(), 0);
        assert_eq!(store.misses(), 2);
    }

    #[test]
    fn capacity_zero_is_a_true_pass_through() {
        // Satellite regression: a capacity-0 store must never retain a
        // session in its addressable population, never count the
        // dropped pass-through sessions as evictions, and never harvest
        // their workspaces into the spare pool.
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut store = SessionStore::new(0);
        for _ in 0..3 {
            let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
            assert_eq!(s.terminal_count(), 0, "never resumed");
            s.add_terminal(&ex.graph, ex.user1);
            s.add_terminal(&ex.graph, ex.items[0]);
            assert!(s.size() > 0, "the handed-out session is live");
        }
        assert_eq!(store.len(), 0, "nothing retained");
        assert!(store.is_empty());
        assert!(!store.contains(&key(1)), "pass-through is unaddressable");
        assert!(store.remove(&key(1)).is_none());
        assert_eq!((store.hits(), store.misses()), (0, 3));
        assert_eq!(store.evictions(), 0, "pass-through drops ≠ evictions");
        assert_eq!(store.spares.len(), 0, "stale workspaces never recycled");
    }

    #[test]
    fn shrinking_capacity_to_zero_switches_to_pass_through() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut store = SessionStore::new(4);
        for u in 1..=3 {
            let s = store.steiner_session(&ex.graph, key(u), &input, &cfg);
            s.add_terminal(&ex.graph, ex.user1);
        }
        assert_eq!(store.len(), 3);
        // The shrink itself is a genuine capacity eviction sweep …
        store.set_capacity(0);
        assert_eq!(store.len(), 0);
        assert_eq!(store.evictions(), 3);
        // … after which every lookup passes through without retention.
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        assert_eq!(s.terminal_count(), 0);
        assert_eq!(store.len(), 0);
        assert_eq!(store.evictions(), 3, "pass-through adds no evictions");
        // Growing the capacity again restores retention.
        store.set_capacity(2);
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        s.add_terminal(&ex.graph, ex.user1);
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        assert_eq!(s.terminal_count(), 1, "retention is back");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn epoch_change_invalidates_all_sessions() {
        let mut ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut store = SessionStore::new(4);
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        s.add_terminal(&ex.graph, ex.user1);
        store.steiner_session(&ex.graph, key(2), &input, &cfg);
        assert_eq!(store.len(), 2);
        // Raising a weight to 9.0 moves the Eq. 1 anchor: even though
        // the mutation is weight-only, no session can absorb it.
        ex.graph.set_weight(xsum_graph::EdgeId(0), 9.0);
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        assert_eq!(s.terminal_count(), 0, "post-mutation session is fresh");
        assert_eq!(store.invalidations(), 1, "one mutation, one event");
        assert_eq!(store.invalidated_delta(), 2, "both stale sessions dropped");
        assert_eq!(store.invalidated_structural(), 0);
        assert_eq!(store.len(), 1);
        // A structural mutation drops everything, counted separately.
        store.steiner_session(&ex.graph, key(2), &input, &cfg);
        let n = ex.graph.add_node(xsum_graph::NodeKind::Entity);
        ex.graph
            .add_edge(ex.user1, n, 1.0, xsum_graph::EdgeKind::Attribute);
        store.steiner_session(&ex.graph, key(1), &input, &cfg);
        assert_eq!(store.invalidated_structural(), 2);
        assert_eq!(store.invalidations(), 2, "two mutations, two events");
    }

    #[test]
    fn disjoint_weight_delta_lets_sessions_survive() {
        let mut ex = table1_example();
        // A far component edge no session will ever observe.
        let a = ex.graph.add_node(xsum_graph::NodeKind::Entity);
        let b = ex.graph.add_node(xsum_graph::NodeKind::Entity);
        let far = ex
            .graph
            .add_edge(a, b, 0.5, xsum_graph::EdgeKind::Attribute);
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut store = SessionStore::new(4);
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        s.add_terminal(&ex.graph, ex.user1);
        s.add_terminal(&ex.graph, ex.items[0]);
        let grown = s.size();
        // A PCST session never reads weights: it always survives.
        store.pcst_session(
            &ex.graph,
            key(2),
            Scenario::UserCentric,
            PcstConfig::default(),
        );
        // Anchor-safe, disjoint delta: both sessions live on.
        ex.graph.apply_delta(&[(far, 0.75)]);
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        assert_eq!(s.terminal_count(), 2, "ST session survived the delta");
        assert_eq!(s.size(), grown);
        assert_eq!(store.survived_delta(), 2);
        assert_eq!(store.invalidations(), 0);
        assert_eq!((store.hits(), store.misses()), (1, 2));
        // The survivor keeps growing exactly like a rebuilt session.
        let mut oracle = SessionStore::new(4);
        let o = oracle.steiner_session(&ex.graph, key(1), &input, &cfg);
        o.add_terminal(&ex.graph, ex.user1);
        o.add_terminal(&ex.graph, ex.items[0]);
        o.add_terminal(&ex.graph, ex.items[1]);
        let want = o.summary();
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        s.add_terminal(&ex.graph, ex.items[1]);
        let got = s.summary();
        assert_eq!(got.subgraph.sorted_edges(), want.subgraph.sorted_edges());
        assert_eq!(got.subgraph.sorted_nodes(), want.subgraph.sorted_nodes());
    }

    #[test]
    fn workspace_recycling_on_eviction() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut store = SessionStore::new(1);
        let s = store.steiner_session(&ex.graph, key(1), &input, &cfg);
        s.add_terminal(&ex.graph, ex.user1);
        s.add_terminal(&ex.graph, ex.items[0]);
        // key(2) evicts key(1); the evicted session's workspace is
        // available for the replacement.
        store.steiner_session(&ex.graph, key(2), &input, &cfg);
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.spares.len(), 0, "spare immediately reused");
    }

    #[test]
    fn config_change_replaces_instead_of_resuming() {
        let ex = table1_example();
        let input = ex.input();
        let mut store = SessionStore::new(4);
        let a = SteinerConfig {
            lambda: 1.0,
            delta: 1.0,
        };
        let s = store.steiner_session(&ex.graph, key(1), &input, &a);
        s.add_terminal(&ex.graph, ex.user1);
        assert_eq!(s.terminal_count(), 1);
        // Same key, different λ: the λ=1 growth state must not be
        // resumed under λ=100 costs.
        let b = SteinerConfig {
            lambda: 100.0,
            delta: 1.0,
        };
        let s = store.steiner_session(&ex.graph, key(1), &input, &b);
        assert_eq!(s.terminal_count(), 0, "different config rebuilds");
        assert_eq!((store.hits(), store.misses()), (0, 2));
        assert_eq!(store.len(), 1, "replacement, not a second entry");
        // And the original config now misses too (it was replaced).
        let s = store.steiner_session(&ex.graph, key(1), &input, &a);
        assert_eq!(s.terminal_count(), 0);
        assert_eq!(store.misses(), 3);
    }

    #[test]
    fn nan_config_matches_its_own_fingerprint() {
        // Satellite regression: under derived (IEEE) f64 equality a NaN
        // λ never equals itself, so a NaN-configured session could never
        // be resumed — every lookup silently replaced the session it
        // built one call earlier. Bit-level fingerprinting must treat
        // the identical NaN bit pattern as the same config.
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig {
            lambda: f64::NAN,
            delta: 1.0,
        };
        let mut store = SessionStore::new(4);
        store.steiner_session(&ex.graph, key(1), &input, &cfg);
        store.steiner_session(&ex.graph, key(1), &input, &cfg);
        assert_eq!((store.hits(), store.misses()), (1, 1), "NaN config resumes");
        assert_eq!(store.len(), 1);
        // A *different* NaN bit pattern is a different config.
        let other_nan = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert!(other_nan.is_nan());
        let cfg2 = SteinerConfig {
            lambda: other_nan,
            delta: 1.0,
        };
        store.steiner_session(&ex.graph, key(1), &input, &cfg2);
        assert_eq!((store.hits(), store.misses()), (1, 2));

        // Same for PCST prize params.
        let pc = PcstConfig {
            terminal_prize: f64::NAN,
            ..PcstConfig::default()
        };
        store.pcst_session(&ex.graph, key(2), Scenario::UserCentric, pc);
        store.pcst_session(&ex.graph, key(2), Scenario::UserCentric, pc);
        assert_eq!(store.hits(), 2, "NaN prize config resumes too");
    }

    #[test]
    fn signed_zero_configs_are_distinct() {
        // Satellite regression: IEEE `-0.0 == 0.0` would resume a
        // session grown under λ = 0.0 when looked up with λ = -0.0 —
        // two bit-distinct configs (and two distinct cost-model cache
        // keys, which already compare via to_bits). The store must
        // replace, not resume.
        let ex = table1_example();
        let input = ex.input();
        let mut store = SessionStore::new(4);
        let pos = SteinerConfig {
            lambda: 0.0,
            delta: 1.0,
        };
        let neg = SteinerConfig {
            lambda: -0.0,
            delta: 1.0,
        };
        let s = store.steiner_session(&ex.graph, key(1), &input, &pos);
        s.add_terminal(&ex.graph, ex.user1);
        let n = store.steiner_session(&ex.graph, key(1), &input, &neg);
        assert_eq!(
            n.terminal_count(),
            0,
            "-0.0 must not resume the 0.0 session"
        );
        assert_eq!((store.hits(), store.misses()), (0, 2));
        // And each sign still matches itself.
        store.steiner_session(&ex.graph, key(1), &input, &neg);
        assert_eq!(store.hits(), 1);
    }

    #[test]
    fn pcst_sessions_grow_monotonically() {
        let ex = table1_example();
        let mut store = SessionStore::new(4);
        let mut prev = 0usize;
        for p in &ex.paths {
            let s = store.pcst_session(
                &ex.graph,
                key(7),
                Scenario::UserCentric,
                PcstConfig::default(),
            );
            s.add_recommendation(&ex.graph, p);
            assert!(s.size() >= prev, "summary never shrinks");
            prev = s.size();
        }
        assert_eq!(store.misses(), 1);
        assert_eq!(store.hits(), ex.paths.len() as u64 - 1);
    }

    #[test]
    fn session_summary_helper_snapshots() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut store = SessionStore::new(4);
        let mut terminals = vec![ex.user1];
        terminals.extend_from_slice(&ex.items);
        let s = session_summary(&mut store, &ex.graph, key(1), &input, &cfg, &terminals);
        assert_eq!(s.terminal_coverage(), 1.0);
        assert!(s.subgraph.edge_count() >= 3);
    }
}
