//! Incremental Steiner summaries across k.
//!
//! Fig. 6's discussion attributes ST's cross-k stability to the fact that
//! "ST minimally extends the tree with the necessary edges to connect one
//! additional terminal node with each k increment". This module makes
//! that operational: [`IncrementalSteiner`] maintains one summary and
//! grows it terminal by terminal, attaching each new terminal through its
//! cheapest path to the current tree (one Dijkstra per increment, versus
//! Algorithm 1's |T| Dijkstras per recomputation).
//!
//! The incremental tree is not guaranteed to match the batch KMB output —
//! it trades a slightly looser approximation for perfect structural
//! continuity (`S_k ⊆ S_{k+1}`), which maximizes the consistency metric
//! by construction.

use xsum_graph::{
    DijkstraWorkspace, EdgeCosts, FxHashSet, Graph, NodeId, Subgraph, WeightDeltaRec,
};

use crate::input::{Scenario, SummaryInput};
use crate::steiner::{cached_cost_model, delta_keeps_anchor, SteinerConfig};
use crate::summary::Summary;

/// A summary grown one terminal at a time.
#[derive(Debug, Clone)]
pub struct IncrementalSteiner {
    costs: EdgeCosts,
    scenario: Scenario,
    subgraph: Subgraph,
    terminals: Vec<NodeId>,
    /// Reused across increments: one session performs one Dijkstra per
    /// added terminal with zero allocation after the first.
    ws: DijkstraWorkspace,
    /// Every edge whose cost this session has *observed*: the λ-boosted
    /// input-path edges (whose patched value would need the boost
    /// factor), plus all edges incident to any node a past Dijkstra
    /// settled (relaxation reads an edge's cost only when an endpoint
    /// settles, so this is a conservative superset of the read set). A
    /// weight delta disjoint from this set provably cannot have changed
    /// any decision the session made — see
    /// [`IncrementalSteiner::try_apply_weight_delta`].
    fingerprint: FxHashSet<xsum_graph::EdgeId>,
    /// The Eq. 1 anchor the session's cost table was derived from.
    base_max: f64,
    cfg: SteinerConfig,
}

impl IncrementalSteiner {
    /// Start an empty incremental summary using the same Eq. 1-boosted
    /// costs [`crate::steiner_summary`] would use for `input`. The
    /// input's paths define the costs; its terminals are *not* added —
    /// feed them through [`IncrementalSteiner::add_terminal`] in rank
    /// order.
    pub fn new(g: &Graph, input: &SummaryInput, cfg: &SteinerConfig) -> Self {
        Self::with_workspace(g, input, cfg, DijkstraWorkspace::new())
    }

    /// [`IncrementalSteiner::new`] seeded with a recycled
    /// [`DijkstraWorkspace`] (e.g. harvested from an evicted session by
    /// [`crate::session::SessionStore`]), so a new session starts with
    /// warm, pre-sized search buffers. Costs come through the
    /// thread-local Eq. 1 model cache — bit-identical to
    /// [`crate::steiner::steiner_costs`].
    pub fn with_workspace(
        g: &Graph,
        input: &SummaryInput,
        cfg: &SteinerConfig,
        ws: DijkstraWorkspace,
    ) -> Self {
        let model = cached_cost_model(g, cfg);
        let mut costs = model.fresh_costs();
        let mut touched = Vec::new();
        model.patch(g, input, &mut costs, &mut touched);
        // The boosted path edges seed the session's touched-edge
        // fingerprint: a later weight delta hitting one of them cannot be
        // absorbed without re-deriving the boost.
        let fingerprint = touched.iter().map(|&(e, _)| e).collect();
        IncrementalSteiner {
            costs,
            scenario: input.scenario,
            subgraph: Subgraph::new(),
            terminals: Vec::new(),
            ws,
            fingerprint,
            base_max: model.base_max(),
            cfg: *cfg,
        }
    }

    /// Tear the session down, handing back its [`DijkstraWorkspace`] for
    /// reuse by a successor session.
    pub fn into_workspace(self) -> DijkstraWorkspace {
        self.ws
    }

    /// Attach `t`: connect it to the current tree through the cheapest
    /// path (the first terminal just seeds the tree). Returns the number
    /// of edges added. Unreachable terminals are kept as isolated nodes,
    /// like the batch algorithms do.
    pub fn add_terminal(&mut self, g: &Graph, t: NodeId) -> usize {
        if self.subgraph.contains_node(t) {
            if !self.terminals.contains(&t) {
                self.terminals.push(t);
            }
            return 0;
        }
        self.terminals.push(t);
        if self.subgraph.is_empty() {
            self.subgraph.insert_node(t);
            return 0;
        }
        // Dijkstra from the new terminal until any tree node settles.
        let tree_nodes: Vec<NodeId> = self.subgraph.sorted_nodes();
        self.ws.run(g, &self.costs, t, &tree_nodes);
        // Fold this search's cost read-set into the fingerprint: the
        // kernel reads an edge's cost only when relaxing out of a
        // settled endpoint.
        self.ws.for_each_settled(|n| {
            for &(_, e) in g.neighbors(n) {
                self.fingerprint.insert(e);
            }
        });
        // Cheapest settled tree node.
        let best = tree_nodes
            .iter()
            .filter_map(|n| self.ws.distance(*n).map(|d| (d, *n)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| a.1.cmp(&b.1)));
        let Some((_, anchor)) = best else {
            self.subgraph.insert_node(t); // unreachable: isolated mention
            return 0;
        };
        let path = self.ws.path_to(g, anchor).expect("anchor was settled");
        let mut added = 0;
        for e in path {
            if self.subgraph.insert_edge(g, e) {
                added += 1;
            }
        }
        added
    }

    /// Absorb a weight-only delta in place, or report `false` (leaving
    /// the session untouched) when the session must be rebuilt.
    ///
    /// Survival is sound when (a) no touched edge is in the session's
    /// [`fingerprint`](Self::fingerprint) — every cost the session ever
    /// *read* is bit-unchanged, so its tree, terminals, and workspace
    /// state are exactly what a rebuilt session replaying the same
    /// `add_terminal` calls would hold — and (b) the delta provably
    /// leaves the Eq. 1 anchor alone, so every *unread* entry of a
    /// rebuilt cost table differs from ours only at the touched edges,
    /// which we patch here with the rebuild's exact expression. Checked
    /// in O(|delta|); on success future increments are bit-identical to
    /// a rebuilt-from-scratch session.
    pub(crate) fn try_apply_weight_delta(&mut self, touched: &[WeightDeltaRec]) -> bool {
        if !delta_keeps_anchor(self.base_max, touched) {
            return false;
        }
        if touched.iter().any(|rec| {
            rec.edge.index() >= self.costs.0.len() || self.fingerprint.contains(&rec.edge)
        }) {
            return false;
        }
        let floor = self.cfg.delta * 1e-2;
        for rec in touched {
            let w = f64::from_bits(rec.new_bits);
            self.costs.0[rec.edge.index()] = ((self.base_max + self.cfg.delta) - w).max(floor);
        }
        true
    }

    /// The current summary snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            method: "ST-incremental",
            scenario: self.scenario,
            subgraph: self.subgraph.clone(),
            terminals: self.terminals.clone(),
        }
    }

    /// Number of terminals attached so far.
    pub fn terminal_count(&self) -> usize {
        self.terminals.len()
    }

    /// Current summary size `|E_S|`.
    pub fn size(&self) -> usize {
        self.subgraph.edge_count()
    }
}

/// Convenience: the k-indexed series of summaries `S_1..S_K` for a
/// user-centric style input whose terminals arrive in rank order
/// (`focus` first, then one recommended item per k).
pub fn incremental_series(
    g: &Graph,
    input: &SummaryInput,
    cfg: &SteinerConfig,
    focus: NodeId,
    ranked_items: &[NodeId],
) -> Vec<Summary> {
    let mut inc = IncrementalSteiner::new(g, input, cfg);
    inc.add_terminal(g, focus);
    let mut out = Vec::with_capacity(ranked_items.len());
    for &item in ranked_items {
        inc.add_terminal(g, item);
        out.push(inc.summary());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::table1_example;
    use xsum_graph::FxHashSet;

    #[test]
    fn grows_monotonically_and_covers() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut inc = IncrementalSteiner::new(&ex.graph, &input, &cfg);
        inc.add_terminal(&ex.graph, ex.user1);
        let mut prev_edges: FxHashSet<_> = FxHashSet::default();
        for item in ex.items {
            inc.add_terminal(&ex.graph, item);
            let s = inc.summary();
            assert_eq!(s.terminal_coverage(), 1.0);
            // Monotone growth: previous edges all survive.
            for e in &prev_edges {
                assert!(s.subgraph.contains_edge(*e));
            }
            prev_edges = s.subgraph.edges().clone();
        }
        assert!(inc.size() >= 3, "three items need at least 3 edges");
        assert_eq!(inc.terminal_count(), 4);
    }

    #[test]
    fn series_consistency_is_maximal() {
        // Consecutive incremental summaries differ only by additions, so
        // J(S_k, S_{k+1}) = |V_k| / |V_{k+1}| — strictly higher than any
        // recomputation that reshuffles the tree.
        let ex = table1_example();
        let input = ex.input();
        let series = incremental_series(
            &ex.graph,
            &input,
            &SteinerConfig::default(),
            ex.user1,
            &ex.items,
        );
        assert_eq!(series.len(), 3);
        for w in series.windows(2) {
            let a = &w[0].subgraph;
            let b = &w[1].subgraph;
            for n in a.sorted_nodes() {
                assert!(b.contains_node(n), "nodes never disappear across k");
            }
        }
    }

    #[test]
    fn duplicate_terminals_are_free() {
        let ex = table1_example();
        let input = ex.input();
        let mut inc = IncrementalSteiner::new(&ex.graph, &input, &SteinerConfig::default());
        inc.add_terminal(&ex.graph, ex.user1);
        let added_first = inc.add_terminal(&ex.graph, ex.items[0]);
        assert!(added_first > 0);
        let added_again = inc.add_terminal(&ex.graph, ex.items[0]);
        assert_eq!(added_again, 0);
        assert_eq!(inc.terminal_count(), 2, "duplicates are not re-registered");
    }

    #[test]
    fn unreachable_terminal_kept_isolated() {
        let mut ex = table1_example();
        let lonely = ex
            .graph
            .add_labeled_node(xsum_graph::NodeKind::Item, "Off-catalogue");
        let input = ex.input();
        let mut inc = IncrementalSteiner::new(&ex.graph, &input, &SteinerConfig::default());
        inc.add_terminal(&ex.graph, ex.user1);
        inc.add_terminal(&ex.graph, lonely);
        let s = inc.summary();
        assert!(s.subgraph.contains_node(lonely));
        assert_eq!(s.terminal_coverage(), 1.0);
        assert_eq!(s.subgraph.edge_count(), 0);
    }

    #[test]
    fn disjoint_delta_survives_bit_identically() {
        let mut ex = table1_example();
        // An edge the session will never observe: its own component,
        // weight safely below the anchor.
        let a = ex.graph.add_node(xsum_graph::NodeKind::Entity);
        let b = ex.graph.add_node(xsum_graph::NodeKind::Entity);
        let far = ex
            .graph
            .add_edge(a, b, 0.5, xsum_graph::EdgeKind::Attribute);
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut live = IncrementalSteiner::new(&ex.graph, &input, &cfg);
        live.add_terminal(&ex.graph, ex.user1);
        live.add_terminal(&ex.graph, ex.items[0]);
        let before = ex.graph.epoch();
        ex.graph.apply_delta(&[(far, 0.75)]);
        let touched = ex.graph.delta_since(before).expect("weight-only chain");
        assert!(
            live.try_apply_weight_delta(&touched),
            "a disjoint, anchor-safe delta must be absorbed"
        );
        // A session rebuilt on the mutated graph and replayed must match
        // bit-for-bit, including across further growth.
        let mut rebuilt = IncrementalSteiner::new(&ex.graph, &input, &cfg);
        rebuilt.add_terminal(&ex.graph, ex.user1);
        rebuilt.add_terminal(&ex.graph, ex.items[0]);
        for (x, y) in live.costs.0.iter().zip(rebuilt.costs.0.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "patched costs == rebuilt costs");
        }
        live.add_terminal(&ex.graph, ex.items[1]);
        rebuilt.add_terminal(&ex.graph, ex.items[1]);
        assert_eq!(
            live.summary().subgraph.sorted_edges(),
            rebuilt.summary().subgraph.sorted_edges()
        );
    }

    #[test]
    fn observed_or_anchor_deltas_are_refused() {
        let mut ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut inc = IncrementalSteiner::new(&ex.graph, &input, &cfg);
        inc.add_terminal(&ex.graph, ex.user1);
        inc.add_terminal(&ex.graph, ex.items[0]);
        // An input-path edge is always in the fingerprint.
        let path_edge = input.paths[0]
            .grounded_edges()
            .next()
            .expect("grounded path");
        let before = ex.graph.epoch();
        let w = ex.graph.weight(path_edge);
        ex.graph.apply_delta(&[(path_edge, w * 0.5)]);
        let touched = ex.graph.delta_since(before).expect("weight-only chain");
        assert!(
            !inc.try_apply_weight_delta(&touched),
            "observed-edge deltas must force a rebuild"
        );
        // An anchor-raising delta is refused even on an unobserved edge.
        let mut ex = table1_example();
        let a = ex.graph.add_node(xsum_graph::NodeKind::Entity);
        let b = ex.graph.add_node(xsum_graph::NodeKind::Entity);
        let far = ex
            .graph
            .add_edge(a, b, 0.5, xsum_graph::EdgeKind::Attribute);
        let input = ex.input();
        let mut inc = IncrementalSteiner::new(&ex.graph, &input, &cfg);
        inc.add_terminal(&ex.graph, ex.user1);
        let before = ex.graph.epoch();
        ex.graph.apply_delta(&[(far, 1e9)]);
        let touched = ex.graph.delta_since(before).expect("weight-only chain");
        assert!(
            !inc.try_apply_weight_delta(&touched),
            "anchor-raising deltas must force a rebuild"
        );
    }

    #[test]
    fn incremental_size_close_to_batch() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let batch = crate::steiner::steiner_summary(&ex.graph, &input, &cfg);
        let series = incremental_series(&ex.graph, &input, &cfg, ex.user1, &ex.items);
        let final_size = series.last().unwrap().subgraph.edge_count();
        // On the Table I example the greedy attachment matches KMB.
        assert!(
            final_size <= batch.subgraph.edge_count() + 2,
            "incremental {final_size} vs batch {}",
            batch.subgraph.edge_count()
        );
    }
}
