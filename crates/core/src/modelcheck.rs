//! Model-checked concurrency scenarios for the serving stack.
//!
//! Compiled only under `--cfg xsum_loom`, where the
//! [`xsum_graph::sync`] facade swaps every mutex, condvar, atomic and
//! spawn in [`WorkerPool`](xsum_graph::WorkerPool),
//! [`AdmissionQueue`], [`TicketSet`] and
//! [`CircuitBreaker`](crate::CircuitBreaker) for the vendored loom
//! shim's instrumented primitives. Each scenario below wraps one
//! protocol in `loom::model_with` and lets the shim's deterministic
//! scheduler enumerate thread interleavings; a panic, deadlock or
//! violated assertion in *any* explored schedule fails the scenario
//! with the offending schedule printed.
//!
//! The scenarios live in this crate (not in the test tree) so that
//! mock backends can construct [`EngineError`]s through the
//! `pub(crate)` constructor, and so `repro modelcheck` can time them
//! and record `schedules_explored` in `BENCH_batch.json`. The actual
//! `#[test]` wrappers are in `tests/model_concurrency.rs` at the
//! workspace root; `CONCURRENCY.md` documents how to run and read
//! them.
//!
//! Scenario inventory (mirrors the invariants the suite pins):
//!
//! * [`pool_map_with_and_drop`] — the real [`WorkerPool`] end to end:
//!   lazy spawn, work-stealing dispatch, completion wait, shutdown.
//! * [`pool_shutdown_protocol`] — a minimal replica of the pool's
//!   seq/shutdown worker protocol under a teardown that races an
//!   outstanding wake-up. `buggy = true` re-introduces the pre-PR 4
//!   ordering (sequence observation before the shutdown check, with
//!   the `expect` crash path) which the checker must catch.
//! * [`ticket_set_exactly_once`] — every ticket added to a
//!   [`TicketSet`] is yielded exactly once across producer /
//!   dispatcher / consumer interleavings, and a submitted-but-dropped
//!   ticket disturbs nothing.
//! * [`linger_flush_no_deadlock`] — a linger window larger than the
//!   queue contents cannot deadlock `SummaryTicket::wait` (the
//!   flush-own-request discipline).
//! * [`poison_recover_no_lost_ticket`] — a failed mutation barrier
//!   poisons the queue without losing a ticket: every wait returns,
//!   and after [`AdmissionQueue::recover`] the queue serves again.
//! * [`breaker_transitions_race_free`] — [`CircuitBreaker`] invariants
//!   hold after every step of two racing recorder threads.

use crate::admission::{AdmissionBackend, AdmissionConfig, AdmissionQueue, TicketSet};
use crate::batch::BatchMethod;
use crate::breaker::{CircuitBreaker, CircuitConfig};
use crate::engine::EngineError;
use crate::input::{Scenario, SummaryInput};
use crate::steiner::SteinerConfig;
use crate::summary::Summary;
use loom::{model_with, ModelConfig, ModelStats};
use xsum_graph::sync::atomic::{AtomicU64, Ordering};
use xsum_graph::sync::{thread, Arc, Condvar, Mutex, PoisonError};
use xsum_graph::{Graph, NodeId, Subgraph, WorkerPool};

/// A backend that serves canned summaries with zero graph work, so the
/// model explores *queue* interleavings rather than engine internals.
/// `fail_mutations` > 0 makes that many `mutate_graph` calls return
/// `Err` (poisoning the queue) before the backend heals.
#[derive(Debug)]
struct MockBackend {
    fail_mutations: u32,
}

impl MockBackend {
    fn healthy() -> Self {
        MockBackend { fail_mutations: 0 }
    }

    fn failing_once() -> Self {
        MockBackend { fail_mutations: 1 }
    }

    fn summary(input: &SummaryInput) -> Summary {
        Summary {
            method: "mock",
            scenario: input.scenario,
            subgraph: Subgraph::new(),
            terminals: input.terminals.clone(),
        }
    }
}

impl AdmissionBackend for MockBackend {
    fn run_batch(
        &mut self,
        inputs: &[&SummaryInput],
        _method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        Ok(inputs.iter().map(|i| MockBackend::summary(i)).collect())
    }

    fn run_one(
        &mut self,
        input: &SummaryInput,
        _method: BatchMethod,
    ) -> Result<Summary, EngineError> {
        Ok(MockBackend::summary(input))
    }

    fn mutate_graph(&mut self, f: &mut dyn FnMut(&mut Graph)) -> Result<(), EngineError> {
        // The mock owns no graph, so the closure is never applied —
        // the scenarios only observe the queue's barrier/poison
        // protocol, not mutation effects.
        let _ = f;
        if self.fail_mutations > 0 {
            self.fail_mutations -= 1;
            return Err(EngineError::from_message(
                "modelcheck: injected incoherent mutation",
            ));
        }
        Ok(())
    }

    fn recover_coherence(&mut self) -> Result<(), EngineError> {
        Ok(())
    }
}

fn mock_input(k: u32) -> SummaryInput {
    SummaryInput {
        scenario: Scenario::UserCentric,
        terminals: vec![NodeId(k)],
        paths: Vec::new(),
        anchor_count: 1,
    }
}

fn mock_method() -> BatchMethod {
    BatchMethod::SteinerFast(SteinerConfig::default())
}

/// The real [`WorkerPool`] under the model: lazy worker spawn, a
/// work-stealing `map_with` over more items than workers, and Drop's
/// shutdown broadcast. Any interleaving that loses an item, wakes
/// nobody, or deadlocks the completion wait fails the check.
pub fn pool_map_with_and_drop() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 300,
            random_runs: 60,
            ..ModelConfig::default()
        },
        || {
            let mut pool = WorkerPool::new(2);
            let mut states = [0u32, 0u32];
            let items = [1u32, 2, 3];
            let out = pool.map_with(&mut states, &items, |calls, _i, item| {
                *calls += 1;
                *item * 2
            });
            assert_eq!(out, vec![2, 4, 6], "map_with lost or reordered an item");
            assert_eq!(
                states.iter().sum::<u32>(),
                3,
                "work-stealing ran an item zero or two times"
            );
            drop(pool);
        },
    )
}

/// Shared state of the miniature pool replica: the exact fields the
/// real `PoolState` uses for the dispatch/shutdown handshake.
struct MiniState {
    seq: u64,
    job: Option<u64>,
    active: usize,
    remaining: usize,
    shutdown: bool,
}

struct MiniShared {
    state: Mutex<MiniState>,
    work_cv: Condvar,
}

fn mini_lock(shared: &MiniShared) -> xsum_graph::sync::MutexGuard<'_, MiniState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One worker running the *fixed* (post-PR 4) protocol: shutdown takes
/// precedence over any pending sequence observation, and a seq bump
/// whose job slot is already empty is treated as teardown racing the
/// wake-up, never unwrapped.
fn mini_worker_fixed(shared: &MiniShared, idx: usize, processed: &AtomicU64) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = mini_lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != seen {
                    seen = st.seq;
                    if idx >= st.active {
                        continue;
                    }
                    match st.job {
                        Some(job) => break job,
                        None => continue,
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        assert_eq!(job, 42, "worker dereferenced a torn-down job slot");
        processed.fetch_add(1, Ordering::SeqCst);
        let mut st = mini_lock(shared);
        st.remaining = st.remaining.saturating_sub(1);
    }
}

/// One worker running the *old* ordering the PR 4 sweep removed: the
/// sequence observation comes first and the job slot is `expect`ed.
/// When teardown (which clears the slot) races the wake-up, the
/// `expect` turns the race into a worker-thread crash — which the
/// model reports as a failure.
fn mini_worker_buggy(shared: &MiniShared, idx: usize, processed: &AtomicU64) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = mini_lock(shared);
            loop {
                if st.seq != seen {
                    seen = st.seq;
                    if idx < st.active {
                        break st.job.expect("seq bumped without a job");
                    }
                }
                if st.shutdown {
                    return;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        assert_eq!(job, 42, "worker dereferenced a torn-down job slot");
        processed.fetch_add(1, Ordering::SeqCst);
        let mut st = mini_lock(shared);
        st.remaining = st.remaining.saturating_sub(1);
    }
}

/// The pool's seq/shutdown worker handshake under a teardown that
/// races an outstanding dispatch wake-up — the hazard window behind
/// the PR 4 "shutdown/seq race" fix. The dispatcher publishes one job
/// and immediately tears down (shutdown flag set, job slot cleared,
/// broadcast) without waiting for the workers, so the scheduler is
/// free to deliver the two wake-ups in either order.
///
/// With `buggy = false` every interleaving must terminate cleanly:
/// a worker either processes the job before teardown or observes the
/// shutdown flag and exits. With `buggy = true` the old
/// observation-first / `expect` ordering is run instead, and the
/// schedule where a worker first wakes *after* teardown crashes it —
/// the caller (`tests/model_concurrency.rs`) asserts the checker
/// reports that failure.
pub fn pool_shutdown_protocol(buggy: bool) -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 2_000,
            random_runs: 100,
            ..ModelConfig::default()
        },
        move || {
            let shared = Arc::new(MiniShared {
                state: Mutex::new(MiniState {
                    seq: 0,
                    job: None,
                    active: 0,
                    remaining: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
            });
            let processed = Arc::new(AtomicU64::new(0));
            let workers: Vec<_> = (0..2)
                .map(|idx| {
                    let shared = Arc::clone(&shared);
                    let processed = Arc::clone(&processed);
                    thread::spawn(move || {
                        if buggy {
                            mini_worker_buggy(&shared, idx, &processed);
                        } else {
                            mini_worker_fixed(&shared, idx, &processed);
                        }
                    })
                })
                .collect();

            // Dispatch one job to both workers...
            {
                let mut st = mini_lock(&shared);
                st.seq += 1;
                st.job = Some(42);
                st.active = 2;
                st.remaining = 2;
            }
            shared.work_cv.notify_all();

            // ...and tear down without waiting for completion: the
            // WorkerPool drop protocol (flag + slot clear + broadcast)
            // racing workers that may not have woken yet.
            {
                let mut st = mini_lock(&shared);
                st.shutdown = true;
                st.job = None;
            }
            shared.work_cv.notify_all();

            for h in workers {
                h.join().expect("mini pool worker must exit cleanly");
            }
            assert!(
                processed.load(Ordering::SeqCst) <= 2,
                "a worker processed the single dispatch twice"
            );
        },
    )
}

/// Exactly-once multiplexing: two tagged tickets added to a
/// [`TicketSet`] by a producer thread racing the dispatcher must each
/// be yielded exactly once, in some order, with an `Ok` result — and
/// a submitted-but-dropped ticket (never added) must not disturb the
/// set or wedge the queue.
pub fn ticket_set_exactly_once() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 250,
            random_runs: 50,
            ..ModelConfig::default()
        },
        || {
            let queue = Arc::new(AdmissionQueue::new(
                MockBackend::healthy(),
                AdmissionConfig {
                    queue_bound: 8,
                    max_batch: 4,
                    linger_tickets: 1,
                },
            ));
            let set = Arc::new(TicketSet::new());

            let producer = {
                let queue = Arc::clone(&queue);
                let set = Arc::clone(&set);
                thread::spawn(move || {
                    for tag in 0..2u64 {
                        let ticket = queue
                            .submit(mock_input(tag as u32), mock_method())
                            .expect("queue has room");
                        set.add(tag, ticket);
                    }
                })
            };

            // A ticket that is submitted but never added to the set:
            // dropping it must not corrupt the set's bookkeeping.
            let stray = queue
                .submit(mock_input(9), mock_method())
                .expect("queue has room");
            drop(stray);

            producer.join().expect("producer panicked");

            let mut seen = [0u32; 2];
            for _ in 0..2 {
                let done = set.wait_any().expect("two members are pending");
                assert!(done.result.is_ok(), "mock backend never fails a summary");
                seen[done.tag as usize] += 1;
            }
            assert_eq!(seen, [1, 1], "a ticket was yielded zero or two times");
            assert!(set.is_empty(), "drained set still has members");
            assert!(set.poll().is_none(), "drained set yielded a third ticket");
        },
    )
}

/// A linger window larger than everything queued must not deadlock a
/// ticket waiter: `SummaryTicket::wait` closes the window up to its
/// own request before blocking. Two waiters (the root and a spawned
/// producer) each submit one request into a `linger_tickets = 4`
/// window and wait; every interleaving must resolve both.
pub fn linger_flush_no_deadlock() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 250,
            random_runs: 50,
            ..ModelConfig::default()
        },
        || {
            let queue = Arc::new(AdmissionQueue::new(
                MockBackend::healthy(),
                AdmissionConfig {
                    queue_bound: 8,
                    max_batch: 4,
                    // Wider than the two requests ever queued: without
                    // the flush-own-request discipline the dispatcher
                    // would linger forever and both waits would hang.
                    linger_tickets: 4,
                },
            ));

            let waiter = {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let ticket = queue
                        .submit(mock_input(1), mock_method())
                        .expect("queue has room");
                    ticket.wait().expect("mock summary resolves Ok");
                })
            };

            let ticket = queue
                .submit(mock_input(2), mock_method())
                .expect("queue has room");
            ticket.wait().expect("mock summary resolves Ok");
            waiter.join().expect("waiter panicked");
        },
    )
}

/// A failed mutation barrier must poison the queue without losing a
/// ticket. A producer races the barrier: whatever the interleaving,
/// its wait *returns* (served `Ok` before the barrier, or failed
/// `Poisoned`/refused at submit after it — never wedged). After
/// [`AdmissionQueue::recover`] the queue serves again.
pub fn poison_recover_no_lost_ticket() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 250,
            random_runs: 50,
            ..ModelConfig::default()
        },
        || {
            let queue = Arc::new(AdmissionQueue::new(
                MockBackend::failing_once(),
                AdmissionConfig {
                    queue_bound: 8,
                    max_batch: 4,
                    linger_tickets: 1,
                },
            ));

            let racer = {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    // Admitted: the ticket must resolve either way —
                    // the assertion is that `wait` returns at all (a
                    // lost ticket deadlocks here and fails the model).
                    // Refusal by an already-poisoned queue is also a
                    // ticket-preserving outcome.
                    if let Ok(ticket) = queue.submit(mock_input(1), mock_method()) {
                        let _ = ticket.wait();
                    }
                })
            };

            queue
                .mutate(|_| {})
                .expect_err("the injected mutation failure must surface");
            racer.join().expect("racing producer panicked");

            queue.recover().expect("recovery restores coherence");
            let ticket = queue
                .submit(mock_input(2), mock_method())
                .expect("recovered queue admits again");
            ticket.wait().expect("recovered queue serves again");
        },
    )
}

/// Two threads hammer one shared [`CircuitBreaker`] with interleaved
/// failure / tick / success sequences over a virtual clock, asserting
/// the structural invariants after every step. The model explores the
/// orderings a sharded router's serve calls could produce.
pub fn breaker_transitions_race_free() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 2_000,
            random_runs: 100,
            ..ModelConfig::default()
        },
        || {
            let breaker = Arc::new(Mutex::new(CircuitBreaker::new(CircuitConfig {
                failure_threshold: 1,
                cooldown: 1,
                max_cooldown: 2,
            })));
            let clock = Arc::new(AtomicU64::new(0));

            let handles: Vec<_> = (0..2)
                .map(|who: usize| {
                    let breaker = Arc::clone(&breaker);
                    let clock = Arc::clone(&clock);
                    thread::spawn(move || {
                        for step in 0..2 {
                            let now = clock.fetch_add(1, Ordering::SeqCst) + 1;
                            let mut b = breaker.lock().unwrap_or_else(PoisonError::into_inner);
                            b.tick(now);
                            b.assert_invariants();
                            if (who + step).is_multiple_of(2) {
                                b.record_failure(now);
                            } else {
                                b.record_success();
                            }
                            b.assert_invariants();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("breaker recorder panicked");
            }

            let b = breaker.lock().unwrap_or_else(PoisonError::into_inner);
            b.assert_invariants();
        },
    )
}
