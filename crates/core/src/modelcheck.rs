//! Model-checked concurrency scenarios for the serving stack.
//!
//! Compiled only under `--cfg xsum_loom`, where the
//! [`xsum_graph::sync`] facade swaps every mutex, condvar, atomic and
//! spawn in [`WorkerPool`](xsum_graph::WorkerPool),
//! [`AdmissionQueue`], [`TicketSet`] and
//! [`CircuitBreaker`](crate::CircuitBreaker) for the vendored loom
//! shim's instrumented primitives. Each scenario below wraps one
//! protocol in `loom::model_with` and lets the shim's deterministic
//! scheduler enumerate thread interleavings; a panic, deadlock or
//! violated assertion in *any* explored schedule fails the scenario
//! with the offending schedule printed.
//!
//! The scenarios live in this crate (not in the test tree) so that
//! mock backends can construct [`EngineError`]s through the
//! `pub(crate)` constructor, and so `repro modelcheck` can time them
//! and record `schedules_explored` in `BENCH_batch.json`. The actual
//! `#[test]` wrappers are in `tests/model_concurrency.rs` at the
//! workspace root; `CONCURRENCY.md` documents how to run and read
//! them.
//!
//! Scenario inventory (mirrors the invariants the suite pins):
//!
//! * [`pool_map_with_and_drop`] — the real [`WorkerPool`] end to end:
//!   lazy spawn, work-stealing dispatch, completion wait, shutdown.
//! * [`pool_shutdown_protocol`] — a minimal replica of the pool's
//!   seq/shutdown worker protocol under a teardown that races an
//!   outstanding wake-up. `buggy = true` re-introduces the pre-PR 4
//!   ordering (sequence observation before the shutdown check, with
//!   the `expect` crash path) which the checker must catch.
//! * [`ticket_set_exactly_once`] — every ticket added to a
//!   [`TicketSet`] is yielded exactly once across producer /
//!   dispatcher / consumer interleavings, and a submitted-but-dropped
//!   ticket disturbs nothing.
//! * [`linger_flush_no_deadlock`] — a linger window larger than the
//!   queue contents cannot deadlock `SummaryTicket::wait` (the
//!   flush-own-request discipline).
//! * [`poison_recover_no_lost_ticket`] — a failed mutation barrier
//!   poisons the queue without losing a ticket: every wait returns,
//!   and after [`AdmissionQueue::recover`] the queue serves again.
//! * [`breaker_transitions_race_free`] — [`CircuitBreaker`] invariants
//!   hold after every step of two racing recorder threads.
//! * [`partitioned_scatter_mutation_barrier`] — producers race a
//!   partition-mutation barrier through the queue against a
//!   partitioned-style backend: every serve lands exactly once (local
//!   or cross-shard escalation, never both, never lost), a serve never
//!   observes a partition *ahead* of the mutation authority, and the
//!   dispatcher's per-batch
//!   [`DispatchMeta::cross_shard`](crate::admission::DispatchMeta::cross_shard)
//!   deltas sum exactly to the backend's escalation counter.

use crate::admission::{AdmissionBackend, AdmissionConfig, AdmissionQueue, TicketSet};
use crate::batch::BatchMethod;
use crate::breaker::{CircuitBreaker, CircuitConfig};
use crate::engine::EngineError;
use crate::input::{Scenario, SummaryInput};
use crate::steiner::SteinerConfig;
use crate::summary::Summary;
use loom::{model_with, ModelConfig, ModelStats};
use xsum_graph::sync::atomic::{AtomicU64, Ordering};
use xsum_graph::sync::{thread, Arc, Condvar, Mutex, PoisonError};
use xsum_graph::{Graph, NodeId, Subgraph, WorkerPool};

/// A backend that serves canned summaries with zero graph work, so the
/// model explores *queue* interleavings rather than engine internals.
/// `fail_mutations` > 0 makes that many `mutate_graph` calls return
/// `Err` (poisoning the queue) before the backend heals.
#[derive(Debug)]
struct MockBackend {
    fail_mutations: u32,
}

impl MockBackend {
    fn healthy() -> Self {
        MockBackend { fail_mutations: 0 }
    }

    fn failing_once() -> Self {
        MockBackend { fail_mutations: 1 }
    }

    fn summary(input: &SummaryInput) -> Summary {
        Summary {
            method: "mock",
            scenario: input.scenario,
            subgraph: Subgraph::new(),
            terminals: input.terminals.clone(),
        }
    }
}

impl AdmissionBackend for MockBackend {
    fn run_batch(
        &mut self,
        inputs: &[&SummaryInput],
        _method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        Ok(inputs.iter().map(|i| MockBackend::summary(i)).collect())
    }

    fn run_one(
        &mut self,
        input: &SummaryInput,
        _method: BatchMethod,
    ) -> Result<Summary, EngineError> {
        Ok(MockBackend::summary(input))
    }

    fn mutate_graph(&mut self, f: &mut dyn FnMut(&mut Graph)) -> Result<(), EngineError> {
        // The mock owns no graph, so the closure is never applied —
        // the scenarios only observe the queue's barrier/poison
        // protocol, not mutation effects.
        let _ = f;
        if self.fail_mutations > 0 {
            self.fail_mutations -= 1;
            return Err(EngineError::from_message(
                "modelcheck: injected incoherent mutation",
            ));
        }
        Ok(())
    }

    fn apply_weight_delta(
        &mut self,
        _updates: &[(xsum_graph::EdgeId, f64)],
    ) -> Result<(), EngineError> {
        // Weight-only deltas never fail on the mock: the scenarios it
        // backs exercise barrier/poison interleavings, which the
        // non-barrier path shares with `mutate_graph`.
        Ok(())
    }

    fn recover_coherence(&mut self) -> Result<(), EngineError> {
        Ok(())
    }
}

fn mock_input(k: u32) -> SummaryInput {
    SummaryInput {
        scenario: Scenario::UserCentric,
        terminals: vec![NodeId(k)],
        paths: Vec::new(),
        anchor_count: 1,
    }
}

fn mock_method() -> BatchMethod {
    BatchMethod::SteinerFast(SteinerConfig::default())
}

/// The real [`WorkerPool`] under the model: lazy worker spawn, a
/// work-stealing `map_with` over more items than workers, and Drop's
/// shutdown broadcast. Any interleaving that loses an item, wakes
/// nobody, or deadlocks the completion wait fails the check.
pub fn pool_map_with_and_drop() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 300,
            random_runs: 60,
            ..ModelConfig::default()
        },
        || {
            let mut pool = WorkerPool::new(2);
            let mut states = [0u32, 0u32];
            let items = [1u32, 2, 3];
            let out = pool.map_with(&mut states, &items, |calls, _i, item| {
                *calls += 1;
                *item * 2
            });
            assert_eq!(out, vec![2, 4, 6], "map_with lost or reordered an item");
            assert_eq!(
                states.iter().sum::<u32>(),
                3,
                "work-stealing ran an item zero or two times"
            );
            drop(pool);
        },
    )
}

/// Shared state of the miniature pool replica: the exact fields the
/// real `PoolState` uses for the dispatch/shutdown handshake.
struct MiniState {
    seq: u64,
    job: Option<u64>,
    active: usize,
    remaining: usize,
    shutdown: bool,
}

struct MiniShared {
    state: Mutex<MiniState>,
    work_cv: Condvar,
}

fn mini_lock(shared: &MiniShared) -> xsum_graph::sync::MutexGuard<'_, MiniState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One worker running the *fixed* (post-PR 4) protocol: shutdown takes
/// precedence over any pending sequence observation, and a seq bump
/// whose job slot is already empty is treated as teardown racing the
/// wake-up, never unwrapped.
fn mini_worker_fixed(shared: &MiniShared, idx: usize, processed: &AtomicU64) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = mini_lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != seen {
                    seen = st.seq;
                    if idx >= st.active {
                        continue;
                    }
                    match st.job {
                        Some(job) => break job,
                        None => continue,
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        assert_eq!(job, 42, "worker dereferenced a torn-down job slot");
        processed.fetch_add(1, Ordering::SeqCst);
        let mut st = mini_lock(shared);
        st.remaining = st.remaining.saturating_sub(1);
    }
}

/// One worker running the *old* ordering the PR 4 sweep removed: the
/// sequence observation comes first and the job slot is `expect`ed.
/// When teardown (which clears the slot) races the wake-up, the
/// `expect` turns the race into a worker-thread crash — which the
/// model reports as a failure.
fn mini_worker_buggy(shared: &MiniShared, idx: usize, processed: &AtomicU64) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = mini_lock(shared);
            loop {
                if st.seq != seen {
                    seen = st.seq;
                    if idx < st.active {
                        break st.job.expect("seq bumped without a job");
                    }
                }
                if st.shutdown {
                    return;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        assert_eq!(job, 42, "worker dereferenced a torn-down job slot");
        processed.fetch_add(1, Ordering::SeqCst);
        let mut st = mini_lock(shared);
        st.remaining = st.remaining.saturating_sub(1);
    }
}

/// The pool's seq/shutdown worker handshake under a teardown that
/// races an outstanding dispatch wake-up — the hazard window behind
/// the PR 4 "shutdown/seq race" fix. The dispatcher publishes one job
/// and immediately tears down (shutdown flag set, job slot cleared,
/// broadcast) without waiting for the workers, so the scheduler is
/// free to deliver the two wake-ups in either order.
///
/// With `buggy = false` every interleaving must terminate cleanly:
/// a worker either processes the job before teardown or observes the
/// shutdown flag and exits. With `buggy = true` the old
/// observation-first / `expect` ordering is run instead, and the
/// schedule where a worker first wakes *after* teardown crashes it —
/// the caller (`tests/model_concurrency.rs`) asserts the checker
/// reports that failure.
pub fn pool_shutdown_protocol(buggy: bool) -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 2_000,
            random_runs: 100,
            ..ModelConfig::default()
        },
        move || {
            let shared = Arc::new(MiniShared {
                state: Mutex::new(MiniState {
                    seq: 0,
                    job: None,
                    active: 0,
                    remaining: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
            });
            let processed = Arc::new(AtomicU64::new(0));
            let workers: Vec<_> = (0..2)
                .map(|idx| {
                    let shared = Arc::clone(&shared);
                    let processed = Arc::clone(&processed);
                    thread::spawn(move || {
                        if buggy {
                            mini_worker_buggy(&shared, idx, &processed);
                        } else {
                            mini_worker_fixed(&shared, idx, &processed);
                        }
                    })
                })
                .collect();

            // Dispatch one job to both workers...
            {
                let mut st = mini_lock(&shared);
                st.seq += 1;
                st.job = Some(42);
                st.active = 2;
                st.remaining = 2;
            }
            shared.work_cv.notify_all();

            // ...and tear down without waiting for completion: the
            // WorkerPool drop protocol (flag + slot clear + broadcast)
            // racing workers that may not have woken yet.
            {
                let mut st = mini_lock(&shared);
                st.shutdown = true;
                st.job = None;
            }
            shared.work_cv.notify_all();

            for h in workers {
                h.join().expect("mini pool worker must exit cleanly");
            }
            assert!(
                processed.load(Ordering::SeqCst) <= 2,
                "a worker processed the single dispatch twice"
            );
        },
    )
}

/// Exactly-once multiplexing: two tagged tickets added to a
/// [`TicketSet`] by a producer thread racing the dispatcher must each
/// be yielded exactly once, in some order, with an `Ok` result — and
/// a submitted-but-dropped ticket (never added) must not disturb the
/// set or wedge the queue.
pub fn ticket_set_exactly_once() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 250,
            random_runs: 50,
            ..ModelConfig::default()
        },
        || {
            let queue = Arc::new(AdmissionQueue::new(
                MockBackend::healthy(),
                AdmissionConfig {
                    queue_bound: 8,
                    max_batch: 4,
                    linger_tickets: 1,
                },
            ));
            let set = Arc::new(TicketSet::new());

            let producer = {
                let queue = Arc::clone(&queue);
                let set = Arc::clone(&set);
                thread::spawn(move || {
                    for tag in 0..2u64 {
                        let ticket = queue
                            .submit(mock_input(tag as u32), mock_method())
                            .expect("queue has room");
                        set.add(tag, ticket);
                    }
                })
            };

            // A ticket that is submitted but never added to the set:
            // dropping it must not corrupt the set's bookkeeping.
            let stray = queue
                .submit(mock_input(9), mock_method())
                .expect("queue has room");
            drop(stray);

            producer.join().expect("producer panicked");

            let mut seen = [0u32; 2];
            for _ in 0..2 {
                let done = set.wait_any().expect("two members are pending");
                assert!(done.result.is_ok(), "mock backend never fails a summary");
                seen[done.tag as usize] += 1;
            }
            assert_eq!(seen, [1, 1], "a ticket was yielded zero or two times");
            assert!(set.is_empty(), "drained set still has members");
            assert!(set.poll().is_none(), "drained set yielded a third ticket");
        },
    )
}

/// A linger window larger than everything queued must not deadlock a
/// ticket waiter: `SummaryTicket::wait` closes the window up to its
/// own request before blocking. Two waiters (the root and a spawned
/// producer) each submit one request into a `linger_tickets = 4`
/// window and wait; every interleaving must resolve both.
pub fn linger_flush_no_deadlock() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 250,
            random_runs: 50,
            ..ModelConfig::default()
        },
        || {
            let queue = Arc::new(AdmissionQueue::new(
                MockBackend::healthy(),
                AdmissionConfig {
                    queue_bound: 8,
                    max_batch: 4,
                    // Wider than the two requests ever queued: without
                    // the flush-own-request discipline the dispatcher
                    // would linger forever and both waits would hang.
                    linger_tickets: 4,
                },
            ));

            let waiter = {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let ticket = queue
                        .submit(mock_input(1), mock_method())
                        .expect("queue has room");
                    ticket.wait().expect("mock summary resolves Ok");
                })
            };

            let ticket = queue
                .submit(mock_input(2), mock_method())
                .expect("queue has room");
            ticket.wait().expect("mock summary resolves Ok");
            waiter.join().expect("waiter panicked");
        },
    )
}

/// A failed mutation barrier must poison the queue without losing a
/// ticket. A producer races the barrier: whatever the interleaving,
/// its wait *returns* (served `Ok` before the barrier, or failed
/// `Poisoned`/refused at submit after it — never wedged). After
/// [`AdmissionQueue::recover`] the queue serves again.
pub fn poison_recover_no_lost_ticket() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 250,
            random_runs: 50,
            ..ModelConfig::default()
        },
        || {
            let queue = Arc::new(AdmissionQueue::new(
                MockBackend::failing_once(),
                AdmissionConfig {
                    queue_bound: 8,
                    max_batch: 4,
                    linger_tickets: 1,
                },
            ));

            let racer = {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    // Admitted: the ticket must resolve either way —
                    // the assertion is that `wait` returns at all (a
                    // lost ticket deadlocks here and fails the model).
                    // Refusal by an already-poisoned queue is also a
                    // ticket-preserving outcome.
                    if let Ok(ticket) = queue.submit(mock_input(1), mock_method()) {
                        let _ = ticket.wait();
                    }
                })
            };

            queue
                .mutate(|_| {})
                .expect_err("the injected mutation failure must surface");
            racer.join().expect("racing producer panicked");

            queue.recover().expect("recovery restores coherence");
            let ticket = queue
                .submit(mock_input(2), mock_method())
                .expect("recovered queue admits again");
            ticket.wait().expect("recovered queue serves again");
        },
    )
}

/// Two threads hammer one shared [`CircuitBreaker`] with interleaved
/// failure / tick / success sequences over a virtual clock, asserting
/// the structural invariants after every step. The model explores the
/// orderings a sharded router's serve calls could produce.
pub fn breaker_transitions_race_free() -> ModelStats {
    model_with(
        ModelConfig {
            max_schedules: 2_000,
            random_runs: 100,
            ..ModelConfig::default()
        },
        || {
            let breaker = Arc::new(Mutex::new(CircuitBreaker::new(CircuitConfig {
                failure_threshold: 1,
                cooldown: 1,
                max_cooldown: 2,
            })));
            let clock = Arc::new(AtomicU64::new(0));

            let handles: Vec<_> = (0..2)
                .map(|who: usize| {
                    let breaker = Arc::clone(&breaker);
                    let clock = Arc::clone(&clock);
                    thread::spawn(move || {
                        for step in 0..2 {
                            let now = clock.fetch_add(1, Ordering::SeqCst) + 1;
                            let mut b = breaker.lock().unwrap_or_else(PoisonError::into_inner);
                            b.tick(now);
                            b.assert_invariants();
                            if (who + step).is_multiple_of(2) {
                                b.record_failure(now);
                            } else {
                                b.record_success();
                            }
                            b.assert_invariants();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("breaker recorder panicked");
            }

            let b = breaker.lock().unwrap_or_else(PoisonError::into_inner);
            b.assert_invariants();
        },
    )
}

/// A minimal replica of the partitioned serving protocol (shard.rs,
/// "Partitioned topology") under the admission queue: two partitions
/// with per-partition sync versions, one mutation authority, and a
/// lazy halo-sync discipline — a partition left stale by a mutation
/// escalates its next request cross-shard (the coverage serve) and
/// only then re-syncs, exactly the certify-or-escalate shape.
///
/// Two producers race single submissions against a mutation barrier.
/// Invariants asserted across every explored interleaving:
/// * a serve never observes a partition version *ahead* of the
///   authority (the barrier orders authority write before partition
///   sync);
/// * every completed request was served exactly once, locally or
///   cross-shard (`local + cross == completed`, nothing lost or
///   double-served);
/// * the dispatcher's per-batch `DispatchMeta::cross_shard` deltas —
///   computed by differencing `AdmissionBackend::cross_shard_serves`
///   around each dispatch — sum exactly to the backend's own
///   escalation counter (no delta is lost or double-counted when
///   batches and barriers interleave).
pub fn partitioned_scatter_mutation_barrier() -> ModelStats {
    /// The partitioned mock: `parts[home] == authority` serves locally,
    /// a stale partition escalates to coverage and re-syncs.
    #[derive(Debug)]
    struct MockPartitioned {
        authority: u64,
        parts: [u64; 2],
        local: Arc<AtomicU64>,
        cross: Arc<AtomicU64>,
    }

    impl MockPartitioned {
        fn serve(&mut self, input: &SummaryInput) -> Summary {
            let home = (input.terminals[0].0 as usize) % 2;
            assert!(
                self.parts[home] <= self.authority,
                "partition {home} ran ahead of the mutation authority"
            );
            if self.parts[home] == self.authority {
                self.local.fetch_add(1, Ordering::SeqCst);
            } else {
                self.cross.fetch_add(1, Ordering::SeqCst);
                self.parts[home] = self.authority;
            }
            MockBackend::summary(input)
        }
    }

    impl AdmissionBackend for MockPartitioned {
        fn run_batch(
            &mut self,
            inputs: &[&SummaryInput],
            _method: BatchMethod,
        ) -> Result<Vec<Summary>, EngineError> {
            Ok(inputs.iter().map(|i| self.serve(i)).collect())
        }

        fn run_one(
            &mut self,
            input: &SummaryInput,
            _method: BatchMethod,
        ) -> Result<Summary, EngineError> {
            Ok(self.serve(input))
        }

        fn mutate_graph(&mut self, f: &mut dyn FnMut(&mut Graph)) -> Result<(), EngineError> {
            let _ = f;
            // The barrier: authority first, then only partition 0 syncs
            // eagerly (the owner of the mutated edge) — partition 1
            // models a lazily-refreshed replica and stays stale until
            // its next serve escalates.
            self.authority += 1;
            self.parts[0] = self.authority;
            Ok(())
        }

        fn apply_weight_delta(
            &mut self,
            _updates: &[(xsum_graph::EdgeId, f64)],
        ) -> Result<(), EngineError> {
            Ok(())
        }

        fn recover_coherence(&mut self) -> Result<(), EngineError> {
            Ok(())
        }

        fn cross_shard_serves(&self) -> u64 {
            self.cross.load(Ordering::SeqCst)
        }
    }

    model_with(
        ModelConfig {
            max_schedules: 250,
            random_runs: 50,
            ..ModelConfig::default()
        },
        || {
            let local = Arc::new(AtomicU64::new(0));
            let cross = Arc::new(AtomicU64::new(0));
            let queue = Arc::new(AdmissionQueue::new(
                MockPartitioned {
                    authority: 0,
                    parts: [0, 0],
                    local: Arc::clone(&local),
                    cross: Arc::clone(&cross),
                },
                AdmissionConfig {
                    queue_bound: 8,
                    max_batch: 4,
                    linger_tickets: 1,
                },
            ));

            let producers: Vec<_> = (0..2u32)
                .map(|home| {
                    let queue = Arc::clone(&queue);
                    thread::spawn(move || {
                        let ticket = queue
                            .submit(mock_input(home), mock_method())
                            .expect("queue has room");
                        let (result, meta) = ticket.wait_meta();
                        result.expect("the partitioned mock never fails a serve");
                        (meta.batch, meta.cross_shard)
                    })
                })
                .collect();

            queue
                .mutate(|_| {})
                .expect("the partitioned mock mutation succeeds");

            // The meta is per *batch* (shared by every coalesced
            // member), so sum the deltas once per distinct batch id.
            let mut batches: Vec<(u64, usize)> = producers
                .into_iter()
                .map(|h| h.join().expect("producer panicked"))
                .collect();
            batches.sort_unstable();
            batches.dedup();
            let meta_cross: usize = batches.iter().map(|&(_, c)| c).sum();

            let served = local.load(Ordering::SeqCst) + cross.load(Ordering::SeqCst);
            assert_eq!(served, 2, "every request serves exactly once");
            assert_eq!(
                meta_cross as u64,
                cross.load(Ordering::SeqCst),
                "DispatchMeta::cross_shard deltas must sum to the backend counter"
            );
        },
    )
}
