//! # xsum-core
//!
//! The paper's primary contribution: **summary explanations** for
//! graph-based recommenders, computed with Steiner-tree machinery.
//!
//! Given a knowledge-based graph `G`, a set of terminal nodes `T` (the
//! user/item plus their recommendations) and the individual explanation
//! paths `P`, a summary explanation is a weakly connected subgraph `S`
//! of `G` that contains all terminals, with as few edges and as much
//! weight as possible (§III). Two algorithms:
//!
//! * [`steiner_summary`] — Algorithm 1: the Kou–Markowsky–Berman MST
//!   approximation of the Steiner tree over `T`, run on edge costs derived
//!   from the λ-boosted weights of Eq. 1 ([`adjusted_weights`]);
//! * [`pcst_summary`] — Algorithm 2: a Prim-style prize-collecting growth
//!   seeded at high-prize terminals, run on a configurable scope subgraph
//!   (§V-A uses prizes 1/0 and ignores edge weights);
//! * [`gw_pcst_summary`] — the Goemans–Williamson moat-growing
//!   2-approximation the paper cites (\[54\]), provided as the
//!   ablation-grade alternative PCST solver.
//!
//! The four summarization scenarios (user-centric, item-centric,
//! user-group, item-group) are expressed as [`SummaryInput`] constructors,
//! and [`render`] verbalizes paths and summaries exactly like the paper's
//! Table I / user-study stimuli.
//!
//! ## The batch engine
//!
//! Serving-scale throughput comes from three layers working together:
//!
//! * the graph substrate stores adjacency as a frozen CSR and exposes
//!   reusable, generation-stamped [`DijkstraWorkspace`]s
//!   ([`xsum_graph`]);
//! * [`steiner_tree`] keeps all KMB scratch (terminal dedup, metric
//!   closure, path arena, per-worker Dijkstra state) in a reusable
//!   [`SteinerWorkspace`] and allocates nothing but the output subgraph
//!   once warm; a parallel metric closure for large terminal sets
//!   (|T| ≥ 24) is available by opt-in via
//!   [`SteinerWorkspace::set_parallelism`] — the sequential entry
//!   points never spawn threads on their own;
//! * [`summarize_batch`] fans a slice of [`SummaryInput`]s across worker
//!   threads for ST, ST-fast ([`steiner_summary_fast`], the Mehlhorn
//!   closure), PCST, and GW-PCST alike, each worker reusing its own
//!   workspace across the summaries it processes, with results
//!   bit-identical to the sequential entry points and returned in input
//!   order;
//! * [`SummaryEngine`] makes all of that state *persistent* for serving:
//!   a pinned [`WorkerPool`](xsum_graph::WorkerPool) parked between
//!   calls, per-worker workspaces and Eq. 1 cost buffers that survive
//!   across batches, a (graph-epoch, config)-keyed [`CostModelCache`]
//!   (a thread-local instance of which also backs the sequential
//!   [`steiner_summary`] / [`steiner_summary_fast`] calls), and a
//!   [`SessionStore`] of per-user incremental sessions with LRU
//!   eviction and graph-epoch invalidation;
//! * [`ShardedEngine`] scales the engine horizontally: N engine
//!   replicas behind a [`ShardRouter`], with a scatter/gather batch
//!   planner (mixed batches grouped by shard, dispatched onto the
//!   replicas' pools concurrently, gathered in input order,
//!   bit-identical to a single engine), shard-affine session stores,
//!   and coherent cross-replica mutation ([`ShardedEngine::mutate`]).
//!   Replicas are either N full graph clones (the default) or — in
//!   partitioned mode ([`ShardedEngine::new_partitioned`]) — true
//!   sub-graph [`Partition`](xsum_graph::Partition)s with halos plus
//!   one full coverage replica, served certify-or-escalate behind a
//!   [`PartitionRouter`]; a [`ConsistentHashRouter`] offers
//!   bounded-movement hashing for elastic full-replica fleets;
//! * [`AdmissionQueue`] makes either engine *asynchronous* without an
//!   async runtime: a bounded submission queue accepting single and
//!   batch requests from many producer threads, coalescing queued
//!   singles into engine batches (ticket-count linger window,
//!   deadline-aware ordering), resolving condvar-backed
//!   [`SummaryTicket`]s, applying graph mutations as barriers, and
//!   isolating worker panics to exactly the affected tickets —
//!   bit-identical to direct [`SummaryEngine::summarize_batch`] calls
//!   (`tests/prop_admission.rs`);
//! * [`wire`] puts the queue on the network's terms: versioned
//!   request/response records in a compact length-prefixed binary
//!   framing (bit-exact `f64` params via `to_bits`), and
//!   [`serve_stream`] — a loop that decodes frames from any byte
//!   stream, submits through the queue, multiplexes completions with
//!   a [`TicketSet`], and writes responses back in completion order
//!   with request-id correlation.
//!
//! [`DijkstraWorkspace`]: xsum_graph::DijkstraWorkspace

#![forbid(unsafe_code)]

pub mod admission;
pub mod batch;
pub mod breaker;
pub mod engine;
pub mod exact;
pub mod export;
pub mod faults;
pub mod gw;
pub mod incremental;
pub mod incremental_pcst;
pub mod input;
#[cfg(xsum_loom)]
pub mod modelcheck;
pub mod pathfree;
pub mod pcst;
pub mod prizes;
pub mod render;
pub mod session;
pub mod shard;
pub mod steiner;
pub mod summary;
pub mod weighting;
pub mod wire;

pub use admission::{
    AdmissionBackend, AdmissionConfig, AdmissionError, AdmissionQueue, AdmissionStats,
    CompletedTicket, DegradePolicy, DispatchMeta, EngineBackend, OverloadPolicy, SubmitOptions,
    SummaryTicket, TicketSet, WeightUpdateTicket,
};
pub use batch::{summarize_batch, summarize_batch_threads, BatchMethod};
pub use breaker::CircuitBreaker;
pub use engine::{EngineError, SummaryEngine};
pub use exact::{
    exact_steiner_cost, exact_steiner_tree, optimality_gap, OptimalityGap, MAX_EXACT_TERMINALS,
};
pub use export::{overlay_to_dot, summary_to_dot, summary_to_tsv};
pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultSite};
pub use gw::gw_pcst_summary;
pub use incremental::{incremental_series, IncrementalSteiner};
pub use incremental_pcst::{incremental_pcst_series, IncrementalPcst};
pub use input::{Scenario, SummaryInput};
pub use pathfree::{
    generate_explanations, path_free_item_centric, path_free_user_centric, path_free_user_group,
    PathGenConfig,
};
pub use pcst::{pcst_summary, PcstConfig, PcstScope};
pub use prizes::{node_prizes, pcst_summary_with_policy, PrizePolicy};
pub use render::{render_path, render_summary, table1_example, Table1Example};
pub use session::{session_summary, EngineSession, SessionKey, SessionStore};
pub use shard::{
    BreakerState, CircuitConfig, ConsistentHashRouter, HashRouter, PartitionRouter, ShardRouter,
    ShardedEngine,
};
pub use steiner::{
    flush_cost_model_cache, steiner_costs, steiner_summary, steiner_summary_fast, steiner_tree,
    steiner_tree_fast, steiner_tree_fast_with, steiner_tree_with, CostModelCache, CostModelKey,
    SteinerConfig, SteinerCostModel, SteinerWorkspace,
};
pub use summary::Summary;
pub use weighting::adjusted_weights;
pub use wire::{
    decode_frame, encode_frame, read_frame, serve_stream, write_frame, MutationRequest,
    MutationResponse, ServeReport, SummaryRequest, SummaryResponse, WireError, WireFrame,
    WireMutation, WireSummary, MAX_FRAME_LEN, WIRE_VERSION,
};
