//! Deterministic fault injection for the serving stack.
//!
//! Chaos testing a concurrent serving tier is usually nondeterministic
//! by construction — faults fire off wall-clock timers or OS signals,
//! so a failing run cannot be replayed. This repo's whole test strategy
//! is the opposite (ticket-count linger windows, seeded property
//! inputs), and the fault plane follows it: a [`FaultPlan`] is a pure
//! function of a seed, and a [`FaultInjector`] walks that plan with one
//! atomic counter per [`FaultSite`], so the *tape* of decisions at each
//! site is identical on every run with the same seed.
//!
//! # Hook sites
//!
//! The injector is threaded into the stack's existing seams, always as
//! an `Option<Arc<..>>` that costs one never-taken branch when unset:
//!
//! * [`FaultSite::PoolDispatch`] — the [`WorkerPool`] dispatch hook
//!   ([`FaultInjector::pool_hook`] adapts the injector to the pool's
//!   type-erased [`DispatchHook`]); a fired panic unwinds like a worker
//!   panic and is caught by the engine's `try_*` paths.
//! * [`FaultSite::ShardServe`] — per-replica serve in
//!   [`ShardedEngine`](crate::shard::ShardedEngine); a fired fault
//!   fails that replica's sub-batch, exercising circuit breaking and
//!   failover onto healthy replicas.
//! * [`FaultSite::AdmissionDispatch`] — batch dispatch in
//!   [`AdmissionQueue`](crate::admission::AdmissionQueue); a fired
//!   fault fails the coalesced batch, exercising the per-ticket
//!   isolation retry.
//! * [`FaultSite::AdmissionMutate`] — mutation-barrier apply; a fired
//!   fault poisons the queue, exercising
//!   [`AdmissionQueue::recover`](crate::admission::AdmissionQueue::recover).
//!
//! # Termination
//!
//! Every plan carries a total fault **budget**. Retry loops in the
//! stack are bounded, and once the budget is exhausted the injector
//! never fires again, so any retried operation eventually runs clean —
//! under *any* seeded tape, every admitted ticket resolves
//! (`tests/prop_faults.rs`).
//!
//! [`WorkerPool`]: xsum_graph::WorkerPool
//! [`DispatchHook`]: xsum_graph::DispatchHook

use std::time::Duration;
use xsum_graph::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use xsum_graph::sync::Arc;

use xsum_graph::DispatchHook;

/// What an injected fault does at its hook site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind (or, at seams with an error channel, fail) the operation
    /// the way a worker panic would.
    Panic,
    /// Fail the operation with a recoverable error without unwinding —
    /// the "flaky dependency" shape. Seams without an error channel
    /// (the pool hook) treat it like [`FaultKind::Panic`].
    Transient,
    /// Sleep [`FaultPlan::delay`] before proceeding normally — latency
    /// jitter that must never change any output bit.
    Delay,
}

/// Where in the stack a fault can fire (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// [`WorkerPool`](xsum_graph::WorkerPool) dispatch (via
    /// [`FaultInjector::pool_hook`]).
    PoolDispatch,
    /// A [`ShardedEngine`](crate::shard::ShardedEngine) replica serving
    /// its sub-batch.
    ShardServe,
    /// An [`AdmissionQueue`](crate::admission::AdmissionQueue) batch
    /// dispatch.
    AdmissionDispatch,
    /// An admission mutation-barrier apply.
    AdmissionMutate,
}

impl FaultSite {
    /// All sites, in counter-index order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::PoolDispatch,
        FaultSite::ShardServe,
        FaultSite::AdmissionDispatch,
        FaultSite::AdmissionMutate,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::PoolDispatch => 0,
            FaultSite::ShardServe => 1,
            FaultSite::AdmissionDispatch => 2,
            FaultSite::AdmissionMutate => 3,
        }
    }

    /// Per-site salt so the same invocation ordinal draws independent
    /// decisions at different sites.
    fn salt(self) -> u64 {
        [
            0x9e37_79b9_7f4a_7c15,
            0xd1b5_4a32_d192_ed03,
            0x8cb9_2ba7_2f3d_8dd7,
            0x2545_f491_4f6c_dd1d,
        ][self.index()]
    }
}

/// A seeded description of which faults fire where — the whole plan is
/// a pure function of its fields, so two injectors built from equal
/// plans produce the same per-site decision tape.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of the decision tape.
    pub seed: u64,
    /// Probability (clamped to `0.0..=1.0`) that any given hook call
    /// fires a fault, before the budget is consulted.
    pub rate: f64,
    /// Total faults the injector may fire across all sites; `0`
    /// disables injection entirely. The budget is what makes bounded
    /// retries terminate (see module docs).
    pub budget: u32,
    /// How long a [`FaultKind::Delay`] sleeps.
    pub delay: Duration,
    /// Enable [`FaultKind::Panic`] draws.
    pub panics: bool,
    /// Enable [`FaultKind::Transient`] draws.
    pub transients: bool,
    /// Enable [`FaultKind::Delay`] draws.
    pub delays: bool,
}

impl FaultPlan {
    /// An aggressive default tape for chaos tests: every kind enabled,
    /// a 25% fire rate, and a budget of 32 faults.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rate: 0.25,
            budget: 32,
            delay: Duration::from_micros(200),
            panics: true,
            transients: true,
            delays: true,
        }
    }

    /// A plan that never fires (`rate` 0, budget 0) — an installed-but-
    /// silent injector, used to measure the overhead of the hooks
    /// themselves (`fault_hooks_overhead_pct`).
    pub fn silent() -> Self {
        FaultPlan {
            seed: 0,
            rate: 0.0,
            budget: 0,
            delay: Duration::ZERO,
            panics: false,
            transients: false,
            delays: false,
        }
    }
}

/// The runtime half of a [`FaultPlan`]: per-site invocation counters
/// plus the remaining budget. `fire` is lock-free and deterministic per
/// site — the i-th call at a site draws the same decision on every run
/// with the same plan (cross-site interleaving only affects which draw
/// exhausts the shared budget first).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    calls: [AtomicU64; 4],
    injected: [AtomicU64; 4],
    budget: AtomicU32,
}

/// splitmix64 — the standard 64-bit finalizer; one call per decision.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultInjector {
    /// An injector walking `plan` from its start.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            budget: AtomicU32::new(plan.budget),
            plan,
            calls: Default::default(),
            injected: Default::default(),
        }
    }

    /// The plan this injector walks.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draw the next decision at `site`: `None` (no fault — by rate, by
    /// exhausted budget, or by no kind being enabled) or the fault to
    /// inject. The caller is responsible for acting on the kind; use
    /// [`FaultInjector::sleep_if_delay`] for the delay case.
    pub fn fire(&self, site: FaultSite) -> Option<FaultKind> {
        let idx = site.index();
        let n = self.calls[idx].fetch_add(1, Ordering::Relaxed);
        let kinds: [Option<FaultKind>; 3] = [
            self.plan.panics.then_some(FaultKind::Panic),
            self.plan.transients.then_some(FaultKind::Transient),
            self.plan.delays.then_some(FaultKind::Delay),
        ];
        let enabled: Vec<FaultKind> = kinds.iter().flatten().copied().collect();
        if enabled.is_empty() {
            return None;
        }
        let h = splitmix64(self.plan.seed ^ site.salt() ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Top 53 bits → uniform in [0, 1).
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= self.plan.rate.clamp(0.0, 1.0) {
            return None;
        }
        // Budget gate: decrement-if-positive; losing the race (or an
        // exhausted budget) suppresses the fault.
        if self
            .budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_err()
        {
            return None;
        }
        self.injected[idx].fetch_add(1, Ordering::Relaxed);
        Some(enabled[(h % enabled.len() as u64) as usize])
    }

    /// Sleep the plan's delay iff `kind` is a [`FaultKind::Delay`].
    pub fn sleep_if_delay(&self, kind: FaultKind) {
        if kind == FaultKind::Delay && !self.plan.delay.is_zero() {
            xsum_graph::sync::thread::sleep(self.plan.delay);
        }
    }

    /// How many hook calls `site` has seen.
    pub fn calls_at(&self, site: FaultSite) -> u64 {
        self.calls[site.index()].load(Ordering::Relaxed)
    }

    /// How many faults actually fired at `site`.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Faults fired across all sites.
    pub fn total_injected(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.injected_at(s)).sum()
    }

    /// Remaining fault budget.
    pub fn budget_left(&self) -> u32 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Adapt this injector to the [`WorkerPool`] dispatch seam: the
    /// returned [`DispatchHook`] draws at [`FaultSite::PoolDispatch`]
    /// and panics for [`FaultKind::Panic`]/[`FaultKind::Transient`]
    /// (the pool seam has no error channel — the engine's `try_*`
    /// wrappers catch the unwind) or sleeps for [`FaultKind::Delay`].
    ///
    /// [`WorkerPool`]: xsum_graph::WorkerPool
    pub fn pool_hook(self: &Arc<Self>) -> DispatchHook {
        let me = Arc::clone(self);
        Arc::new(move || match me.fire(FaultSite::PoolDispatch) {
            Some(FaultKind::Panic) | Some(FaultKind::Transient) => {
                panic!("injected worker-pool dispatch fault")
            }
            Some(FaultKind::Delay) => me.sleep_if_delay(FaultKind::Delay),
            None => {}
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tapes_are_reproducible_per_seed() {
        for seed in [0u64, 1, 7, 0xdead_beef] {
            let a = FaultInjector::new(FaultPlan::seeded(seed));
            let b = FaultInjector::new(FaultPlan::seeded(seed));
            for site in FaultSite::ALL {
                for _ in 0..256 {
                    assert_eq!(a.fire(site), b.fire(site), "seed {seed} {site:?}");
                }
            }
            assert_eq!(a.total_injected(), b.total_injected());
        }
    }

    #[test]
    fn distinct_seeds_draw_distinct_tapes() {
        let a = FaultInjector::new(FaultPlan::seeded(1));
        let b = FaultInjector::new(FaultPlan::seeded(2));
        let tape = |inj: &FaultInjector| -> Vec<Option<FaultKind>> {
            (0..128).map(|_| inj.fire(FaultSite::ShardServe)).collect()
        };
        assert_ne!(tape(&a), tape(&b), "seeds must decorrelate tapes");
    }

    #[test]
    fn budget_bounds_total_injection() {
        let plan = FaultPlan {
            rate: 1.0,
            budget: 5,
            ..FaultPlan::seeded(3)
        };
        let inj = FaultInjector::new(plan);
        let mut fired = 0;
        for _ in 0..100 {
            for site in FaultSite::ALL {
                if inj.fire(site).is_some() {
                    fired += 1;
                }
            }
        }
        assert_eq!(fired, 5, "budget caps the tape");
        assert_eq!(inj.total_injected(), 5);
        assert_eq!(inj.budget_left(), 0);
        assert!(inj.fire(FaultSite::PoolDispatch).is_none());
    }

    #[test]
    fn silent_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::silent());
        for _ in 0..512 {
            for site in FaultSite::ALL {
                assert_eq!(inj.fire(site), None);
            }
        }
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn rate_one_fires_every_enabled_draw_until_budget() {
        let plan = FaultPlan {
            rate: 1.0,
            budget: u32::MAX,
            transients: false,
            delays: false,
            ..FaultPlan::seeded(9)
        };
        let inj = FaultInjector::new(plan);
        for _ in 0..64 {
            assert_eq!(
                inj.fire(FaultSite::AdmissionDispatch),
                Some(FaultKind::Panic)
            );
        }
        assert_eq!(inj.calls_at(FaultSite::AdmissionDispatch), 64);
        assert_eq!(inj.injected_at(FaultSite::AdmissionDispatch), 64);
    }

    #[test]
    fn pool_hook_panics_on_injected_fault() {
        let inj = Arc::new(FaultInjector::new(FaultPlan {
            rate: 1.0,
            budget: 1,
            transients: false,
            delays: false,
            ..FaultPlan::seeded(4)
        }));
        let hook = inj.pool_hook();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook()));
        assert!(caught.is_err(), "budgeted fault must panic");
        hook(); // budget exhausted: clean
        assert_eq!(inj.injected_at(FaultSite::PoolDispatch), 1);
    }
}
