//! Sharded serving: per-shard [`SummaryEngine`] replicas behind a
//! scatter/gather routing front-end.
//!
//! The summarization workload is naturally partitionable — each request
//! touches one user's terminals against a shared KG — so the serving
//! tier scales horizontally by running one engine *per shard replica*
//! and routing requests to shards:
//!
//! ```text
//!                    ┌───────────────────────────────────┐
//!   mixed batch ───► │ ShardedEngine                     │
//!                    │  ShardRouter: input → shard       │
//!                    │  scatter ──┬───────┬───────┐      │
//!                    │   shard 0  │ shard 1  …  shard N  │
//!                    │  ┌───────┐ │ ┌───────┐  ┌───────┐ │
//!                    │  │Graph  │ │ │Graph  │  │Graph  │ │
//!                    │  │replica│ │ │replica│  │replica│ │
//!                    │  │Engine │ │ │Engine │  │Engine │ │
//!                    │  │ pool  │ │ │ pool  │  │ pool  │ │
//!                    │  │ cache │ │ │ cache │  │ cache │ │
//!                    │  │ sess. │ │ │ sess. │  │ sess. │ │
//!                    │  └───────┘ │ └───────┘  └───────┘ │
//!                    │  gather (input order) ────────────┼──► summaries
//!                    └───────────────────────────────────┘
//! ```
//!
//! # Architecture
//!
//! * **Full-replica sharding.** Every replica holds a clone of the
//!   whole KG, so any request can be served by any shard and the
//!   router is purely a load/affinity decision — correctness is
//!   identical by construction, and the property suite
//!   (`tests/prop_shard.rs`) pins the outputs **bit-identical** to a
//!   single [`SummaryEngine`]. True user/item partitions slot in
//!   through the [`ShardRouter`] trait without touching the engine
//!   (see below).
//! * **Scatter/gather batching.** [`ShardedEngine::summarize_batch`]
//!   groups a mixed batch by shard, dispatches the per-shard
//!   sub-batches onto the replicas' pinned worker pools **concurrently**
//!   ([`parallel_zip_map`] pairs replica *i* with sub-batch *i*
//!   statically — no stealing across replicas), and reassembles the
//!   outputs in input order.
//! * **Shard-affine sessions.** The default [`HashRouter`] routes a
//!   [`SessionKey`] by hashing its user/baseline identity, so a user's
//!   scrolling session always lands on the same replica and that
//!   replica's [`SessionStore`](crate::session::SessionStore) stays
//!   hot.
//! * **Coherent mutation.** The replicas' graphs are private, so
//!   writes go through [`ShardedEngine::mutate`], which applies the
//!   same closure to every replica and thereby bumps every replica's
//!   mutation epoch. Each replica's cost-model cache and session store
//!   key on *its own* graph's epoch, so the next request on any shard
//!   sees the mutation — no replica can serve pre-mutation state.
//!
//! # The router trait
//!
//! [`ShardRouter`] is the partitioning hook: it maps each
//! [`SummaryInput`] (batch path) and each [`SessionKey`] (session path)
//! to a shard index. The default [`HashRouter`] hashes the request's
//! user/baseline identity for affinity; a deployment that partitions
//! its user base (or its item catalog) supplies its own router — e.g.
//! range-partitioned user ids, or a consistent-hash ring — and, once
//! replicas hold true sub-graphs, the same hook decides which partition
//! owns which request.
//!
//! # Failure semantics
//!
//! Because every replica is a **full** graph replica, any replica can
//! serve any request — which turns replica failure from an
//! availability problem into a routing problem:
//!
//! * **What retries.** A replica whose serve panics (or draws an
//!   injected fault at [`FaultSite::ShardServe`]) fails only its own
//!   sub-batch; that sub-batch is retried sequentially on each other
//!   replica (once per replica) before the batch as a whole gives up.
//!   Only if *every* replica refuses does the original panic payload
//!   resurface — so [`ShardedEngine::try_summarize_batch`] still
//!   reports the root cause, and a single healthy replica keeps the
//!   tier serving bit-identical results.
//! * **What circuit-breaks.** Each replica carries a
//!   Closed → Open → HalfOpen breaker ([`BreakerState`], tuned by
//!   [`CircuitConfig`]): [`CircuitConfig::failure_threshold`]
//!   consecutive failures open it, routing then prefers the next
//!   non-open replica, and after a cooldown (measured in serve calls,
//!   not wall clock — deterministic like everything else) the replica
//!   is probed half-open; a failed probe re-opens it with doubled,
//!   capped backoff. With no failures every breaker stays closed and
//!   routing is byte-for-byte the PR 3 plan.
//! * **What recovers.** [`ShardedEngine::try_mutate`] applies a
//!   mutation replica-by-replica under `catch_unwind`; a panicking
//!   mutation leaves the replicas diverged and returns the error
//!   instead of unwinding. [`ShardedEngine::resync_replicas`] restores
//!   every replica from the last mutation-coherent snapshot (refreshed
//!   after each successful mutation), which is how
//!   [`AdmissionQueue::recover`](crate::admission::AdmissionQueue::recover)
//!   un-poisons a queue over a sharded backend.
//! * **What does not fail over.** Sessions are stateful and
//!   shard-affine, so [`ShardedEngine::session_summary`] always serves
//!   on the owning shard — failing a session over would silently fork
//!   its incremental state.
//!
//! [`FaultSite::ShardServe`]: crate::faults::FaultSite::ShardServe

use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xsum_graph::sync::Arc;

use xsum_graph::{fxhash::FxHasher, num_threads, parallel_zip_map, EdgeId, Graph, NodeId};

use crate::batch::BatchMethod;
use crate::engine::{EngineError, SummaryEngine};
use crate::faults::{FaultInjector, FaultKind, FaultSite};
use crate::input::SummaryInput;
use crate::session::{session_summary, SessionKey, SessionStore};
use crate::steiner::SteinerConfig;
use crate::summary::Summary;

/// Maps requests to shards — the partitioning hook of the sharded
/// serving tier (see the module docs).
///
/// Implementations must be **deterministic**: the same request must
/// route to the same shard for as long as the shard count is stable,
/// both for session affinity and so repeated batches hit warm replica
/// state. Returned indices are clamped to the live shard range by the
/// caller, so an implementation may assume nothing beyond `shards ≥ 1`.
pub trait ShardRouter: std::fmt::Debug + Send {
    /// The shard (in `0..shards`) that serves `input` in a batch.
    fn route_input(&self, input: &SummaryInput, shards: usize) -> usize;

    /// The shard (in `0..shards`) that owns `key`'s incremental
    /// session. Must be stable across calls — sessions are stateful.
    fn route_session(&self, key: &SessionKey, shards: usize) -> usize;
}

/// The default router: Fx-hash of the request's user identity.
///
/// Batch inputs are routed by their *anchor node* — the source of the
/// first explanation path (the user in user-centric inputs, a member
/// user otherwise), falling back to the first terminal for path-free
/// inputs — so all of one user's requests land on the same replica.
///
/// **Affinity coherence:** sessions are routed by hashing exactly the
/// same 64-bit identity ([`SessionKey::user`]) the batch path hashes
/// for its anchor, so a session keyed by its anchor node
/// ([`SessionKey::for_node`]) is *guaranteed* to live on the replica
/// that serves the anchor's batch requests — a user's incremental
/// state and their batch traffic can never split across replicas. The
/// baseline label deliberately does **not** participate in routing
/// (it would break that guarantee); it distinguishes sessions *within*
/// a shard's store. Pinned by [`HashRouter::routing_anchor`] tests
/// across shard counts {1, 2, 4}.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter;

impl HashRouter {
    fn bucket(hash: u64, shards: usize) -> usize {
        (hash % shards.max(1) as u64) as usize
    }

    fn bucket_of_identity(identity: u64, shards: usize) -> usize {
        let mut h = FxHasher::default();
        h.write_u64(identity);
        Self::bucket(h.finish(), shards)
    }

    /// The node whose identity routes `input`: the source of the first
    /// explanation path, falling back to the first terminal for
    /// path-free inputs. Keying a session with
    /// [`SessionKey::for_node`] on this node co-locates it with the
    /// input's batch traffic.
    pub fn routing_anchor(input: &SummaryInput) -> NodeId {
        input
            .paths
            .first()
            .map(|p| p.source())
            .or_else(|| input.terminals.first().copied())
            .unwrap_or(NodeId(0))
    }
}

impl ShardRouter for HashRouter {
    fn route_input(&self, input: &SummaryInput, shards: usize) -> usize {
        Self::bucket_of_identity(Self::routing_anchor(input).0 as u64, shards)
    }

    fn route_session(&self, key: &SessionKey, shards: usize) -> usize {
        Self::bucket_of_identity(key.user, shards)
    }
}

/// One shard: a full graph replica plus the engine that serves it.
#[derive(Debug)]
struct ShardReplica {
    graph: Graph,
    engine: SummaryEngine,
}

pub use crate::breaker::{BreakerState, CircuitBreaker, CircuitConfig};

/// A sharded serving front-end: N [`SummaryEngine`] replicas, each over
/// its own graph replica, behind a [`ShardRouter`] (see module docs).
///
/// Unlike [`SummaryEngine`], whose methods take the graph per call, a
/// `ShardedEngine` *owns* its graph replicas — constructed by cloning
/// the seed graph — because coherent mutation across replicas is part
/// of its contract ([`ShardedEngine::mutate`]).
///
/// ```
/// use xsum_core::{BatchMethod, ShardedEngine, SteinerConfig, SummaryEngine};
/// use xsum_core::render::table1_example;
///
/// let ex = table1_example();
/// let method = BatchMethod::Steiner(SteinerConfig::default());
/// let inputs = vec![ex.input(), ex.input(), ex.input()];
/// let mut sharded = ShardedEngine::with_threads(&ex.graph, 2, 1);
/// let mut single = SummaryEngine::with_threads(1);
/// let a = sharded.summarize_batch(&inputs, method);
/// let b = single.summarize_batch(&ex.graph, &inputs, method);
/// for (x, y) in a.iter().zip(&b) {
///     assert_eq!(x.subgraph.sorted_edges(), y.subgraph.sorted_edges());
/// }
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    replicas: Vec<ShardReplica>,
    router: Box<dyn ShardRouter>,
    /// Per-replica circuit-breaker state, parallel to `replicas`.
    health: Vec<CircuitBreaker>,
    circuit: CircuitConfig,
    /// Virtual time for breaker cooldowns: one tick per serve entry
    /// point call, so backoff is deterministic under test.
    serve_clock: u64,
    faults: Option<Arc<FaultInjector>>,
    /// The last mutation-coherent graph: refreshed on construction and
    /// after every successful mutation, the restore point of
    /// [`ShardedEngine::resync_replicas`].
    last_good: Graph,
}

impl ShardedEngine {
    /// A sharded engine over clones of `g`, dividing [`num_threads`]
    /// evenly among the shards (each replica gets at least one worker).
    pub fn new(g: &Graph, shards: usize) -> Self {
        let shards = shards.max(1);
        Self::with_threads(g, shards, (num_threads() / shards).max(1))
    }

    /// [`ShardedEngine::new`] with an explicit per-shard worker count.
    pub fn with_threads(g: &Graph, shards: usize, threads_per_shard: usize) -> Self {
        Self::with_router(g, shards, threads_per_shard, Box::new(HashRouter))
    }

    /// Fully explicit construction with a custom [`ShardRouter`].
    pub fn with_router(
        g: &Graph,
        shards: usize,
        threads_per_shard: usize,
        router: Box<dyn ShardRouter>,
    ) -> Self {
        // Freeze before cloning: the CSR is `Clone`, so every replica
        // starts with the adjacency already built (one build, N memcpys)
        // and an *identical epoch* to the seed — replicas only fork
        // epochs when mutated through `mutate`.
        g.freeze();
        let circuit = CircuitConfig::default();
        let replicas: Vec<ShardReplica> = (0..shards.max(1))
            .map(|_| ShardReplica {
                graph: g.clone(),
                engine: SummaryEngine::with_threads(threads_per_shard.max(1)),
            })
            .collect();
        ShardedEngine {
            health: vec![CircuitBreaker::new(circuit); replicas.len()],
            circuit,
            serve_clock: 0,
            faults: None,
            last_good: g.clone(),
            replicas,
            router,
        }
    }

    /// Number of shard replicas.
    pub fn shards(&self) -> usize {
        self.replicas.len()
    }

    /// The shard `input` routes to.
    pub fn shard_of_input(&self, input: &SummaryInput) -> usize {
        let n = self.replicas.len();
        self.router.route_input(input, n).min(n - 1)
    }

    /// The shard owning `key`'s session.
    pub fn shard_of_session(&self, key: &SessionKey) -> usize {
        let n = self.replicas.len();
        self.router.route_session(key, n).min(n - 1)
    }

    /// The graph replica of one shard (shards are kept content-
    /// identical; exposed for inspection and tests).
    pub fn graph(&self, shard: usize) -> &Graph {
        &self.replicas[shard].graph
    }

    /// The session store of one shard's replica engine.
    pub fn sessions(&mut self, shard: usize) -> &mut SessionStore {
        self.replicas[shard].engine.sessions()
    }

    /// Per-shard `(hits, misses)` of the replicas' cost-model caches.
    pub fn cost_cache_stats(&self) -> Vec<(u64, u64)> {
        self.replicas
            .iter()
            .map(|r| r.engine.cost_cache_stats())
            .collect()
    }

    /// Forward
    /// [`SummaryEngine::set_metric_closure_threshold`] to every replica
    /// — shard replicas run few outer workers, so lowering the gate
    /// lets mid-sized terminal groups still fan out inside a replica.
    pub fn set_metric_closure_threshold(&mut self, min_terminals: usize) {
        for r in &mut self.replicas {
            r.engine.set_metric_closure_threshold(min_terminals);
        }
    }

    /// Replace the per-replica circuit-breaker tuning and reset every
    /// breaker to [`BreakerState::Closed`].
    pub fn set_circuit_config(&mut self, cfg: CircuitConfig) {
        self.circuit = cfg;
        self.health = vec![CircuitBreaker::new(cfg); self.replicas.len()];
    }

    /// The breaker state of one replica.
    pub fn breaker_state(&self, shard: usize) -> BreakerState {
        self.health[shard].state()
    }

    /// Install (or clear, with `None`) a fault injector: fires at
    /// [`FaultSite::ShardServe`] on each primary sub-batch dispatch,
    /// and is forwarded to every replica engine's worker-pool dispatch
    /// seam ([`SummaryEngine::set_fault_hook`]). Unset (the default),
    /// both seams cost one never-taken branch each.
    pub fn set_fault_injector(&mut self, faults: Option<Arc<FaultInjector>>) {
        for r in &mut self.replicas {
            r.engine
                .set_fault_hook(faults.as_ref().map(|i| i.pool_hook()));
        }
        self.faults = faults;
    }

    /// Advance virtual time and promote cooled-down open breakers to
    /// their half-open probe. Called once per serve entry point.
    fn tick(&mut self) {
        self.serve_clock += 1;
        let now = self.serve_clock;
        for h in &mut self.health {
            h.tick(now);
        }
    }

    fn record_success(&mut self, shard: usize) {
        self.health[shard].record_success();
    }

    fn record_failure(&mut self, shard: usize) {
        self.health[shard].record_failure(self.serve_clock);
    }

    /// `home` if its breaker is not open, else the first non-open
    /// replica scanning forward from it; all-open falls back to `home`
    /// (full replicas: serving beats refusing).
    fn healthy_or(&self, home: usize) -> usize {
        if self.health[home].admits() {
            return home;
        }
        let n = self.replicas.len();
        (1..n)
            .map(|off| (home + off) % n)
            .find(|&c| self.health[c].admits())
            .unwrap_or(home)
    }

    /// Serve `sub` on one replica with the panic caught — the failover
    /// unit. No fault is drawn here: retries run clean so a healthy
    /// replica genuinely rescues the sub-batch (the replica's own pool
    /// hook can still fire, which is what bounds chaos tests to the
    /// injector's budget rather than to one draw per sub-batch).
    fn serve_on(
        &mut self,
        shard: usize,
        sub: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        let r = &mut self.replicas[shard];
        catch_unwind(AssertUnwindSafe(|| {
            r.engine.summarize_batch_refs(&r.graph, sub, method)
        }))
        .map_err(EngineError::from_panic)
    }

    /// [`ShardedEngine::serve_on`] preceded by a
    /// [`FaultSite::ShardServe`] draw — the primary dispatch path.
    fn serve_with_faults(
        &mut self,
        shard: usize,
        sub: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        if let Some(inj) = &self.faults {
            if let Some(kind) = inj.fire(FaultSite::ShardServe) {
                match kind {
                    FaultKind::Panic | FaultKind::Transient => {
                        return Err(EngineError::from_message("injected shard-serve fault"));
                    }
                    FaultKind::Delay => inj.sleep_if_delay(kind),
                }
            }
        }
        self.serve_on(shard, sub, method)
    }

    /// Retry a failed sub-batch once on every other replica (or, on a
    /// single-shard engine, once more on the only replica — the
    /// failure may have been an injected fault). If every replica
    /// refuses, resurface the last panic payload so
    /// [`ShardedEngine::try_summarize_batch`] reports the root cause.
    fn failover(
        &mut self,
        failed: usize,
        sub: &[&SummaryInput],
        method: BatchMethod,
        first_err: EngineError,
    ) -> Vec<Summary> {
        let n = self.replicas.len();
        let mut last = first_err;
        let candidates: Vec<usize> = if n == 1 {
            vec![failed]
        } else {
            (1..n).map(|off| (failed + off) % n).collect()
        };
        for cand in candidates {
            match self.serve_on(cand, sub, method) {
                Ok(v) => {
                    self.record_success(cand);
                    return v;
                }
                Err(e) => {
                    self.record_failure(cand);
                    last = e;
                }
            }
        }
        panic!("{}", last.message())
    }

    /// Compute one summary on the shard `input` routes to, reusing that
    /// replica's warm state. Bit-identical to
    /// [`SummaryEngine::summarize`] (and hence to the sequential free
    /// functions) on any replica — so breaker-driven re-routing and
    /// failover cannot change the answer, only who computes it.
    pub fn summarize(&mut self, input: &SummaryInput, method: BatchMethod) -> Summary {
        self.tick();
        let primary = self.healthy_or(self.shard_of_input(input));
        match self.serve_with_faults(primary, std::slice::from_ref(&input), method) {
            Ok(mut v) => {
                self.record_success(primary);
                v.pop().expect("one input yields one summary")
            }
            Err(e) => {
                self.record_failure(primary);
                let mut v = self.failover(primary, std::slice::from_ref(&input), method, e);
                v.pop().expect("one input yields one summary")
            }
        }
    }

    /// Summarize a mixed batch across the shard replicas: scatter by
    /// router, dispatch the per-shard sub-batches onto the replicas'
    /// worker pools concurrently, gather in input order.
    ///
    /// Output is bit-identical to a single [`SummaryEngine`] serving
    /// the same batch (each replica's engine is bit-identical to the
    /// sequential entry points per input, and gathering restores input
    /// order) — `tests/prop_shard.rs` pins this across shard counts,
    /// methods, and interleaved mutations.
    pub fn summarize_batch(
        &mut self,
        inputs: &[SummaryInput],
        method: BatchMethod,
    ) -> Vec<Summary> {
        self.summarize_batch_impl(inputs, method)
    }

    /// [`ShardedEngine::summarize_batch`] over borrowed inputs — the
    /// admission queue's dispatch path, which coalesces queued requests
    /// into a batch without cloning any `SummaryInput`. Same body as
    /// the owned entry point (one generic implementation), so the two
    /// cannot drift.
    pub(crate) fn summarize_batch_refs(
        &mut self,
        inputs: &[&SummaryInput],
        method: BatchMethod,
    ) -> Vec<Summary> {
        self.summarize_batch_impl(inputs, method)
    }

    fn summarize_batch_impl<T>(&mut self, inputs: &[T], method: BatchMethod) -> Vec<Summary>
    where
        T: std::borrow::Borrow<SummaryInput> + Sync,
    {
        let n = self.replicas.len();
        if inputs.is_empty() {
            return Vec::new();
        }
        self.tick();
        if n == 1 {
            let refs: Vec<&SummaryInput> = inputs.iter().map(|i| i.borrow()).collect();
            return match self.serve_with_faults(0, &refs, method) {
                Ok(v) => {
                    self.record_success(0);
                    v
                }
                Err(e) => {
                    self.record_failure(0);
                    self.failover(0, &refs, method, e)
                }
            };
        }
        // Scatter: per-shard lists of original input positions plus
        // *borrowed* sub-batches — routing a batch allocates only these
        // index/pointer vectors, never a `SummaryInput`. Inputs homed
        // on an open-breaker replica are re-routed to the next healthy
        // one up front (with every breaker closed — the steady state —
        // this is exactly the router's plan).
        let mut plan: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, input) in inputs.iter().enumerate() {
            let home = self.router.route_input(input.borrow(), n).min(n - 1);
            plan[self.healthy_or(home)].push(i);
        }
        let subs: Vec<Vec<&SummaryInput>> = plan
            .iter()
            .map(|indices| indices.iter().map(|&i| inputs[i].borrow()).collect())
            .collect();
        // Dispatch: replica i serves exactly sub-batch i, concurrently.
        // Idle replicas (empty sub-batch) are skipped — they would
        // spawn a front-end thread only to return nothing. Each
        // dispatch draws at `ShardServe` and runs under `catch_unwind`,
        // so one replica's failure costs only its own sub-batch.
        let mut busy: Vec<&mut ShardReplica> = Vec::new();
        let mut busy_subs: Vec<&[&SummaryInput]> = Vec::new();
        let mut busy_idx: Vec<usize> = Vec::new();
        for (shard, (r, sub)) in self.replicas.iter_mut().zip(&subs).enumerate() {
            if !sub.is_empty() {
                busy.push(r);
                busy_subs.push(sub);
                busy_idx.push(shard);
            }
        }
        let faults = self.faults.clone();
        let per_shard: Vec<Result<Vec<Summary>, EngineError>> =
            parallel_zip_map(&mut busy, &busy_subs, |r, sub| {
                if let Some(inj) = &faults {
                    if let Some(kind) = inj.fire(FaultSite::ShardServe) {
                        match kind {
                            FaultKind::Panic | FaultKind::Transient => {
                                return Err(EngineError::from_message(
                                    "injected shard-serve fault",
                                ));
                            }
                            FaultKind::Delay => inj.sleep_if_delay(kind),
                        }
                    }
                }
                catch_unwind(AssertUnwindSafe(|| {
                    r.engine.summarize_batch_refs(&r.graph, sub, method)
                }))
                .map_err(EngineError::from_panic)
            });

        // Gather: busy shards come back in shard order; record health,
        // fail failed sub-batches over, and reassemble in input order.
        let mut pairs: Vec<(usize, Summary)> = Vec::with_capacity(inputs.len());
        for (k, res) in per_shard.into_iter().enumerate() {
            let shard = busy_idx[k];
            let results = match res {
                Ok(v) => {
                    self.record_success(shard);
                    v
                }
                Err(e) => {
                    self.record_failure(shard);
                    self.failover(shard, &subs[shard], method, e)
                }
            };
            pairs.extend(plan[shard].iter().copied().zip(results));
        }
        pairs.sort_unstable_by_key(|(i, _)| *i);
        pairs.into_iter().map(|(_, s)| s).collect()
    }

    /// [`ShardedEngine::summarize_batch`] with worker panics surfaced
    /// as a recoverable [`EngineError`]; every replica stays
    /// serviceable afterwards (see
    /// [`SummaryEngine::try_summarize_batch`] — the scatter scope joins
    /// all replica dispatches before the panic is rethrown here, so no
    /// replica is abandoned mid-batch).
    pub fn try_summarize_batch(
        &mut self,
        inputs: &[SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.summarize_batch(inputs, method)))
            .map_err(EngineError::from_panic)
    }

    /// Apply one mutation to **every** replica's graph.
    ///
    /// `f` must be deterministic — it runs once per replica and the
    /// replicas must stay content-identical (full-replica sharding's
    /// one invariant). Each application bumps that replica's mutation
    /// epoch, so every shard's cost-model cache misses and every
    /// shard's session store invalidates on its next request; the
    /// epochs themselves need not be numerically equal across replicas
    /// (they are process-globally unique and never compared across
    /// graphs).
    pub fn mutate(&mut self, mut f: impl FnMut(&mut Graph)) {
        for r in &mut self.replicas {
            f(&mut r.graph);
        }
        self.last_good = self.replicas[0].graph.clone();
    }

    /// [`ShardedEngine::mutate`] with a panicking mutation surfaced as
    /// a recoverable [`EngineError`] instead of unwinding.
    ///
    /// The closure is applied replica-by-replica under `catch_unwind`;
    /// on failure the replicas are left **diverged** (earlier replicas
    /// mutated, the failing one possibly half-mutated) and the
    /// coherent-snapshot restore point is *not* advanced — call
    /// [`ShardedEngine::resync_replicas`] to restore coherence before
    /// serving again. This is the admission queue's mutation-barrier
    /// seam ([`AdmissionBackend::mutate_graph`](crate::admission::AdmissionBackend::mutate_graph)).
    pub fn try_mutate(&mut self, f: &mut dyn FnMut(&mut Graph)) -> Result<(), EngineError> {
        for r in &mut self.replicas {
            catch_unwind(AssertUnwindSafe(|| f(&mut r.graph))).map_err(EngineError::from_panic)?;
        }
        self.last_good = self.replicas[0].graph.clone();
        Ok(())
    }

    /// Restore every replica from the last mutation-coherent snapshot
    /// (the graph as of the most recent successful mutation, or
    /// construction). A failed [`ShardedEngine::try_mutate`] is thereby
    /// a rollback no-op: the restored content — and its mutation epoch
    /// — predate the failed closure, so each replica's epoch-keyed
    /// cost-model cache and session store remain valid for exactly the
    /// state being served. Breaker states are left untouched; they
    /// track serve health, not mutation coherence.
    pub fn resync_replicas(&mut self) {
        self.last_good.freeze();
        for r in &mut self.replicas {
            r.graph = self.last_good.clone();
        }
    }

    /// Reweight one edge on every replica — the common serving-time
    /// mutation (rating updates feed Eq. 1 through the weights).
    pub fn set_weight(&mut self, e: EdgeId, weight: f64) {
        self.mutate(|g| g.set_weight(e, weight));
    }

    /// Serve one growing per-user session request on the shard that
    /// owns `key`: look up (or start) the session in that replica's
    /// store, attach any new terminals, snapshot. The shard-affine
    /// sibling of [`crate::session::session_summary`].
    pub fn session_summary(
        &mut self,
        key: SessionKey,
        input: &SummaryInput,
        cfg: &SteinerConfig,
        terminals_in_rank_order: &[NodeId],
    ) -> Summary {
        let shard = self.shard_of_session(&key);
        let ShardReplica { graph, engine } = &mut self.replicas[shard];
        session_summary(
            engine.sessions(),
            graph,
            key,
            input,
            cfg,
            terminals_in_rank_order,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcst::PcstConfig;
    use crate::render::table1_example;
    use crate::steiner::SteinerConfig;

    fn assert_same(a: &Summary, b: &Summary) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.terminals, b.terminals);
        assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
        assert_eq!(a.subgraph.sorted_nodes(), b.subgraph.sorted_nodes());
    }

    /// A small batch with genuinely distinct routing identities: one
    /// user-centric input per user, each anchored (first path source)
    /// at *that* user, plus a group and an item-centric input — so
    /// multi-shard runs scatter across several busy replicas instead of
    /// degenerating to one.
    fn mixed_inputs() -> (Graph, Vec<SummaryInput>) {
        use xsum_graph::{EdgeKind, LoosePath, NodeKind};
        let mut g = Graph::new();
        let users: Vec<NodeId> = (0..5).map(|_| g.add_node(NodeKind::User)).collect();
        let items: Vec<NodeId> = (0..5).map(|_| g.add_node(NodeKind::Item)).collect();
        let ents: Vec<NodeId> = (0..2).map(|_| g.add_node(NodeKind::Entity)).collect();
        for &item in &items {
            g.add_edge(item, ents[0], 0.0, EdgeKind::Attribute);
            g.add_edge(item, ents[1], 0.0, EdgeKind::Attribute);
        }
        let mut inputs = Vec::new();
        let mut all_paths = Vec::new();
        for (ui, &u) in users.iter().enumerate() {
            g.add_edge(u, items[ui], 1.0 + ui as f64, EdgeKind::Interaction);
            let path = LoosePath::ground(
                &g,
                vec![u, items[ui], ents[ui % 2], items[(ui + 1) % items.len()]],
            );
            all_paths.push(path.clone());
            inputs.push(SummaryInput::user_centric(u, vec![path]));
        }
        inputs.push(SummaryInput::user_group(&users, all_paths.clone()));
        inputs.push(SummaryInput::item_centric(
            all_paths[2].target(),
            vec![all_paths[2].clone()],
        ));
        (g, inputs)
    }

    /// Distinct shards the batch occupies under the engine's router.
    fn busy_shards(sharded: &ShardedEngine, inputs: &[SummaryInput]) -> usize {
        let mut seen: Vec<usize> = inputs.iter().map(|i| sharded.shard_of_input(i)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    #[test]
    fn sharded_batch_matches_single_engine() {
        let (g, inputs) = mixed_inputs();
        let st = SteinerConfig::default();
        for method in [
            BatchMethod::Steiner(st),
            BatchMethod::SteinerFast(st),
            BatchMethod::Pcst(PcstConfig::default()),
        ] {
            let mut single = SummaryEngine::with_threads(2);
            let want = single.summarize_batch(&g, &inputs, method);
            for shards in [1usize, 2, 4] {
                let mut sharded = ShardedEngine::with_threads(&g, shards, 2);
                assert_eq!(sharded.shards(), shards);
                if shards >= 2 {
                    assert!(
                        busy_shards(&sharded, &inputs) >= 2,
                        "fixture must scatter across \u{2265}2 busy shards"
                    );
                }
                let got = sharded.summarize_batch(&inputs, method);
                assert_eq!(got.len(), want.len());
                for (w, s) in want.iter().zip(&got) {
                    assert_same(w, s);
                }
                // Single-summary routing agrees with the batch path.
                for input in &inputs {
                    assert_same(&sharded.summarize(input, method), &method.run(&g, input));
                }
            }
        }
    }

    #[test]
    fn empty_and_skewed_batches() {
        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 4, 1);
        assert!(sharded.summarize_batch(&[], method).is_empty());
        // A single-input batch exercises the all-but-one-shard-idle path.
        let got = sharded.summarize_batch(&inputs[..1], method);
        assert_same(&got[0], &method.run(&g, &inputs[0]));
    }

    #[test]
    fn mutation_propagates_to_every_replica() {
        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 2, 1);
        let before = sharded.summarize_batch(&inputs, method);
        let misses_before: Vec<u64> = sharded.cost_cache_stats().iter().map(|&(_, m)| m).collect();

        // Reweight through the front-end; a reference graph mutated the
        // same way is the oracle.
        let mut reference = g.clone();
        let e = EdgeId(0);
        sharded.set_weight(e, 0.125);
        reference.set_weight(e, 0.125);
        for shard in 0..sharded.shards() {
            assert_eq!(sharded.graph(shard).weight(e), 0.125);
        }

        let after = sharded.summarize_batch(&inputs, method);
        assert_eq!(before.len(), after.len());
        for (input, s) in inputs.iter().zip(&after) {
            assert_same(s, &method.run(&reference, input));
        }
        // Every replica that served traffic rebuilt its cost model.
        for (shard, &(_, misses)) in sharded.cost_cache_stats().iter().enumerate() {
            if misses_before[shard] > 0 {
                assert!(
                    misses > misses_before[shard],
                    "shard {shard} served stale cost state after mutate"
                );
            }
        }
    }

    #[test]
    fn mutation_invalidates_sessions_on_every_replica() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut sharded = ShardedEngine::with_threads(&ex.graph, 2, 1);
        // Find users covering both shards (the Fx hash spreads small
        // ids, but don't assume which way).
        let mut keys: Vec<SessionKey> = Vec::new();
        for u in 0..64u64 {
            let key = SessionKey::new(u, "pgpr");
            let shard = sharded.shard_of_session(&key);
            if !keys.iter().any(|k| sharded.shard_of_session(k) == shard) {
                keys.push(key);
            }
            if keys.len() == 2 {
                break;
            }
        }
        assert_eq!(keys.len(), 2, "hash router must cover both shards");

        for key in &keys {
            let s = sharded.session_summary(key.clone(), &input, &cfg, &input.terminals);
            assert_eq!(s.terminal_coverage(), 1.0);
        }
        for shard in 0..2 {
            assert_eq!(sharded.sessions(shard).len(), 1, "one session per shard");
        }

        sharded.set_weight(EdgeId(0), 42.0);
        for key in &keys {
            sharded.session_summary(key.clone(), &input, &cfg, &[]);
        }
        for shard in 0..2 {
            assert_eq!(
                sharded.sessions(shard).invalidations(),
                1,
                "shard {shard} must drop pre-mutation sessions"
            );
        }
    }

    #[test]
    fn sessions_are_shard_affine() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut sharded = ShardedEngine::with_threads(&ex.graph, 4, 1);
        let key = SessionKey::new(7, "pgpr");
        let home = sharded.shard_of_session(&key);
        for round in 1..=3usize {
            sharded.session_summary(
                key.clone(),
                &input,
                &cfg,
                &input.terminals[..round.min(input.terminals.len())],
            );
        }
        // All three requests landed on the same replica and resumed.
        assert_eq!(sharded.sessions(home).misses(), 1);
        assert_eq!(sharded.sessions(home).hits(), 2);
        for shard in (0..4).filter(|&s| s != home) {
            assert_eq!(sharded.sessions(shard).len(), 0, "foreign shard touched");
        }
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let (_, inputs) = mixed_inputs();
        let router = HashRouter;
        for shards in 1..=8 {
            for input in &inputs {
                let a = router.route_input(input, shards);
                assert_eq!(a, router.route_input(input, shards));
                assert!(a < shards);
            }
            let key = SessionKey::new(123, "cafe");
            assert!(router.route_session(&key, shards) < shards);
            assert_eq!(
                router.route_session(&key, shards),
                router.route_session(&key, shards)
            );
        }
    }

    #[test]
    fn router_affinity_is_coherent_between_inputs_and_sessions() {
        // Satellite regression: `shard_of_input` and `shard_of_session`
        // must agree for the same (user, baseline) identity — otherwise
        // a user's incremental session state and their batch requests
        // land on different replicas and the session store can never
        // warm up. Verified across shard counts {1, 2, 4} and every
        // input shape of the mixed fixture.
        let (g, inputs) = mixed_inputs();
        for shards in [1usize, 2, 4] {
            let sharded = ShardedEngine::with_threads(&g, shards, 1);
            for input in &inputs {
                let anchor = HashRouter::routing_anchor(input);
                for baseline in ["pgpr", "cafe", "plm"] {
                    let key = SessionKey::for_node(anchor, baseline);
                    assert_eq!(
                        sharded.shard_of_input(input),
                        sharded.shard_of_session(&key),
                        "input and session for anchor {anchor:?} split \
                         across replicas at {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn try_batch_recovers_across_shards() {
        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 2, 1);
        let want = sharded.summarize_batch(&inputs, method);
        let mut bad = inputs[0].clone();
        bad.terminals = vec![
            xsum_graph::NodeId(u32::MAX - 2),
            xsum_graph::NodeId(u32::MAX - 1),
        ];
        let mut batch = inputs.clone();
        batch.push(bad);
        let err = sharded
            .try_summarize_batch(&batch, method)
            .expect_err("poisoned input must surface as an error");
        assert!(
            !err.message().contains("scoped thread"),
            "the worker's original panic payload must survive the \
             scatter join, got: {}",
            err.message()
        );
        // Every replica keeps serving bit-identically afterwards.
        let after = sharded.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&after) {
            assert_same(w, s);
        }
    }

    #[test]
    fn breaker_trips_reroutes_and_recloses() {
        use crate::faults::{FaultInjector, FaultPlan, FaultSite};
        use std::sync::Arc;

        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 2, 1);
        let want = sharded.summarize_batch(&inputs, method);
        sharded.set_circuit_config(CircuitConfig {
            failure_threshold: 1,
            cooldown: 2,
            max_cooldown: 8,
        });
        // A shard-serve-only injector that fires on every draw until
        // its budget (1 fault) is spent: the first batch loses exactly
        // one primary dispatch and must fail it over.
        let inj = Arc::new(FaultInjector::new(FaultPlan {
            rate: 1.0,
            budget: 1,
            panics: false,
            delays: false,
            ..FaultPlan::seeded(11)
        }));
        sharded.set_fault_injector(Some(inj.clone()));
        let got = sharded.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&got) {
            assert_same(w, s);
        }
        assert_eq!(inj.injected_at(FaultSite::ShardServe), 1);
        let tripped = (0..2)
            .filter(|&s| sharded.breaker_state(s) == BreakerState::Open)
            .count();
        assert_eq!(tripped, 1, "threshold 1 must open the faulted replica");

        // Budget exhausted: serving continues bit-identically while the
        // open replica cools down, goes half-open, and recloses on its
        // probe success.
        let mut saw_half_open = false;
        for _ in 0..4 {
            let again = sharded.summarize_batch(&inputs, method);
            for (w, s) in want.iter().zip(&again) {
                assert_same(w, s);
            }
            saw_half_open |= (0..2).any(|s| sharded.breaker_state(s) == BreakerState::HalfOpen);
        }
        assert!(
            (0..2).all(|s| sharded.breaker_state(s) == BreakerState::Closed),
            "probe success must reclose the breaker (half-open seen: {saw_half_open})"
        );
    }

    #[test]
    fn failed_mutation_is_a_rollback_noop_after_resync() {
        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 2, 1);

        // One good mutation advances the restore point.
        sharded.set_weight(EdgeId(0), 0.25);
        let mut reference = g.clone();
        reference.set_weight(EdgeId(0), 0.25);
        let want: Vec<Summary> = inputs.iter().map(|i| method.run(&reference, i)).collect();

        // A mutation that diverges the replicas: succeeds on the first,
        // panics on the second.
        let mut applications = 0;
        let err = sharded
            .try_mutate(&mut |g: &mut Graph| {
                applications += 1;
                if applications == 2 {
                    panic!("mutation torn mid-replica");
                }
                g.set_weight(EdgeId(1), 9.0);
            })
            .expect_err("a panicking mutation must surface as an error");
        assert!(err.message().contains("torn"), "payload: {}", err.message());
        assert_ne!(
            sharded.graph(0).weight(EdgeId(1)),
            sharded.graph(1).weight(EdgeId(1)),
            "fixture must actually diverge the replicas"
        );

        sharded.resync_replicas();
        for shard in 0..sharded.shards() {
            assert_eq!(sharded.graph(shard).weight(EdgeId(0)), 0.25);
            assert_eq!(
                sharded.graph(shard).weight(EdgeId(1)),
                reference.weight(EdgeId(1)),
                "failed mutation must roll back entirely"
            );
        }
        let after = sharded.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&after) {
            assert_same(w, s);
        }
    }
}
