//! Sharded serving: per-shard [`SummaryEngine`] replicas behind a
//! scatter/gather routing front-end.
//!
//! The summarization workload is naturally partitionable — each request
//! touches one user's terminals against a shared KG — so the serving
//! tier scales horizontally by running one engine *per shard replica*
//! and routing requests to shards:
//!
//! ```text
//!                    ┌───────────────────────────────────┐
//!   mixed batch ───► │ ShardedEngine                     │
//!                    │  ShardRouter: input → shard       │
//!                    │  scatter ──┬───────┬───────┐      │
//!                    │   shard 0  │ shard 1  …  shard N  │
//!                    │  ┌───────┐ │ ┌───────┐  ┌───────┐ │
//!                    │  │Graph  │ │ │Graph  │  │Graph  │ │
//!                    │  │replica│ │ │replica│  │replica│ │
//!                    │  │Engine │ │ │Engine │  │Engine │ │
//!                    │  │ pool  │ │ │ pool  │  │ pool  │ │
//!                    │  │ cache │ │ │ cache │  │ cache │ │
//!                    │  │ sess. │ │ │ sess. │  │ sess. │ │
//!                    │  └───────┘ │ └───────┘  └───────┘ │
//!                    │  gather (input order) ────────────┼──► summaries
//!                    └───────────────────────────────────┘
//! ```
//!
//! # Architecture
//!
//! * **Full-replica sharding.** Every replica holds a clone of the
//!   whole KG, so any request can be served by any shard and the
//!   router is purely a load/affinity decision — correctness is
//!   identical by construction, and the property suite
//!   (`tests/prop_shard.rs`) pins the outputs **bit-identical** to a
//!   single [`SummaryEngine`]. True user/item partitions slot in
//!   through the [`ShardRouter`] trait without touching the engine
//!   (see below).
//! * **Scatter/gather batching.** [`ShardedEngine::summarize_batch`]
//!   groups a mixed batch by shard, dispatches the per-shard
//!   sub-batches onto the replicas' pinned worker pools **concurrently**
//!   ([`parallel_zip_map`] pairs replica *i* with sub-batch *i*
//!   statically — no stealing across replicas), and reassembles the
//!   outputs in input order.
//! * **Shard-affine sessions.** The default [`HashRouter`] routes a
//!   [`SessionKey`] by hashing its user/baseline identity, so a user's
//!   scrolling session always lands on the same replica and that
//!   replica's [`SessionStore`](crate::session::SessionStore) stays
//!   hot.
//! * **Coherent mutation.** The replicas' graphs are private, so
//!   writes go through [`ShardedEngine::mutate`], which applies the
//!   same closure to every replica and thereby bumps every replica's
//!   mutation epoch. Each replica's cost-model cache and session store
//!   key on *its own* graph's epoch, so the next request on any shard
//!   sees the mutation — no replica can serve pre-mutation state.
//!
//! # The router trait
//!
//! [`ShardRouter`] is the partitioning hook: it maps each
//! [`SummaryInput`] (batch path) and each [`SessionKey`] (session path)
//! to a shard index. The default [`HashRouter`] hashes the request's
//! user/baseline identity for affinity; [`ConsistentHashRouter`] puts
//! the same identity on a vnode hash ring so elastic shard counts move
//! a bounded key set; and [`PartitionRouter`] — installed by the
//! partitioned constructors — looks the identity up in the
//! partitioner's owner map, so each request lands on the shard whose
//! sub-graph actually contains its anchor.
//!
//! # Partitioned topology
//!
//! [`ShardedEngine::new_partitioned`] replaces the full clones with
//! **true sub-graph replicas**: the deterministic Voronoi partitioner
//! ([`xsum_kg::partition_nodes`]) assigns every node an owning shard,
//! each shard materializes its residents (plus a k-hop halo around
//! every cut edge) as a [`Partition`], and one designated **coverage**
//! replica keeps the full graph:
//!
//! ```text
//!                 ┌─────────────────────────────────────────────┐
//!  mixed batch ──►│ ShardedEngine (partitioned)                 │
//!                 │  PartitionRouter: owner[anchor] → shard     │
//!                 │  scatter ──┬─────────┬─────────┐            │
//!                 │  ┌───────────┐ ┌───────────┐   │            │
//!                 │  │Partition 0│ │Partition 1│ … │            │
//!                 │  │ sub-graph │ │ sub-graph │   │            │
//!                 │  │ + halo    │ │ + halo    │   │            │
//!                 │  │ certify?──┼─┼─certify?──┼─┐ │            │
//!                 │  └───────────┘ └───────────┘ │ │            │
//!                 │     │ local serves           │ │escalations │
//!                 │     ▼                        ▼ ▼            │
//!                 │  gather ◄──────────── ┌──────────────┐      │
//!                 │  (input order)        │ coverage     │      │
//!                 │     │                 │ full graph   │      │
//!                 │     ▼                 │ + sessions   │      │
//!                 │  summaries            └──────────────┘      │
//!                 └─────────────────────────────────────────────┘
//! ```
//!
//! * **Certify or escalate.** A request is served *inside* its home
//!   partition only when a *sound* certificate proves the local result
//!   bit-identical to a full-graph serve: (0) the partition's maximum
//!   raw edge weight equals the global maximum bit-for-bit (Eq. 1's
//!   cost transform is anchored on it), (1) every terminal and every
//!   explanation-path node is contained, (2) with the exact patched
//!   local cost table, one Dijkstra from the first terminal bounds all
//!   terminal-pair distances by `D_ub = 2·max_t d(s0, t)`, and (3) a
//!   multi-source Voronoi pass from the terminal set shows every
//!   terminal-reachable boundary node **strictly** beyond `D_ub` — any
//!   path escaping the partition pays its first-exit prefix entirely
//!   locally, so nothing within the terminal diameter can leave.
//!   Distances, heap pop order, parent choices and Mehlhorn bridge
//!   selections then coincide with the full-graph run (the node/edge
//!   remap is *monotone*, preserving every id tie-break), and the local
//!   summary remaps back to parent ids unchanged. Anything that fails
//!   the certificate — and the PCST methods, whose growth is not
//!   covered by the proof — escalates to the coverage replica.
//!   `tests/prop_partition.rs` pins the universal bit-identity.
//! * **Halo semantics.** A partition's graph is the sub-graph induced
//!   by `residents ∪ halo` (one hop by default): every cut edge is
//!   locally present, and [`Partition::boundary_local`] marks exactly
//!   the nodes where a parent-graph path can exit — the certificate's
//!   check points. Deeper halos raise the certified-local fraction at a
//!   memory premium.
//! * **Cross-shard accounting.** [`ShardedEngine::partition_stats`]
//!   counts local vs coverage serves, and the admission tier surfaces
//!   the per-batch coverage count as
//!   [`DispatchMeta::cross_shard`](crate::admission::DispatchMeta::cross_shard)
//!   — the cross-shard fraction is an observable, not a guess.
//! * **Mutation routing.** [`ShardedEngine::set_weight`] applies to the
//!   coverage (authority) graph and to every partition containing the
//!   edge — owning partition plus halo copies — instead of N full
//!   applies. General [`ShardedEngine::mutate`] closures run once on
//!   the authority; weight drift then syncs edge-by-edge, while
//!   structural drift deterministically rebuilds the plan from the
//!   stored `(seed, config)` recipe.
//! * **Failure containment.** Per-partition breakers work as in
//!   full-replica mode, but failover is *coverage-only*: a partition
//!   cannot serve another partition's requests, so a failed or
//!   breaker-open partition routes to the coverage replica (which, like
//!   the single-shard tier, retries once and then surfaces the error).
//!   Sessions are **coverage-affine** — incremental session state needs
//!   the full graph.
//!
//! # Failure semantics
//!
//! Because every replica is a **full** graph replica, any replica can
//! serve any request — which turns replica failure from an
//! availability problem into a routing problem:
//!
//! * **What retries.** A replica whose serve panics (or draws an
//!   injected fault at [`FaultSite::ShardServe`]) fails only its own
//!   sub-batch; that sub-batch is retried sequentially on each other
//!   replica (once per replica) before the batch as a whole gives up.
//!   Only if *every* replica refuses does the original panic payload
//!   resurface — so [`ShardedEngine::try_summarize_batch`] still
//!   reports the root cause, and a single healthy replica keeps the
//!   tier serving bit-identical results.
//! * **What circuit-breaks.** Each replica carries a
//!   Closed → Open → HalfOpen breaker ([`BreakerState`], tuned by
//!   [`CircuitConfig`]): [`CircuitConfig::failure_threshold`]
//!   consecutive failures open it, routing then prefers the next
//!   non-open replica, and after a cooldown (measured in serve calls,
//!   not wall clock — deterministic like everything else) the replica
//!   is probed half-open; a failed probe re-opens it with doubled,
//!   capped backoff. With no failures every breaker stays closed and
//!   routing is byte-for-byte the PR 3 plan.
//! * **What recovers.** [`ShardedEngine::try_mutate`] applies a
//!   mutation replica-by-replica under `catch_unwind`; a panicking
//!   mutation leaves the replicas diverged and returns the error
//!   instead of unwinding. [`ShardedEngine::resync_replicas`] restores
//!   every replica from the last mutation-coherent snapshot (refreshed
//!   after each successful mutation), which is how
//!   [`AdmissionQueue::recover`](crate::admission::AdmissionQueue::recover)
//!   un-poisons a queue over a sharded backend.
//! * **What does not fail over.** Sessions are stateful and
//!   shard-affine, so [`ShardedEngine::session_summary`] always serves
//!   on the owning shard — failing a session over would silently fork
//!   its incremental state.
//!
//! [`FaultSite::ShardServe`]: crate::faults::FaultSite::ShardServe

use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xsum_graph::sync::Arc;

use xsum_graph::{
    fxhash::FxHasher, num_threads, parallel_zip_map, DijkstraWorkspace, EdgeCosts, EdgeId, Graph,
    LoosePath, NodeId, Partition, PartitionConfig, Subgraph,
};
use xsum_kg::{partition_nodes, PartitionerConfig};

use crate::batch::BatchMethod;
use crate::engine::{EngineError, SummaryEngine};
use crate::faults::{FaultInjector, FaultKind, FaultSite};
use crate::input::SummaryInput;
use crate::session::{session_summary, SessionKey, SessionStore};
use crate::steiner::{CostModelCache, SteinerConfig};
use crate::summary::Summary;

/// Maps requests to shards — the partitioning hook of the sharded
/// serving tier (see the module docs).
///
/// Implementations must be **deterministic**: the same request must
/// route to the same shard for as long as the shard count is stable,
/// both for session affinity and so repeated batches hit warm replica
/// state. Returned indices are clamped to the live shard range by the
/// caller, so an implementation may assume nothing beyond `shards ≥ 1`.
pub trait ShardRouter: std::fmt::Debug + Send {
    /// The shard (in `0..shards`) that serves `input` in a batch.
    fn route_input(&self, input: &SummaryInput, shards: usize) -> usize;

    /// The shard (in `0..shards`) that owns `key`'s incremental
    /// session. Must be stable across calls — sessions are stateful.
    fn route_session(&self, key: &SessionKey, shards: usize) -> usize;
}

/// The default router: Fx-hash of the request's user identity.
///
/// Batch inputs are routed by their *anchor node* — the source of the
/// first explanation path (the user in user-centric inputs, a member
/// user otherwise), falling back to the first terminal for path-free
/// inputs — so all of one user's requests land on the same replica.
///
/// **Affinity coherence:** sessions are routed by hashing exactly the
/// same 64-bit identity ([`SessionKey::user`]) the batch path hashes
/// for its anchor, so a session keyed by its anchor node
/// ([`SessionKey::for_node`]) is *guaranteed* to live on the replica
/// that serves the anchor's batch requests — a user's incremental
/// state and their batch traffic can never split across replicas. The
/// baseline label deliberately does **not** participate in routing
/// (it would break that guarantee); it distinguishes sessions *within*
/// a shard's store. Pinned by [`HashRouter::routing_anchor`] tests
/// across shard counts {1, 2, 4}.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter;

impl HashRouter {
    fn bucket(hash: u64, shards: usize) -> usize {
        (hash % shards.max(1) as u64) as usize
    }

    fn bucket_of_identity(identity: u64, shards: usize) -> usize {
        let mut h = FxHasher::default();
        h.write_u64(identity);
        Self::bucket(h.finish(), shards)
    }

    /// The node whose identity routes `input`: the source of the first
    /// explanation path, falling back to the first terminal for
    /// path-free inputs. Keying a session with
    /// [`SessionKey::for_node`] on this node co-locates it with the
    /// input's batch traffic.
    pub fn routing_anchor(input: &SummaryInput) -> NodeId {
        input
            .paths
            .first()
            .map(|p| p.source())
            .or_else(|| input.terminals.first().copied())
            .unwrap_or(NodeId(0))
    }
}

impl ShardRouter for HashRouter {
    fn route_input(&self, input: &SummaryInput, shards: usize) -> usize {
        Self::bucket_of_identity(Self::routing_anchor(input).0 as u64, shards)
    }

    fn route_session(&self, key: &SessionKey, shards: usize) -> usize {
        Self::bucket_of_identity(key.user, shards)
    }
}

/// A consistent-hash ring over the same 64-bit identity discipline as
/// [`HashRouter`]: each shard owns `vnodes` pseudo-random points on a
/// `u64` ring, and an identity routes to the shard owning the first
/// ring point at or after its hash (wrapping at the top).
///
/// Against [`HashRouter`]'s modulo bucketing, the ring buys **bounded
/// key movement** under elastic shard counts: growing an `N`-shard ring
/// to `N + 1` moves exactly the identities whose successor point now
/// belongs to the new shard — every moved key lands *on the new shard*
/// and no key moves between two old shards (pinned by the
/// `ring_growth_moves_keys_only_to_the_new_shard` test). A tier
/// resizing its fleet under `HashRouter` would instead reshuffle about
/// `(N−1)/N` of all affinities, going cold everywhere at once.
#[derive(Debug, Clone)]
pub struct ConsistentHashRouter {
    /// `(point, shard)`, sorted by point — the ring.
    ring: Vec<(u64, u32)>,
}

impl ConsistentHashRouter {
    /// A ring over `shards` shards with the default vnode count (40 per
    /// shard keeps per-shard load imbalance in the few-percent range
    /// while the ring stays a cache-resident sorted array).
    pub fn new(shards: usize) -> Self {
        Self::with_vnodes(shards, 40)
    }

    /// Fully explicit construction: `vnodes` ring points per shard.
    pub fn with_vnodes(shards: usize, vnodes: usize) -> Self {
        let (shards, vnodes) = (shards.max(1), vnodes.max(1));
        let mut ring = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards as u32 {
            for v in 0..vnodes as u64 {
                let mut h = FxHasher::default();
                h.write_u64(shard as u64);
                h.write_u64(v);
                ring.push((h.finish(), shard));
            }
        }
        // Sort by point; a (vanishingly unlikely) point collision
        // resolves toward the lower shard id, deterministically.
        ring.sort_unstable();
        ring.dedup_by_key(|&mut (p, _)| p);
        ConsistentHashRouter { ring }
    }

    /// The shard owning the ring successor of `identity`'s hash.
    fn ring_shard(&self, identity: u64) -> usize {
        let mut h = FxHasher::default();
        h.write_u64(identity);
        let key = h.finish();
        let i = self.ring.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.ring[if i == self.ring.len() { 0 } else { i }];
        shard as usize
    }
}

impl ShardRouter for ConsistentHashRouter {
    fn route_input(&self, input: &SummaryInput, shards: usize) -> usize {
        self.ring_shard(HashRouter::routing_anchor(input).0 as u64)
            .min(shards.saturating_sub(1))
    }

    fn route_session(&self, key: &SessionKey, shards: usize) -> usize {
        self.ring_shard(key.user).min(shards.saturating_sub(1))
    }
}

/// The partitioned-mode router: owner-map lookup on the input's routing
/// anchor ([`HashRouter::routing_anchor`]) — requests go to the shard
/// whose partition *owns* their anchor node, which is what makes the
/// home partition's warm sub-graph the right one for the request.
/// Sessions route through the same map when it covers the user id and
/// fall back to [`HashRouter`] hashing otherwise (in partitioned mode
/// sessions are served coverage-affine regardless; see
/// [`ShardedEngine::session_summary`]).
#[derive(Debug, Clone)]
pub struct PartitionRouter {
    owner: Arc<Vec<u32>>,
}

impl PartitionRouter {
    /// Router over `owner[node] = shard` (an
    /// [`xsum_kg::PartitionPlan`]'s owner map).
    pub fn new(owner: Arc<Vec<u32>>) -> Self {
        PartitionRouter { owner }
    }
}

impl ShardRouter for PartitionRouter {
    fn route_input(&self, input: &SummaryInput, shards: usize) -> usize {
        let anchor = HashRouter::routing_anchor(input);
        self.owner
            .get(anchor.index())
            .map(|&s| s as usize)
            .unwrap_or(0)
            .min(shards.saturating_sub(1))
    }

    fn route_session(&self, key: &SessionKey, shards: usize) -> usize {
        match usize::try_from(key.user)
            .ok()
            .and_then(|u| self.owner.get(u))
        {
            Some(&s) => (s as usize).min(shards.saturating_sub(1)),
            None => HashRouter.route_session(key, shards),
        }
    }
}

/// One shard: a full graph replica plus the engine that serves it.
#[derive(Debug)]
struct ShardReplica {
    graph: Graph,
    engine: SummaryEngine,
}

/// The Steiner config of a certifiable method: only the ST family's
/// serve path is covered by the local-equivalence proof (module docs);
/// the PCST methods always escalate to coverage.
fn certifiable_config(method: BatchMethod) -> Option<SteinerConfig> {
    match method {
        BatchMethod::Steiner(cfg) | BatchMethod::SteinerFast(cfg) => Some(cfg),
        _ => None,
    }
}

/// Per-partition certification scratch: reusable buffers for the
/// certify-or-escalate decision. One per partition replica — the
/// scatter phase's worker threads are ephemeral, so the scratch lives
/// with the partition, not with a thread.
#[derive(Debug)]
struct CertScratch {
    ws: DijkstraWorkspace,
    costs: EdgeCosts,
    touched: Vec<(EdgeId, u32)>,
    /// Local Eq. 1 cost models keyed by local-graph epoch (capacity 2:
    /// the serving config plus one spare).
    cache: CostModelCache,
    /// `(local graph epoch, max raw weight bits)` — the local side of
    /// certification condition #0, cached per epoch.
    max_bits: Option<(u64, u64)>,
}

impl CertScratch {
    fn new() -> Self {
        CertScratch {
            ws: DijkstraWorkspace::new(),
            costs: EdgeCosts(Vec::new()),
            touched: Vec::new(),
            cache: CostModelCache::new(2),
            max_bits: None,
        }
    }
}

/// What one partition produced for its sub-batch: locally served
/// summaries (by position in the sub-batch, already remapped to parent
/// ids) plus the positions it escalated to coverage.
struct PartServe {
    served: Vec<(usize, Summary)>,
    escalated: Vec<usize>,
}

/// One partition shard: the materialized sub-graph replica, the engine
/// serving it, and the certification scratch.
#[derive(Debug)]
struct PartReplica {
    part: Partition,
    engine: SummaryEngine,
    cert: CertScratch,
}

impl PartReplica {
    /// Serve one partition's sub-batch: certify each input, serve the
    /// certified ones locally in one engine batch (remapping ids in and
    /// out), and report the rest as escalations.
    fn serve_local(
        &mut self,
        sub: &[&SummaryInput],
        method: BatchMethod,
        cfg: &SteinerConfig,
        global_max_bits: u64,
        global: &Graph,
    ) -> PartServe {
        let mut local_inputs: Vec<SummaryInput> = Vec::new();
        let mut local_pos: Vec<usize> = Vec::new();
        let mut escalated: Vec<usize> = Vec::new();
        for (k, input) in sub.iter().enumerate() {
            match self.certify(input, cfg, global_max_bits) {
                Some(local) => {
                    local_pos.push(k);
                    local_inputs.push(local);
                }
                None => escalated.push(k),
            }
        }
        if local_inputs.is_empty() {
            return PartServe {
                served: Vec::new(),
                escalated,
            };
        }
        let refs: Vec<&SummaryInput> = local_inputs.iter().collect();
        let out = self
            .engine
            .summarize_batch_refs(self.part.graph(), &refs, method);
        let served = local_pos
            .into_iter()
            .zip(out.into_iter().map(|s| self.remap_summary(global, s)))
            .collect();
        PartServe { served, escalated }
    }

    /// The certify-or-escalate decision for one input (module docs,
    /// "Partitioned topology"): returns the partition-local remap of
    /// `input` iff the local serve is provably bit-identical to the
    /// full-graph serve under `cfg`.
    fn certify(
        &mut self,
        input: &SummaryInput,
        cfg: &SteinerConfig,
        global_max_bits: u64,
    ) -> Option<SummaryInput> {
        let part = &self.part;
        let g = part.graph();
        // #0 — identical cost anchor: Eq. 1's transform is anchored on
        // the graph's maximum *raw* weight, so the local cost table can
        // only match the global one if the maxima agree bit-for-bit.
        let epoch = g.epoch();
        let local_bits = match self.cert.max_bits {
            Some((e, b)) if e == epoch => b,
            _ => {
                let b = g
                    .edge_ids()
                    .map(|e| g.weight(e))
                    .fold(0.0f64, f64::max)
                    .to_bits();
                self.cert.max_bits = Some((epoch, b));
                b
            }
        };
        if local_bits != global_max_bits {
            return None;
        }
        // #1 — feasibility: every terminal and every explanation-path
        // node must be contained (the partition is induced, so every
        // grounded hop between contained endpoints is contained too).
        let mut terminals = Vec::with_capacity(input.terminals.len());
        for &t in &input.terminals {
            terminals.push(part.to_local(t)?);
        }
        let mut paths = Vec::with_capacity(input.paths.len());
        for p in &input.paths {
            let mut nodes = Vec::with_capacity(p.nodes().len());
            for &v in p.nodes() {
                nodes.push(part.to_local(v)?);
            }
            let hops = p
                .hops()
                .iter()
                .map(|h| match h {
                    Some(e) => part.to_local_edge(*e).map(Some),
                    None => Some(None),
                })
                .collect::<Option<Vec<_>>>()?;
            paths.push(LoosePath::from_parts(nodes, hops)?);
        }
        // The remap is monotone, so the terminals stay sorted-deduped
        // and every id tie-break below matches the global run.
        let local = SummaryInput {
            scenario: input.scenario,
            terminals,
            paths,
            anchor_count: input.anchor_count,
        };
        // #2 — build the exact patched cost table the engine will
        // search (base model cached per local epoch).
        let (_, model) = self.cert.cache.get(g, cfg);
        model.copy_base_into(&mut self.cert.costs);
        model.patch(g, &local, &mut self.cert.costs, &mut self.cert.touched);
        // #3 — terminal-diameter bound: one Dijkstra from the first
        // terminal; D_ub = 2·max distance bounds every terminal-pair
        // distance through the triangle inequality. A terminal that is
        // locally unreachable escalates.
        let (&s0, rest) = local.terminals.split_first()?;
        self.cert.ws.run(g, &self.cert.costs, s0, rest);
        let mut dmax = 0.0f64;
        for &t in rest {
            dmax = dmax.max(self.cert.ws.distance(t)?);
        }
        let d_ub = 2.0 * dmax;
        // #4 — boundary safety: a path escaping the partition pays its
        // first-exit prefix entirely locally, so if every terminal-
        // reachable boundary node lies strictly beyond D_ub, no global
        // shortest structure within the terminal diameter can leave the
        // partition. Boundary nodes locally unreachable from the
        // terminal set can never be a first exit — they certify
        // vacuously.
        if !part.boundary_local().is_empty() {
            self.cert
                .ws
                .run_voronoi(g, &self.cert.costs, &local.terminals);
            for &b in part.boundary_local() {
                if let Some(d) = self.cert.ws.distance(b) {
                    if d <= d_ub {
                        return None;
                    }
                }
            }
        }
        Some(local)
    }

    /// Remap a partition-local summary back to parent ids (`global` is
    /// the coverage graph, used only to resolve edge endpoints).
    fn remap_summary(&self, global: &Graph, s: Summary) -> Summary {
        let part = &self.part;
        let mut subgraph = Subgraph::new();
        for &e in s.subgraph.edges() {
            subgraph.insert_edge(global, part.to_global_edge(e));
        }
        for &n in s.subgraph.nodes() {
            subgraph.insert_node(part.to_global(n));
        }
        Summary {
            method: s.method,
            scenario: s.scenario,
            subgraph,
            terminals: s.terminals.iter().map(|&t| part.to_global(t)).collect(),
        }
    }
}

/// The partitioned-topology state of a [`ShardedEngine`] (module docs):
/// true sub-graph replicas plus the designated full-graph coverage
/// replica.
#[derive(Debug)]
struct PartitionedState {
    parts: Vec<PartReplica>,
    /// The designated full-graph replica: serves escalations, owns the
    /// session store, and is the mutation authority.
    coverage: ShardReplica,
    /// `owner[node] = shard` of the current plan (shared with the
    /// installed [`PartitionRouter`]).
    owner: Arc<Vec<u32>>,
    /// Edge count of the graph the plan was computed for — the
    /// structural-drift detector of the mutation sync.
    edge_count: usize,
    /// The partitioning recipe, for deterministic rebuilds after
    /// structural mutations.
    seed: u64,
    pcfg: PartitionerConfig,
    hcfg: PartitionConfig,
    /// Requests served partition-locally / escalated to coverage.
    local_serves: u64,
    coverage_serves: u64,
    /// `(authority epoch, max raw weight bits)` — the global side of
    /// certification condition #0, cached per epoch.
    global_max_bits: Option<(u64, u64)>,
}

pub use crate::breaker::{BreakerState, CircuitBreaker, CircuitConfig};

/// A sharded serving front-end: N [`SummaryEngine`] replicas, each over
/// its own graph replica, behind a [`ShardRouter`] (see module docs).
///
/// Unlike [`SummaryEngine`], whose methods take the graph per call, a
/// `ShardedEngine` *owns* its graph replicas — constructed by cloning
/// the seed graph — because coherent mutation across replicas is part
/// of its contract ([`ShardedEngine::mutate`]).
///
/// ```
/// use xsum_core::{BatchMethod, ShardedEngine, SteinerConfig, SummaryEngine};
/// use xsum_core::render::table1_example;
///
/// let ex = table1_example();
/// let method = BatchMethod::Steiner(SteinerConfig::default());
/// let inputs = vec![ex.input(), ex.input(), ex.input()];
/// let mut sharded = ShardedEngine::with_threads(&ex.graph, 2, 1);
/// let mut single = SummaryEngine::with_threads(1);
/// let a = sharded.summarize_batch(&inputs, method);
/// let b = single.summarize_batch(&ex.graph, &inputs, method);
/// for (x, y) in a.iter().zip(&b) {
///     assert_eq!(x.subgraph.sorted_edges(), y.subgraph.sorted_edges());
/// }
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    replicas: Vec<ShardReplica>,
    router: Box<dyn ShardRouter>,
    /// Per-replica circuit-breaker state, parallel to `replicas`.
    health: Vec<CircuitBreaker>,
    circuit: CircuitConfig,
    /// Virtual time for breaker cooldowns: one tick per serve entry
    /// point call, so backoff is deterministic under test.
    serve_clock: u64,
    faults: Option<Arc<FaultInjector>>,
    /// The last mutation-coherent graph: refreshed on construction and
    /// after every successful mutation, the restore point of
    /// [`ShardedEngine::resync_replicas`].
    last_good: Graph,
    /// `Some` in partitioned-replica mode (module docs, "Partitioned
    /// topology"); `None` in the default full-replica mode, where
    /// `replicas` holds the full clones.
    partitioned: Option<Box<PartitionedState>>,
}

impl ShardedEngine {
    /// A sharded engine over clones of `g`, dividing [`num_threads`]
    /// evenly among the shards (each replica gets at least one worker).
    pub fn new(g: &Graph, shards: usize) -> Self {
        let shards = shards.max(1);
        Self::with_threads(g, shards, (num_threads() / shards).max(1))
    }

    /// [`ShardedEngine::new`] with an explicit per-shard worker count.
    pub fn with_threads(g: &Graph, shards: usize, threads_per_shard: usize) -> Self {
        Self::with_router(g, shards, threads_per_shard, Box::new(HashRouter))
    }

    /// Fully explicit construction with a custom [`ShardRouter`].
    pub fn with_router(
        g: &Graph,
        shards: usize,
        threads_per_shard: usize,
        router: Box<dyn ShardRouter>,
    ) -> Self {
        // Freeze before cloning: the CSR is `Clone`, so every replica
        // starts with the adjacency already built (one build, N memcpys)
        // and an *identical epoch* to the seed — replicas only fork
        // epochs when mutated through `mutate`.
        g.freeze();
        let circuit = CircuitConfig::default();
        let replicas: Vec<ShardReplica> = (0..shards.max(1))
            .map(|_| ShardReplica {
                graph: g.clone(),
                engine: SummaryEngine::with_threads(threads_per_shard.max(1)),
            })
            .collect();
        ShardedEngine {
            health: vec![CircuitBreaker::new(circuit); replicas.len()],
            circuit,
            serve_clock: 0,
            faults: None,
            last_good: g.clone(),
            replicas,
            router,
            partitioned: None,
        }
    }

    /// A partitioned engine over true sub-graph replicas of `g`:
    /// `shards` partitions from the deterministic Voronoi partitioner
    /// ([`xsum_kg::partition_nodes`]; hash-spread seeds, vertex-cut
    /// hubs), each materialized with a 1-hop halo, plus one designated
    /// full-graph **coverage** replica, dividing [`num_threads`] evenly
    /// across all of them.
    ///
    /// Same serving contract as the full-replica mode — outputs stay
    /// bit-identical to a single [`SummaryEngine`] — but per-shard
    /// memory is O(|partition|) instead of O(|G|): requests are served
    /// inside their home partition whenever the certify-or-escalate
    /// check proves the local result identical, and on the coverage
    /// replica otherwise ([`ShardedEngine::partition_stats`] reports
    /// the split).
    ///
    /// # Panics
    /// Panics if `g` has fewer nodes than `shards` (the partitioner
    /// needs one seed per shard).
    pub fn new_partitioned(g: &Graph, shards: usize, seed: u64) -> Self {
        let shards = shards.max(1);
        Self::partitioned_with(
            g,
            shards,
            seed,
            (num_threads() / (shards + 1)).max(1),
            PartitionerConfig::default(),
            PartitionConfig::default(),
        )
    }

    /// [`ShardedEngine::new_partitioned`] with explicit per-shard
    /// worker count and partitioning knobs.
    pub fn partitioned_with(
        g: &Graph,
        shards: usize,
        seed: u64,
        threads_per_shard: usize,
        pcfg: PartitionerConfig,
        hcfg: PartitionConfig,
    ) -> Self {
        g.freeze();
        let shards = shards.max(1);
        let plan = partition_nodes(g, shards, seed, &pcfg);
        let parts: Vec<PartReplica> = plan
            .residents
            .iter()
            .map(|res| PartReplica {
                part: Partition::build(g, res, &hcfg),
                engine: SummaryEngine::with_threads(threads_per_shard.max(1)),
                cert: CertScratch::new(),
            })
            .collect();
        let coverage = ShardReplica {
            graph: g.clone(),
            engine: SummaryEngine::with_threads(threads_per_shard.max(1)),
        };
        let owner = Arc::new(plan.owner);
        let circuit = CircuitConfig::default();
        ShardedEngine {
            health: vec![CircuitBreaker::new(circuit); shards],
            circuit,
            serve_clock: 0,
            faults: None,
            last_good: g.clone(),
            replicas: Vec::new(),
            router: Box::new(PartitionRouter::new(owner.clone())),
            partitioned: Some(Box::new(PartitionedState {
                parts,
                coverage,
                owner,
                edge_count: g.edge_count(),
                seed,
                pcfg,
                hcfg,
                local_serves: 0,
                coverage_serves: 0,
                global_max_bits: None,
            })),
        }
    }

    /// Number of shard replicas (partitions in partitioned mode — the
    /// coverage replica is not a routable shard).
    pub fn shards(&self) -> usize {
        match &self.partitioned {
            Some(p) => p.parts.len(),
            None => self.replicas.len(),
        }
    }

    /// Whether this engine runs the partitioned topology.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.is_some()
    }

    /// The shard `input` routes to.
    pub fn shard_of_input(&self, input: &SummaryInput) -> usize {
        let n = self.shards();
        self.router.route_input(input, n).min(n - 1)
    }

    /// The shard owning `key`'s session.
    pub fn shard_of_session(&self, key: &SessionKey) -> usize {
        let n = self.shards();
        self.router.route_session(key, n).min(n - 1)
    }

    /// The full-content graph of one shard. In full-replica mode this
    /// is the shard's own clone (shards are content-identical). In
    /// partitioned mode the per-shard graphs are *sub-graphs* under
    /// partition-local ids — handing one out as "the graph" would be a
    /// lie — so this accessor stays honest and returns the coverage
    /// replica's full graph (global ids, full content) for every shard
    /// index; use [`ShardedEngine::partition`] to inspect a shard's
    /// actual sub-graph replica.
    pub fn graph(&self, shard: usize) -> &Graph {
        debug_assert!(shard < self.shards(), "shard {shard} out of range");
        match &self.partitioned {
            Some(p) => &p.coverage.graph,
            None => &self.replicas[shard].graph,
        }
    }

    /// The materialized sub-graph partition of one shard (`None` in
    /// full-replica mode).
    pub fn partition(&self, shard: usize) -> Option<&Partition> {
        self.partitioned.as_ref().map(|p| &p.parts[shard].part)
    }

    /// The designated coverage replica's full graph (`None` in
    /// full-replica mode, where every shard is coverage).
    pub fn coverage_graph(&self) -> Option<&Graph> {
        self.partitioned.as_ref().map(|p| &p.coverage.graph)
    }

    /// `(local, coverage)` serve counts of the partitioned topology:
    /// how many requests were certified and served inside their home
    /// partition vs escalated to the coverage replica. Both zero in
    /// full-replica mode. The cross-shard fraction
    /// `coverage / (local + coverage)` is the honesty metric
    /// `repro bench_shard` reports.
    pub fn partition_stats(&self) -> (u64, u64) {
        match &self.partitioned {
            Some(p) => (p.local_serves, p.coverage_serves),
            None => (0, 0),
        }
    }

    /// The session store of one shard's replica engine. Sessions are
    /// **coverage-affine** in partitioned mode — incremental session
    /// state needs the full graph — so there every shard index resolves
    /// to the coverage replica's store.
    pub fn sessions(&mut self, shard: usize) -> &mut SessionStore {
        debug_assert!(shard < self.shards(), "shard {shard} out of range");
        match &mut self.partitioned {
            Some(p) => p.coverage.engine.sessions(),
            None => self.replicas[shard].engine.sessions(),
        }
    }

    /// Per-shard `(hits, misses)` of the replicas' cost-model caches
    /// (partitioned mode appends the coverage replica's stats last).
    pub fn cost_cache_stats(&self) -> Vec<(u64, u64)> {
        match &self.partitioned {
            Some(p) => p
                .parts
                .iter()
                .map(|r| r.engine.cost_cache_stats())
                .chain(std::iter::once(p.coverage.engine.cost_cache_stats()))
                .collect(),
            None => self
                .replicas
                .iter()
                .map(|r| r.engine.cost_cache_stats())
                .collect(),
        }
    }

    /// Per-shard count of cost models patched across a weight-only
    /// delta instead of rebuilt (same ordering as
    /// [`ShardedEngine::cost_cache_stats`]).
    pub fn cost_cache_patches(&self) -> Vec<u64> {
        match &self.partitioned {
            Some(p) => p
                .parts
                .iter()
                .map(|r| r.engine.cost_cache_patches())
                .chain(std::iter::once(p.coverage.engine.cost_cache_patches()))
                .collect(),
            None => self
                .replicas
                .iter()
                .map(|r| r.engine.cost_cache_patches())
                .collect(),
        }
    }

    /// Forward
    /// [`SummaryEngine::set_metric_closure_threshold`] to every replica
    /// — shard replicas run few outer workers, so lowering the gate
    /// lets mid-sized terminal groups still fan out inside a replica.
    pub fn set_metric_closure_threshold(&mut self, min_terminals: usize) {
        for r in &mut self.replicas {
            r.engine.set_metric_closure_threshold(min_terminals);
        }
        if let Some(p) = &mut self.partitioned {
            for part in &mut p.parts {
                part.engine.set_metric_closure_threshold(min_terminals);
            }
            p.coverage
                .engine
                .set_metric_closure_threshold(min_terminals);
        }
    }

    /// Replace the per-replica circuit-breaker tuning and reset every
    /// breaker to [`BreakerState::Closed`].
    pub fn set_circuit_config(&mut self, cfg: CircuitConfig) {
        let n = self.shards();
        self.circuit = cfg;
        self.health = vec![CircuitBreaker::new(cfg); n];
    }

    /// The breaker state of one replica.
    pub fn breaker_state(&self, shard: usize) -> BreakerState {
        self.health[shard].state()
    }

    /// Install (or clear, with `None`) a fault injector: fires at
    /// [`FaultSite::ShardServe`] on each primary sub-batch dispatch,
    /// and is forwarded to every replica engine's worker-pool dispatch
    /// seam ([`SummaryEngine::set_fault_hook`]). Unset (the default),
    /// both seams cost one never-taken branch each.
    pub fn set_fault_injector(&mut self, faults: Option<Arc<FaultInjector>>) {
        for r in &mut self.replicas {
            r.engine
                .set_fault_hook(faults.as_ref().map(|i| i.pool_hook()));
        }
        if let Some(p) = &mut self.partitioned {
            for part in &mut p.parts {
                part.engine
                    .set_fault_hook(faults.as_ref().map(|i| i.pool_hook()));
            }
            p.coverage
                .engine
                .set_fault_hook(faults.as_ref().map(|i| i.pool_hook()));
        }
        self.faults = faults;
    }

    /// Advance virtual time and promote cooled-down open breakers to
    /// their half-open probe. Called once per serve entry point.
    fn tick(&mut self) {
        self.serve_clock += 1;
        let now = self.serve_clock;
        for h in &mut self.health {
            h.tick(now);
        }
    }

    fn record_success(&mut self, shard: usize) {
        self.health[shard].record_success();
    }

    fn record_failure(&mut self, shard: usize) {
        self.health[shard].record_failure(self.serve_clock);
    }

    /// `home` if its breaker is not open, else the first non-open
    /// replica scanning forward from it; all-open falls back to `home`
    /// (full replicas: serving beats refusing).
    fn healthy_or(&self, home: usize) -> usize {
        if self.health[home].admits() {
            return home;
        }
        let n = self.replicas.len();
        (1..n)
            .map(|off| (home + off) % n)
            .find(|&c| self.health[c].admits())
            .unwrap_or(home)
    }

    /// Serve `sub` on one replica with the panic caught — the failover
    /// unit. No fault is drawn here: retries run clean so a healthy
    /// replica genuinely rescues the sub-batch (the replica's own pool
    /// hook can still fire, which is what bounds chaos tests to the
    /// injector's budget rather than to one draw per sub-batch).
    fn serve_on(
        &mut self,
        shard: usize,
        sub: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        let r = &mut self.replicas[shard];
        catch_unwind(AssertUnwindSafe(|| {
            r.engine.summarize_batch_refs(&r.graph, sub, method)
        }))
        .map_err(EngineError::from_panic)
    }

    /// [`ShardedEngine::serve_on`] preceded by a
    /// [`FaultSite::ShardServe`] draw — the primary dispatch path.
    fn serve_with_faults(
        &mut self,
        shard: usize,
        sub: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        if let Some(inj) = &self.faults {
            if let Some(kind) = inj.fire(FaultSite::ShardServe) {
                match kind {
                    FaultKind::Panic | FaultKind::Transient => {
                        return Err(EngineError::from_message("injected shard-serve fault"));
                    }
                    FaultKind::Delay => inj.sleep_if_delay(kind),
                }
            }
        }
        self.serve_on(shard, sub, method)
    }

    /// Retry a failed sub-batch once on every other replica (or, on a
    /// single-shard engine, once more on the only replica — the
    /// failure may have been an injected fault). If every replica
    /// refuses, resurface the last panic payload so
    /// [`ShardedEngine::try_summarize_batch`] reports the root cause.
    fn failover(
        &mut self,
        failed: usize,
        sub: &[&SummaryInput],
        method: BatchMethod,
        first_err: EngineError,
    ) -> Vec<Summary> {
        let n = self.replicas.len();
        let mut last = first_err;
        let candidates: Vec<usize> = if n == 1 {
            vec![failed]
        } else {
            (1..n).map(|off| (failed + off) % n).collect()
        };
        for cand in candidates {
            match self.serve_on(cand, sub, method) {
                Ok(v) => {
                    self.record_success(cand);
                    return v;
                }
                Err(e) => {
                    self.record_failure(cand);
                    last = e;
                }
            }
        }
        panic!("{}", last.message())
    }

    /// Compute one summary on the shard `input` routes to, reusing that
    /// replica's warm state. Bit-identical to
    /// [`SummaryEngine::summarize`] (and hence to the sequential free
    /// functions) on any replica — so breaker-driven re-routing and
    /// failover cannot change the answer, only who computes it.
    pub fn summarize(&mut self, input: &SummaryInput, method: BatchMethod) -> Summary {
        if self.partitioned.is_some() {
            return self
                .serve_partitioned_batch(std::slice::from_ref(input), method)
                .pop()
                .expect("one input yields one summary");
        }
        self.tick();
        let primary = self.healthy_or(self.shard_of_input(input));
        match self.serve_with_faults(primary, std::slice::from_ref(&input), method) {
            Ok(mut v) => {
                self.record_success(primary);
                v.pop().expect("one input yields one summary")
            }
            Err(e) => {
                self.record_failure(primary);
                let mut v = self.failover(primary, std::slice::from_ref(&input), method, e);
                v.pop().expect("one input yields one summary")
            }
        }
    }

    /// Summarize a mixed batch across the shard replicas: scatter by
    /// router, dispatch the per-shard sub-batches onto the replicas'
    /// worker pools concurrently, gather in input order.
    ///
    /// Output is bit-identical to a single [`SummaryEngine`] serving
    /// the same batch (each replica's engine is bit-identical to the
    /// sequential entry points per input, and gathering restores input
    /// order) — `tests/prop_shard.rs` pins this across shard counts,
    /// methods, and interleaved mutations.
    pub fn summarize_batch(
        &mut self,
        inputs: &[SummaryInput],
        method: BatchMethod,
    ) -> Vec<Summary> {
        self.summarize_batch_impl(inputs, method)
    }

    /// [`ShardedEngine::summarize_batch`] over borrowed inputs — the
    /// admission queue's dispatch path, which coalesces queued requests
    /// into a batch without cloning any `SummaryInput`. Same body as
    /// the owned entry point (one generic implementation), so the two
    /// cannot drift.
    pub(crate) fn summarize_batch_refs(
        &mut self,
        inputs: &[&SummaryInput],
        method: BatchMethod,
    ) -> Vec<Summary> {
        self.summarize_batch_impl(inputs, method)
    }

    fn summarize_batch_impl<T>(&mut self, inputs: &[T], method: BatchMethod) -> Vec<Summary>
    where
        T: std::borrow::Borrow<SummaryInput> + Sync,
    {
        if inputs.is_empty() {
            return Vec::new();
        }
        if self.partitioned.is_some() {
            return self.serve_partitioned_batch(inputs, method);
        }
        let n = self.replicas.len();
        self.tick();
        if n == 1 {
            let refs: Vec<&SummaryInput> = inputs.iter().map(|i| i.borrow()).collect();
            return match self.serve_with_faults(0, &refs, method) {
                Ok(v) => {
                    self.record_success(0);
                    v
                }
                Err(e) => {
                    self.record_failure(0);
                    self.failover(0, &refs, method, e)
                }
            };
        }
        // Scatter: per-shard lists of original input positions plus
        // *borrowed* sub-batches — routing a batch allocates only these
        // index/pointer vectors, never a `SummaryInput`. Inputs homed
        // on an open-breaker replica are re-routed to the next healthy
        // one up front (with every breaker closed — the steady state —
        // this is exactly the router's plan).
        let mut plan: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, input) in inputs.iter().enumerate() {
            let home = self.router.route_input(input.borrow(), n).min(n - 1);
            plan[self.healthy_or(home)].push(i);
        }
        let subs: Vec<Vec<&SummaryInput>> = plan
            .iter()
            .map(|indices| indices.iter().map(|&i| inputs[i].borrow()).collect())
            .collect();
        // Dispatch: replica i serves exactly sub-batch i, concurrently.
        // Idle replicas (empty sub-batch) are skipped — they would
        // spawn a front-end thread only to return nothing. Each
        // dispatch draws at `ShardServe` and runs under `catch_unwind`,
        // so one replica's failure costs only its own sub-batch.
        let mut busy: Vec<&mut ShardReplica> = Vec::new();
        let mut busy_subs: Vec<&[&SummaryInput]> = Vec::new();
        let mut busy_idx: Vec<usize> = Vec::new();
        for (shard, (r, sub)) in self.replicas.iter_mut().zip(&subs).enumerate() {
            if !sub.is_empty() {
                busy.push(r);
                busy_subs.push(sub);
                busy_idx.push(shard);
            }
        }
        let faults = self.faults.clone();
        let per_shard: Vec<Result<Vec<Summary>, EngineError>> =
            parallel_zip_map(&mut busy, &busy_subs, |r, sub| {
                if let Some(inj) = &faults {
                    if let Some(kind) = inj.fire(FaultSite::ShardServe) {
                        match kind {
                            FaultKind::Panic | FaultKind::Transient => {
                                return Err(EngineError::from_message(
                                    "injected shard-serve fault",
                                ));
                            }
                            FaultKind::Delay => inj.sleep_if_delay(kind),
                        }
                    }
                }
                catch_unwind(AssertUnwindSafe(|| {
                    r.engine.summarize_batch_refs(&r.graph, sub, method)
                }))
                .map_err(EngineError::from_panic)
            });

        // Gather: busy shards come back in shard order; record health,
        // fail failed sub-batches over, and reassemble in input order.
        let mut pairs: Vec<(usize, Summary)> = Vec::with_capacity(inputs.len());
        for (k, res) in per_shard.into_iter().enumerate() {
            let shard = busy_idx[k];
            let results = match res {
                Ok(v) => {
                    self.record_success(shard);
                    v
                }
                Err(e) => {
                    self.record_failure(shard);
                    self.failover(shard, &subs[shard], method, e)
                }
            };
            pairs.extend(plan[shard].iter().copied().zip(results));
        }
        pairs.sort_unstable_by_key(|(i, _)| *i);
        pairs.into_iter().map(|(_, s)| s).collect()
    }

    /// The partitioned scatter/gather (module docs, "Partitioned
    /// topology"): each home partition certifies and serves its
    /// sub-batch concurrently, then the coverage replica batch-serves
    /// everything escalated. Output is bit-identical to a single
    /// [`SummaryEngine`] serving the same batch — certified local
    /// serves are *proven* identical, and everything else runs on the
    /// full coverage graph.
    fn serve_partitioned_batch<T>(&mut self, inputs: &[T], method: BatchMethod) -> Vec<Summary>
    where
        T: std::borrow::Borrow<SummaryInput> + Sync,
    {
        self.tick();
        let n = self.shards();
        let cert_cfg = certifiable_config(method);
        // Scatter: inputs go to their owning partition; a
        // non-certifiable method (the PCST family) and inputs homed on
        // an open-breaker partition go straight to coverage — a
        // partition cannot serve another partition's requests, so
        // coverage is the only failover target.
        let mut plan: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut coverage_idx: Vec<usize> = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            let home = self.router.route_input(input.borrow(), n).min(n - 1);
            if cert_cfg.is_some() && self.health[home].admits() {
                plan[home].push(i);
            } else {
                coverage_idx.push(i);
            }
        }
        let state = self.partitioned.as_mut().expect("partitioned mode");
        // Global side of certification condition #0, once per epoch.
        let global_max_bits = {
            let g = &state.coverage.graph;
            let epoch = g.epoch();
            match state.global_max_bits {
                Some((e, b)) if e == epoch => b,
                _ => {
                    let b = g
                        .edge_ids()
                        .map(|e| g.weight(e))
                        .fold(0.0f64, f64::max)
                        .to_bits();
                    state.global_max_bits = Some((epoch, b));
                    b
                }
            }
        };
        // Partition phase: the same static replica↔sub-batch pairing as
        // the full-replica scatter, with the certify-or-escalate
        // decision running inside each partition's dispatch.
        let subs: Vec<Vec<&SummaryInput>> = plan
            .iter()
            .map(|indices| indices.iter().map(|&i| inputs[i].borrow()).collect())
            .collect();
        let coverage_graph = &state.coverage.graph;
        let mut busy: Vec<&mut PartReplica> = Vec::new();
        let mut busy_subs: Vec<&[&SummaryInput]> = Vec::new();
        let mut busy_idx: Vec<usize> = Vec::new();
        for (shard, (p, sub)) in state.parts.iter_mut().zip(&subs).enumerate() {
            if !sub.is_empty() {
                busy.push(p);
                busy_subs.push(sub);
                busy_idx.push(shard);
            }
        }
        let faults = self.faults.clone();
        let cfg = cert_cfg.unwrap_or_default();
        let per_part: Vec<Result<PartServe, EngineError>> =
            parallel_zip_map(&mut busy, &busy_subs, |p, sub| {
                if let Some(inj) = &faults {
                    if let Some(kind) = inj.fire(FaultSite::ShardServe) {
                        match kind {
                            FaultKind::Panic | FaultKind::Transient => {
                                return Err(EngineError::from_message(
                                    "injected shard-serve fault",
                                ));
                            }
                            FaultKind::Delay => inj.sleep_if_delay(kind),
                        }
                    }
                }
                catch_unwind(AssertUnwindSafe(|| {
                    p.serve_local(sub, method, &cfg, global_max_bits, coverage_graph)
                }))
                .map_err(EngineError::from_panic)
            });
        // Gather the partition phase: certified serves keep their
        // original positions; escalations — including the whole
        // sub-batch of a failed partition — join the coverage batch.
        let mut pairs: Vec<(usize, Summary)> = Vec::with_capacity(inputs.len());
        let mut health_updates: Vec<(usize, bool)> = Vec::with_capacity(per_part.len());
        for (k, res) in per_part.into_iter().enumerate() {
            let shard = busy_idx[k];
            match res {
                Ok(ps) => {
                    health_updates.push((shard, true));
                    for (pos, s) in ps.served {
                        pairs.push((plan[shard][pos], s));
                    }
                    for pos in ps.escalated {
                        coverage_idx.push(plan[shard][pos]);
                    }
                }
                Err(_) => {
                    health_updates.push((shard, false));
                    coverage_idx.extend(plan[shard].iter().copied());
                }
            }
        }
        state.local_serves += pairs.len() as u64;
        state.coverage_serves += coverage_idx.len() as u64;
        // Coverage phase: one batch over everything escalated. Like the
        // single-shard full-replica path, it retries once (the failure
        // may have been an injected pool fault) and then gives up
        // loudly — there is no second full replica to fail over to.
        if !coverage_idx.is_empty() {
            coverage_idx.sort_unstable();
            let cov_refs: Vec<&SummaryInput> =
                coverage_idx.iter().map(|&i| inputs[i].borrow()).collect();
            let cov = &mut state.coverage;
            let out = catch_unwind(AssertUnwindSafe(|| {
                cov.engine
                    .summarize_batch_refs(&cov.graph, &cov_refs, method)
            }))
            .or_else(|_| {
                catch_unwind(AssertUnwindSafe(|| {
                    cov.engine
                        .summarize_batch_refs(&cov.graph, &cov_refs, method)
                }))
            });
            let out = match out {
                Ok(v) => v,
                Err(payload) => panic!("{}", EngineError::from_panic(payload).message()),
            };
            pairs.extend(coverage_idx.into_iter().zip(out));
        }
        for (shard, ok) in health_updates {
            if ok {
                self.health[shard].record_success();
            } else {
                self.health[shard].record_failure(self.serve_clock);
            }
        }
        pairs.sort_unstable_by_key(|(i, _)| *i);
        pairs.into_iter().map(|(_, s)| s).collect()
    }

    /// [`ShardedEngine::summarize_batch`] with worker panics surfaced
    /// as a recoverable [`EngineError`]; every replica stays
    /// serviceable afterwards (see
    /// [`SummaryEngine::try_summarize_batch`] — the scatter scope joins
    /// all replica dispatches before the panic is rethrown here, so no
    /// replica is abandoned mid-batch).
    pub fn try_summarize_batch(
        &mut self,
        inputs: &[SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.summarize_batch(inputs, method)))
            .map_err(EngineError::from_panic)
    }

    /// Apply one mutation to **every** replica's graph.
    ///
    /// `f` must be deterministic — it runs once per replica and the
    /// replicas must stay content-identical (full-replica sharding's
    /// one invariant). Each application bumps that replica's mutation
    /// epoch, so every shard's cost-model cache misses and every
    /// shard's session store invalidates on its next request; the
    /// epochs themselves need not be numerically equal across replicas
    /// (they are process-globally unique and never compared across
    /// graphs).
    ///
    /// In partitioned mode `f` runs **once**, on the coverage graph
    /// (the mutation authority), and the partitions then sync from it:
    /// weight changes propagate edge-by-edge to the owning partition
    /// and every halo copy; structural changes trigger a deterministic
    /// re-partition (same seed ⇒ same plan for the same graph).
    pub fn mutate(&mut self, mut f: impl FnMut(&mut Graph)) {
        if self.partitioned.is_some() {
            {
                let state = self.partitioned.as_mut().expect("partitioned mode");
                f(&mut state.coverage.graph);
            }
            self.sync_partitions();
            let state = self.partitioned.as_mut().expect("partitioned mode");
            self.last_good = state.coverage.graph.clone();
            return;
        }
        for r in &mut self.replicas {
            f(&mut r.graph);
        }
        self.last_good = self.replicas[0].graph.clone();
    }

    /// [`ShardedEngine::mutate`] with a panicking mutation surfaced as
    /// a recoverable [`EngineError`] instead of unwinding.
    ///
    /// The closure is applied replica-by-replica under `catch_unwind`;
    /// on failure the replicas are left **diverged** (earlier replicas
    /// mutated, the failing one possibly half-mutated) and the
    /// coherent-snapshot restore point is *not* advanced — call
    /// [`ShardedEngine::resync_replicas`] to restore coherence before
    /// serving again. This is the admission queue's mutation-barrier
    /// seam ([`AdmissionBackend::mutate_graph`](crate::admission::AdmissionBackend::mutate_graph)).
    ///
    /// In partitioned mode the closure runs only on the coverage
    /// authority; on failure the partitions are *not* synced (the
    /// authority may be half-mutated) and the same
    /// [`ShardedEngine::resync_replicas`] recovery applies.
    pub fn try_mutate(&mut self, f: &mut dyn FnMut(&mut Graph)) -> Result<(), EngineError> {
        if self.partitioned.is_some() {
            {
                let state = self.partitioned.as_mut().expect("partitioned mode");
                catch_unwind(AssertUnwindSafe(|| f(&mut state.coverage.graph)))
                    .map_err(EngineError::from_panic)?;
            }
            self.sync_partitions();
            let state = self.partitioned.as_mut().expect("partitioned mode");
            self.last_good = state.coverage.graph.clone();
            return Ok(());
        }
        for r in &mut self.replicas {
            catch_unwind(AssertUnwindSafe(|| f(&mut r.graph))).map_err(EngineError::from_panic)?;
        }
        self.last_good = self.replicas[0].graph.clone();
        Ok(())
    }

    /// Restore every replica from the last mutation-coherent snapshot
    /// (the graph as of the most recent successful mutation, or
    /// construction). A failed [`ShardedEngine::try_mutate`] is thereby
    /// a rollback no-op: the restored content — and its mutation epoch
    /// — predate the failed closure, so each replica's epoch-keyed
    /// cost-model cache and session store remain valid for exactly the
    /// state being served. Breaker states are left untouched; they
    /// track serve health, not mutation coherence.
    ///
    /// In partitioned mode the snapshot restores the coverage
    /// authority and the partitions re-sync from it, so a failed
    /// partitioned [`ShardedEngine::try_mutate`] is the same rollback
    /// no-op.
    pub fn resync_replicas(&mut self) {
        self.last_good.freeze();
        if self.partitioned.is_some() {
            {
                let state = self.partitioned.as_mut().expect("partitioned mode");
                state.coverage.graph = self.last_good.clone();
            }
            self.sync_partitions();
            return;
        }
        for r in &mut self.replicas {
            r.graph = self.last_good.clone();
        }
    }

    /// Bring every partition back in line with the coverage authority
    /// after a mutation (the partitioned-mode propagation barrier; see
    /// the module docs).
    ///
    /// * **Weight drift** (same nodes/edges, some weights changed):
    ///   each partition bit-compares its local copies against the
    ///   authority and rewrites only the edges that actually differ —
    ///   untouched partitions take no write and keep their mutation
    ///   epoch (and thus their warm cost-model cache).
    /// * **Structural drift** (nodes or edges added): the partition
    ///   plan is recomputed from the authority with the original seed
    ///   (deterministic — the same post-mutation graph always yields
    ///   the same plan), every partition is rebuilt, and the router is
    ///   replaced with one over the new ownership table.
    fn sync_partitions(&mut self) {
        let state = self.partitioned.as_mut().expect("partitioned mode");
        state.global_max_bits = None;
        let g = &state.coverage.graph;
        let structural = g.node_count() != state.owner.len() || g.edge_count() != state.edge_count;
        if structural {
            g.freeze();
            let plan = partition_nodes(g, state.parts.len(), state.seed, &state.pcfg);
            for (p, res) in state.parts.iter_mut().zip(&plan.residents) {
                p.part = Partition::build(g, res, &state.hcfg);
                p.cert.max_bits = None;
            }
            state.owner = Arc::new(plan.owner);
            state.edge_count = g.edge_count();
            let owner = state.owner.clone();
            self.router = Box::new(PartitionRouter::new(owner));
            return;
        }
        for p in &mut state.parts {
            let mut dirty = false;
            for le in 0..p.part.edge_count() {
                let le = EdgeId(le as u32);
                let ge = p.part.to_global_edge(le);
                let want = g.weight(ge);
                if p.part.graph().weight(le).to_bits() != want.to_bits() {
                    p.part.graph_mut().set_weight(le, want);
                    dirty = true;
                }
            }
            if dirty {
                p.cert.max_bits = None;
            }
        }
    }

    /// Reweight one edge on every replica — the common serving-time
    /// mutation (rating updates feed Eq. 1 through the weights).
    ///
    /// In partitioned mode this is the fast path the partition layout
    /// exists for: the coverage authority applies the write, and only
    /// the partitions actually holding a copy of `e` (owner + halo)
    /// take a local write — instead of the full-replica mode's N
    /// whole-graph applications.
    pub fn set_weight(&mut self, e: EdgeId, weight: f64) {
        self.apply_weight_delta(&[(e, weight)]);
    }

    /// Apply one batched weight-only delta to every replica — the
    /// coalesced sibling of [`ShardedEngine::set_weight`], and the
    /// backend of the admission queue's non-barrier
    /// [`submit_weight_update`](crate::admission::AdmissionQueue::submit_weight_update)
    /// path. Each graph records the whole batch as **one**
    /// [`Graph::apply_delta`] ledger entry (one epoch bump), so every
    /// downstream cache and session store sees a single covered delta.
    ///
    /// In partitioned mode the coverage authority takes the batch, and
    /// only the partitions actually holding a copy of a touched edge
    /// (owner + halo) take a targeted local batch; untouched partitions
    /// keep their mutation epoch — and with it their warm cost-model
    /// caches and serve certificates. No re-certification, no
    /// re-partition, no per-edge sync sweep.
    pub fn apply_weight_delta(&mut self, updates: &[(EdgeId, f64)]) {
        if updates.is_empty() {
            return;
        }
        if let Some(state) = self.partitioned.as_mut() {
            state.coverage.graph.apply_delta(updates);
            state.global_max_bits = None;
            for p in &mut state.parts {
                let local: Vec<(EdgeId, f64)> = updates
                    .iter()
                    .filter_map(|&(e, w)| p.part.to_local_edge(e).map(|le| (le, w)))
                    .collect();
                if !local.is_empty() {
                    p.part.graph_mut().apply_delta(&local);
                    p.cert.max_bits = None;
                }
            }
            self.last_good = state.coverage.graph.clone();
            return;
        }
        for r in &mut self.replicas {
            r.graph.apply_delta(updates);
        }
        self.last_good = self.replicas[0].graph.clone();
    }

    /// Serve one growing per-user session request on the shard that
    /// owns `key`: look up (or start) the session in that replica's
    /// store, attach any new terminals, snapshot. The shard-affine
    /// sibling of [`crate::session::session_summary`].
    ///
    /// In partitioned mode sessions are **coverage-affine**: a
    /// session's terminal set grows across requests and quickly stops
    /// fitting any one partition, so all session state lives in the
    /// coverage replica's store (partition-aware sessions are a
    /// roadmap follow-on).
    pub fn session_summary(
        &mut self,
        key: SessionKey,
        input: &SummaryInput,
        cfg: &SteinerConfig,
        terminals_in_rank_order: &[NodeId],
    ) -> Summary {
        if let Some(state) = self.partitioned.as_mut() {
            let ShardReplica { graph, engine } = &mut state.coverage;
            return session_summary(
                engine.sessions(),
                graph,
                key,
                input,
                cfg,
                terminals_in_rank_order,
            );
        }
        let shard = self.shard_of_session(&key);
        let ShardReplica { graph, engine } = &mut self.replicas[shard];
        session_summary(
            engine.sessions(),
            graph,
            key,
            input,
            cfg,
            terminals_in_rank_order,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcst::PcstConfig;
    use crate::render::table1_example;
    use crate::steiner::SteinerConfig;

    fn assert_same(a: &Summary, b: &Summary) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.terminals, b.terminals);
        assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
        assert_eq!(a.subgraph.sorted_nodes(), b.subgraph.sorted_nodes());
    }

    /// A small batch with genuinely distinct routing identities: one
    /// user-centric input per user, each anchored (first path source)
    /// at *that* user, plus a group and an item-centric input — so
    /// multi-shard runs scatter across several busy replicas instead of
    /// degenerating to one.
    fn mixed_inputs() -> (Graph, Vec<SummaryInput>) {
        use xsum_graph::{EdgeKind, LoosePath, NodeKind};
        let mut g = Graph::new();
        let users: Vec<NodeId> = (0..5).map(|_| g.add_node(NodeKind::User)).collect();
        let items: Vec<NodeId> = (0..5).map(|_| g.add_node(NodeKind::Item)).collect();
        let ents: Vec<NodeId> = (0..2).map(|_| g.add_node(NodeKind::Entity)).collect();
        for &item in &items {
            g.add_edge(item, ents[0], 0.0, EdgeKind::Attribute);
            g.add_edge(item, ents[1], 0.0, EdgeKind::Attribute);
        }
        let mut inputs = Vec::new();
        let mut all_paths = Vec::new();
        for (ui, &u) in users.iter().enumerate() {
            g.add_edge(u, items[ui], 1.0 + ui as f64, EdgeKind::Interaction);
            let path = LoosePath::ground(
                &g,
                vec![u, items[ui], ents[ui % 2], items[(ui + 1) % items.len()]],
            );
            all_paths.push(path.clone());
            inputs.push(SummaryInput::user_centric(u, vec![path]));
        }
        inputs.push(SummaryInput::user_group(&users, all_paths.clone()));
        inputs.push(SummaryInput::item_centric(
            all_paths[2].target(),
            vec![all_paths[2].clone()],
        ));
        (g, inputs)
    }

    /// Distinct shards the batch occupies under the engine's router.
    fn busy_shards(sharded: &ShardedEngine, inputs: &[SummaryInput]) -> usize {
        let mut seen: Vec<usize> = inputs.iter().map(|i| sharded.shard_of_input(i)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    #[test]
    fn sharded_batch_matches_single_engine() {
        let (g, inputs) = mixed_inputs();
        let st = SteinerConfig::default();
        for method in [
            BatchMethod::Steiner(st),
            BatchMethod::SteinerFast(st),
            BatchMethod::Pcst(PcstConfig::default()),
        ] {
            let mut single = SummaryEngine::with_threads(2);
            let want = single.summarize_batch(&g, &inputs, method);
            for shards in [1usize, 2, 4] {
                let mut sharded = ShardedEngine::with_threads(&g, shards, 2);
                assert_eq!(sharded.shards(), shards);
                if shards >= 2 {
                    assert!(
                        busy_shards(&sharded, &inputs) >= 2,
                        "fixture must scatter across \u{2265}2 busy shards"
                    );
                }
                let got = sharded.summarize_batch(&inputs, method);
                assert_eq!(got.len(), want.len());
                for (w, s) in want.iter().zip(&got) {
                    assert_same(w, s);
                }
                // Single-summary routing agrees with the batch path.
                for input in &inputs {
                    assert_same(&sharded.summarize(input, method), &method.run(&g, input));
                }
            }
        }
    }

    #[test]
    fn empty_and_skewed_batches() {
        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 4, 1);
        assert!(sharded.summarize_batch(&[], method).is_empty());
        // A single-input batch exercises the all-but-one-shard-idle path.
        let got = sharded.summarize_batch(&inputs[..1], method);
        assert_same(&got[0], &method.run(&g, &inputs[0]));
    }

    #[test]
    fn mutation_propagates_to_every_replica() {
        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 2, 1);
        let before = sharded.summarize_batch(&inputs, method);
        let misses_before: Vec<u64> = sharded.cost_cache_stats().iter().map(|&(_, m)| m).collect();

        // Reweight through the front-end; a reference graph mutated the
        // same way is the oracle.
        let mut reference = g.clone();
        let e = EdgeId(0);
        sharded.set_weight(e, 0.125);
        reference.set_weight(e, 0.125);
        for shard in 0..sharded.shards() {
            assert_eq!(sharded.graph(shard).weight(e), 0.125);
        }

        let after = sharded.summarize_batch(&inputs, method);
        assert_eq!(before.len(), after.len());
        for (input, s) in inputs.iter().zip(&after) {
            assert_same(s, &method.run(&reference, input));
        }
        // Every replica that served traffic refreshed its cost model —
        // by a rebuild or (for this anchor-safe weight delta) an
        // O(|touched|) patch. Either way, never stale.
        let patches = sharded.cost_cache_patches();
        for (shard, &(_, misses)) in sharded.cost_cache_stats().iter().enumerate() {
            if misses_before[shard] > 0 {
                assert!(
                    misses > misses_before[shard] || patches[shard] > 0,
                    "shard {shard} served stale cost state after mutate"
                );
            }
        }
    }

    #[test]
    fn mutation_invalidates_sessions_on_every_replica() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut sharded = ShardedEngine::with_threads(&ex.graph, 2, 1);
        // Find users covering both shards (the Fx hash spreads small
        // ids, but don't assume which way).
        let mut keys: Vec<SessionKey> = Vec::new();
        for u in 0..64u64 {
            let key = SessionKey::new(u, "pgpr");
            let shard = sharded.shard_of_session(&key);
            if !keys.iter().any(|k| sharded.shard_of_session(k) == shard) {
                keys.push(key);
            }
            if keys.len() == 2 {
                break;
            }
        }
        assert_eq!(keys.len(), 2, "hash router must cover both shards");

        for key in &keys {
            let s = sharded.session_summary(key.clone(), &input, &cfg, &input.terminals);
            assert_eq!(s.terminal_coverage(), 1.0);
        }
        for shard in 0..2 {
            assert_eq!(sharded.sessions(shard).len(), 1, "one session per shard");
        }

        sharded.set_weight(EdgeId(0), 42.0);
        for key in &keys {
            sharded.session_summary(key.clone(), &input, &cfg, &[]);
        }
        for shard in 0..2 {
            assert_eq!(
                sharded.sessions(shard).invalidations(),
                1,
                "shard {shard} must drop pre-mutation sessions"
            );
        }
    }

    #[test]
    fn sessions_are_shard_affine() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut sharded = ShardedEngine::with_threads(&ex.graph, 4, 1);
        let key = SessionKey::new(7, "pgpr");
        let home = sharded.shard_of_session(&key);
        for round in 1..=3usize {
            sharded.session_summary(
                key.clone(),
                &input,
                &cfg,
                &input.terminals[..round.min(input.terminals.len())],
            );
        }
        // All three requests landed on the same replica and resumed.
        assert_eq!(sharded.sessions(home).misses(), 1);
        assert_eq!(sharded.sessions(home).hits(), 2);
        for shard in (0..4).filter(|&s| s != home) {
            assert_eq!(sharded.sessions(shard).len(), 0, "foreign shard touched");
        }
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let (_, inputs) = mixed_inputs();
        let router = HashRouter;
        for shards in 1..=8 {
            for input in &inputs {
                let a = router.route_input(input, shards);
                assert_eq!(a, router.route_input(input, shards));
                assert!(a < shards);
            }
            let key = SessionKey::new(123, "cafe");
            assert!(router.route_session(&key, shards) < shards);
            assert_eq!(
                router.route_session(&key, shards),
                router.route_session(&key, shards)
            );
        }
    }

    #[test]
    fn router_affinity_is_coherent_between_inputs_and_sessions() {
        // Satellite regression: `shard_of_input` and `shard_of_session`
        // must agree for the same (user, baseline) identity — otherwise
        // a user's incremental session state and their batch requests
        // land on different replicas and the session store can never
        // warm up. Verified across shard counts {1, 2, 4} and every
        // input shape of the mixed fixture.
        let (g, inputs) = mixed_inputs();
        for shards in [1usize, 2, 4] {
            let sharded = ShardedEngine::with_threads(&g, shards, 1);
            for input in &inputs {
                let anchor = HashRouter::routing_anchor(input);
                for baseline in ["pgpr", "cafe", "plm"] {
                    let key = SessionKey::for_node(anchor, baseline);
                    assert_eq!(
                        sharded.shard_of_input(input),
                        sharded.shard_of_session(&key),
                        "input and session for anchor {anchor:?} split \
                         across replicas at {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn try_batch_recovers_across_shards() {
        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 2, 1);
        let want = sharded.summarize_batch(&inputs, method);
        let mut bad = inputs[0].clone();
        bad.terminals = vec![
            xsum_graph::NodeId(u32::MAX - 2),
            xsum_graph::NodeId(u32::MAX - 1),
        ];
        let mut batch = inputs.clone();
        batch.push(bad);
        let err = sharded
            .try_summarize_batch(&batch, method)
            .expect_err("poisoned input must surface as an error");
        assert!(
            !err.message().contains("scoped thread"),
            "the worker's original panic payload must survive the \
             scatter join, got: {}",
            err.message()
        );
        // Every replica keeps serving bit-identically afterwards.
        let after = sharded.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&after) {
            assert_same(w, s);
        }
    }

    #[test]
    fn breaker_trips_reroutes_and_recloses() {
        use crate::faults::{FaultInjector, FaultPlan, FaultSite};
        use std::sync::Arc;

        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 2, 1);
        let want = sharded.summarize_batch(&inputs, method);
        sharded.set_circuit_config(CircuitConfig {
            failure_threshold: 1,
            cooldown: 2,
            max_cooldown: 8,
        });
        // A shard-serve-only injector that fires on every draw until
        // its budget (1 fault) is spent: the first batch loses exactly
        // one primary dispatch and must fail it over.
        let inj = Arc::new(FaultInjector::new(FaultPlan {
            rate: 1.0,
            budget: 1,
            panics: false,
            delays: false,
            ..FaultPlan::seeded(11)
        }));
        sharded.set_fault_injector(Some(inj.clone()));
        let got = sharded.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&got) {
            assert_same(w, s);
        }
        assert_eq!(inj.injected_at(FaultSite::ShardServe), 1);
        let tripped = (0..2)
            .filter(|&s| sharded.breaker_state(s) == BreakerState::Open)
            .count();
        assert_eq!(tripped, 1, "threshold 1 must open the faulted replica");

        // Budget exhausted: serving continues bit-identically while the
        // open replica cools down, goes half-open, and recloses on its
        // probe success.
        let mut saw_half_open = false;
        for _ in 0..4 {
            let again = sharded.summarize_batch(&inputs, method);
            for (w, s) in want.iter().zip(&again) {
                assert_same(w, s);
            }
            saw_half_open |= (0..2).any(|s| sharded.breaker_state(s) == BreakerState::HalfOpen);
        }
        assert!(
            (0..2).all(|s| sharded.breaker_state(s) == BreakerState::Closed),
            "probe success must reclose the breaker (half-open seen: {saw_half_open})"
        );
    }

    #[test]
    fn failed_mutation_is_a_rollback_noop_after_resync() {
        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut sharded = ShardedEngine::with_threads(&g, 2, 1);

        // One good mutation advances the restore point.
        sharded.set_weight(EdgeId(0), 0.25);
        let mut reference = g.clone();
        reference.set_weight(EdgeId(0), 0.25);
        let want: Vec<Summary> = inputs.iter().map(|i| method.run(&reference, i)).collect();

        // A mutation that diverges the replicas: succeeds on the first,
        // panics on the second.
        let mut applications = 0;
        let err = sharded
            .try_mutate(&mut |g: &mut Graph| {
                applications += 1;
                if applications == 2 {
                    panic!("mutation torn mid-replica");
                }
                g.set_weight(EdgeId(1), 9.0);
            })
            .expect_err("a panicking mutation must surface as an error");
        assert!(err.message().contains("torn"), "payload: {}", err.message());
        assert_ne!(
            sharded.graph(0).weight(EdgeId(1)),
            sharded.graph(1).weight(EdgeId(1)),
            "fixture must actually diverge the replicas"
        );

        sharded.resync_replicas();
        for shard in 0..sharded.shards() {
            assert_eq!(sharded.graph(shard).weight(EdgeId(0)), 0.25);
            assert_eq!(
                sharded.graph(shard).weight(EdgeId(1)),
                reference.weight(EdgeId(1)),
                "failed mutation must roll back entirely"
            );
        }
        let after = sharded.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&after) {
            assert_same(w, s);
        }
    }

    #[test]
    fn consistent_ring_router_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            let a = ConsistentHashRouter::new(shards);
            let b = ConsistentHashRouter::new(shards);
            for id in 0..500u64 {
                let key = SessionKey::new(id, "pgpr");
                let s = a.route_session(&key, shards);
                assert!(s < shards, "ring routed {id} out of range at {shards}");
                assert_eq!(
                    s,
                    b.route_session(&key, shards),
                    "ring must be deterministic"
                );
            }
        }
    }

    #[test]
    fn ring_growth_moves_keys_only_to_the_new_shard() {
        // The consistent-hash contract: growing an N-shard ring to
        // N + 1 may move a key only onto the NEW shard — never between
        // two old shards — and must move some (bounded, non-zero
        // rebalancing).
        for n in [2usize, 4, 8] {
            let old = ConsistentHashRouter::new(n);
            let new = ConsistentHashRouter::new(n + 1);
            let mut moved = 0usize;
            for id in 0..4000u64 {
                let key = SessionKey::new(id, "pgpr");
                let s_old = old.route_session(&key, n);
                let s_new = new.route_session(&key, n + 1);
                if s_new != s_old {
                    assert_eq!(
                        s_new, n,
                        "key {id} moved between old shards {s_old}→{s_new} at n={n}"
                    );
                    moved += 1;
                }
            }
            assert!(moved > 0, "the new shard must take over some keys");
            // Expected share is 1/(n+1); allow generous slack.
            assert!(
                moved < 4000 * 3 / (n + 1),
                "ring moved {moved}/4000 keys at n={n} — far above the 1/(n+1) share"
            );
        }
    }

    #[test]
    fn partitioned_batch_matches_single_engine() {
        // The partitioned-mode universal oracle: for every method and
        // shard count, partitioned serving (certified local serves +
        // coverage escalations) is bit-identical to one engine on the
        // full graph. The PCST family always escalates; the Steiner
        // family exercises the certify-or-escalate split.
        let (g, inputs) = mixed_inputs();
        let st = SteinerConfig::default();
        for method in [
            BatchMethod::Steiner(st),
            BatchMethod::SteinerFast(st),
            BatchMethod::Pcst(PcstConfig::default()),
        ] {
            let mut single = SummaryEngine::with_threads(2);
            let want = single.summarize_batch(&g, &inputs, method);
            for shards in [1usize, 2, 4] {
                let mut parted = ShardedEngine::new_partitioned(&g, shards, 42);
                assert!(parted.is_partitioned());
                assert_eq!(parted.shards(), shards);
                let got = parted.summarize_batch(&inputs, method);
                assert_eq!(got.len(), want.len());
                for (w, s) in want.iter().zip(&got) {
                    assert_same(w, s);
                }
                for input in &inputs {
                    assert_same(&parted.summarize(input, method), &method.run(&g, input));
                }
                // Every serve is accounted exactly once, locally or on
                // coverage: one batch plus the singles loop above.
                let (local, coverage) = parted.partition_stats();
                assert_eq!(
                    local + coverage,
                    (inputs.len() * 2) as u64,
                    "partition_stats must account for every serve"
                );
            }
        }
    }

    /// Two weight-identical communities with no edges between them:
    /// a partitioning that separates them has empty boundaries and
    /// equal local/global maximum weights, so every community-local
    /// request certifies and serves inside its home partition.
    fn two_communities() -> (Graph, Vec<SummaryInput>) {
        use xsum_graph::{EdgeKind, LoosePath, NodeKind};
        let mut g = Graph::new();
        let mut inputs = Vec::new();
        for _c in 0..2 {
            let users: Vec<NodeId> = (0..4).map(|_| g.add_node(NodeKind::User)).collect();
            let items: Vec<NodeId> = (0..4).map(|_| g.add_node(NodeKind::Item)).collect();
            for i in 0..4 {
                g.add_edge(
                    users[i],
                    items[i],
                    1.0 + i as f64 * 0.1,
                    EdgeKind::Interaction,
                );
                g.add_edge(items[i], users[(i + 1) % 4], 0.5, EdgeKind::Interaction);
            }
            // Identical per-community maximum weight — certification
            // condition #0 (local max bits == global max bits) holds in
            // both partitions.
            g.add_edge(users[0], items[2], 2.0, EdgeKind::Interaction);
            let path = LoosePath::ground(&g, vec![users[0], items[0], users[1]]);
            inputs.push(SummaryInput::user_centric(users[0], vec![path]));
            let path2 = LoosePath::ground(&g, vec![users[2], items[2], users[3]]);
            inputs.push(SummaryInput::user_centric(users[2], vec![path2]));
        }
        (g, inputs)
    }

    #[test]
    fn separated_communities_serve_inside_their_partitions() {
        let (g, inputs) = two_communities();
        let n = g.node_count();
        let community = |v: usize| v / (n / 2);
        // The partitioner is deterministic, so scan for a seed whose
        // two Voronoi seeds land one per community — then each BFS
        // claims exactly its community and the cut is empty.
        let seed = (0..64u64)
            .find(|&s| {
                let plan = partition_nodes(&g, 2, s, &PartitionerConfig::default());
                (0..n).all(|v| plan.owner[v] == plan.owner[community(v) * (n / 2)])
                    && plan.owner[0] != plan.owner[n / 2]
            })
            .expect("some seed must separate two equal disjoint communities");
        let mut parted = ShardedEngine::partitioned_with(
            &g,
            2,
            seed,
            1,
            PartitionerConfig::default(),
            PartitionConfig::default(),
        );
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let want: Vec<Summary> = inputs.iter().map(|i| method.run(&g, i)).collect();
        let got = parted.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&got) {
            assert_same(w, s);
        }
        let (local, coverage) = parted.partition_stats();
        assert_eq!(
            (local, coverage),
            (inputs.len() as u64, 0),
            "all community-local requests must certify and serve locally"
        );
    }

    #[test]
    fn partitioned_mutation_stays_coherent() {
        let (g, inputs) = two_communities();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut parted = ShardedEngine::new_partitioned(&g, 2, 42);
        let e = EdgeId(0);

        // Weight fast path: authority + owning/halo copies only.
        parted.set_weight(e, 9.5);
        let mut reference = g.clone();
        reference.set_weight(e, 9.5);
        let mut single = SummaryEngine::with_threads(1);
        let want = single.summarize_batch(&reference, &inputs, method);
        let got = parted.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&got) {
            assert_same(w, s);
        }

        // Closure path: mutate once on the authority, sync partitions.
        parted.mutate(|g| g.set_weight(e, 0.25));
        reference.set_weight(e, 0.25);
        let want = single.summarize_batch(&reference, &inputs, method);
        let got = parted.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&got) {
            assert_same(w, s);
        }
    }

    #[test]
    fn partitioned_failed_mutation_is_a_rollback_noop_after_resync() {
        let (g, inputs) = mixed_inputs();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut parted = ShardedEngine::new_partitioned(&g, 2, 42);
        let want = parted.summarize_batch(&inputs, method);

        let err = parted.try_mutate(&mut |g: &mut Graph| {
            g.set_weight(EdgeId(0), 123.0);
            panic!("mutation torn on the authority");
        });
        assert!(
            err.is_err(),
            "a panicking mutation must surface as an error"
        );

        parted.resync_replicas();
        let after = parted.summarize_batch(&inputs, method);
        for (w, s) in want.iter().zip(&after) {
            assert_same(w, s);
        }
        assert_eq!(
            parted
                .coverage_graph()
                .expect("partitioned")
                .weight(EdgeId(0)),
            g.weight(EdgeId(0)),
            "the half-applied write must roll back on the authority"
        );
    }

    #[test]
    fn partitioned_accessors_are_honest() {
        let (g, _) = mixed_inputs();
        let parted = ShardedEngine::new_partitioned(&g, 2, 42);
        assert!(parted.is_partitioned());
        let cov = parted.coverage_graph().expect("partitioned mode");
        assert_eq!(cov.node_count(), g.node_count());
        for shard in 0..2 {
            // `graph(shard)` stays honest: the full coverage graph, not
            // a sub-graph masquerading as one.
            assert_eq!(parted.graph(shard).node_count(), g.node_count());
            assert_eq!(parted.graph(shard).edge_count(), g.edge_count());
            // `partition(shard)` is the true sub-graph replica.
            let p = parted.partition(shard).expect("partitioned mode");
            assert!(p.resident_count() >= 1);
            assert!(p.node_count() <= g.node_count());
            assert!(p.graph().resident_bytes() <= g.resident_bytes());
        }
        // Full-replica mode answers the partitioned probes with None.
        let full = ShardedEngine::with_threads(&g, 2, 1);
        assert!(!full.is_partitioned());
        assert!(full.coverage_graph().is_none());
        assert!(full.partition(0).is_none());
        assert_eq!(full.partition_stats(), (0, 0));
    }

    #[test]
    fn partitioned_sessions_are_coverage_affine() {
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let mut parted = ShardedEngine::new_partitioned(&ex.graph, 2, 42);
        let key = SessionKey::new(7, "pgpr");
        for round in 1..=3usize {
            parted.session_summary(
                key.clone(),
                &input,
                &cfg,
                &input.terminals[..round.min(input.terminals.len())],
            );
        }
        // All rounds resumed one session in the coverage store; both
        // shard views alias it.
        assert_eq!(parted.sessions(0).misses(), 1);
        assert_eq!(parted.sessions(0).hits(), 2);
        assert_eq!(parted.sessions(1).len(), parted.sessions(0).len());
    }
}
