//! Async admission: a bounded submission queue with batch coalescing
//! in front of the serving engines.
//!
//! [`SummaryEngine`] and [`ShardedEngine`] are synchronous: a service
//! thread that wants to overlap request ingestion with an in-flight
//! batch would need its own second thread pool, defeating the pinned
//! [`WorkerPool`](xsum_graph::WorkerPool) design. [`AdmissionQueue`]
//! closes that gap with plain std primitives — no external async
//! runtime. The queue's locking/signalling protocol, and how it is
//! model-checked, is documented in `CONCURRENCY.md` at the repo root:
//!
//! ```text
//!  producer threads ──submit()──► bounded queue ──► dispatcher thread
//!       ▲   ▲                     (coalescing,          │  owns the
//!   tickets resolve ◄─────────────  deadlines,          ▼  backend
//!   (condvar slots)                 barriers)     SummaryEngine /
//!                                                 ShardedEngine
//! ```
//!
//! # The coalescing / deadline / backpressure contract
//!
//! * **Coalescing.** Queued single-summary requests with the same
//!   [`BatchMethod`] (compared bit-level on the f64 config params, the
//!   same fingerprint discipline as
//!   [`CostModelKey`](crate::steiner::CostModelKey)) are merged into
//!   one engine batch of at most [`AdmissionConfig::max_batch`]
//!   requests, dispatched onto the backend's pinned pool in a single
//!   wake-up. Because every engine path is bit-identical per input to
//!   the free functions, *any* grouping the coalescer picks produces
//!   outputs bit-identical to one direct
//!   [`SummaryEngine::summarize_batch`] call over the same inputs —
//!   pinned by `tests/prop_admission.rs`.
//! * **Lingering — ticket-count driven, not wall-clock.** The
//!   dispatcher holds off dispatching until
//!   [`AdmissionConfig::linger_tickets`] requests are queued, letting
//!   singles pile into bigger batches. There is deliberately **no
//!   timer**: the linger window closes on ticket count, on an explicit
//!   [`AdmissionQueue::flush`]/[`AdmissionQueue::drain`], on shutdown,
//!   on a mutation barrier, or as soon as any consumer blocks on a
//!   ticket ([`SummaryTicket::wait`] flushes everything up to and
//!   including its own request, so lingering can never deadlock a
//!   waiter). Determinism is the point: tests drive the exact same
//!   dispatch boundaries on every run.
//! * **Deadline / priority ordering.** Each request may carry an
//!   optional deadline rank ([`AdmissionQueue::submit_with_deadline`];
//!   lower dispatches sooner, `None` sorts last). Dispatch picks the
//!   most urgent queued request as the batch leader and coalesces
//!   method-compatible requests in urgency order behind it.
//! * **Backpressure.** At most [`AdmissionConfig::queue_bound`]
//!   requests may be queued. [`AdmissionQueue::try_submit`] is a pure
//!   probe — on a full queue it returns
//!   [`AdmissionError::QueueFull`] without side effects — while the
//!   blocking [`AdmissionQueue::submit`] flushes the queue and waits
//!   for room, so bound < linger cannot deadlock a producer.
//! * **Mutation barriers.** [`AdmissionQueue::mutate`] enqueues a
//!   graph mutation as a **barrier**: every request admitted before it
//!   is served against the pre-mutation graph, every request after it
//!   against the post-mutation graph (a pending barrier also closes
//!   the linger window for the segment in front of it). On the sharded
//!   backend the closure is applied coherently to every replica via
//!   [`ShardedEngine::mutate`].
//! * **Non-barrier weight updates.**
//!   [`AdmissionQueue::submit_weight_update`] enqueues a weight-only
//!   delta that is **not** a barrier: it never closes the linger
//!   window, and every update queued in the head segment is coalesced
//!   — in admission order, later writes to the same edge winning —
//!   into one [`AdmissionBackend::apply_weight_delta`] call (one
//!   ledger record, one epoch bump per backend graph) dispatched ahead
//!   of that segment's summaries. Summaries therefore observe either
//!   the pre- or post-delta weights, whichever the dispatcher reaches
//!   first — the freshness trade a live rating stream wants. Updates
//!   never cross a mutation/recovery barrier in either direction
//!   (structural mutations may renumber edges), and a failed update
//!   poisons the queue exactly like a failed barrier. The delta-epoch
//!   protocol downstream of this seam is documented in
//!   `CONCURRENCY.md`.
//! * **Panic isolation.** A worker panic inside a coalesced batch is
//!   caught by the backend (`try_*` paths) and the dispatcher retries
//!   each member of the failed batch individually, so the
//!   [`EngineError`] lands on **exactly the affected tickets**; the
//!   unaffected co-batched requests and everything queued behind them
//!   still complete (the PR 3 dirty-buffer recovery keeps the engine
//!   serviceable).
//! * **Shutdown drains.** [`AdmissionQueue::shutdown`] (and drop)
//!   stops admitting, then the dispatcher drains everything already
//!   queued — accepted tickets always resolve. Submitting afterwards
//!   returns [`AdmissionError::ShutDown`].
//!
//! # Failure semantics
//!
//! The queue's one inviolable promise is that **every issued ticket
//! resolves** — with a summary, or with an error that says why not.
//! What varies is which error, and what the queue does next:
//!
//! * **What sheds.** With an [`OverloadPolicy::shed_watermark`] set,
//!   admissions that push the queue past the watermark evict the
//!   *least urgent* queued request (unranked-and-newest first), which
//!   resolves [`AdmissionError::DeadlineExceeded`] without ever
//!   touching a worker — under overload the queue trades the work it
//!   was least likely to serve in time for bounded latency on the
//!   rest. With the watermark unset (`0`, the default) nothing sheds
//!   and PR 4's urgency ordering is bit-identical to before.
//! * **What expires.** A request submitted with
//!   [`SubmitOptions::expires_at`] that is still queued when its
//!   wall-clock deadline passes resolves `DeadlineExceeded` at the
//!   next dispatch decision instead of being served late; one already
//!   expired at submission resolves immediately, consuming no queue
//!   room. Requests without an expiry never take the
//!   [`std::time::Instant`] path at all.
//! * **What degrades.** A request submitted with
//!   [`DegradePolicy::AllowStFast`] whose method is `Steiner` (KMB) is
//!   downgraded at admission to `SteinerFast` (Mehlhorn) while the
//!   queue is at or above [`OverloadPolicy::degrade_watermark`] — the
//!   §V-B-licensed quality trade — and the swap is recorded in
//!   [`DispatchMeta::degraded`]. Degraded results are bit-identical to
//!   a direct `SteinerFast` call; [`DegradePolicy::Strict`] (the
//!   default) never degrades.
//! * **What retries.** A failed coalesced batch (worker panic or an
//!   injected [`FaultSite::AdmissionDispatch`] fault) is retried
//!   request-by-request so the error lands on exactly the affected
//!   tickets; with a fault injector installed, each failed isolation
//!   retry gets one more attempt (bounded — termination comes from the
//!   injector's finite budget, never from looping until success).
//! * **What poisons, and the recovery story.** A failed mutation
//!   barrier may leave backend replicas diverged, so it **poisons**
//!   the queue: everything queued resolves
//!   [`AdmissionError::Poisoned`], and new submissions are refused
//!   with the same error — but the dispatcher stays alive.
//!   [`AdmissionQueue::recover`] enqueues a recovery barrier that
//!   restores the backend from its last mutation-coherent snapshot
//!   ([`AdmissionBackend::recover_coherence`]; on the sharded backend,
//!   [`ShardedEngine::resync_replicas`]), after which the queue admits
//!   and serves again — a failed mutation is a *rollback no-op*, and
//!   post-recovery results are bit-identical to a fresh stack that
//!   never saw the failed barrier (`tests/prop_faults.rs`).
//!
//! # Streaming serving
//!
//! One consumer thread can drain many producers' tickets through a
//! [`TicketSet`] — the readiness-queue-shaped completion surface built
//! for the wire front-end ([`crate::wire`]):
//!
//! * **Ticket sets.** [`TicketSet::add`] registers an admitted
//!   [`SummaryTicket`] under a caller-chosen `u64` tag (the wire layer
//!   uses the request id). The moment the dispatcher resolves a
//!   watched ticket, its membership lands on the set's shared
//!   condvar'd ready list — [`TicketSet::wait_any`] /
//!   [`TicketSet::wait_any_timeout`] pop resolutions in **completion
//!   order**, and [`TicketSet::poll`] is the non-blocking probe. Every
//!   added ticket is yielded exactly once, as a [`CompletedTicket`]
//!   carrying the tag plus the same outcome pair
//!   [`SummaryTicket::wait_meta`] would have returned — bit-identical
//!   results, same [`DispatchMeta`].
//! * **No-deadlock discipline.** Before blocking, `wait_any` closes
//!   the linger window up to the highest-seq member of each queue it
//!   watches (the same flush-up-to-own-seq rule as a single
//!   [`SummaryTicket::wait`]), so a lingering coalescer can never
//!   deadlock the multiplexed consumer either. A *dropped* set behaves
//!   like shutdown-drain: the member tickets drop, but the dispatcher
//!   still resolves every slot — nothing hangs, nothing leaks.
//! * **Wire framing.** [`crate::wire`] carries versioned request/
//!   response records over any `Read`/`Write` pair in a compact
//!   length-prefixed binary framing (all `f64` params round-trip
//!   bit-exact via `to_bits`, the same fingerprint discipline as the
//!   coalescer's [`CostModelKey`](crate::steiner::CostModelKey)).
//!   Frame layout (all integers little-endian):
//!
//!   | bytes | field | meaning |
//!   |---|---|---|
//!   | 4 | `len: u32` | payload length (version byte onward) |
//!   | 1 | `version: u8` | wire version ([`crate::wire::WIRE_VERSION`]) |
//!   | 1 | `kind: u8` | record kind (summary/mutation request/response) |
//!   | `len − 2` | body | the record's fields, field-by-field |
//!
//!   [`crate::wire::serve_stream`] decodes frames, submits through the
//!   queue, and writes responses back in completion order with
//!   request-id correlation (the id is the ticket-set tag).
//!
//! [`FaultSite::AdmissionDispatch`]: crate::faults::FaultSite::AdmissionDispatch

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use xsum_graph::sync::thread::JoinHandle;
use xsum_graph::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use xsum_graph::{EdgeId, Graph};

use crate::batch::BatchMethod;
use crate::engine::{EngineError, SummaryEngine};
use crate::faults::{FaultInjector, FaultKind, FaultSite};
use crate::input::SummaryInput;
use crate::shard::ShardedEngine;
use crate::summary::Summary;

/// Lock `m`, recovering from poisoning (same discipline as the worker
/// pool: state updates below never unwind mid-update, so poison only
/// means "some other thread panicked", which must not cascade).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs of an [`AdmissionQueue`] (see the module docs for the
/// full contract).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum number of queued (admitted but not yet dispatched)
    /// requests; beyond it [`AdmissionQueue::try_submit`] rejects and
    /// [`AdmissionQueue::submit`] blocks. Clamped to ≥ 1.
    pub queue_bound: usize,
    /// Maximum requests coalesced into one engine batch. Clamped to ≥ 1.
    pub max_batch: usize,
    /// Ticket-count linger window: the dispatcher waits for this many
    /// queued requests before coalescing a batch (`1` = dispatch as
    /// soon as anything is queued). Closed early by flush / drain /
    /// ticket waits / mutation barriers / shutdown, never by a timer.
    pub linger_tickets: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_bound: 1024,
            max_batch: 64,
            linger_tickets: 1,
        }
    }
}

/// Admission-level failures (distinct from [`EngineError`], which is a
/// *serving* failure — carried here as [`AdmissionError::Engine`]).
#[derive(Debug)]
pub enum AdmissionError {
    /// [`AdmissionQueue::try_submit`] found the queue at its bound.
    QueueFull,
    /// The queue no longer admits requests (shut down).
    ShutDown,
    /// The request's wall-clock deadline passed before dispatch, or it
    /// was shed as the least urgent queued work under overload (see
    /// the module-level *Failure semantics*). Either way it never
    /// consumed worker time.
    DeadlineExceeded,
    /// A mutation barrier failed and the queue is poisoned until
    /// [`AdmissionQueue::recover`] restores backend coherence.
    Poisoned,
    /// The serving backend failed this request (worker panic or
    /// injected fault), or a mutation barrier's closure panicked.
    Engine(EngineError),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull => write!(f, "admission queue full"),
            AdmissionError::ShutDown => write!(f, "admission queue shut down"),
            AdmissionError::DeadlineExceeded => {
                write!(f, "deadline exceeded before dispatch (expired or shed)")
            }
            AdmissionError::Poisoned => {
                write!(f, "admission queue poisoned by a failed mutation")
            }
            AdmissionError::Engine(e) => write!(f, "admission backend error: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Queue-depth watermarks for overload behavior; both default to `0` =
/// disabled, in which case the queue behaves exactly as before this
/// layer existed (pinned by the unmodified `tests/prop_admission.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// While more than this many requests are queued, each admission
    /// evicts the least urgent queued request, which resolves
    /// [`AdmissionError::DeadlineExceeded`]. `0` = never shed.
    pub shed_watermark: usize,
    /// While at least this many requests are queued, admissions that
    /// opted into [`DegradePolicy::AllowStFast`] have `Steiner`
    /// downgraded to `SteinerFast`. `0` = never degrade.
    pub degrade_watermark: usize,
}

/// Per-request opt-in to graceful degradation under overload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradePolicy {
    /// Serve exactly the requested method, whatever the queue depth.
    #[default]
    Strict,
    /// Allow `Steiner` (KMB) to be served as `SteinerFast` (Mehlhorn)
    /// while the queue is at or above
    /// [`OverloadPolicy::degrade_watermark`] — the downgrade is
    /// decided at admission, recorded in [`DispatchMeta::degraded`],
    /// and the result is bit-identical to a direct `SteinerFast` call.
    AllowStFast,
}

/// Everything optional about one submission
/// ([`AdmissionQueue::submit_with`]); `default()` is a plain
/// [`AdmissionQueue::submit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Urgency rank: lower dispatches sooner, `None` sorts last (the
    /// PR 4 ordering rank — this never *rejects* work by itself).
    pub deadline: Option<u64>,
    /// Wall-clock expiry: if still queued at this instant, the ticket
    /// resolves [`AdmissionError::DeadlineExceeded`] instead of being
    /// served late. `None` (the default) never consults the clock.
    pub expires_at: Option<Instant>,
    /// Overload degradation opt-in (see [`DegradePolicy`]).
    pub degrade: DegradePolicy,
}

/// Where and how a ticket's request was dispatched — exposed so tests
/// and dashboards can observe coalescing and ordering decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchMeta {
    /// Monotone id of the coalesced batch that served the request
    /// (earlier batches have smaller ids; mutation barriers do not
    /// consume ids). `0` for tickets that never dispatched (shed,
    /// expired, or poisoned).
    pub batch: u64,
    /// How many requests the batch coalesced (`0` if never dispatched).
    pub coalesced: usize,
    /// Whether this request was downgraded `Steiner` → `SteinerFast`
    /// under [`DegradePolicy::AllowStFast`].
    pub degraded: bool,
    /// How many of the batch's requests the backend escalated out of
    /// their home shard (a partitioned [`ShardedEngine`]'s coverage
    /// serves, from [`AdmissionBackend::cross_shard_serves`] deltas).
    /// `0` for full-replica and single-engine backends, and for
    /// tickets that never dispatched.
    pub cross_shard: usize,
}

impl DispatchMeta {
    /// The meta of a ticket that never reached the backend.
    fn unserved() -> Self {
        DispatchMeta {
            batch: 0,
            coalesced: 0,
            degraded: false,
            cross_shard: 0,
        }
    }
}

/// Counters of one [`AdmissionQueue`] (a consistent snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (tickets issued).
    pub submitted: u64,
    /// `try_submit` rejections on a full queue.
    pub rejected: u64,
    /// Tickets resolved with a summary.
    pub completed: u64,
    /// Tickets resolved with an [`EngineError`].
    pub failed: u64,
    /// Coalesced batches dispatched onto the backend.
    pub batches_dispatched: u64,
    /// Largest batch coalesced so far.
    pub max_coalesced: usize,
    /// Mutation barriers applied.
    pub mutations_applied: u64,
    /// Requests admitted while a batch was in flight — the ingestion/
    /// dispatch overlap the queue exists to create (each of these rode
    /// for free behind an already-running batch).
    pub overlap_submissions: u64,
    /// Requests currently queued (admitted, not yet dispatched).
    pub queued: usize,
    /// Requests currently being served by the backend.
    pub in_flight: usize,
    /// Tickets shed under the [`OverloadPolicy::shed_watermark`]
    /// (resolved [`AdmissionError::DeadlineExceeded`], never served —
    /// counted here, not in `failed`, which tracks backend failures).
    pub shed: u64,
    /// Tickets whose [`SubmitOptions::expires_at`] passed before
    /// dispatch (also resolved `DeadlineExceeded`, never served).
    pub expired: u64,
    /// Requests downgraded `Steiner` → `SteinerFast` at admission.
    pub degraded: u64,
    /// Successful [`AdmissionQueue::recover`] barriers applied.
    pub recoveries: u64,
    /// Individual edge-weight updates applied through
    /// [`AdmissionQueue::submit_weight_update`] (counts edges, not
    /// coalesced dispatches).
    pub weight_updates_applied: u64,
    /// Coalesced non-barrier weight-delta dispatches onto the backend.
    pub weight_update_batches: u64,
}

/// The serving tier behind an [`AdmissionQueue`]: anything that can run
/// a coalesced batch, a single summary (the panic-isolation fallback),
/// and a coherent graph mutation. Implemented for
/// `(Graph, SummaryEngine)` via [`AdmissionQueue::for_engine`] and for
/// [`ShardedEngine`] via [`AdmissionQueue::for_sharded`].
pub trait AdmissionBackend: Send + 'static {
    /// Serve one coalesced batch; worker panics surface as `Err`.
    fn run_batch(
        &mut self,
        inputs: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError>;

    /// Serve one request in isolation (the per-ticket fallback after a
    /// batch-level failure).
    fn run_one(
        &mut self,
        input: &SummaryInput,
        method: BatchMethod,
    ) -> Result<Summary, EngineError>;

    /// Apply one graph mutation coherently (every replica, epoch
    /// bump). A panicking closure must surface as `Err`, not unwind;
    /// after an `Err` the backend may be incoherent (replicas
    /// diverged, a graph half-mutated) until
    /// [`AdmissionBackend::recover_coherence`] runs.
    fn mutate_graph(&mut self, f: &mut dyn FnMut(&mut Graph)) -> Result<(), EngineError>;

    /// Apply one coalesced weight-only delta coherently (every replica,
    /// one ledger batch per backend graph). Unlike
    /// [`AdmissionBackend::mutate_graph`] this is not a barrier at the
    /// queue level, but the same failure contract holds: a panic must
    /// surface as `Err`, after which the backend may be incoherent
    /// until [`AdmissionBackend::recover_coherence`] runs.
    fn apply_weight_delta(&mut self, updates: &[(EdgeId, f64)]) -> Result<(), EngineError>;

    /// Restore the backend to its last mutation-coherent state (the
    /// graph as of the most recent successful mutation) after a failed
    /// [`AdmissionBackend::mutate_graph`] — the failed barrier becomes
    /// a rollback no-op.
    fn recover_coherence(&mut self) -> Result<(), EngineError>;

    /// Cumulative count of requests this backend escalated out of
    /// their home shard (a partitioned [`ShardedEngine`]'s coverage
    /// serves). The dispatcher differences this counter around each
    /// batch to fill [`DispatchMeta::cross_shard`]. Backends without a
    /// cross-shard path report a constant `0`.
    fn cross_shard_serves(&self) -> u64 {
        0
    }
}

/// A [`SummaryEngine`] serving an owned graph — the single-engine
/// admission backend.
#[derive(Debug)]
pub struct EngineBackend {
    graph: Graph,
    engine: SummaryEngine,
    /// The last mutation-coherent graph — refreshed after every
    /// successful mutation, restored by `recover_coherence`.
    last_good: Graph,
}

impl EngineBackend {
    /// Backend over `graph` served by `engine`.
    pub fn new(graph: Graph, engine: SummaryEngine) -> Self {
        graph.freeze();
        EngineBackend {
            last_good: graph.clone(),
            graph,
            engine,
        }
    }
}

impl AdmissionBackend for EngineBackend {
    fn run_batch(
        &mut self,
        inputs: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.engine
                .summarize_batch_refs(&self.graph, inputs, method)
        }))
        .map_err(EngineError::from_panic)
    }

    fn run_one(
        &mut self,
        input: &SummaryInput,
        method: BatchMethod,
    ) -> Result<Summary, EngineError> {
        self.engine.try_summarize(&self.graph, input, method)
    }

    fn mutate_graph(&mut self, f: &mut dyn FnMut(&mut Graph)) -> Result<(), EngineError> {
        catch_unwind(AssertUnwindSafe(|| f(&mut self.graph))).map_err(EngineError::from_panic)?;
        self.last_good = self.graph.clone();
        Ok(())
    }

    fn apply_weight_delta(&mut self, updates: &[(EdgeId, f64)]) -> Result<(), EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.graph.apply_delta(updates)))
            .map_err(EngineError::from_panic)?;
        self.last_good = self.graph.clone();
        Ok(())
    }

    fn recover_coherence(&mut self) -> Result<(), EngineError> {
        self.graph = self.last_good.clone();
        self.graph.freeze();
        Ok(())
    }
}

impl AdmissionBackend for ShardedEngine {
    fn run_batch(
        &mut self,
        inputs: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.summarize_batch_refs(inputs, method)
        }))
        .map_err(EngineError::from_panic)
    }

    fn run_one(
        &mut self,
        input: &SummaryInput,
        method: BatchMethod,
    ) -> Result<Summary, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.summarize(input, method)))
            .map_err(EngineError::from_panic)
    }

    fn mutate_graph(&mut self, f: &mut dyn FnMut(&mut Graph)) -> Result<(), EngineError> {
        self.try_mutate(f)
    }

    fn apply_weight_delta(&mut self, updates: &[(EdgeId, f64)]) -> Result<(), EngineError> {
        catch_unwind(AssertUnwindSafe(|| {
            ShardedEngine::apply_weight_delta(self, updates)
        }))
        .map_err(EngineError::from_panic)
    }

    fn recover_coherence(&mut self) -> Result<(), EngineError> {
        self.resync_replicas();
        Ok(())
    }

    fn cross_shard_serves(&self) -> u64 {
        self.partition_stats().1
    }
}

/// A one-shot condvar-backed completion slot.
#[derive(Debug)]
struct Slot<T> {
    value: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            value: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn put(&self, v: T) {
        *lock_recovering(&self.value) = Some(v);
        self.cv.notify_all();
    }

    fn wait(&self) -> T {
        let mut guard = lock_recovering(&self.value);
        loop {
            match guard.take() {
                Some(v) => return v,
                None => {
                    guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

type TicketOutcome = (Result<Summary, AdmissionError>, DispatchMeta);

/// The completion slot behind one [`SummaryTicket`]: the same one-shot
/// condvar slot as [`Slot`], plus an optional *watch* — a registration
/// in a [`TicketSet`]'s shared ready list that fires exactly once when
/// the slot resolves, whichever of resolution and registration happens
/// first.
#[derive(Debug)]
struct TicketSlot {
    value: Mutex<Option<TicketOutcome>>,
    cv: Condvar,
    /// One-shot: consumed by `put` when it resolves a watched slot, or
    /// fired immediately (never stored) by `watch` on an
    /// already-resolved one — the two cases are disjoint under the
    /// `watch` lock, so a member lands on the ready list exactly once.
    watch: Mutex<Option<SetWatch>>,
}

impl TicketSlot {
    fn new() -> Self {
        TicketSlot {
            value: Mutex::new(None),
            cv: Condvar::new(),
            watch: Mutex::new(None),
        }
    }

    fn put(&self, v: TicketOutcome) {
        *lock_recovering(&self.value) = Some(v);
        self.cv.notify_all();
        if let Some(w) = lock_recovering(&self.watch).take() {
            w.fire();
        }
    }

    fn wait(&self) -> TicketOutcome {
        let mut guard = lock_recovering(&self.value);
        loop {
            match guard.take() {
                Some(v) => return v,
                None => {
                    guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Take the value if present, without blocking.
    fn try_take(&self) -> Option<TicketOutcome> {
        lock_recovering(&self.value).take()
    }

    /// [`TicketSlot::wait`] bounded by `timeout`; `None` on timeout
    /// (the value, when it arrives later, stays takeable).
    fn wait_timeout(&self, timeout: Duration) -> Option<TicketOutcome> {
        // xlint: allow(wall-clock-in-dispatcher) — caller-side wait bound;
        // the dispatcher never reads it and linger stays ticket-count based.
        let deadline = Instant::now() + timeout;
        let mut guard = lock_recovering(&self.value);
        loop {
            if let Some(v) = guard.take() {
                return Some(v);
            }
            // xlint: allow(wall-clock-in-dispatcher) — caller-side wait bound
            // re-check between condvar wakes; dispatcher-invisible.
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
    }

    fn is_ready(&self) -> bool {
        lock_recovering(&self.value).is_some()
    }

    /// Register this slot in a set's ready list under `member`. If the
    /// slot already resolved, the membership is pushed immediately;
    /// otherwise [`TicketSlot::put`] pushes it on resolution. Holding
    /// the `watch` lock across the readiness check closes the race
    /// with a concurrent `put`: either `put` finds the stored watch
    /// and fires it, or this call observes the value and fires itself
    /// — never both, never neither.
    fn watch(&self, sink: Arc<ReadySink>, member: u64) {
        let mut watch = lock_recovering(&self.watch);
        let w = SetWatch { sink, member };
        if self.is_ready() {
            drop(watch);
            w.fire();
        } else {
            *watch = Some(w);
        }
    }
}

/// The shared ready list of one [`TicketSet`]: resolved members land
/// here in completion order, and `wait_any` consumers block on the
/// condvar.
#[derive(Debug)]
struct ReadySink {
    ready: Mutex<VecDeque<u64>>,
    cv: Condvar,
}

/// One slot's registration in a [`ReadySink`].
#[derive(Debug)]
struct SetWatch {
    sink: Arc<ReadySink>,
    member: u64,
}

impl SetWatch {
    fn fire(self) {
        lock_recovering(&self.sink.ready).push_back(self.member);
        self.sink.cv.notify_all();
    }
}

/// The completion ticket of one admitted request. Resolve it with
/// [`SummaryTicket::wait`] / [`SummaryTicket::wait_meta`]; waiting
/// flushes the queue up to the ticket's own request, so a lingering
/// coalescer can never deadlock the waiter.
pub struct SummaryTicket {
    slot: Arc<TicketSlot>,
    shared: Arc<QueueShared>,
    seq: u64,
}

impl std::fmt::Debug for SummaryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SummaryTicket")
            .field("seq", &self.seq)
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl SummaryTicket {
    /// Block until the request was served; returns the summary or the
    /// [`AdmissionError`] describing why it wasn't (backend failure,
    /// deadline, or queue poisoning).
    pub fn wait(self) -> Result<Summary, AdmissionError> {
        self.wait_meta().0
    }

    /// [`SummaryTicket::wait`] plus the [`DispatchMeta`] describing the
    /// coalesced batch that served the request.
    pub fn wait_meta(self) -> TicketOutcome {
        self.flush_own_request();
        self.slot.wait()
    }

    /// Non-blocking resolution probe: the outcome if the ticket already
    /// resolved, else the ticket back. Unlike the waiting entry points
    /// this does **not** flush the queue — a pure poll.
    pub fn try_wait(self) -> Result<TicketOutcome, SummaryTicket> {
        match self.slot.try_take() {
            Some(v) => Ok(v),
            None => Err(self),
        }
    }

    /// [`SummaryTicket::wait_meta`] bounded by `timeout`: returns the
    /// ticket back if it did not resolve in time (wait again, poll
    /// [`SummaryTicket::try_wait`], or drop it — the request still
    /// completes either way).
    ///
    /// Keeps the flush-up-to-own-seq discipline of the unbounded wait,
    /// so a timeout can never be caused by the linger window itself:
    /// the dispatcher is already working toward this request while we
    /// block here.
    pub fn wait_timeout(self, timeout: Duration) -> Result<TicketOutcome, SummaryTicket> {
        self.flush_own_request();
        match self.slot.wait_timeout(timeout) {
            Some(v) => Ok(v),
            None => Err(self),
        }
    }

    /// Close the linger window up to and including this request so no
    /// wait on this ticket can deadlock against a lingering coalescer.
    fn flush_own_request(&self) {
        if !self.slot.is_ready() {
            let mut st = lock_recovering(&self.shared.state);
            if st.flush_up_to <= self.seq {
                st.flush_up_to = self.seq + 1;
                drop(st);
                self.shared.work_cv.notify_all();
            }
        }
    }

    /// Non-blocking readiness probe (does not flush the queue).
    pub fn is_ready(&self) -> bool {
        self.slot.is_ready()
    }
}

/// The completion ticket of one
/// [`AdmissionQueue::submit_weight_update`]. Waiting is optional:
/// dropping the ticket makes the update fire-and-forget (it still
/// applies; only the acknowledgement is discarded).
pub struct WeightUpdateTicket {
    done: Arc<Slot<Result<(), EngineError>>>,
}

impl std::fmt::Debug for WeightUpdateTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightUpdateTicket").finish_non_exhaustive()
    }
}

impl WeightUpdateTicket {
    /// Block until the delta was applied (possibly coalesced with
    /// other updates into one backend apply). `Err` means the apply
    /// failed and the queue is poisoned, or the queue was poisoned by
    /// an earlier failure before this update reached the backend.
    pub fn wait(self) -> Result<(), AdmissionError> {
        self.done.wait().map_err(AdmissionError::Engine)
    }
}

/// One resolved member of a [`TicketSet`]: the caller's tag plus the
/// exact outcome pair [`SummaryTicket::wait_meta`] would have returned
/// for the same ticket — results are bit-identical whichever surface
/// resolves them.
#[derive(Debug)]
pub struct CompletedTicket {
    /// The tag the ticket was [`TicketSet::add`]ed under (the wire
    /// layer's request id; tags need not be unique).
    pub tag: u64,
    /// The summary, or the [`AdmissionError`] describing why not.
    pub result: Result<Summary, AdmissionError>,
    /// Where and how the request dispatched.
    pub meta: DispatchMeta,
}

/// Completion multiplexer over [`SummaryTicket`]s: N producers add
/// tickets under caller-chosen tags, one (or more) consumers drain
/// resolutions in **completion order** via [`TicketSet::wait_any`] —
/// the readiness-queue surface of the module-level *Streaming serving*
/// section. Every added ticket is yielded exactly once.
///
/// All methods take `&self`, so a set can be shared by reference
/// across producer and consumer threads without external locking.
///
/// ```
/// use xsum_core::admission::{AdmissionConfig, AdmissionQueue, TicketSet};
/// use xsum_core::render::table1_example;
/// use xsum_core::{BatchMethod, SteinerConfig, SummaryEngine};
///
/// let ex = table1_example();
/// let queue = AdmissionQueue::for_engine(
///     ex.graph.clone(),
///     SummaryEngine::with_threads(2),
///     AdmissionConfig::default(),
/// );
/// let method = BatchMethod::Steiner(SteinerConfig::default());
/// let set = TicketSet::new();
/// for id in 0..4u64 {
///     set.add(id, queue.submit(ex.input(), method).unwrap());
/// }
/// let mut seen = Vec::new();
/// while let Some(done) = set.wait_any() {
///     assert!(done.result.is_ok());
///     seen.push(done.tag);
/// }
/// seen.sort_unstable();
/// assert_eq!(seen, vec![0, 1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct TicketSet {
    sink: Arc<ReadySink>,
    inner: Mutex<SetInner>,
}

#[derive(Debug)]
struct SetInner {
    next_member: u64,
    /// member id → (tag, ticket). The set owns its tickets; a member
    /// leaves the map exactly when its resolution is yielded.
    members: HashMap<u64, (u64, SummaryTicket)>,
}

impl Default for TicketSet {
    fn default() -> Self {
        Self::new()
    }
}

impl TicketSet {
    /// An empty set.
    pub fn new() -> Self {
        TicketSet {
            sink: Arc::new(ReadySink {
                ready: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            }),
            inner: Mutex::new(SetInner {
                next_member: 0,
                members: HashMap::new(),
            }),
        }
    }

    /// Add `ticket` under `tag`. An already-resolved ticket is
    /// immediately ready; tags need not be unique (each membership is
    /// tracked separately).
    pub fn add(&self, tag: u64, ticket: SummaryTicket) {
        let mut inner = lock_recovering(&self.inner);
        let member = inner.next_member;
        inner.next_member += 1;
        // Register the watch *before* releasing `inner`: a concurrent
        // `wait_any` that pops this member blocks on `inner` until the
        // insert below lands, so pop → lookup can never miss.
        ticket.slot.watch(Arc::clone(&self.sink), member);
        inner.members.insert(member, (tag, ticket));
    }

    /// Members whose resolution has not been yielded yet (ready-but-
    /// unclaimed members count).
    pub fn len(&self) -> usize {
        lock_recovering(&self.inner).members.len()
    }

    /// Whether every added ticket has been yielded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking drain probe: the next resolution in completion
    /// order, or `None` if nothing is ready right now. Does not flush
    /// the queue (a pure poll, like [`SummaryTicket::try_wait`]).
    pub fn poll(&self) -> Option<CompletedTicket> {
        loop {
            let member = lock_recovering(&self.sink.ready).pop_front()?;
            let mut inner = lock_recovering(&self.inner);
            if let Some((tag, ticket)) = inner.members.remove(&member) {
                drop(inner);
                let (result, meta) = ticket
                    .slot
                    .try_take()
                    .expect("a member on the ready list has resolved");
                return Some(CompletedTicket { tag, result, meta });
            }
            // A stale entry can only exist if a membership was yielded
            // through another path; skip defensively rather than wedge.
        }
    }

    /// Block until any member resolves and yield it (completion
    /// order); `None` once the set is empty. Before blocking this
    /// flushes the linger window up to every member's own request —
    /// the [`SummaryTicket::wait`] no-deadlock discipline, extended to
    /// the whole set — so a lingering coalescer can never deadlock the
    /// multiplexed consumer.
    pub fn wait_any(&self) -> Option<CompletedTicket> {
        self.wait_inner(None)
    }

    /// [`TicketSet::wait_any`] bounded by `timeout`: `None` on an
    /// empty set *or* when nothing resolved in time (check
    /// [`TicketSet::is_empty`] to tell the two apart; the members stay
    /// in the set and a later wait yields them).
    pub fn wait_any_timeout(&self, timeout: Duration) -> Option<CompletedTicket> {
        // xlint: allow(wall-clock-in-dispatcher) — consumer-side wait bound;
        // the dispatcher never observes the deadline.
        self.wait_inner(Some(Instant::now() + timeout))
    }

    fn wait_inner(&self, deadline: Option<Instant>) -> Option<CompletedTicket> {
        loop {
            if let Some(done) = self.poll() {
                return Some(done);
            }
            {
                let inner = lock_recovering(&self.inner);
                if inner.members.is_empty() {
                    return None;
                }
                // Flush the highest-seq member per distinct queue:
                // `flush_up_to` is a high-water mark, so that one
                // flush covers every lower-seq member of the same
                // queue (a set may multiplex several queues).
                let mut latest: Vec<&SummaryTicket> = Vec::new();
                for (_, ticket) in inner.members.values() {
                    let key = Arc::as_ptr(&ticket.shared);
                    match latest
                        .iter_mut()
                        .find(|t| std::ptr::eq(Arc::as_ptr(&t.shared), key))
                    {
                        Some(t) if t.seq >= ticket.seq => {}
                        Some(t) => *t = ticket,
                        None => latest.push(ticket),
                    }
                }
                for ticket in latest {
                    ticket.flush_own_request();
                }
            }
            // Block on the sink only while it is verifiably empty (the
            // push path needs the same lock, so no wakeup is lost).
            // `inner` is NOT held here: `add` takes `inner` → sink, so
            // holding `inner` across this wait would deadlock a
            // producer.
            let ready = lock_recovering(&self.sink.ready);
            if !ready.is_empty() {
                continue;
            }
            match deadline {
                None => {
                    drop(
                        self.sink
                            .cv
                            .wait(ready)
                            .unwrap_or_else(PoisonError::into_inner),
                    );
                }
                Some(d) => {
                    // xlint: allow(wall-clock-in-dispatcher) — consumer-side
                    // wait bound re-check; dispatcher-invisible.
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    drop(
                        self.sink
                            .cv
                            .wait_timeout(ready, d - now)
                            .unwrap_or_else(PoisonError::into_inner)
                            .0,
                    );
                }
            }
        }
    }
}

/// One queued summary request.
struct PendingRequest {
    seq: u64,
    /// Urgency rank: lower dispatches sooner, `None` sorts last.
    deadline: Option<u64>,
    /// Wall-clock expiry; still-queued requests past it resolve
    /// [`AdmissionError::DeadlineExceeded`] at the next dispatch
    /// decision instead of being served late.
    expires_at: Option<Instant>,
    /// Whether admission downgraded the method under
    /// [`DegradePolicy::AllowStFast`] (`method` already holds the
    /// downgraded method; this flag only feeds [`DispatchMeta`]).
    degraded: bool,
    input: SummaryInput,
    method: BatchMethod,
    slot: Arc<TicketSlot>,
}

impl PendingRequest {
    fn urgency(&self) -> (u64, u64) {
        (self.deadline.unwrap_or(u64::MAX), self.seq)
    }

    fn expired_by(&self, now: Instant) -> bool {
        self.expires_at.is_some_and(|t| t <= now)
    }
}

/// One queued operation, in admission order.
enum QueuedOp {
    Summary(PendingRequest),
    /// A mutation barrier: everything before it serves pre-mutation,
    /// everything after post-mutation.
    Mutate {
        f: Box<dyn FnMut(&mut Graph) + Send>,
        done: Arc<Slot<Result<(), EngineError>>>,
    },
    /// A recovery barrier ([`AdmissionQueue::recover`]): restore
    /// backend coherence and un-poison the queue.
    Recover {
        done: Arc<Slot<Result<(), EngineError>>>,
    },
    /// A non-barrier weight-only delta
    /// ([`AdmissionQueue::submit_weight_update`]): coalesced with every
    /// other update in its segment and dispatched ahead of that
    /// segment's summaries, never across a barrier.
    WeightUpdate {
        updates: Vec<(EdgeId, f64)>,
        done: Arc<Slot<Result<(), EngineError>>>,
    },
}

/// Bit-level compatibility fingerprint for coalescing: two methods
/// coalesce into one engine batch iff their variant and config bits
/// match (the [`f64::to_bits`] discipline of
/// [`CostModelKey`](crate::steiner::CostModelKey), so NaN configs are
/// self-compatible and −0.0 ≠ 0.0).
fn method_fingerprint(m: &BatchMethod) -> (u8, u64, u64, u64) {
    // Exhaustive destructuring on purpose: adding a config field makes
    // this fail to compile instead of being silently excluded from the
    // fingerprint (which would coalesce requests whose configs differ
    // only in the new field — serving them under the wrong config).
    fn st_bits(c: &crate::steiner::SteinerConfig) -> (u64, u64) {
        let crate::steiner::SteinerConfig { lambda, delta } = *c;
        (lambda.to_bits(), delta.to_bits())
    }
    fn pcst_bits(c: &crate::pcst::PcstConfig) -> (u64, u64, u64) {
        let crate::pcst::PcstConfig {
            terminal_prize,
            nonterminal_prize,
            use_edge_weights,
            scope,
            prune,
        } = *c;
        let scope = match scope {
            crate::pcst::PcstScope::UnionOfPaths => 0u64,
            crate::pcst::PcstScope::ExpandedUnion(h) => 1 | ((h as u64) << 2),
            crate::pcst::PcstScope::FullGraph => 2,
        };
        let flags = scope | ((use_edge_weights as u64) << 62) | ((prune as u64) << 63);
        (terminal_prize.to_bits(), nonterminal_prize.to_bits(), flags)
    }
    match m {
        BatchMethod::Steiner(c) => {
            let (l, d) = st_bits(c);
            (0, l, d, 0)
        }
        BatchMethod::SteinerFast(c) => {
            let (l, d) = st_bits(c);
            (1, l, d, 0)
        }
        BatchMethod::Pcst(c) => {
            let (t, n, f) = pcst_bits(c);
            (2, t, n, f)
        }
        BatchMethod::GwPcst(c) => {
            let (t, n, f) = pcst_bits(c);
            (3, t, n, f)
        }
    }
}

struct QueueState {
    queue: VecDeque<QueuedOp>,
    /// Summary requests in `queue` (mutation barriers don't count
    /// against the bound).
    queued_summaries: usize,
    /// Queued summary requests carrying an `expires_at` — the guard
    /// that keeps the zero-expiry path from ever reading the clock.
    expiring: usize,
    next_seq: u64,
    /// Requests with `seq < flush_up_to` dispatch regardless of the
    /// linger window.
    flush_up_to: u64,
    in_flight: usize,
    shutdown: bool,
    /// A mutation barrier failed; the backend may be incoherent. No
    /// admissions until [`AdmissionQueue::recover`] succeeds —
    /// distinct from `shutdown` so the dispatcher stays alive to serve
    /// the recovery barrier.
    poisoned: bool,
    stats: AdmissionStats,
}

struct QueueShared {
    cfg: AdmissionConfig,
    policy: OverloadPolicy,
    /// Deterministic fault injection at the dispatch/mutate seams;
    /// `None` (the default) costs one never-taken branch per dispatch.
    faults: Option<Arc<FaultInjector>>,
    state: Mutex<QueueState>,
    /// The dispatcher waits here for admissions / flushes / shutdown.
    work_cv: Condvar,
    /// Blocking producers wait here for queue room.
    space_cv: Condvar,
    /// `drain` waiters wait here for queue-empty + nothing in flight.
    idle_cv: Condvar,
}

/// The bounded, coalescing admission queue (see module docs).
///
/// All submission methods take `&self`, so one queue can be shared by
/// reference across producer threads (`std::thread::scope`) without any
/// external synchronization.
///
/// ```
/// use xsum_core::admission::{AdmissionConfig, AdmissionQueue};
/// use xsum_core::render::table1_example;
/// use xsum_core::{BatchMethod, SteinerConfig, SummaryEngine};
///
/// let ex = table1_example();
/// let queue = AdmissionQueue::for_engine(
///     ex.graph.clone(),
///     SummaryEngine::with_threads(2),
///     AdmissionConfig::default(),
/// );
/// let method = BatchMethod::Steiner(SteinerConfig::default());
/// let ticket = queue.submit(ex.input(), method).unwrap();
/// let summary = ticket.wait().unwrap();
/// assert_eq!(summary.terminal_coverage(), 1.0);
/// ```
pub struct AdmissionQueue {
    shared: Arc<QueueShared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for AdmissionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("AdmissionQueue")
            .field("config", &self.shared.cfg)
            .field("stats", &stats)
            .finish()
    }
}

impl AdmissionQueue {
    /// A queue over any [`AdmissionBackend`]; the backend moves onto
    /// the dispatcher thread, which owns it for the queue's lifetime.
    pub fn new(backend: impl AdmissionBackend, cfg: AdmissionConfig) -> Self {
        Self::with_policy(backend, cfg, OverloadPolicy::default())
    }

    /// [`AdmissionQueue::new`] with overload watermarks (shedding and
    /// degradation; see [`OverloadPolicy`]).
    pub fn with_policy(
        backend: impl AdmissionBackend,
        cfg: AdmissionConfig,
        policy: OverloadPolicy,
    ) -> Self {
        Self::with_faults(backend, cfg, policy, None)
    }

    /// Fully explicit construction: overload watermarks plus a
    /// deterministic fault injector firing at
    /// [`FaultSite::AdmissionDispatch`] and
    /// [`FaultSite::AdmissionMutate`]. To also chaos the serving
    /// layers below, install the same injector on the backend before
    /// moving it in ([`ShardedEngine::set_fault_injector`],
    /// [`SummaryEngine::set_fault_hook`]).
    pub fn with_faults(
        backend: impl AdmissionBackend,
        cfg: AdmissionConfig,
        policy: OverloadPolicy,
        faults: Option<Arc<FaultInjector>>,
    ) -> Self {
        let cfg = AdmissionConfig {
            queue_bound: cfg.queue_bound.max(1),
            max_batch: cfg.max_batch.max(1),
            linger_tickets: cfg.linger_tickets.max(1),
        };
        let shared = Arc::new(QueueShared {
            cfg,
            policy,
            faults,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                queued_summaries: 0,
                expiring: 0,
                next_seq: 0,
                flush_up_to: 0,
                in_flight: 0,
                shutdown: false,
                poisoned: false,
                stats: AdmissionStats::default(),
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let mut backend = backend;
            xsum_graph::sync::thread::Builder::new()
                .name("xsum-admission".to_string())
                .spawn(move || dispatcher_loop(&shared, &mut backend))
                .expect("spawn admission dispatcher")
        };
        AdmissionQueue {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// A queue serving `graph` through `engine` (see [`EngineBackend`]).
    pub fn for_engine(graph: Graph, engine: SummaryEngine, cfg: AdmissionConfig) -> Self {
        Self::new(EngineBackend::new(graph, engine), cfg)
    }

    /// A queue serving a [`ShardedEngine`] (which owns its replicas'
    /// graphs; mutation barriers go through [`ShardedEngine::mutate`]).
    pub fn for_sharded(sharded: ShardedEngine, cfg: AdmissionConfig) -> Self {
        Self::new(sharded, cfg)
    }

    /// The queue's configuration (as clamped at construction).
    pub fn config(&self) -> AdmissionConfig {
        self.shared.cfg
    }

    /// Admit one request, blocking while the queue is at its bound (a
    /// blocked producer flushes the queue first, so a lingering
    /// dispatcher always makes room). Errors only after shutdown or
    /// while poisoned.
    pub fn submit(
        &self,
        input: SummaryInput,
        method: BatchMethod,
    ) -> Result<SummaryTicket, AdmissionError> {
        self.submit_inner(input, method, SubmitOptions::default(), true)
    }

    /// [`AdmissionQueue::submit`] with a deadline/priority rank: lower
    /// ranks dispatch sooner; unranked requests sort after every ranked
    /// one (FIFO among equals).
    pub fn submit_with_deadline(
        &self,
        input: SummaryInput,
        method: BatchMethod,
        deadline: u64,
    ) -> Result<SummaryTicket, AdmissionError> {
        self.submit_inner(
            input,
            method,
            SubmitOptions {
                deadline: Some(deadline),
                ..SubmitOptions::default()
            },
            true,
        )
    }

    /// Admit one request with the full set of per-request options
    /// (urgency rank, wall-clock expiry, degradation opt-in); blocking
    /// like [`AdmissionQueue::submit`].
    pub fn submit_with(
        &self,
        input: SummaryInput,
        method: BatchMethod,
        opts: SubmitOptions,
    ) -> Result<SummaryTicket, AdmissionError> {
        self.submit_inner(input, method, opts, true)
    }

    /// Non-blocking admission probe: on a full queue returns
    /// [`AdmissionError::QueueFull`] immediately and leaves the queue
    /// untouched (backpressure the producer can observe and shed).
    pub fn try_submit(
        &self,
        input: SummaryInput,
        method: BatchMethod,
    ) -> Result<SummaryTicket, AdmissionError> {
        self.submit_inner(input, method, SubmitOptions::default(), false)
    }

    /// Admit a whole batch request: one ticket per input, admitted in
    /// order (blocking for room like [`AdmissionQueue::submit`]). The
    /// coalescer is free to merge them with other queued requests —
    /// outputs are bit-identical either way.
    pub fn submit_batch(
        &self,
        inputs: Vec<SummaryInput>,
        method: BatchMethod,
    ) -> Result<Vec<SummaryTicket>, AdmissionError> {
        inputs
            .into_iter()
            .map(|input| self.submit(input, method))
            .collect()
    }

    fn submit_inner(
        &self,
        input: SummaryInput,
        method: BatchMethod,
        opts: SubmitOptions,
        block: bool,
    ) -> Result<SummaryTicket, AdmissionError> {
        let mut st = lock_recovering(&self.shared.state);
        loop {
            if st.shutdown {
                return Err(AdmissionError::ShutDown);
            }
            if st.poisoned {
                return Err(AdmissionError::Poisoned);
            }
            if st.queued_summaries < self.shared.cfg.queue_bound {
                break;
            }
            if !block {
                st.stats.rejected += 1;
                return Err(AdmissionError::QueueFull);
            }
            // Full: flush what's queued so the dispatcher frees room
            // even when the linger window is wider than the bound.
            st.flush_up_to = st.next_seq;
            self.shared.work_cv.notify_all();
            st = self
                .shared
                .space_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.stats.submitted += 1;
        let slot = Arc::new(TicketSlot::new());
        let ticket = SummaryTicket {
            slot: Arc::clone(&slot),
            shared: Arc::clone(&self.shared),
            seq,
        };
        // Already past its wall-clock deadline (including time spent
        // blocked for room above): resolve immediately, consuming no
        // queue room and no worker time.
        if let Some(t) = opts.expires_at {
            // xlint: allow(wall-clock-in-dispatcher) — expiry stamp comparison
            // at admission time, opt-in per request; never drives linger.
            if t <= Instant::now() {
                st.stats.expired += 1;
                drop(st);
                slot.put((
                    Err(AdmissionError::DeadlineExceeded),
                    DispatchMeta::unserved(),
                ));
                return Ok(ticket);
            }
        }
        // Overload degradation, decided at admission against the
        // pre-admission depth: the coalescer then fingerprints the
        // *effective* method, so degraded requests batch with native
        // `SteinerFast` traffic.
        let mut method = method;
        let mut degraded = false;
        if self.shared.policy.degrade_watermark > 0
            && opts.degrade == DegradePolicy::AllowStFast
            && st.queued_summaries >= self.shared.policy.degrade_watermark
        {
            if let BatchMethod::Steiner(cfg) = method {
                method = BatchMethod::SteinerFast(cfg);
                degraded = true;
                st.stats.degraded += 1;
            }
        }
        st.queued_summaries += 1;
        if opts.expires_at.is_some() {
            st.expiring += 1;
        }
        if st.in_flight > 0 {
            st.stats.overlap_submissions += 1;
        }
        st.queue.push_back(QueuedOp::Summary(PendingRequest {
            seq,
            deadline: opts.deadline,
            expires_at: opts.expires_at,
            degraded,
            input,
            method,
            slot,
        }));
        // Load shedding: past the watermark, evict the least urgent
        // queued request (possibly the one just admitted) — it
        // resolves `DeadlineExceeded` without ever reaching a worker.
        if self.shared.policy.shed_watermark > 0 {
            let mut shed_any = false;
            while st.queued_summaries > self.shared.policy.shed_watermark {
                let victim = st
                    .queue
                    .iter()
                    .enumerate()
                    .filter_map(|(i, op)| match op {
                        QueuedOp::Summary(r) => Some((r.urgency(), i)),
                        _ => None,
                    })
                    .max()
                    .map(|(_, i)| i);
                let Some(i) = victim else { break };
                let Some(QueuedOp::Summary(r)) = st.queue.remove(i) else {
                    unreachable!("victim index held a summary")
                };
                st.queued_summaries -= 1;
                if r.expires_at.is_some() {
                    st.expiring -= 1;
                }
                st.stats.shed += 1;
                r.slot.put((
                    Err(AdmissionError::DeadlineExceeded),
                    DispatchMeta::unserved(),
                ));
                shed_any = true;
            }
            if shed_any {
                self.shared.space_cv.notify_all();
            }
        }
        drop(st);
        self.shared.work_cv.notify_all();
        Ok(ticket)
    }

    /// Enqueue `f` as a mutation **barrier** and block until it was
    /// applied: requests admitted before it serve the pre-mutation
    /// graph, requests after it the post-mutation graph. If `f`
    /// panics, the panic is returned as [`AdmissionError::Engine`] and
    /// the queue is poisoned (backends may have diverged mid-mutation
    /// — e.g. some shard replicas mutated, some not — so no further
    /// request can be trusted): queued and future tickets fail.
    pub fn mutate(&self, f: impl FnMut(&mut Graph) + Send + 'static) -> Result<(), AdmissionError> {
        let done = Arc::new(Slot::new());
        {
            let mut st = lock_recovering(&self.shared.state);
            if st.shutdown {
                return Err(AdmissionError::ShutDown);
            }
            if st.poisoned {
                return Err(AdmissionError::Poisoned);
            }
            st.queue.push_back(QueuedOp::Mutate {
                f: Box::new(f),
                done: Arc::clone(&done),
            });
        }
        self.shared.work_cv.notify_all();
        done.wait().map_err(AdmissionError::Engine)
    }

    /// Recover a queue poisoned by a failed mutation barrier: restore
    /// the backend to its last mutation-coherent snapshot
    /// ([`AdmissionBackend::recover_coherence`]) and resume admitting.
    /// The failed barrier becomes a rollback no-op — post-recovery
    /// results are bit-identical to a stack that never saw it. On a
    /// healthy queue this is an immediate no-op `Ok`.
    pub fn recover(&self) -> Result<(), AdmissionError> {
        let done = Arc::new(Slot::new());
        {
            let mut st = lock_recovering(&self.shared.state);
            if st.shutdown {
                return Err(AdmissionError::ShutDown);
            }
            if !st.poisoned {
                return Ok(());
            }
            st.queue.push_back(QueuedOp::Recover {
                done: Arc::clone(&done),
            });
        }
        self.shared.work_cv.notify_all();
        done.wait().map_err(AdmissionError::Engine)
    }

    /// Enqueue a weight-only delta **without** a barrier: the updates
    /// are coalesced with every other weight update queued in the same
    /// segment (admission order, later writes to the same edge winning)
    /// and applied through [`AdmissionBackend::apply_weight_delta`]
    /// ahead of that segment's summaries. Unlike
    /// [`AdmissionQueue::mutate`] this returns immediately with a
    /// [`WeightUpdateTicket`]; dropping the ticket makes the update
    /// fire-and-forget. Summaries already queued may serve either side
    /// of the delta; updates never cross a structural barrier in either
    /// direction. A panic while applying poisons the queue exactly like
    /// a failed mutation barrier.
    pub fn submit_weight_update(
        &self,
        updates: Vec<(EdgeId, f64)>,
    ) -> Result<WeightUpdateTicket, AdmissionError> {
        let done = Arc::new(Slot::new());
        {
            let mut st = lock_recovering(&self.shared.state);
            if st.shutdown {
                return Err(AdmissionError::ShutDown);
            }
            if st.poisoned {
                return Err(AdmissionError::Poisoned);
            }
            st.queue.push_back(QueuedOp::WeightUpdate {
                updates,
                done: Arc::clone(&done),
            });
        }
        self.shared.work_cv.notify_all();
        Ok(WeightUpdateTicket { done })
    }

    /// Close the linger window for everything currently queued (without
    /// waiting for it to complete).
    pub fn flush(&self) {
        let mut st = lock_recovering(&self.shared.state);
        st.flush_up_to = st.next_seq;
        drop(st);
        self.shared.work_cv.notify_all();
    }

    /// Flush, then block until the queue is empty and nothing is in
    /// flight — every ticket admitted before this call is resolved.
    pub fn drain(&self) {
        let mut st = lock_recovering(&self.shared.state);
        st.flush_up_to = st.next_seq;
        self.shared.work_cv.notify_all();
        while !st.queue.is_empty() || st.in_flight > 0 {
            st = self
                .shared
                .idle_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stop admitting and let the dispatcher drain what's queued —
    /// every already-issued ticket still resolves (shutdown-drain).
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        let mut st = lock_recovering(&self.shared.state);
        if !st.shutdown {
            st.shutdown = true;
            st.flush_up_to = st.next_seq;
        }
        drop(st);
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
    }

    /// Requests currently queued (admitted, not yet dispatched).
    pub fn queued(&self) -> usize {
        lock_recovering(&self.shared.state).queued_summaries
    }

    /// Requests currently being served by the backend — the admission-
    /// level counterpart of
    /// [`WorkerPool::in_flight`](xsum_graph::WorkerPool::in_flight).
    pub fn in_flight(&self) -> usize {
        lock_recovering(&self.shared.state).in_flight
    }

    /// A consistent snapshot of the queue's counters.
    pub fn stats(&self) -> AdmissionStats {
        let st = lock_recovering(&self.shared.state);
        let mut stats = st.stats;
        stats.queued = st.queued_summaries;
        stats.in_flight = st.in_flight;
        stats
    }
}

impl Drop for AdmissionQueue {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

/// What the dispatcher pulled off the queue for one round.
enum Work {
    Batch {
        reqs: Vec<PendingRequest>,
        batch_id: u64,
    },
    Mutation {
        f: Box<dyn FnMut(&mut Graph) + Send>,
        done: Arc<Slot<Result<(), EngineError>>>,
    },
    Recovery {
        done: Arc<Slot<Result<(), EngineError>>>,
    },
    /// Every weight update drained from the head segment, concatenated
    /// in admission order (so later writes to the same edge win inside
    /// the backend's single ledger batch).
    WeightUpdates {
        updates: Vec<(EdgeId, f64)>,
        dones: Vec<Arc<Slot<Result<(), EngineError>>>>,
    },
}

/// Poison the queue after a failed mutation or weight-delta apply:
/// fail everything queued and refuse new admissions, but keep the
/// dispatcher alive so a `recover` barrier can restore coherence.
/// Callers resolve the failing op's own slot(s) and notify `space_cv`.
fn poison_and_drain(st: &mut QueueState) {
    st.poisoned = true;
    let poisoned: Vec<QueuedOp> = st.queue.drain(..).collect();
    st.queued_summaries = 0;
    st.expiring = 0;
    for op in poisoned {
        match op {
            QueuedOp::Summary(req) => {
                st.stats.failed += 1;
                req.slot
                    .put((Err(AdmissionError::Poisoned), DispatchMeta::unserved()));
            }
            QueuedOp::Mutate { done, .. } | QueuedOp::WeightUpdate { done, .. } => {
                done.put(Err(EngineError::from_message(
                    "admission queue poisoned by a failed mutation",
                )));
            }
            QueuedOp::Recover { done } => {
                // Can't happen (recover is only admitted while already
                // poisoned) but resolve it anyway: no slot may ever be
                // left unresolved.
                done.put(Err(EngineError::from_message(
                    "admission queue poisoned by a failed mutation",
                )));
            }
        }
    }
}

/// Draw one decision at `site`: `Ok(())` to proceed (sleeping through
/// any injected delay), or the injected error.
fn draw_fault(shared: &QueueShared, site: FaultSite, what: &str) -> Result<(), EngineError> {
    if let Some(inj) = &shared.faults {
        if let Some(kind) = inj.fire(site) {
            match kind {
                FaultKind::Panic | FaultKind::Transient => {
                    return Err(EngineError::from_message(what));
                }
                FaultKind::Delay => inj.sleep_if_delay(kind),
            }
        }
    }
    Ok(())
}

fn dispatcher_loop(shared: &QueueShared, backend: &mut dyn AdmissionBackend) {
    loop {
        let work = {
            let mut st = lock_recovering(&shared.state);
            loop {
                if let Some(work) = next_work(&mut st, shared) {
                    if let Work::Batch { reqs, .. } = &work {
                        st.queued_summaries -= reqs.len();
                        st.in_flight = reqs.len();
                        st.stats.batches_dispatched += 1;
                        st.stats.max_coalesced = st.stats.max_coalesced.max(reqs.len());
                        // Popping freed queue room.
                        shared.space_cv.notify_all();
                    }
                    break work;
                }
                if st.shutdown && st.queue.is_empty() {
                    return;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        match work {
            Work::Batch { reqs, batch_id } => {
                let method = reqs[0].method;
                let inputs: Vec<&SummaryInput> = reqs.iter().map(|r| &r.input).collect();
                let expiring = reqs.iter().filter(|r| r.expires_at.is_some()).count();
                let cross_before = backend.cross_shard_serves();
                let batch_result = match draw_fault(
                    shared,
                    FaultSite::AdmissionDispatch,
                    "injected admission-dispatch fault",
                ) {
                    Ok(()) => backend.run_batch(&inputs, method),
                    Err(e) => Err(e),
                };
                let mut outcomes: Vec<Result<Summary, EngineError>> = match batch_result {
                    Ok(results) => {
                        debug_assert_eq!(results.len(), reqs.len());
                        results.into_iter().map(Ok).collect()
                    }
                    Err(_) => {
                        // A worker panic (or injected fault) somewhere
                        // in the coalesced batch: retry each member in
                        // isolation so the error lands on exactly the
                        // affected tickets. Under fault injection, one
                        // more bounded retry per request — the
                        // injector's finite budget, not optimism, is
                        // what guarantees this terminates.
                        reqs.iter()
                            .map(|req| {
                                let first = backend.run_one(&req.input, req.method);
                                match first {
                                    Err(_) if shared.faults.is_some() => {
                                        backend.run_one(&req.input, req.method)
                                    }
                                    other => other,
                                }
                            })
                            .collect()
                    }
                };
                // The batch's cross-shard escalations, observed as a
                // counter delta around the dispatch (includes the
                // per-request fallback serves above — they belong to
                // this batch too).
                let meta = DispatchMeta {
                    batch: batch_id,
                    coalesced: reqs.len(),
                    degraded: false,
                    cross_shard: backend.cross_shard_serves().saturating_sub(cross_before) as usize,
                };
                // Count first, then resolve tickets: a waiter that
                // wakes on its slot must already see itself counted.
                let completed = outcomes.iter().filter(|r| r.is_ok()).count() as u64;
                {
                    let mut st = lock_recovering(&shared.state);
                    st.stats.completed += completed;
                    st.stats.failed += reqs.len() as u64 - completed;
                    st.expiring -= expiring;
                }
                for (req, outcome) in reqs.iter().zip(outcomes.drain(..)) {
                    let meta = DispatchMeta {
                        degraded: req.degraded,
                        ..meta
                    };
                    req.slot
                        .put((outcome.map_err(AdmissionError::Engine), meta));
                }
                // Only now clear `in_flight` and wake `drain`: its
                // predicate is `queue empty && in_flight == 0`, so
                // clearing earlier would let a drainer return (even on
                // a spurious wakeup — no notify needed) while tickets
                // were still unresolved. This ordering makes "drain
                // returned" imply "tickets are ready".
                let mut st = lock_recovering(&shared.state);
                st.in_flight = 0;
                if st.queue.is_empty() {
                    shared.idle_cv.notify_all();
                }
            }
            Work::Mutation { mut f, done } => {
                let outcome = match draw_fault(
                    shared,
                    FaultSite::AdmissionMutate,
                    "injected admission-mutation fault",
                ) {
                    // An injected mutation fault poisons *without*
                    // applying the closure — recovery rolls back to
                    // the same snapshot either way.
                    Err(e) => Err(e),
                    Ok(()) => catch_unwind(AssertUnwindSafe(|| backend.mutate_graph(&mut f)))
                        .unwrap_or_else(|payload| Err(EngineError::from_panic(payload))),
                };
                let mut st = lock_recovering(&shared.state);
                match outcome {
                    Ok(()) => {
                        st.stats.mutations_applied += 1;
                        done.put(Ok(()));
                    }
                    Err(e) => {
                        // The backend may be incoherent (replicas
                        // diverged mid-closure): poison.
                        poison_and_drain(&mut st);
                        done.put(Err(e));
                        shared.space_cv.notify_all();
                    }
                }
                if st.queue.is_empty() {
                    shared.idle_cv.notify_all();
                }
            }
            Work::WeightUpdates { updates, dones } => {
                let edges = updates.len() as u64;
                let outcome = match draw_fault(
                    shared,
                    FaultSite::AdmissionMutate,
                    "injected admission-mutation fault",
                ) {
                    // Like a mutation barrier, an injected fault
                    // poisons *without* applying the delta.
                    Err(e) => Err(e),
                    Ok(()) => {
                        catch_unwind(AssertUnwindSafe(|| backend.apply_weight_delta(&updates)))
                            .unwrap_or_else(|payload| Err(EngineError::from_panic(payload)))
                    }
                };
                let mut st = lock_recovering(&shared.state);
                match outcome {
                    Ok(()) => {
                        st.stats.weight_update_batches += 1;
                        st.stats.weight_updates_applied += edges;
                        for done in dones {
                            done.put(Ok(()));
                        }
                    }
                    Err(e) => {
                        // Same contract as a failed barrier: the
                        // backend may have applied the delta to some
                        // replicas and not others.
                        poison_and_drain(&mut st);
                        for done in dones {
                            done.put(Err(e.clone()));
                        }
                        shared.space_cv.notify_all();
                    }
                }
                if st.queue.is_empty() {
                    shared.idle_cv.notify_all();
                }
            }
            Work::Recovery { done } => {
                let outcome = catch_unwind(AssertUnwindSafe(|| backend.recover_coherence()))
                    .unwrap_or_else(|payload| Err(EngineError::from_panic(payload)));
                let mut st = lock_recovering(&shared.state);
                match outcome {
                    Ok(()) => {
                        st.poisoned = false;
                        st.stats.recoveries += 1;
                        done.put(Ok(()));
                        // Producers blocked on space while the queue
                        // poisoned under them should re-check.
                        shared.space_cv.notify_all();
                    }
                    Err(e) => done.put(Err(e)),
                }
                if st.queue.is_empty() {
                    shared.idle_cv.notify_all();
                }
            }
        }
    }
}

/// Decide the dispatcher's next round under the state lock: a mutation
/// or recovery barrier at the head, a coalesced batch from the head
/// segment once the linger window closes, or nothing yet (`None` →
/// wait). Wall-clock-expired requests are swept out first, so a shed
/// or expired ticket never consumes dispatcher time.
fn next_work(st: &mut QueueState, shared: &QueueShared) -> Option<Work> {
    let cfg = &shared.cfg;
    if st.expiring > 0 && !st.queue.is_empty() {
        // One clock read per sweep; the zero-expiry path (every test
        // and workload predating wall-clock deadlines) never gets
        // here, keeping dispatch order bit-identical for them.
        // xlint: allow(wall-clock-in-dispatcher) — expiry sweep over opt-in
        // expires_at stamps, gated on expiring > 0; linger stays ticket-count.
        let now = Instant::now();
        let mut kept: VecDeque<QueuedOp> = VecDeque::with_capacity(st.queue.len());
        let mut dropped = 0usize;
        for op in st.queue.drain(..) {
            match op {
                QueuedOp::Summary(r) if r.expired_by(now) => {
                    st.expiring -= 1;
                    st.queued_summaries -= 1;
                    st.stats.expired += 1;
                    dropped += 1;
                    r.slot.put((
                        Err(AdmissionError::DeadlineExceeded),
                        DispatchMeta::unserved(),
                    ));
                }
                other => kept.push_back(other),
            }
        }
        st.queue = kept;
        if dropped > 0 {
            shared.space_cv.notify_all();
        }
    }
    if st.queue.is_empty() {
        return None;
    }
    match st.queue.front() {
        Some(QueuedOp::Mutate { .. }) => match st.queue.pop_front() {
            Some(QueuedOp::Mutate { f, done }) => return Some(Work::Mutation { f, done }),
            _ => unreachable!("front() said Mutate"),
        },
        Some(QueuedOp::Recover { .. }) => match st.queue.pop_front() {
            Some(QueuedOp::Recover { done }) => return Some(Work::Recovery { done }),
            _ => unreachable!("front() said Recover"),
        },
        _ => {}
    }
    // Weight updates dispatch ahead of their segment's summaries, all
    // of them coalesced into one backend apply (admission order, so
    // later writes to the same edge win). The drain never crosses a
    // mutation/recovery barrier: a structural mutation may renumber
    // edges, so an update queued behind one must wait for it.
    let head_end = st
        .queue
        .iter()
        .position(|op| matches!(op, QueuedOp::Mutate { .. } | QueuedOp::Recover { .. }))
        .unwrap_or(st.queue.len());
    if st
        .queue
        .iter()
        .take(head_end)
        .any(|op| matches!(op, QueuedOp::WeightUpdate { .. }))
    {
        let mut updates = Vec::new();
        let mut dones = Vec::new();
        let mut rest: VecDeque<QueuedOp> = VecDeque::with_capacity(st.queue.len());
        for (i, op) in st.queue.drain(..).enumerate() {
            match op {
                QueuedOp::WeightUpdate { updates: u, done } if i < head_end => {
                    updates.extend(u);
                    dones.push(done);
                }
                other => rest.push_back(other),
            }
        }
        st.queue = rest;
        return Some(Work::WeightUpdates { updates, dones });
    }
    // The head segment: contiguous summary requests before the next
    // barrier (coalescing never crosses a mutation or recovery).
    let barrier = st
        .queue
        .iter()
        .position(|op| !matches!(op, QueuedOp::Summary(_)));
    let seg_end = barrier.unwrap_or(st.queue.len());
    let segment = || {
        st.queue.iter().take(seg_end).map(|op| match op {
            QueuedOp::Summary(r) => r,
            _ => unreachable!("segment precedes the barrier"),
        })
    };
    let ready = st.shutdown
        || barrier.is_some() // a waiting barrier closes the window
        || seg_end >= cfg.linger_tickets
        || segment().any(|r| r.seq < st.flush_up_to);
    if !ready {
        return None;
    }
    // Leader = most urgent request; coalesce method-compatible
    // requests behind it in urgency order, up to max_batch.
    let leader_fp = {
        let leader = segment()
            .min_by_key(|r| r.urgency())
            .expect("non-empty segment");
        method_fingerprint(&leader.method)
    };
    let mut picked: Vec<(u64, u64, u64)> = segment()
        .filter(|r| method_fingerprint(&r.method) == leader_fp)
        .map(|r| {
            let (d, s) = r.urgency();
            (d, s, r.seq)
        })
        .collect();
    picked.sort_unstable();
    picked.truncate(cfg.max_batch);
    let chosen: std::collections::HashSet<u64> = picked.iter().map(|&(_, _, seq)| seq).collect();

    // Extract the chosen requests (in urgency order) from the queue.
    let mut taken: Vec<PendingRequest> = Vec::with_capacity(chosen.len());
    let mut rest: VecDeque<QueuedOp> = VecDeque::with_capacity(st.queue.len());
    for op in st.queue.drain(..) {
        match op {
            QueuedOp::Summary(r) if chosen.contains(&r.seq) => taken.push(r),
            other => rest.push_back(other),
        }
    }
    st.queue = rest;
    taken.sort_unstable_by_key(|r| r.urgency());
    Some(Work::Batch {
        reqs: taken,
        // The caller increments `batches_dispatched` right after; the
        // id tickets see is that post-increment dispatch ordinal.
        batch_id: st.stats.batches_dispatched + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcst::PcstConfig;
    use crate::render::table1_example;
    use crate::steiner::SteinerConfig;

    fn st_method() -> BatchMethod {
        BatchMethod::Steiner(SteinerConfig::default())
    }

    fn assert_same(a: &Summary, b: &Summary) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.terminals, b.terminals);
        assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
        assert_eq!(a.subgraph.sorted_nodes(), b.subgraph.sorted_nodes());
    }

    #[test]
    fn single_submit_round_trips() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig::default(),
        );
        let got = queue
            .submit(ex.input(), st_method())
            .unwrap()
            .wait()
            .unwrap();
        assert_same(&got, &st_method().run(&ex.graph, &ex.input()));
        let stats = queue.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn linger_coalesces_by_ticket_count() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: 3,
            },
        );
        // Two submissions stay below the linger window.
        let t1 = queue.submit(ex.input(), st_method()).unwrap();
        let t2 = queue.submit(ex.input(), st_method()).unwrap();
        // The third closes it; everything coalesces into one batch.
        let t3 = queue.submit(ex.input(), st_method()).unwrap();
        queue.drain();
        let stats = queue.stats();
        assert_eq!(stats.batches_dispatched, 1, "one coalesced dispatch");
        assert_eq!(stats.max_coalesced, 3);
        for t in [t1, t2, t3] {
            let (res, meta) = t.wait_meta();
            assert_same(&res.unwrap(), &st_method().run(&ex.graph, &ex.input()));
            assert_eq!(meta.coalesced, 3);
            assert_eq!(meta.batch, 1);
        }
    }

    #[test]
    fn ticket_wait_flushes_a_lingering_queue() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX, // never closes on count
            },
        );
        let t = queue.submit(ex.input(), st_method()).unwrap();
        // wait() must flush (not deadlock on the infinite linger).
        assert!(t.wait().is_ok());
    }

    #[test]
    fn deadlines_order_dispatch() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 2,
                linger_tickets: 4,
            },
        );
        // Two unranked requests first, then two urgent ones.
        let slow1 = queue.submit(ex.input(), st_method()).unwrap();
        let slow2 = queue.submit(ex.input(), st_method()).unwrap();
        let fast1 = queue
            .submit_with_deadline(ex.input(), st_method(), 0)
            .unwrap();
        let fast2 = queue
            .submit_with_deadline(ex.input(), st_method(), 1)
            .unwrap();
        queue.drain();
        // max_batch 2: the deadline-ranked pair dispatches first even
        // though it was admitted last.
        let (_, meta_fast1) = fast1.wait_meta();
        let (_, meta_fast2) = fast2.wait_meta();
        let (_, meta_slow1) = slow1.wait_meta();
        let (_, meta_slow2) = slow2.wait_meta();
        assert_eq!(meta_fast1.batch, meta_fast2.batch);
        assert_eq!(meta_slow1.batch, meta_slow2.batch);
        assert!(
            meta_fast1.batch < meta_slow1.batch,
            "deadline-ranked requests must dispatch before unranked ones"
        );
    }

    #[test]
    fn mixed_methods_split_into_compatible_batches() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: 4,
            },
        );
        let pcst = BatchMethod::Pcst(PcstConfig::default());
        let a = queue.submit(ex.input(), st_method()).unwrap();
        let b = queue.submit(ex.input(), pcst).unwrap();
        let c = queue.submit(ex.input(), st_method()).unwrap();
        let d = queue.submit(ex.input(), pcst).unwrap();
        queue.drain();
        let (ra, ma) = a.wait_meta();
        let (rb, mb) = b.wait_meta();
        let (rc, mc) = c.wait_meta();
        let (rd, md) = d.wait_meta();
        assert_eq!(ma.batch, mc.batch, "same method coalesces");
        assert_eq!(mb.batch, md.batch);
        assert_ne!(ma.batch, mb.batch, "methods never share a batch");
        assert_same(&ra.unwrap(), &st_method().run(&ex.graph, &ex.input()));
        assert_same(&rb.unwrap(), &pcst.run(&ex.graph, &ex.input()));
        assert_same(&rc.unwrap(), &st_method().run(&ex.graph, &ex.input()));
        assert_same(&rd.unwrap(), &pcst.run(&ex.graph, &ex.input()));
        assert_eq!(queue.stats().batches_dispatched, 2);
    }

    #[test]
    fn try_submit_backpressure_is_observable_and_recoverable() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 3,
                max_batch: 8,
                linger_tickets: usize::MAX, // hold everything: bound must fill
            },
        );
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(queue.try_submit(ex.input(), st_method()).unwrap());
        }
        assert_eq!(queue.queued(), 3);
        // Full: the probe rejects without side effects.
        match queue.try_submit(ex.input(), st_method()) {
            Err(AdmissionError::QueueFull) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(queue.stats().rejected, 1);
        // Draining resolves the admitted tickets and frees the bound.
        queue.drain();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        queue
            .try_submit(ex.input(), st_method())
            .unwrap()
            .wait()
            .unwrap();
    }

    #[test]
    fn blocking_submit_flushes_past_a_full_queue() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 2,
                max_batch: 4,
                linger_tickets: usize::MAX,
            },
        );
        // 3 blocking submits through a bound of 2: the third must flush
        // and wait for room instead of deadlocking.
        let tickets: Vec<_> = (0..3)
            .map(|_| queue.submit(ex.input(), st_method()).unwrap())
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn mutation_is_a_barrier_between_segments() {
        let ex = table1_example();
        let input = ex.input();
        let method = st_method();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX, // barrier must close the window itself
            },
        );
        let before = queue.submit(input.clone(), method).unwrap();
        let e = xsum_graph::EdgeId(0);
        queue.mutate(move |g| g.set_weight(e, 0.125)).unwrap();
        let after = queue.submit(input.clone(), method).unwrap();

        let mut pre = ex.graph.clone();
        let want_before = method.run(&pre, &input);
        pre.set_weight(e, 0.125);
        let want_after = method.run(&pre, &input);
        assert_same(&before.wait().unwrap(), &want_before);
        assert_same(&after.wait().unwrap(), &want_after);
        assert_eq!(queue.stats().mutations_applied, 1);
    }

    #[test]
    fn panicked_mutation_poisons_the_queue() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX,
            },
        );
        // A request admitted *before* the barrier serves the
        // pre-mutation graph — the barrier flushes it first.
        let pre_barrier = queue.submit(ex.input(), st_method()).unwrap();
        let err = queue.mutate(|_| panic!("bad mutation"));
        assert!(matches!(err, Err(AdmissionError::Engine(_))));
        assert!(pre_barrier.wait().is_ok(), "pre-barrier request serves");
        // After the poisoning the queue no longer admits; a request
        // racing in behind the barrier would instead have resolved to
        // an error ticket (both outcomes are "no silent hang").
        match queue.submit(ex.input(), st_method()) {
            Err(AdmissionError::Poisoned) => {}
            Ok(ticket) => assert!(ticket.wait().is_err()),
            Err(other) => panic!("unexpected admission error: {other:?}"),
        }
        assert!(matches!(
            queue.mutate(|_| {}),
            Err(AdmissionError::Poisoned)
        ));
        // Recovery rolls the backend back to the last coherent
        // snapshot and reopens admission; the rollback makes the
        // failed barrier a no-op, so serving matches the pristine
        // graph.
        queue.recover().unwrap();
        let revived = queue.submit(ex.input(), st_method()).unwrap();
        assert_same(
            &revived.wait().unwrap(),
            &st_method().run(&ex.graph, &ex.input()),
        );
        let stats = queue.stats();
        assert_eq!(stats.recoveries, 1);
        // Recovering a healthy queue is a cheap no-op.
        queue.recover().unwrap();
        assert_eq!(queue.stats().recoveries, 1);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 4,
                linger_tickets: usize::MAX, // held until shutdown flushes
            },
        );
        let tickets: Vec<_> = (0..6)
            .map(|_| queue.submit(ex.input(), st_method()).unwrap())
            .collect();
        queue.shutdown();
        for t in tickets {
            assert_same(&t.wait().unwrap(), &st_method().run(&ex.graph, &ex.input()));
        }
        assert!(matches!(
            queue.submit(ex.input(), st_method()),
            Err(AdmissionError::ShutDown)
        ));
        assert_eq!(queue.stats().completed, 6);
    }

    #[test]
    fn sharded_backend_serves_and_mutates() {
        let ex = table1_example();
        let input = ex.input();
        let method = st_method();
        let sharded = ShardedEngine::with_threads(&ex.graph, 2, 1);
        let queue = AdmissionQueue::for_sharded(sharded, AdmissionConfig::default());
        let got = queue.submit(input.clone(), method).unwrap().wait().unwrap();
        assert_same(&got, &method.run(&ex.graph, &input));
        let e = xsum_graph::EdgeId(0);
        queue.mutate(move |g| g.set_weight(e, 0.25)).unwrap();
        let mut reference = ex.graph.clone();
        reference.set_weight(e, 0.25);
        let got = queue.submit(input.clone(), method).unwrap().wait().unwrap();
        assert_same(&got, &method.run(&reference, &input));
    }

    #[test]
    fn worker_panic_hits_exactly_the_affected_tickets() {
        // Satellite: panic recovery under admission — a poisoned input
        // coalesced with good ones must fail only its own ticket, and
        // requests queued behind the batch still complete.
        let ex = table1_example();
        let input = ex.input();
        let mut bad = input.clone();
        bad.terminals = vec![
            xsum_graph::NodeId(u32::MAX - 2),
            xsum_graph::NodeId(u32::MAX - 1),
        ];
        for threads in [1usize, 2] {
            let queue = AdmissionQueue::for_engine(
                ex.graph.clone(),
                SummaryEngine::with_threads(threads),
                AdmissionConfig {
                    queue_bound: 64,
                    max_batch: 8,
                    linger_tickets: 3, // good + bad + good coalesce together
                },
            );
            let good1 = queue.submit(input.clone(), st_method()).unwrap();
            let poisoned = queue.submit(bad.clone(), st_method()).unwrap();
            let good2 = queue.submit(input.clone(), st_method()).unwrap();
            queue.drain();
            assert_same(&good1.wait().unwrap(), &st_method().run(&ex.graph, &input));
            assert!(poisoned.wait().is_err(), "poisoned ticket must error");
            assert_same(&good2.wait().unwrap(), &st_method().run(&ex.graph, &input));
            // Later traffic is unaffected.
            let later = queue.submit(input.clone(), st_method()).unwrap();
            assert_same(&later.wait().unwrap(), &st_method().run(&ex.graph, &input));
            let stats = queue.stats();
            assert_eq!(stats.failed, 1);
            assert_eq!(stats.completed, 3);
        }
    }

    #[test]
    fn overlap_submissions_are_counted() {
        // Producers submitting while a batch is in flight ride behind
        // it — the stat that shows ingestion/dispatch overlap happens.
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 256,
                max_batch: 4,
                linger_tickets: 1,
            },
        );
        let mut tickets = Vec::new();
        for _ in 0..64 {
            tickets.push(queue.submit(ex.input(), st_method()).unwrap());
        }
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        // Not asserted > 0: a fast backend may clear every batch before
        // the next submit lands. The counter is exercised above and the
        // stats stay internally consistent.
        let stats = queue.stats();
        assert_eq!(stats.completed, 64);
        assert!(stats.overlap_submissions <= stats.submitted);
        assert!(stats.batches_dispatched >= 1);
    }

    #[test]
    fn already_expired_deadline_resolves_without_dispatch() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX,
            },
        );
        let opts = SubmitOptions {
            expires_at: Some(Instant::now() - Duration::from_millis(1)),
            ..Default::default()
        };
        let ticket = queue.submit_with(ex.input(), st_method(), opts).unwrap();
        let (outcome, meta) = ticket.wait_meta();
        assert!(matches!(outcome, Err(AdmissionError::DeadlineExceeded)));
        assert_eq!(meta.coalesced, 0, "expired ticket never reached a batch");
        let stats = queue.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.failed, 0, "expiry is its own counter");
        assert_eq!(stats.batches_dispatched, 0);
        // The queue still serves ordinary traffic.
        assert!(queue
            .submit(ex.input(), st_method())
            .unwrap()
            .wait()
            .is_ok());
    }

    #[test]
    fn queued_request_expires_in_the_sweep() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX, // hold it in the queue past its deadline
            },
        );
        let opts = SubmitOptions {
            expires_at: Some(Instant::now() + Duration::from_millis(5)),
            ..Default::default()
        };
        let doomed = queue.submit_with(ex.input(), st_method(), opts).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // A flush-triggering wait from a later ticket forces the
        // dispatcher to look at the queue; the sweep runs first.
        let fresh = queue.submit(ex.input(), st_method()).unwrap();
        assert!(fresh.wait().is_ok());
        let (outcome, meta) = doomed.wait_meta();
        assert!(matches!(outcome, Err(AdmissionError::DeadlineExceeded)));
        assert_eq!(meta.coalesced, 0);
        assert_eq!(queue.stats().expired, 1);
    }

    #[test]
    fn shed_watermark_drops_lowest_urgency_first() {
        let ex = table1_example();
        let queue = AdmissionQueue::with_policy(
            EngineBackend::new(ex.graph.clone(), SummaryEngine::with_threads(1)),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX,
            },
            OverloadPolicy {
                shed_watermark: 2,
                degrade_watermark: 0,
            },
        );
        // Two ranked requests fit under the watermark; the third,
        // unranked, is itself the lowest-urgency entry and is shed.
        let keep1 = queue
            .submit_with_deadline(ex.input(), st_method(), 1)
            .unwrap();
        let keep2 = queue
            .submit_with_deadline(ex.input(), st_method(), 2)
            .unwrap();
        let shed = queue.submit(ex.input(), st_method()).unwrap();
        let (outcome, meta) = shed.wait_meta();
        assert!(matches!(outcome, Err(AdmissionError::DeadlineExceeded)));
        assert_eq!(meta.coalesced, 0, "shed ticket never consumed a worker");
        assert!(keep1.wait().is_ok());
        assert!(keep2.wait().is_ok());
        let stats = queue.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.expired, 0);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn degrade_policy_downgrades_steiner_under_load() {
        let ex = table1_example();
        let input = ex.input();
        let queue = AdmissionQueue::with_policy(
            EngineBackend::new(ex.graph.clone(), SummaryEngine::with_threads(1)),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX,
            },
            OverloadPolicy {
                shed_watermark: 0,
                degrade_watermark: 1,
            },
        );
        // First submission sees an empty queue: no degradation.
        let strict = queue
            .submit_with(
                input.clone(),
                st_method(),
                SubmitOptions {
                    degrade: DegradePolicy::AllowStFast,
                    ..Default::default()
                },
            )
            .unwrap();
        // Second sees depth 1 >= watermark: downgraded to ST-fast.
        let degraded = queue
            .submit_with(
                input.clone(),
                st_method(),
                SubmitOptions {
                    degrade: DegradePolicy::AllowStFast,
                    ..Default::default()
                },
            )
            .unwrap();
        // Strict requests are never downgraded regardless of depth.
        let opted_out = queue.submit(input.clone(), st_method()).unwrap();
        let (got_strict, meta_strict) = strict.wait_meta();
        let (got_degraded, meta_degraded) = degraded.wait_meta();
        let (got_opted_out, meta_opted_out) = opted_out.wait_meta();
        assert!(!meta_strict.degraded);
        assert!(meta_degraded.degraded);
        assert!(!meta_opted_out.degraded);
        let want_full = st_method().run(&ex.graph, &input);
        let want_fast = BatchMethod::SteinerFast(SteinerConfig::default()).run(&ex.graph, &input);
        assert_same(&got_strict.unwrap(), &want_full);
        assert_same(&got_degraded.unwrap(), &want_fast);
        assert_same(&got_opted_out.unwrap(), &want_full);
        assert_eq!(queue.stats().degraded, 1);
    }

    #[test]
    fn try_wait_polls_and_wait_timeout_bounds_the_wait() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX, // nothing dispatches on its own
            },
        );
        let held = queue.submit(ex.input(), st_method()).unwrap();
        // Pure poll: the linger window is open, nothing resolved yet,
        // and polling must NOT flush (that's wait's job).
        let held = match held.try_wait() {
            Err(t) => t,
            Ok(_) => panic!("lingering ticket cannot be resolved yet"),
        };
        // A bounded wait flushes (so it cannot deadlock on its own
        // linger window) and then resolves well within the timeout.
        match held.wait_timeout(Duration::from_secs(30)) {
            Ok((outcome, _)) => {
                assert_same(&outcome.unwrap(), &st_method().run(&ex.graph, &ex.input()));
            }
            Err(_) => panic!("flushed ticket must resolve within the timeout"),
        }
        // A resolved ticket polls Ok immediately.
        let done = queue.submit(ex.input(), st_method()).unwrap();
        queue.drain();
        match done.try_wait() {
            Ok((outcome, _)) => assert!(outcome.is_ok()),
            Err(_) => panic!("drained ticket must poll resolved"),
        }
    }

    #[test]
    fn injected_dispatch_faults_keep_every_ticket_resolving() {
        use crate::faults::{FaultInjector, FaultPlan};
        let ex = table1_example();
        let injector = Arc::new(FaultInjector::new(FaultPlan {
            panics: false,
            delays: false,
            rate: 1.0,
            budget: 3,
            ..FaultPlan::seeded(7)
        }));
        let queue = AdmissionQueue::with_faults(
            EngineBackend::new(ex.graph.clone(), SummaryEngine::with_threads(2)),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 4,
                linger_tickets: 1,
            },
            OverloadPolicy::default(),
            Some(Arc::clone(&injector)),
        );
        let tickets: Vec<_> = (0..12)
            .map(|_| queue.submit(ex.input(), st_method()).unwrap())
            .collect();
        let want = st_method().run(&ex.graph, &ex.input());
        for t in tickets {
            // The finite budget plus the bounded per-request retry
            // guarantee every ticket resolves — and once the budget is
            // spent, resolves successfully and bit-identically.
            match t.wait() {
                Ok(got) => assert_same(&got, &want),
                Err(e) => assert!(matches!(e, AdmissionError::Engine(_))),
            }
        }
        assert!(injector.total_injected() <= 3);
        assert_eq!(injector.budget_left(), 0, "rate-1.0 tape spends the budget");
    }

    #[test]
    fn ticket_set_yields_every_member_exactly_once() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig::default(),
        );
        let set = TicketSet::new();
        for tag in 0..8u64 {
            set.add(tag + 100, queue.submit(ex.input(), st_method()).unwrap());
        }
        assert_eq!(set.len(), 8);
        let want = st_method().run(&ex.graph, &ex.input());
        let mut tags = Vec::new();
        while let Some(done) = set.wait_any() {
            assert_same(&done.result.unwrap(), &want);
            assert!(done.meta.batch > 0, "served members carry dispatch meta");
            tags.push(done.tag);
        }
        tags.sort_unstable();
        assert_eq!(tags, (100..108u64).collect::<Vec<_>>());
        assert!(set.is_empty());
        assert!(set.wait_any().is_none(), "an empty set never blocks");
    }

    #[test]
    fn ticket_set_wait_any_flushes_a_lingering_queue() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX, // only the set's flush can close it
            },
        );
        let set = TicketSet::new();
        set.add(1, queue.submit(ex.input(), st_method()).unwrap());
        set.add(2, queue.submit(ex.input(), st_method()).unwrap());
        // wait_any must apply the flush-up-to-own-seq discipline for
        // its members, or this would deadlock on the open window.
        assert!(set.wait_any().unwrap().result.is_ok());
        assert!(set.wait_any().unwrap().result.is_ok());
        assert!(set.wait_any().is_none());
    }

    #[test]
    fn ticket_set_poll_is_pure_and_timeout_bounds_the_wait() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX,
            },
        );
        let set = TicketSet::new();
        set.add(7, queue.submit(ex.input(), st_method()).unwrap());
        // Pure poll: the linger window is open and poll must not flush.
        assert!(set.poll().is_none());
        assert_eq!(set.len(), 1);
        // The bounded wait flushes like the unbounded one, so it
        // resolves well within a generous timeout.
        let done = set
            .wait_any_timeout(Duration::from_secs(30))
            .expect("flushed member resolves in time");
        assert_eq!(done.tag, 7);
        assert!(done.result.is_ok());
        // An already-resolved ticket added later is immediately ready.
        let t = queue.submit(ex.input(), st_method()).unwrap();
        queue.drain();
        assert!(t.is_ready());
        set.add(8, t);
        let done = set.poll().expect("resolved member polls ready");
        assert_eq!(done.tag, 8);
    }

    #[test]
    fn dropped_ticket_set_resolves_like_shutdown_drain() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig::default(),
        );
        {
            let set = TicketSet::new();
            for tag in 0..4u64 {
                set.add(tag, queue.submit(ex.input(), st_method()).unwrap());
            }
            // Dropped with every member outstanding.
        }
        // The dispatcher still resolves every slot: drain returns and
        // the stats account for all four submissions.
        queue.drain();
        let stats = queue.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn ticket_set_single_consumer_drains_concurrent_producers() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 256,
                max_batch: 8,
                linger_tickets: 4,
            },
        );
        let set = TicketSet::new();
        let producers = 4usize;
        let per = 6u64;
        let drained = std::thread::scope(|scope| {
            for p in 0..producers as u64 {
                let (set, queue, ex) = (&set, &queue, &ex);
                scope.spawn(move || {
                    for i in 0..per {
                        set.add(p * per + i, queue.submit(ex.input(), st_method()).unwrap());
                    }
                });
            }
            // One consumer drains everything the producers add; the
            // bounded wait tolerates briefly observing an empty set
            // while producers are still adding.
            let mut got = Vec::new();
            while got.len() < producers * per as usize {
                if let Some(done) = set.wait_any_timeout(Duration::from_millis(50)) {
                    assert!(done.result.is_ok());
                    got.push(done.tag);
                }
            }
            got
        });
        let mut tags = drained;
        tags.sort_unstable();
        let want: Vec<u64> = (0..producers as u64 * per).collect();
        assert_eq!(tags, want, "every tag exactly once");
        assert!(set.is_empty());
    }

    #[test]
    fn weight_update_applies_without_a_barrier() {
        let ex = table1_example();
        let input = ex.input();
        let method = st_method();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig::default(),
        );
        let e = xsum_graph::EdgeId(5); // attribute edge, anchor-safe
        queue
            .submit_weight_update(vec![(e, 0.5)])
            .unwrap()
            .wait()
            .unwrap();
        let mut reference = ex.graph.clone();
        reference.set_weight(e, 0.5);
        let got = queue.submit(input.clone(), method).unwrap().wait().unwrap();
        assert_same(&got, &method.run(&reference, &input));
        let stats = queue.stats();
        assert_eq!(stats.weight_updates_applied, 1);
        assert_eq!(stats.weight_update_batches, 1);
        assert_eq!(stats.mutations_applied, 0, "not a barrier, not a mutation");
    }

    #[test]
    fn queued_weight_updates_coalesce_in_admission_order() {
        let ex = table1_example();
        let input = ex.input();
        let method = st_method();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                // The window never closes on its own, so all three
                // updates are queued together when the dispatcher
                // finally runs — one coalesced backend apply.
                linger_tickets: usize::MAX,
            },
        );
        let a = xsum_graph::EdgeId(5);
        let b = xsum_graph::EdgeId(6);
        let t1 = queue.submit_weight_update(vec![(a, 0.5)]).unwrap();
        let t2 = queue.submit_weight_update(vec![(b, 1.25)]).unwrap();
        // Later write to the same edge wins inside the coalesced batch.
        let t3 = queue.submit_weight_update(vec![(a, 0.75)]).unwrap();
        for t in [t1, t2, t3] {
            t.wait().unwrap();
        }
        let stats = queue.stats();
        assert_eq!(stats.weight_updates_applied, 3, "three edges counted");
        assert_eq!(stats.weight_update_batches, 1, "one coalesced apply");
        let mut reference = ex.graph.clone();
        reference.apply_delta(&[(a, 0.5), (b, 1.25), (a, 0.75)]);
        let got = queue.submit(input.clone(), method).unwrap().wait().unwrap();
        assert_same(&got, &method.run(&reference, &input));
    }

    #[test]
    fn weight_update_waits_behind_a_structural_barrier() {
        let ex = table1_example();
        let input = ex.input();
        let method = st_method();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig::default(),
        );
        // A structural mutation (barrier) queued ahead of the weight
        // update: the update must apply to the post-mutation graph —
        // in particular to the edge id space after the added edge.
        let u = xsum_graph::NodeId(0);
        let v = xsum_graph::NodeId(1);
        let mut reference = ex.graph.clone();
        let new_edge = {
            let mut probe = ex.graph.clone();
            probe.add_edge(u, v, 1.0, xsum_graph::EdgeKind::Interaction)
        };
        queue
            .mutate(move |g| {
                g.add_edge(u, v, 1.0, xsum_graph::EdgeKind::Interaction);
            })
            .unwrap();
        queue
            .submit_weight_update(vec![(new_edge, 2.5)])
            .unwrap()
            .wait()
            .unwrap();
        reference.add_edge(u, v, 1.0, xsum_graph::EdgeKind::Interaction);
        reference.set_weight(new_edge, 2.5);
        let got = queue.submit(input.clone(), method).unwrap().wait().unwrap();
        assert_same(&got, &method.run(&reference, &input));
        let stats = queue.stats();
        assert_eq!(stats.mutations_applied, 1);
        assert_eq!(stats.weight_updates_applied, 1);
    }

    #[test]
    fn failed_weight_update_poisons_like_a_failed_mutation() {
        use crate::faults::{FaultInjector, FaultPlan};
        let ex = table1_example();
        // rate-1.0, budget-1 tape: the first draw — the weight
        // update's AdmissionMutate hook — fires, nothing after it.
        let injector = Arc::new(FaultInjector::new(FaultPlan {
            panics: false,
            delays: false,
            rate: 1.0,
            budget: 1,
            ..FaultPlan::seeded(11)
        }));
        let queue = AdmissionQueue::with_faults(
            EngineBackend::new(ex.graph.clone(), SummaryEngine::with_threads(1)),
            AdmissionConfig::default(),
            OverloadPolicy::default(),
            Some(Arc::clone(&injector)),
        );
        let err = queue
            .submit_weight_update(vec![(xsum_graph::EdgeId(5), 0.5)])
            .unwrap()
            .wait();
        assert!(matches!(err, Err(AdmissionError::Engine(_))));
        // Poisoned exactly like a failed barrier: no new admissions of
        // any kind until recovery.
        assert!(matches!(
            queue.submit_weight_update(vec![(xsum_graph::EdgeId(5), 0.5)]),
            Err(AdmissionError::Poisoned)
        ));
        match queue.submit(ex.input(), st_method()) {
            Err(AdmissionError::Poisoned) => {}
            Ok(t) => assert!(t.wait().is_err()),
            Err(other) => panic!("unexpected admission error: {other:?}"),
        }
        // Recovery rolls back to the last coherent snapshot; the failed
        // update is a no-op and serving matches the pristine graph.
        queue.recover().unwrap();
        let got = queue
            .submit(ex.input(), st_method())
            .unwrap()
            .wait()
            .unwrap();
        assert_same(&got, &st_method().run(&ex.graph, &ex.input()));
        assert_eq!(queue.stats().weight_updates_applied, 0);
    }

    #[test]
    fn sharded_backend_applies_weight_updates_coherently() {
        let ex = table1_example();
        let input = ex.input();
        let method = st_method();
        for shards in [1usize, 2, 4] {
            let sharded = ShardedEngine::with_threads(&ex.graph, shards, 1);
            let queue = AdmissionQueue::for_sharded(sharded, AdmissionConfig::default());
            let e = xsum_graph::EdgeId(5);
            queue
                .submit_weight_update(vec![(e, 0.5)])
                .unwrap()
                .wait()
                .unwrap();
            let mut reference = ex.graph.clone();
            reference.set_weight(e, 0.5);
            let got = queue.submit(input.clone(), method).unwrap().wait().unwrap();
            assert_same(&got, &method.run(&reference, &input));
        }
    }
}
