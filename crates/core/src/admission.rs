//! Async admission: a bounded submission queue with batch coalescing
//! in front of the serving engines.
//!
//! [`SummaryEngine`] and [`ShardedEngine`] are synchronous: a service
//! thread that wants to overlap request ingestion with an in-flight
//! batch would need its own second thread pool, defeating the pinned
//! [`WorkerPool`](xsum_graph::WorkerPool) design. [`AdmissionQueue`]
//! closes that gap with plain std primitives — no external async
//! runtime:
//!
//! ```text
//!  producer threads ──submit()──► bounded queue ──► dispatcher thread
//!       ▲   ▲                     (coalescing,          │  owns the
//!   tickets resolve ◄─────────────  deadlines,          ▼  backend
//!   (condvar slots)                 barriers)     SummaryEngine /
//!                                                 ShardedEngine
//! ```
//!
//! # The coalescing / deadline / backpressure contract
//!
//! * **Coalescing.** Queued single-summary requests with the same
//!   [`BatchMethod`] (compared bit-level on the f64 config params, the
//!   same fingerprint discipline as
//!   [`CostModelKey`](crate::steiner::CostModelKey)) are merged into
//!   one engine batch of at most [`AdmissionConfig::max_batch`]
//!   requests, dispatched onto the backend's pinned pool in a single
//!   wake-up. Because every engine path is bit-identical per input to
//!   the free functions, *any* grouping the coalescer picks produces
//!   outputs bit-identical to one direct
//!   [`SummaryEngine::summarize_batch`] call over the same inputs —
//!   pinned by `tests/prop_admission.rs`.
//! * **Lingering — ticket-count driven, not wall-clock.** The
//!   dispatcher holds off dispatching until
//!   [`AdmissionConfig::linger_tickets`] requests are queued, letting
//!   singles pile into bigger batches. There is deliberately **no
//!   timer**: the linger window closes on ticket count, on an explicit
//!   [`AdmissionQueue::flush`]/[`AdmissionQueue::drain`], on shutdown,
//!   on a mutation barrier, or as soon as any consumer blocks on a
//!   ticket ([`SummaryTicket::wait`] flushes everything up to and
//!   including its own request, so lingering can never deadlock a
//!   waiter). Determinism is the point: tests drive the exact same
//!   dispatch boundaries on every run.
//! * **Deadline / priority ordering.** Each request may carry an
//!   optional deadline rank ([`AdmissionQueue::submit_with_deadline`];
//!   lower dispatches sooner, `None` sorts last). Dispatch picks the
//!   most urgent queued request as the batch leader and coalesces
//!   method-compatible requests in urgency order behind it.
//! * **Backpressure.** At most [`AdmissionConfig::queue_bound`]
//!   requests may be queued. [`AdmissionQueue::try_submit`] is a pure
//!   probe — on a full queue it returns
//!   [`AdmissionError::QueueFull`] without side effects — while the
//!   blocking [`AdmissionQueue::submit`] flushes the queue and waits
//!   for room, so bound < linger cannot deadlock a producer.
//! * **Mutation barriers.** [`AdmissionQueue::mutate`] enqueues a
//!   graph mutation as a **barrier**: every request admitted before it
//!   is served against the pre-mutation graph, every request after it
//!   against the post-mutation graph (a pending barrier also closes
//!   the linger window for the segment in front of it). On the sharded
//!   backend the closure is applied coherently to every replica via
//!   [`ShardedEngine::mutate`].
//! * **Panic isolation.** A worker panic inside a coalesced batch is
//!   caught by the backend (`try_*` paths) and the dispatcher retries
//!   each member of the failed batch individually, so the
//!   [`EngineError`] lands on **exactly the affected tickets**; the
//!   unaffected co-batched requests and everything queued behind them
//!   still complete (the PR 3 dirty-buffer recovery keeps the engine
//!   serviceable).
//! * **Shutdown drains.** [`AdmissionQueue::shutdown`] (and drop)
//!   stops admitting, then the dispatcher drains everything already
//!   queued — accepted tickets always resolve. Submitting afterwards
//!   returns [`AdmissionError::ShutDown`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use xsum_graph::Graph;

use crate::batch::BatchMethod;
use crate::engine::{EngineError, SummaryEngine};
use crate::input::SummaryInput;
use crate::shard::ShardedEngine;
use crate::summary::Summary;

/// Lock `m`, recovering from poisoning (same discipline as the worker
/// pool: state updates below never unwind mid-update, so poison only
/// means "some other thread panicked", which must not cascade).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs of an [`AdmissionQueue`] (see the module docs for the
/// full contract).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum number of queued (admitted but not yet dispatched)
    /// requests; beyond it [`AdmissionQueue::try_submit`] rejects and
    /// [`AdmissionQueue::submit`] blocks. Clamped to ≥ 1.
    pub queue_bound: usize,
    /// Maximum requests coalesced into one engine batch. Clamped to ≥ 1.
    pub max_batch: usize,
    /// Ticket-count linger window: the dispatcher waits for this many
    /// queued requests before coalescing a batch (`1` = dispatch as
    /// soon as anything is queued). Closed early by flush / drain /
    /// ticket waits / mutation barriers / shutdown, never by a timer.
    pub linger_tickets: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_bound: 1024,
            max_batch: 64,
            linger_tickets: 1,
        }
    }
}

/// Admission-level failures (distinct from [`EngineError`], which is a
/// *serving* failure carried inside a resolved ticket).
#[derive(Debug)]
pub enum AdmissionError {
    /// [`AdmissionQueue::try_submit`] found the queue at its bound.
    QueueFull,
    /// The queue no longer admits requests (shut down or poisoned).
    ShutDown,
    /// A mutation barrier's closure panicked (see
    /// [`AdmissionQueue::mutate`]); the queue is poisoned afterwards.
    Engine(EngineError),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull => write!(f, "admission queue full"),
            AdmissionError::ShutDown => write!(f, "admission queue shut down"),
            AdmissionError::Engine(e) => write!(f, "admission backend error: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Where and how a ticket's request was dispatched — exposed so tests
/// and dashboards can observe coalescing and ordering decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchMeta {
    /// Monotone id of the coalesced batch that served the request
    /// (earlier batches have smaller ids; mutation barriers do not
    /// consume ids).
    pub batch: u64,
    /// How many requests the batch coalesced.
    pub coalesced: usize,
}

/// Counters of one [`AdmissionQueue`] (a consistent snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (tickets issued).
    pub submitted: u64,
    /// `try_submit` rejections on a full queue.
    pub rejected: u64,
    /// Tickets resolved with a summary.
    pub completed: u64,
    /// Tickets resolved with an [`EngineError`].
    pub failed: u64,
    /// Coalesced batches dispatched onto the backend.
    pub batches_dispatched: u64,
    /// Largest batch coalesced so far.
    pub max_coalesced: usize,
    /// Mutation barriers applied.
    pub mutations_applied: u64,
    /// Requests admitted while a batch was in flight — the ingestion/
    /// dispatch overlap the queue exists to create (each of these rode
    /// for free behind an already-running batch).
    pub overlap_submissions: u64,
    /// Requests currently queued (admitted, not yet dispatched).
    pub queued: usize,
    /// Requests currently being served by the backend.
    pub in_flight: usize,
}

/// The serving tier behind an [`AdmissionQueue`]: anything that can run
/// a coalesced batch, a single summary (the panic-isolation fallback),
/// and a coherent graph mutation. Implemented for
/// `(Graph, SummaryEngine)` via [`AdmissionQueue::for_engine`] and for
/// [`ShardedEngine`] via [`AdmissionQueue::for_sharded`].
pub trait AdmissionBackend: Send + 'static {
    /// Serve one coalesced batch; worker panics surface as `Err`.
    fn run_batch(
        &mut self,
        inputs: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError>;

    /// Serve one request in isolation (the per-ticket fallback after a
    /// batch-level failure).
    fn run_one(
        &mut self,
        input: &SummaryInput,
        method: BatchMethod,
    ) -> Result<Summary, EngineError>;

    /// Apply one graph mutation coherently (every replica, epoch bump).
    fn mutate_graph(&mut self, f: &mut dyn FnMut(&mut Graph));
}

/// A [`SummaryEngine`] serving an owned graph — the single-engine
/// admission backend.
#[derive(Debug)]
pub struct EngineBackend {
    graph: Graph,
    engine: SummaryEngine,
}

impl EngineBackend {
    /// Backend over `graph` served by `engine`.
    pub fn new(graph: Graph, engine: SummaryEngine) -> Self {
        graph.freeze();
        EngineBackend { graph, engine }
    }
}

impl AdmissionBackend for EngineBackend {
    fn run_batch(
        &mut self,
        inputs: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.engine
                .summarize_batch_refs(&self.graph, inputs, method)
        }))
        .map_err(EngineError::from_panic)
    }

    fn run_one(
        &mut self,
        input: &SummaryInput,
        method: BatchMethod,
    ) -> Result<Summary, EngineError> {
        self.engine.try_summarize(&self.graph, input, method)
    }

    fn mutate_graph(&mut self, f: &mut dyn FnMut(&mut Graph)) {
        f(&mut self.graph);
    }
}

impl AdmissionBackend for ShardedEngine {
    fn run_batch(
        &mut self,
        inputs: &[&SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.summarize_batch_refs(inputs, method)
        }))
        .map_err(EngineError::from_panic)
    }

    fn run_one(
        &mut self,
        input: &SummaryInput,
        method: BatchMethod,
    ) -> Result<Summary, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.summarize(input, method)))
            .map_err(EngineError::from_panic)
    }

    fn mutate_graph(&mut self, f: &mut dyn FnMut(&mut Graph)) {
        self.mutate(|g| f(g));
    }
}

/// A one-shot condvar-backed completion slot.
#[derive(Debug)]
struct Slot<T> {
    value: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            value: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn put(&self, v: T) {
        *lock_recovering(&self.value) = Some(v);
        self.cv.notify_all();
    }

    fn wait(&self) -> T {
        let mut guard = lock_recovering(&self.value);
        loop {
            match guard.take() {
                Some(v) => return v,
                None => {
                    guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn is_ready(&self) -> bool {
        lock_recovering(&self.value).is_some()
    }
}

type TicketSlot = Slot<(Result<Summary, EngineError>, DispatchMeta)>;

/// The completion ticket of one admitted request. Resolve it with
/// [`SummaryTicket::wait`] / [`SummaryTicket::wait_meta`]; waiting
/// flushes the queue up to the ticket's own request, so a lingering
/// coalescer can never deadlock the waiter.
pub struct SummaryTicket {
    slot: Arc<TicketSlot>,
    shared: Arc<QueueShared>,
    seq: u64,
}

impl std::fmt::Debug for SummaryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SummaryTicket")
            .field("seq", &self.seq)
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl SummaryTicket {
    /// Block until the request was served; returns the summary or the
    /// [`EngineError`] of the worker panic that hit this request.
    pub fn wait(self) -> Result<Summary, EngineError> {
        self.wait_meta().0
    }

    /// [`SummaryTicket::wait`] plus the [`DispatchMeta`] describing the
    /// coalesced batch that served the request.
    pub fn wait_meta(self) -> (Result<Summary, EngineError>, DispatchMeta) {
        if !self.slot.is_ready() {
            // Close the linger window up to and including this request.
            let mut st = lock_recovering(&self.shared.state);
            if st.flush_up_to <= self.seq {
                st.flush_up_to = self.seq + 1;
                drop(st);
                self.shared.work_cv.notify_all();
            }
        }
        self.slot.wait()
    }

    /// Non-blocking readiness probe (does not flush the queue).
    pub fn is_ready(&self) -> bool {
        self.slot.is_ready()
    }
}

/// One queued summary request.
struct PendingRequest {
    seq: u64,
    /// Urgency rank: lower dispatches sooner, `None` sorts last.
    deadline: Option<u64>,
    input: SummaryInput,
    method: BatchMethod,
    slot: Arc<TicketSlot>,
}

impl PendingRequest {
    fn urgency(&self) -> (u64, u64) {
        (self.deadline.unwrap_or(u64::MAX), self.seq)
    }
}

/// One queued operation, in admission order.
enum QueuedOp {
    Summary(PendingRequest),
    /// A mutation barrier: everything before it serves pre-mutation,
    /// everything after post-mutation.
    Mutate {
        f: Box<dyn FnMut(&mut Graph) + Send>,
        done: Arc<Slot<Result<(), EngineError>>>,
    },
}

/// Bit-level compatibility fingerprint for coalescing: two methods
/// coalesce into one engine batch iff their variant and config bits
/// match (the [`f64::to_bits`] discipline of
/// [`CostModelKey`](crate::steiner::CostModelKey), so NaN configs are
/// self-compatible and −0.0 ≠ 0.0).
fn method_fingerprint(m: &BatchMethod) -> (u8, u64, u64, u64) {
    // Exhaustive destructuring on purpose: adding a config field makes
    // this fail to compile instead of being silently excluded from the
    // fingerprint (which would coalesce requests whose configs differ
    // only in the new field — serving them under the wrong config).
    fn st_bits(c: &crate::steiner::SteinerConfig) -> (u64, u64) {
        let crate::steiner::SteinerConfig { lambda, delta } = *c;
        (lambda.to_bits(), delta.to_bits())
    }
    fn pcst_bits(c: &crate::pcst::PcstConfig) -> (u64, u64, u64) {
        let crate::pcst::PcstConfig {
            terminal_prize,
            nonterminal_prize,
            use_edge_weights,
            scope,
            prune,
        } = *c;
        let scope = match scope {
            crate::pcst::PcstScope::UnionOfPaths => 0u64,
            crate::pcst::PcstScope::ExpandedUnion(h) => 1 | ((h as u64) << 2),
            crate::pcst::PcstScope::FullGraph => 2,
        };
        let flags = scope | ((use_edge_weights as u64) << 62) | ((prune as u64) << 63);
        (terminal_prize.to_bits(), nonterminal_prize.to_bits(), flags)
    }
    match m {
        BatchMethod::Steiner(c) => {
            let (l, d) = st_bits(c);
            (0, l, d, 0)
        }
        BatchMethod::SteinerFast(c) => {
            let (l, d) = st_bits(c);
            (1, l, d, 0)
        }
        BatchMethod::Pcst(c) => {
            let (t, n, f) = pcst_bits(c);
            (2, t, n, f)
        }
        BatchMethod::GwPcst(c) => {
            let (t, n, f) = pcst_bits(c);
            (3, t, n, f)
        }
    }
}

struct QueueState {
    queue: VecDeque<QueuedOp>,
    /// Summary requests in `queue` (mutation barriers don't count
    /// against the bound).
    queued_summaries: usize,
    next_seq: u64,
    /// Requests with `seq < flush_up_to` dispatch regardless of the
    /// linger window.
    flush_up_to: u64,
    in_flight: usize,
    shutdown: bool,
    stats: AdmissionStats,
}

struct QueueShared {
    cfg: AdmissionConfig,
    state: Mutex<QueueState>,
    /// The dispatcher waits here for admissions / flushes / shutdown.
    work_cv: Condvar,
    /// Blocking producers wait here for queue room.
    space_cv: Condvar,
    /// `drain` waiters wait here for queue-empty + nothing in flight.
    idle_cv: Condvar,
}

/// The bounded, coalescing admission queue (see module docs).
///
/// All submission methods take `&self`, so one queue can be shared by
/// reference across producer threads (`std::thread::scope`) without any
/// external synchronization.
///
/// ```
/// use xsum_core::admission::{AdmissionConfig, AdmissionQueue};
/// use xsum_core::render::table1_example;
/// use xsum_core::{BatchMethod, SteinerConfig, SummaryEngine};
///
/// let ex = table1_example();
/// let queue = AdmissionQueue::for_engine(
///     ex.graph.clone(),
///     SummaryEngine::with_threads(2),
///     AdmissionConfig::default(),
/// );
/// let method = BatchMethod::Steiner(SteinerConfig::default());
/// let ticket = queue.submit(ex.input(), method).unwrap();
/// let summary = ticket.wait().unwrap();
/// assert_eq!(summary.terminal_coverage(), 1.0);
/// ```
pub struct AdmissionQueue {
    shared: Arc<QueueShared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for AdmissionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("AdmissionQueue")
            .field("config", &self.shared.cfg)
            .field("stats", &stats)
            .finish()
    }
}

impl AdmissionQueue {
    /// A queue over any [`AdmissionBackend`]; the backend moves onto
    /// the dispatcher thread, which owns it for the queue's lifetime.
    pub fn new(backend: impl AdmissionBackend, cfg: AdmissionConfig) -> Self {
        let cfg = AdmissionConfig {
            queue_bound: cfg.queue_bound.max(1),
            max_batch: cfg.max_batch.max(1),
            linger_tickets: cfg.linger_tickets.max(1),
        };
        let shared = Arc::new(QueueShared {
            cfg,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                queued_summaries: 0,
                next_seq: 0,
                flush_up_to: 0,
                in_flight: 0,
                shutdown: false,
                stats: AdmissionStats::default(),
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let mut backend = backend;
            std::thread::Builder::new()
                .name("xsum-admission".to_string())
                .spawn(move || dispatcher_loop(&shared, &mut backend))
                .expect("spawn admission dispatcher")
        };
        AdmissionQueue {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// A queue serving `graph` through `engine` (see [`EngineBackend`]).
    pub fn for_engine(graph: Graph, engine: SummaryEngine, cfg: AdmissionConfig) -> Self {
        Self::new(EngineBackend::new(graph, engine), cfg)
    }

    /// A queue serving a [`ShardedEngine`] (which owns its replicas'
    /// graphs; mutation barriers go through [`ShardedEngine::mutate`]).
    pub fn for_sharded(sharded: ShardedEngine, cfg: AdmissionConfig) -> Self {
        Self::new(sharded, cfg)
    }

    /// The queue's configuration (as clamped at construction).
    pub fn config(&self) -> AdmissionConfig {
        self.shared.cfg
    }

    /// Admit one request, blocking while the queue is at its bound (a
    /// blocked producer flushes the queue first, so a lingering
    /// dispatcher always makes room). Errors only after shutdown.
    pub fn submit(
        &self,
        input: SummaryInput,
        method: BatchMethod,
    ) -> Result<SummaryTicket, AdmissionError> {
        self.submit_inner(input, method, None, true)
    }

    /// [`AdmissionQueue::submit`] with a deadline/priority rank: lower
    /// ranks dispatch sooner; unranked requests sort after every ranked
    /// one (FIFO among equals).
    pub fn submit_with_deadline(
        &self,
        input: SummaryInput,
        method: BatchMethod,
        deadline: u64,
    ) -> Result<SummaryTicket, AdmissionError> {
        self.submit_inner(input, method, Some(deadline), true)
    }

    /// Non-blocking admission probe: on a full queue returns
    /// [`AdmissionError::QueueFull`] immediately and leaves the queue
    /// untouched (backpressure the producer can observe and shed).
    pub fn try_submit(
        &self,
        input: SummaryInput,
        method: BatchMethod,
    ) -> Result<SummaryTicket, AdmissionError> {
        self.submit_inner(input, method, None, false)
    }

    /// Admit a whole batch request: one ticket per input, admitted in
    /// order (blocking for room like [`AdmissionQueue::submit`]). The
    /// coalescer is free to merge them with other queued requests —
    /// outputs are bit-identical either way.
    pub fn submit_batch(
        &self,
        inputs: Vec<SummaryInput>,
        method: BatchMethod,
    ) -> Result<Vec<SummaryTicket>, AdmissionError> {
        inputs
            .into_iter()
            .map(|input| self.submit(input, method))
            .collect()
    }

    fn submit_inner(
        &self,
        input: SummaryInput,
        method: BatchMethod,
        deadline: Option<u64>,
        block: bool,
    ) -> Result<SummaryTicket, AdmissionError> {
        let mut st = lock_recovering(&self.shared.state);
        loop {
            if st.shutdown {
                return Err(AdmissionError::ShutDown);
            }
            if st.queued_summaries < self.shared.cfg.queue_bound {
                break;
            }
            if !block {
                st.stats.rejected += 1;
                return Err(AdmissionError::QueueFull);
            }
            // Full: flush what's queued so the dispatcher frees room
            // even when the linger window is wider than the bound.
            st.flush_up_to = st.next_seq;
            self.shared.work_cv.notify_all();
            st = self
                .shared
                .space_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queued_summaries += 1;
        st.stats.submitted += 1;
        if st.in_flight > 0 {
            st.stats.overlap_submissions += 1;
        }
        let slot = Arc::new(TicketSlot::new());
        st.queue.push_back(QueuedOp::Summary(PendingRequest {
            seq,
            deadline,
            input,
            method,
            slot: Arc::clone(&slot),
        }));
        drop(st);
        self.shared.work_cv.notify_all();
        Ok(SummaryTicket {
            slot,
            shared: Arc::clone(&self.shared),
            seq,
        })
    }

    /// Enqueue `f` as a mutation **barrier** and block until it was
    /// applied: requests admitted before it serve the pre-mutation
    /// graph, requests after it the post-mutation graph. If `f`
    /// panics, the panic is returned as [`AdmissionError::Engine`] and
    /// the queue is poisoned (backends may have diverged mid-mutation
    /// — e.g. some shard replicas mutated, some not — so no further
    /// request can be trusted): queued and future tickets fail.
    pub fn mutate(&self, f: impl FnMut(&mut Graph) + Send + 'static) -> Result<(), AdmissionError> {
        let done = Arc::new(Slot::new());
        {
            let mut st = lock_recovering(&self.shared.state);
            if st.shutdown {
                return Err(AdmissionError::ShutDown);
            }
            st.queue.push_back(QueuedOp::Mutate {
                f: Box::new(f),
                done: Arc::clone(&done),
            });
        }
        self.shared.work_cv.notify_all();
        done.wait().map_err(AdmissionError::Engine)
    }

    /// Close the linger window for everything currently queued (without
    /// waiting for it to complete).
    pub fn flush(&self) {
        let mut st = lock_recovering(&self.shared.state);
        st.flush_up_to = st.next_seq;
        drop(st);
        self.shared.work_cv.notify_all();
    }

    /// Flush, then block until the queue is empty and nothing is in
    /// flight — every ticket admitted before this call is resolved.
    pub fn drain(&self) {
        let mut st = lock_recovering(&self.shared.state);
        st.flush_up_to = st.next_seq;
        self.shared.work_cv.notify_all();
        while !st.queue.is_empty() || st.in_flight > 0 {
            st = self
                .shared
                .idle_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stop admitting and let the dispatcher drain what's queued —
    /// every already-issued ticket still resolves (shutdown-drain).
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        let mut st = lock_recovering(&self.shared.state);
        if !st.shutdown {
            st.shutdown = true;
            st.flush_up_to = st.next_seq;
        }
        drop(st);
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
    }

    /// Requests currently queued (admitted, not yet dispatched).
    pub fn queued(&self) -> usize {
        lock_recovering(&self.shared.state).queued_summaries
    }

    /// Requests currently being served by the backend — the admission-
    /// level counterpart of
    /// [`WorkerPool::in_flight`](xsum_graph::WorkerPool::in_flight).
    pub fn in_flight(&self) -> usize {
        lock_recovering(&self.shared.state).in_flight
    }

    /// A consistent snapshot of the queue's counters.
    pub fn stats(&self) -> AdmissionStats {
        let st = lock_recovering(&self.shared.state);
        let mut stats = st.stats;
        stats.queued = st.queued_summaries;
        stats.in_flight = st.in_flight;
        stats
    }
}

impl Drop for AdmissionQueue {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

/// What the dispatcher pulled off the queue for one round.
enum Work {
    Batch {
        reqs: Vec<PendingRequest>,
        batch_id: u64,
    },
    Mutation {
        f: Box<dyn FnMut(&mut Graph) + Send>,
        done: Arc<Slot<Result<(), EngineError>>>,
    },
}

fn dispatcher_loop(shared: &QueueShared, backend: &mut dyn AdmissionBackend) {
    loop {
        let work = {
            let mut st = lock_recovering(&shared.state);
            loop {
                if let Some(work) = next_work(&mut st, &shared.cfg) {
                    if let Work::Batch { reqs, .. } = &work {
                        st.queued_summaries -= reqs.len();
                        st.in_flight = reqs.len();
                        st.stats.batches_dispatched += 1;
                        st.stats.max_coalesced = st.stats.max_coalesced.max(reqs.len());
                        // Popping freed queue room.
                        shared.space_cv.notify_all();
                    }
                    break work;
                }
                if st.shutdown && st.queue.is_empty() {
                    return;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        match work {
            Work::Batch { reqs, batch_id } => {
                let meta = DispatchMeta {
                    batch: batch_id,
                    coalesced: reqs.len(),
                };
                let method = reqs[0].method;
                let inputs: Vec<&SummaryInput> = reqs.iter().map(|r| &r.input).collect();
                let mut outcomes: Vec<Result<Summary, EngineError>> =
                    match backend.run_batch(&inputs, method) {
                        Ok(results) => {
                            debug_assert_eq!(results.len(), reqs.len());
                            results.into_iter().map(Ok).collect()
                        }
                        Err(_) => {
                            // A worker panic somewhere in the coalesced
                            // batch: retry each member in isolation so
                            // the error lands on exactly the affected
                            // tickets.
                            reqs.iter()
                                .map(|req| backend.run_one(&req.input, req.method))
                                .collect()
                        }
                    };
                // Count first, then resolve tickets: a waiter that
                // wakes on its slot must already see itself counted.
                let completed = outcomes.iter().filter(|r| r.is_ok()).count() as u64;
                {
                    let mut st = lock_recovering(&shared.state);
                    st.stats.completed += completed;
                    st.stats.failed += reqs.len() as u64 - completed;
                }
                for (req, outcome) in reqs.iter().zip(outcomes.drain(..)) {
                    req.slot.put((outcome, meta));
                }
                // Only now clear `in_flight` and wake `drain`: its
                // predicate is `queue empty && in_flight == 0`, so
                // clearing earlier would let a drainer return (even on
                // a spurious wakeup — no notify needed) while tickets
                // were still unresolved. This ordering makes "drain
                // returned" imply "tickets are ready".
                let mut st = lock_recovering(&shared.state);
                st.in_flight = 0;
                if st.queue.is_empty() {
                    shared.idle_cv.notify_all();
                }
            }
            Work::Mutation { mut f, done } => {
                let outcome = catch_unwind(AssertUnwindSafe(|| backend.mutate_graph(&mut f)));
                let mut st = lock_recovering(&shared.state);
                match outcome {
                    Ok(()) => {
                        st.stats.mutations_applied += 1;
                        done.put(Ok(()));
                    }
                    Err(payload) => {
                        // Replicas may have diverged mid-closure; no
                        // further output can be trusted. Poison: fail
                        // everything queued, stop admitting.
                        st.shutdown = true;
                        let poisoned: Vec<QueuedOp> = st.queue.drain(..).collect();
                        st.queued_summaries = 0;
                        for op in poisoned {
                            match op {
                                QueuedOp::Summary(req) => {
                                    st.stats.failed += 1;
                                    req.slot.put((
                                        Err(EngineError::from_message(
                                            "admission queue poisoned by a panicked mutation",
                                        )),
                                        DispatchMeta {
                                            batch: 0,
                                            coalesced: 0,
                                        },
                                    ));
                                }
                                QueuedOp::Mutate { done, .. } => {
                                    done.put(Err(EngineError::from_message(
                                        "admission queue poisoned by a panicked mutation",
                                    )));
                                }
                            }
                        }
                        done.put(Err(EngineError::from_panic(payload)));
                        shared.space_cv.notify_all();
                    }
                }
                if st.queue.is_empty() {
                    shared.idle_cv.notify_all();
                }
            }
        }
    }
}

/// Decide the dispatcher's next round under the state lock: a mutation
/// barrier at the head, a coalesced batch from the head segment once
/// the linger window closes, or nothing yet (`None` → wait).
fn next_work(st: &mut QueueState, cfg: &AdmissionConfig) -> Option<Work> {
    if st.queue.is_empty() {
        return None;
    }
    if matches!(st.queue.front(), Some(QueuedOp::Mutate { .. })) {
        match st.queue.pop_front() {
            Some(QueuedOp::Mutate { f, done }) => return Some(Work::Mutation { f, done }),
            _ => unreachable!("front() said Mutate"),
        }
    }
    // The head segment: contiguous summary requests before the next
    // mutation barrier (coalescing never crosses a barrier).
    let barrier = st
        .queue
        .iter()
        .position(|op| matches!(op, QueuedOp::Mutate { .. }));
    let seg_end = barrier.unwrap_or(st.queue.len());
    let segment = || {
        st.queue.iter().take(seg_end).map(|op| match op {
            QueuedOp::Summary(r) => r,
            QueuedOp::Mutate { .. } => unreachable!("segment precedes the barrier"),
        })
    };
    let ready = st.shutdown
        || barrier.is_some() // a waiting barrier closes the window
        || seg_end >= cfg.linger_tickets
        || segment().any(|r| r.seq < st.flush_up_to);
    if !ready {
        return None;
    }
    // Leader = most urgent request; coalesce method-compatible
    // requests behind it in urgency order, up to max_batch.
    let leader_fp = {
        let leader = segment()
            .min_by_key(|r| r.urgency())
            .expect("non-empty segment");
        method_fingerprint(&leader.method)
    };
    let mut picked: Vec<(u64, u64, u64)> = segment()
        .filter(|r| method_fingerprint(&r.method) == leader_fp)
        .map(|r| {
            let (d, s) = r.urgency();
            (d, s, r.seq)
        })
        .collect();
    picked.sort_unstable();
    picked.truncate(cfg.max_batch);
    let chosen: std::collections::HashSet<u64> = picked.iter().map(|&(_, _, seq)| seq).collect();

    // Extract the chosen requests (in urgency order) from the queue.
    let mut taken: Vec<PendingRequest> = Vec::with_capacity(chosen.len());
    let mut rest: VecDeque<QueuedOp> = VecDeque::with_capacity(st.queue.len());
    for op in st.queue.drain(..) {
        match op {
            QueuedOp::Summary(r) if chosen.contains(&r.seq) => taken.push(r),
            other => rest.push_back(other),
        }
    }
    st.queue = rest;
    taken.sort_unstable_by_key(|r| r.urgency());
    Some(Work::Batch {
        reqs: taken,
        // The caller increments `batches_dispatched` right after; the
        // id tickets see is that post-increment dispatch ordinal.
        batch_id: st.stats.batches_dispatched + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcst::PcstConfig;
    use crate::render::table1_example;
    use crate::steiner::SteinerConfig;

    fn st_method() -> BatchMethod {
        BatchMethod::Steiner(SteinerConfig::default())
    }

    fn assert_same(a: &Summary, b: &Summary) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.terminals, b.terminals);
        assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
        assert_eq!(a.subgraph.sorted_nodes(), b.subgraph.sorted_nodes());
    }

    #[test]
    fn single_submit_round_trips() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig::default(),
        );
        let got = queue
            .submit(ex.input(), st_method())
            .unwrap()
            .wait()
            .unwrap();
        assert_same(&got, &st_method().run(&ex.graph, &ex.input()));
        let stats = queue.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn linger_coalesces_by_ticket_count() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: 3,
            },
        );
        // Two submissions stay below the linger window.
        let t1 = queue.submit(ex.input(), st_method()).unwrap();
        let t2 = queue.submit(ex.input(), st_method()).unwrap();
        // The third closes it; everything coalesces into one batch.
        let t3 = queue.submit(ex.input(), st_method()).unwrap();
        queue.drain();
        let stats = queue.stats();
        assert_eq!(stats.batches_dispatched, 1, "one coalesced dispatch");
        assert_eq!(stats.max_coalesced, 3);
        for t in [t1, t2, t3] {
            let (res, meta) = t.wait_meta();
            assert_same(&res.unwrap(), &st_method().run(&ex.graph, &ex.input()));
            assert_eq!(meta.coalesced, 3);
            assert_eq!(meta.batch, 1);
        }
    }

    #[test]
    fn ticket_wait_flushes_a_lingering_queue() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX, // never closes on count
            },
        );
        let t = queue.submit(ex.input(), st_method()).unwrap();
        // wait() must flush (not deadlock on the infinite linger).
        assert!(t.wait().is_ok());
    }

    #[test]
    fn deadlines_order_dispatch() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 2,
                linger_tickets: 4,
            },
        );
        // Two unranked requests first, then two urgent ones.
        let slow1 = queue.submit(ex.input(), st_method()).unwrap();
        let slow2 = queue.submit(ex.input(), st_method()).unwrap();
        let fast1 = queue
            .submit_with_deadline(ex.input(), st_method(), 0)
            .unwrap();
        let fast2 = queue
            .submit_with_deadline(ex.input(), st_method(), 1)
            .unwrap();
        queue.drain();
        // max_batch 2: the deadline-ranked pair dispatches first even
        // though it was admitted last.
        let (_, meta_fast1) = fast1.wait_meta();
        let (_, meta_fast2) = fast2.wait_meta();
        let (_, meta_slow1) = slow1.wait_meta();
        let (_, meta_slow2) = slow2.wait_meta();
        assert_eq!(meta_fast1.batch, meta_fast2.batch);
        assert_eq!(meta_slow1.batch, meta_slow2.batch);
        assert!(
            meta_fast1.batch < meta_slow1.batch,
            "deadline-ranked requests must dispatch before unranked ones"
        );
    }

    #[test]
    fn mixed_methods_split_into_compatible_batches() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: 4,
            },
        );
        let pcst = BatchMethod::Pcst(PcstConfig::default());
        let a = queue.submit(ex.input(), st_method()).unwrap();
        let b = queue.submit(ex.input(), pcst).unwrap();
        let c = queue.submit(ex.input(), st_method()).unwrap();
        let d = queue.submit(ex.input(), pcst).unwrap();
        queue.drain();
        let (ra, ma) = a.wait_meta();
        let (rb, mb) = b.wait_meta();
        let (rc, mc) = c.wait_meta();
        let (rd, md) = d.wait_meta();
        assert_eq!(ma.batch, mc.batch, "same method coalesces");
        assert_eq!(mb.batch, md.batch);
        assert_ne!(ma.batch, mb.batch, "methods never share a batch");
        assert_same(&ra.unwrap(), &st_method().run(&ex.graph, &ex.input()));
        assert_same(&rb.unwrap(), &pcst.run(&ex.graph, &ex.input()));
        assert_same(&rc.unwrap(), &st_method().run(&ex.graph, &ex.input()));
        assert_same(&rd.unwrap(), &pcst.run(&ex.graph, &ex.input()));
        assert_eq!(queue.stats().batches_dispatched, 2);
    }

    #[test]
    fn try_submit_backpressure_is_observable_and_recoverable() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 3,
                max_batch: 8,
                linger_tickets: usize::MAX, // hold everything: bound must fill
            },
        );
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(queue.try_submit(ex.input(), st_method()).unwrap());
        }
        assert_eq!(queue.queued(), 3);
        // Full: the probe rejects without side effects.
        match queue.try_submit(ex.input(), st_method()) {
            Err(AdmissionError::QueueFull) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(queue.stats().rejected, 1);
        // Draining resolves the admitted tickets and frees the bound.
        queue.drain();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        queue
            .try_submit(ex.input(), st_method())
            .unwrap()
            .wait()
            .unwrap();
    }

    #[test]
    fn blocking_submit_flushes_past_a_full_queue() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 2,
                max_batch: 4,
                linger_tickets: usize::MAX,
            },
        );
        // 3 blocking submits through a bound of 2: the third must flush
        // and wait for room instead of deadlocking.
        let tickets: Vec<_> = (0..3)
            .map(|_| queue.submit(ex.input(), st_method()).unwrap())
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn mutation_is_a_barrier_between_segments() {
        let ex = table1_example();
        let input = ex.input();
        let method = st_method();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX, // barrier must close the window itself
            },
        );
        let before = queue.submit(input.clone(), method).unwrap();
        let e = xsum_graph::EdgeId(0);
        queue.mutate(move |g| g.set_weight(e, 0.125)).unwrap();
        let after = queue.submit(input.clone(), method).unwrap();

        let mut pre = ex.graph.clone();
        let want_before = method.run(&pre, &input);
        pre.set_weight(e, 0.125);
        let want_after = method.run(&pre, &input);
        assert_same(&before.wait().unwrap(), &want_before);
        assert_same(&after.wait().unwrap(), &want_after);
        assert_eq!(queue.stats().mutations_applied, 1);
    }

    #[test]
    fn panicked_mutation_poisons_the_queue() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(1),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 8,
                linger_tickets: usize::MAX,
            },
        );
        // A request admitted *before* the barrier serves the
        // pre-mutation graph — the barrier flushes it first.
        let pre_barrier = queue.submit(ex.input(), st_method()).unwrap();
        let err = queue.mutate(|_| panic!("bad mutation"));
        assert!(matches!(err, Err(AdmissionError::Engine(_))));
        assert!(pre_barrier.wait().is_ok(), "pre-barrier request serves");
        // After the poisoning the queue no longer admits; a request
        // racing in behind the barrier would instead have resolved to
        // an error ticket (both outcomes are "no silent hang").
        match queue.submit(ex.input(), st_method()) {
            Err(AdmissionError::ShutDown) => {}
            Ok(ticket) => assert!(ticket.wait().is_err()),
            Err(other) => panic!("unexpected admission error: {other:?}"),
        }
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 64,
                max_batch: 4,
                linger_tickets: usize::MAX, // held until shutdown flushes
            },
        );
        let tickets: Vec<_> = (0..6)
            .map(|_| queue.submit(ex.input(), st_method()).unwrap())
            .collect();
        queue.shutdown();
        for t in tickets {
            assert_same(&t.wait().unwrap(), &st_method().run(&ex.graph, &ex.input()));
        }
        assert!(matches!(
            queue.submit(ex.input(), st_method()),
            Err(AdmissionError::ShutDown)
        ));
        assert_eq!(queue.stats().completed, 6);
    }

    #[test]
    fn sharded_backend_serves_and_mutates() {
        let ex = table1_example();
        let input = ex.input();
        let method = st_method();
        let sharded = ShardedEngine::with_threads(&ex.graph, 2, 1);
        let queue = AdmissionQueue::for_sharded(sharded, AdmissionConfig::default());
        let got = queue.submit(input.clone(), method).unwrap().wait().unwrap();
        assert_same(&got, &method.run(&ex.graph, &input));
        let e = xsum_graph::EdgeId(0);
        queue.mutate(move |g| g.set_weight(e, 0.25)).unwrap();
        let mut reference = ex.graph.clone();
        reference.set_weight(e, 0.25);
        let got = queue.submit(input.clone(), method).unwrap().wait().unwrap();
        assert_same(&got, &method.run(&reference, &input));
    }

    #[test]
    fn worker_panic_hits_exactly_the_affected_tickets() {
        // Satellite: panic recovery under admission — a poisoned input
        // coalesced with good ones must fail only its own ticket, and
        // requests queued behind the batch still complete.
        let ex = table1_example();
        let input = ex.input();
        let mut bad = input.clone();
        bad.terminals = vec![
            xsum_graph::NodeId(u32::MAX - 2),
            xsum_graph::NodeId(u32::MAX - 1),
        ];
        for threads in [1usize, 2] {
            let queue = AdmissionQueue::for_engine(
                ex.graph.clone(),
                SummaryEngine::with_threads(threads),
                AdmissionConfig {
                    queue_bound: 64,
                    max_batch: 8,
                    linger_tickets: 3, // good + bad + good coalesce together
                },
            );
            let good1 = queue.submit(input.clone(), st_method()).unwrap();
            let poisoned = queue.submit(bad.clone(), st_method()).unwrap();
            let good2 = queue.submit(input.clone(), st_method()).unwrap();
            queue.drain();
            assert_same(&good1.wait().unwrap(), &st_method().run(&ex.graph, &input));
            assert!(poisoned.wait().is_err(), "poisoned ticket must error");
            assert_same(&good2.wait().unwrap(), &st_method().run(&ex.graph, &input));
            // Later traffic is unaffected.
            let later = queue.submit(input.clone(), st_method()).unwrap();
            assert_same(&later.wait().unwrap(), &st_method().run(&ex.graph, &input));
            let stats = queue.stats();
            assert_eq!(stats.failed, 1);
            assert_eq!(stats.completed, 3);
        }
    }

    #[test]
    fn overlap_submissions_are_counted() {
        // Producers submitting while a batch is in flight ride behind
        // it — the stat that shows ingestion/dispatch overlap happens.
        let ex = table1_example();
        let queue = AdmissionQueue::for_engine(
            ex.graph.clone(),
            SummaryEngine::with_threads(2),
            AdmissionConfig {
                queue_bound: 256,
                max_batch: 4,
                linger_tickets: 1,
            },
        );
        let mut tickets = Vec::new();
        for _ in 0..64 {
            tickets.push(queue.submit(ex.input(), st_method()).unwrap());
        }
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        // Not asserted > 0: a fast backend may clear every batch before
        // the next submit lands. The counter is exercised above and the
        // stats stay internally consistent.
        let stats = queue.stats();
        assert_eq!(stats.completed, 64);
        assert!(stats.overlap_submissions <= stats.submitted);
        assert!(stats.batches_dispatched >= 1);
    }
}
