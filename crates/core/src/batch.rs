//! Batched summarization: fan a slice of [`SummaryInput`]s across
//! threads.
//!
//! Serving summary explanations to a user base means computing thousands
//! of independent summaries against one shared, frozen knowledge graph —
//! an embarrassingly parallel workload. [`summarize_batch`] distributes
//! inputs over the engine's worker threads ([`xsum_graph::parallel`])
//! with work stealing, so skewed inputs (one giant group summary among
//! many small user-centric ones) still balance.
//!
//! Each worker owns one
//! [`SteinerWorkspace`](crate::steiner::SteinerWorkspace) (plus a
//! private copy of the shared cost-model base) for the duration of the
//! batch: setup is O(workers · |E|) per call, amortized across the
//! batch, after which each further summary runs without touching the
//! allocator for search state. Output order always matches input
//! order, and every method produces bit-identical results to its
//! sequential entry point ([`steiner_summary`] / [`pcst_summary`] /
//! [`gw_pcst_summary`]). Callers issuing many small batches should
//! batch wider instead — worker state does not persist across calls
//! (a persistent serving engine is on the ROADMAP).

use xsum_graph::{num_threads, parallel_map_with, EdgeCosts, EdgeId, Graph};

use crate::gw::gw_pcst_summary;
use crate::input::SummaryInput;
use crate::pcst::{pcst_summary, PcstConfig};
use crate::steiner::{
    steiner_summary, steiner_summary_fast, steiner_tree_fast_with, steiner_tree_with,
    SteinerConfig, SteinerCostModel, SteinerWorkspace,
};
use crate::summary::Summary;

/// Which summarizer a batch runs, with its configuration.
#[derive(Debug, Clone, Copy)]
pub enum BatchMethod {
    /// Algorithm 1 (KMB Steiner tree) with the given config.
    Steiner(SteinerConfig),
    /// The Mehlhorn-accelerated ST variant (same 2-approximation, one
    /// multi-source Dijkstra instead of |T|) — the serving fast path.
    SteinerFast(SteinerConfig),
    /// Algorithm 2 (Prim-style PCST growth) with the given config.
    Pcst(PcstConfig),
    /// The Goemans–Williamson PCST 2-approximation with the given config.
    GwPcst(PcstConfig),
}

impl BatchMethod {
    /// The method label the produced summaries carry.
    pub fn name(&self) -> &'static str {
        match self {
            BatchMethod::Steiner(_) => "ST",
            BatchMethod::SteinerFast(_) => "ST-fast",
            BatchMethod::Pcst(_) => "PCST",
            BatchMethod::GwPcst(_) => "GW-PCST",
        }
    }

    /// Run the configured summarizer on one input, through the same
    /// sequential entry point users call directly.
    #[inline]
    pub fn run(&self, g: &Graph, input: &SummaryInput) -> Summary {
        match self {
            BatchMethod::Steiner(cfg) => steiner_summary(g, input, cfg),
            BatchMethod::SteinerFast(cfg) => steiner_summary_fast(g, input, cfg),
            BatchMethod::Pcst(cfg) => pcst_summary(g, input, cfg),
            BatchMethod::GwPcst(cfg) => gw_pcst_summary(g, input, cfg),
        }
    }
}

/// Summarize every input with `method`, in parallel, preserving order.
///
/// Uses [`num_threads`] workers; see [`summarize_batch_threads`] to pin
/// the worker count (e.g. `1` for a sequential baseline measurement).
pub fn summarize_batch(g: &Graph, inputs: &[SummaryInput], method: BatchMethod) -> Vec<Summary> {
    summarize_batch_threads(g, inputs, method, num_threads())
}

/// Per-worker scratch of the batched ST paths: a private copy of the
/// cost-model base (patched and unpatched around each summary), the
/// touched-edge log, and the full Steiner workspace.
struct StWorker {
    costs: Option<EdgeCosts>,
    touched: Vec<(EdgeId, u32)>,
    ws: SteinerWorkspace,
}

/// [`summarize_batch`] with an explicit worker count (clamped to ≥ 1).
pub fn summarize_batch_threads(
    g: &Graph,
    inputs: &[SummaryInput],
    method: BatchMethod,
    threads: usize,
) -> Vec<Summary> {
    // Freeze the CSR before fanning out so workers never contend on the
    // one-time adjacency build.
    g.freeze();
    let workers = threads.max(1).min(inputs.len()).max(1);
    match method {
        BatchMethod::Steiner(cfg) | BatchMethod::SteinerFast(cfg) => {
            // ST batches amortize the Eq. 1 cost transform through one
            // shared SteinerCostModel: per summary, only the input's own
            // path edges are patched (and later restored) in the
            // worker's private cost table — O(|paths|) instead of the
            // O(|E|) table build the sequential entry point performs.
            // Outputs stay bit-identical to the sequential calls.
            let fast = matches!(method, BatchMethod::SteinerFast(_));
            let label = method.name();
            let model = SteinerCostModel::new(g, &cfg);
            let mut states: Vec<StWorker> = (0..workers)
                .map(|_| {
                    let mut ws = SteinerWorkspace::new();
                    // One level of parallelism only: with several outer
                    // workers each summary's metric closure stays
                    // sequential (no nested thread spawns); a lone
                    // worker inherits the caller's full thread budget,
                    // so `threads = 1` is strictly sequential end to
                    // end.
                    ws.set_parallelism(if workers > 1 { 1 } else { threads.max(1) });
                    StWorker {
                        costs: None,
                        touched: Vec::new(),
                        ws,
                    }
                })
                .collect();
            let model_ref = &model;
            parallel_map_with(&mut states, inputs, move |st, _, input| {
                let costs = st.costs.get_or_insert_with(|| model_ref.fresh_costs());
                model_ref.patch(g, input, costs, &mut st.touched);
                let subgraph = if fast {
                    steiner_tree_fast_with(g, costs, &input.terminals, &mut st.ws)
                } else {
                    steiner_tree_with(g, costs, &input.terminals, &mut st.ws)
                };
                model_ref.unpatch(costs, &st.touched);
                Summary {
                    method: label,
                    scenario: input.scenario,
                    subgraph,
                    terminals: input.terminals.clone(),
                }
            })
        }
        BatchMethod::Pcst(_) | BatchMethod::GwPcst(_) => {
            let mut states = vec![(); workers];
            parallel_map_with(&mut states, inputs, |_, _, input| method.run(g, input))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::SummaryInput;
    use crate::pathfree::{generate_explanations, PathGenConfig};
    use xsum_graph::{EdgeKind, Graph, NodeId, NodeKind};

    /// A small two-community KG with enough structure for distinct
    /// summaries per user.
    fn fixture() -> (Graph, Vec<SummaryInput>) {
        let mut g = Graph::new();
        let users: Vec<NodeId> = (0..6).map(|_| g.add_node(NodeKind::User)).collect();
        let items: Vec<NodeId> = (0..8).map(|_| g.add_node(NodeKind::Item)).collect();
        let ents: Vec<NodeId> = (0..3).map(|_| g.add_node(NodeKind::Entity)).collect();
        for (u, &user) in users.iter().enumerate() {
            for j in 0..3 {
                let item = items[(u + j * 2) % items.len()];
                if g.find_edge(user, item).is_none() {
                    g.add_edge(
                        user,
                        item,
                        1.0 + (u + j) as f64 % 5.0,
                        EdgeKind::Interaction,
                    );
                }
            }
        }
        for (i, &item) in items.iter().enumerate() {
            g.add_edge(item, ents[i % ents.len()], 0.0, EdgeKind::Attribute);
        }
        let inputs: Vec<SummaryInput> = users
            .iter()
            .filter_map(|&u| {
                let recs: Vec<NodeId> = items.iter().copied().take(4).collect();
                let paths = generate_explanations(&g, u, &recs, &PathGenConfig::default());
                (!paths.is_empty()).then(|| SummaryInput::user_centric(u, paths))
            })
            .collect();
        assert!(inputs.len() >= 4, "fixture must produce real inputs");
        (g, inputs)
    }

    fn assert_same(a: &Summary, b: &Summary) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.terminals, b.terminals);
        assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
        assert_eq!(a.subgraph.sorted_nodes(), b.subgraph.sorted_nodes());
    }

    #[test]
    fn batch_matches_sequential_for_all_methods() {
        let (g, inputs) = fixture();
        let methods = [
            BatchMethod::Steiner(SteinerConfig::default()),
            BatchMethod::SteinerFast(SteinerConfig::default()),
            BatchMethod::Pcst(PcstConfig::default()),
            BatchMethod::GwPcst(PcstConfig::default()),
        ];
        for method in methods {
            let batch = summarize_batch(&g, &inputs, method);
            assert_eq!(batch.len(), inputs.len());
            for (input, got) in inputs.iter().zip(&batch) {
                let want = method.run(&g, input);
                assert_same(&want, got);
            }
        }
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let (g, inputs) = fixture();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let seq = summarize_batch_threads(&g, &inputs, method, 1);
        let par = summarize_batch_threads(&g, &inputs, method, 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_same(a, b);
        }
    }

    #[test]
    fn empty_batch() {
        let (g, _) = fixture();
        let out = summarize_batch(&g, &[], BatchMethod::Pcst(PcstConfig::default()));
        assert!(out.is_empty());
    }

    #[test]
    fn method_names() {
        assert_eq!(BatchMethod::Steiner(SteinerConfig::default()).name(), "ST");
        assert_eq!(
            BatchMethod::SteinerFast(SteinerConfig::default()).name(),
            "ST-fast"
        );
        assert_eq!(BatchMethod::Pcst(PcstConfig::default()).name(), "PCST");
        assert_eq!(BatchMethod::GwPcst(PcstConfig::default()).name(), "GW-PCST");
    }

    #[test]
    fn fast_batch_covers_all_terminals() {
        let (g, inputs) = fixture();
        let out = summarize_batch(
            &g,
            &inputs,
            BatchMethod::SteinerFast(SteinerConfig::default()),
        );
        for s in &out {
            assert_eq!(s.method, "ST-fast");
            assert_eq!(s.terminal_coverage(), 1.0);
        }
    }
}
