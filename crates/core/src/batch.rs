//! Batched summarization: fan a slice of [`SummaryInput`]s across
//! threads.
//!
//! Serving summary explanations to a user base means computing thousands
//! of independent summaries against one shared, frozen knowledge graph —
//! an embarrassingly parallel workload. [`summarize_batch`] distributes
//! inputs over the engine's worker threads ([`xsum_graph::parallel`])
//! with work stealing, so skewed inputs (one giant group summary among
//! many small user-centric ones) still balance.
//!
//! Each worker owns one
//! [`SteinerWorkspace`](crate::steiner::SteinerWorkspace) (plus a
//! private copy of the shared cost-model base) for the duration of the
//! batch: setup is O(workers · |E|) per call, amortized across the
//! batch, after which each further summary runs without touching the
//! allocator for search state. Output order always matches input
//! order, and every method produces bit-identical results to its
//! sequential entry point ([`steiner_summary`] / [`pcst_summary`] /
//! [`gw_pcst_summary`]). Since the persistent-engine refactor these
//! free functions are one-shot wrappers over
//! [`SummaryEngine`](crate::engine::SummaryEngine): callers issuing
//! many batches against the same graph should hold an engine instead,
//! which keeps the worker pool, workspaces, and cost-model cache warm
//! across calls.
//!
//! [`steiner_summary`]: crate::steiner_summary
//! [`pcst_summary`]: crate::pcst_summary
//! [`gw_pcst_summary`]: crate::gw_pcst_summary

use xsum_graph::{num_threads, Graph};

use crate::engine::SummaryEngine;
use crate::gw::gw_pcst_summary;
use crate::input::SummaryInput;
use crate::pcst::{pcst_summary, PcstConfig};
use crate::steiner::{steiner_summary, steiner_summary_fast, SteinerConfig};
use crate::summary::Summary;

/// Which summarizer a batch runs, with its configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchMethod {
    /// Algorithm 1 (KMB Steiner tree) with the given config.
    Steiner(SteinerConfig),
    /// The Mehlhorn-accelerated ST variant (same 2-approximation, one
    /// multi-source Dijkstra instead of |T|) — the serving fast path.
    SteinerFast(SteinerConfig),
    /// Algorithm 2 (Prim-style PCST growth) with the given config.
    Pcst(PcstConfig),
    /// The Goemans–Williamson PCST 2-approximation with the given config.
    GwPcst(PcstConfig),
}

impl BatchMethod {
    /// The method label the produced summaries carry.
    pub fn name(&self) -> &'static str {
        match self {
            BatchMethod::Steiner(_) => "ST",
            BatchMethod::SteinerFast(_) => "ST-fast",
            BatchMethod::Pcst(_) => "PCST",
            BatchMethod::GwPcst(_) => "GW-PCST",
        }
    }

    /// Run the configured summarizer on one input, through the same
    /// sequential entry point users call directly.
    #[inline]
    pub fn run(&self, g: &Graph, input: &SummaryInput) -> Summary {
        match self {
            BatchMethod::Steiner(cfg) => steiner_summary(g, input, cfg),
            BatchMethod::SteinerFast(cfg) => steiner_summary_fast(g, input, cfg),
            BatchMethod::Pcst(cfg) => pcst_summary(g, input, cfg),
            BatchMethod::GwPcst(cfg) => gw_pcst_summary(g, input, cfg),
        }
    }
}

/// Summarize every input with `method`, in parallel, preserving order.
///
/// Uses [`num_threads`] workers; see [`summarize_batch_threads`] to pin
/// the worker count (e.g. `1` for a sequential baseline measurement).
pub fn summarize_batch(g: &Graph, inputs: &[SummaryInput], method: BatchMethod) -> Vec<Summary> {
    summarize_batch_threads(g, inputs, method, num_threads())
}

/// [`summarize_batch`] with an explicit worker count (clamped to ≥ 1).
///
/// Spins up a one-shot [`SummaryEngine`] for the call — same worker
/// fan-out, same cost-model amortization, same bit-identical outputs.
/// `threads = 1` stays strictly sequential on the calling thread.
pub fn summarize_batch_threads(
    g: &Graph,
    inputs: &[SummaryInput],
    method: BatchMethod,
    threads: usize,
) -> Vec<Summary> {
    // Size the one-shot pool to the batch (a 2-input batch must not
    // spawn 16 workers), but keep the caller's full thread budget as
    // the lone worker's inner metric-closure fan-out — the pre-engine
    // `summarize_batch` semantics.
    let threads = threads.max(1);
    let workers = threads.min(inputs.len()).max(1);
    SummaryEngine::with_threads_and_budget(workers, threads).summarize_batch(g, inputs, method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::SummaryInput;
    use crate::pathfree::{generate_explanations, PathGenConfig};
    use xsum_graph::{EdgeKind, Graph, NodeId, NodeKind};

    /// A small two-community KG with enough structure for distinct
    /// summaries per user.
    fn fixture() -> (Graph, Vec<SummaryInput>) {
        let mut g = Graph::new();
        let users: Vec<NodeId> = (0..6).map(|_| g.add_node(NodeKind::User)).collect();
        let items: Vec<NodeId> = (0..8).map(|_| g.add_node(NodeKind::Item)).collect();
        let ents: Vec<NodeId> = (0..3).map(|_| g.add_node(NodeKind::Entity)).collect();
        for (u, &user) in users.iter().enumerate() {
            for j in 0..3 {
                let item = items[(u + j * 2) % items.len()];
                if g.find_edge(user, item).is_none() {
                    g.add_edge(
                        user,
                        item,
                        1.0 + (u + j) as f64 % 5.0,
                        EdgeKind::Interaction,
                    );
                }
            }
        }
        for (i, &item) in items.iter().enumerate() {
            g.add_edge(item, ents[i % ents.len()], 0.0, EdgeKind::Attribute);
        }
        let inputs: Vec<SummaryInput> = users
            .iter()
            .filter_map(|&u| {
                let recs: Vec<NodeId> = items.iter().copied().take(4).collect();
                let paths = generate_explanations(&g, u, &recs, &PathGenConfig::default());
                (!paths.is_empty()).then(|| SummaryInput::user_centric(u, paths))
            })
            .collect();
        assert!(inputs.len() >= 4, "fixture must produce real inputs");
        (g, inputs)
    }

    fn assert_same(a: &Summary, b: &Summary) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.terminals, b.terminals);
        assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
        assert_eq!(a.subgraph.sorted_nodes(), b.subgraph.sorted_nodes());
    }

    #[test]
    fn batch_matches_sequential_for_all_methods() {
        let (g, inputs) = fixture();
        let methods = [
            BatchMethod::Steiner(SteinerConfig::default()),
            BatchMethod::SteinerFast(SteinerConfig::default()),
            BatchMethod::Pcst(PcstConfig::default()),
            BatchMethod::GwPcst(PcstConfig::default()),
        ];
        for method in methods {
            let batch = summarize_batch(&g, &inputs, method);
            assert_eq!(batch.len(), inputs.len());
            for (input, got) in inputs.iter().zip(&batch) {
                let want = method.run(&g, input);
                assert_same(&want, got);
            }
        }
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let (g, inputs) = fixture();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let seq = summarize_batch_threads(&g, &inputs, method, 1);
        let par = summarize_batch_threads(&g, &inputs, method, 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_same(a, b);
        }
    }

    #[test]
    fn empty_batch() {
        let (g, _) = fixture();
        let out = summarize_batch(&g, &[], BatchMethod::Pcst(PcstConfig::default()));
        assert!(out.is_empty());
    }

    #[test]
    fn method_names() {
        assert_eq!(BatchMethod::Steiner(SteinerConfig::default()).name(), "ST");
        assert_eq!(
            BatchMethod::SteinerFast(SteinerConfig::default()).name(),
            "ST-fast"
        );
        assert_eq!(BatchMethod::Pcst(PcstConfig::default()).name(), "PCST");
        assert_eq!(BatchMethod::GwPcst(PcstConfig::default()).name(), "GW-PCST");
    }

    #[test]
    fn fast_batch_covers_all_terminals() {
        let (g, inputs) = fixture();
        let out = summarize_batch(
            &g,
            &inputs,
            BatchMethod::SteinerFast(SteinerConfig::default()),
        );
        for s in &out {
            assert_eq!(s.method, "ST-fast");
            assert_eq!(s.terminal_coverage(), 1.0);
        }
    }
}
