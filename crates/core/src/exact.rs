//! Exact Steiner trees via the Dreyfus–Wagner dynamic program.
//!
//! Algorithm 1 is a 2-approximation ("its approximation ratio to the
//! optimal Steiner Tree solution is at most 2", §IV-A citing \[53\]). This
//! module provides the *optimal* solver the guarantee is stated against,
//! so the repository can check the ratio empirically instead of taking it
//! on faith:
//!
//! * property tests assert `cost(KMB) ≤ 2 · cost(exact)` on random
//!   graphs (`tests/prop_summaries.rs`);
//! * the ablation bench reports the measured KMB/exact ratio on real
//!   summarization inputs (`repro ablation`).
//!
//! Dreyfus–Wagner runs in `O(3^q · |V| + 2^q · |V|²)` for `q = |T| − 1`
//! subset terminals, so it is only usable for small terminal sets — which
//! is exactly the user-centric regime (`|T| = k + 1 ≤ 11`). Inputs with
//! more than [`MAX_EXACT_TERMINALS`] terminals or mutually unreachable
//! terminals return `None`.

use xsum_graph::{dijkstra, DijkstraResult, EdgeCosts, Graph, NodeId, Subgraph};

use crate::input::SummaryInput;
use crate::steiner::{steiner_costs, steiner_tree, SteinerConfig};

/// Largest terminal set the exact solver accepts (`3^{q}` growth).
pub const MAX_EXACT_TERMINALS: usize = 14;

/// Measured KMB-vs-optimal comparison on one summarization input
/// (see [`optimality_gap`]).
#[derive(Debug, Clone, Copy)]
pub struct OptimalityGap {
    /// Cost of the Dreyfus–Wagner optimum on the scope graph.
    pub exact_cost: f64,
    /// Cost of the KMB 2-approximation on the same scope graph.
    pub kmb_cost: f64,
}

impl OptimalityGap {
    /// `kmb / exact` — 1.0 means KMB found the optimum; the §IV-A
    /// guarantee bounds this by 2.
    pub fn ratio(&self) -> f64 {
        if self.exact_cost <= 0.0 {
            1.0
        } else {
            self.kmb_cost / self.exact_cost
        }
    }
}

/// Empirically measure Algorithm 1's approximation quality on `input`.
///
/// Both solvers run on the same *scope graph* — the subgraph induced on
/// the nodes of the input explanation paths plus the terminals — so the
/// comparison is apples-to-apples (Dreyfus–Wagner on the full KG is
/// infeasible, and comparing a scoped optimum against an unscoped
/// heuristic would conflate solver quality with scope choice). Edge
/// costs are the same Eq. 1 λ-boosted costs [`crate::steiner_summary`]
/// uses. Returns `None` when the terminals exceed
/// [`MAX_EXACT_TERMINALS`] or are disconnected within the scope.
pub fn optimality_gap(
    g: &Graph,
    input: &SummaryInput,
    cfg: &SteinerConfig,
) -> Option<OptimalityGap> {
    let costs = steiner_costs(g, input, cfg);

    // Scope: nodes on any input path or in the terminal set, with every
    // parent-graph edge between two scope nodes (so the solvers may take
    // shortcuts the raw paths miss).
    let mut scope = Subgraph::new();
    for p in &input.paths {
        for e in p.grounded_edges() {
            scope.insert_edge(g, e);
        }
    }
    for &t in &input.terminals {
        scope.insert_node(t);
    }
    let nodes: Vec<NodeId> = scope.sorted_nodes();
    for &v in &nodes {
        for &(nb, e) in g.neighbors(v) {
            if scope.contains_node(nb) {
                scope.insert_edge(g, e);
            }
        }
    }

    let (local, map) = scope.extract(g);
    // `extract` adds edges in sorted parent order, so local edge index i
    // corresponds to the i-th sorted parent edge.
    let local_costs = EdgeCosts(scope.sorted_edges().iter().map(|&e| costs.get(e)).collect());
    let terminals: Vec<NodeId> = input.terminals.iter().map(|t| map[t]).collect();

    let exact = exact_steiner_tree(&local, &local_costs, &terminals)?;
    let exact_cost: f64 = exact.edges().iter().map(|&e| local_costs.get(e)).sum();
    let kmb = steiner_tree(&local, &local_costs, &terminals);
    let kmb_cost: f64 = kmb.edges().iter().map(|&e| local_costs.get(e)).sum();
    Some(OptimalityGap {
        exact_cost,
        kmb_cost,
    })
}

/// Cost of the optimal Steiner tree over `terminals`, if computable.
///
/// Convenience wrapper over [`exact_steiner_tree`].
pub fn exact_steiner_cost(g: &Graph, costs: &EdgeCosts, terminals: &[NodeId]) -> Option<f64> {
    let tree = exact_steiner_tree(g, costs, terminals)?;
    Some(tree.edges().iter().map(|&e| costs.get(e)).sum())
}

/// Backpointer of one DP cell, for tree reconstruction.
#[derive(Clone, Copy, PartialEq)]
enum Back {
    /// Unset / base case (singleton mask at its own terminal).
    Leaf,
    /// `dp[mask][v] = inner[mask][u] + dist(u, v)`: walk the shortest
    /// path `u → v`, then expand `(mask, u)` as a merge point.
    Move(NodeId),
    /// `dp[mask][v] = dp[m1][v] + dp[mask^m1][v]` (merge at `v`).
    Merge(u32),
}

/// The optimal Steiner tree connecting `terminals` under `costs`.
///
/// Returns `None` when the terminal set exceeds [`MAX_EXACT_TERMINALS`]
/// or the terminals are not mutually reachable (the approximate solvers
/// return forests there; "optimal forest" is not well-defined under the
/// paper's objective, so the oracle abstains). A single terminal yields
/// the trivial one-node subgraph.
pub fn exact_steiner_tree(g: &Graph, costs: &EdgeCosts, terminals: &[NodeId]) -> Option<Subgraph> {
    let mut terminals: Vec<NodeId> = terminals.to_vec();
    terminals.sort_unstable();
    terminals.dedup();

    let mut out = Subgraph::new();
    match terminals.len() {
        0 => return Some(out),
        1 => {
            out.insert_node(terminals[0]);
            return Some(out);
        }
        n if n > MAX_EXACT_TERMINALS => return None,
        _ => {}
    }

    // Distance matrix rows from every *relevant* source. Dreyfus–Wagner's
    // move step needs dist(u, v) for all u, v — one Dijkstra per node.
    // The oracle is only run on small graphs, so this is acceptable.
    let n = g.node_count();
    let runs: Vec<DijkstraResult> = (0..n)
        .map(|v| dijkstra(g, costs, NodeId(v as u32), &[]))
        .collect();

    // Root = last terminal; DP over subsets of the remaining q terminals.
    let root = *terminals.last().unwrap();
    let subset_terms = &terminals[..terminals.len() - 1];
    let q = subset_terms.len();
    let full: u32 = (1u32 << q) - 1;

    // Mutual reachability check (against the root's row).
    let root_run = &runs[root.index()];
    if subset_terms.iter().any(|t| root_run.distance(*t).is_none()) {
        return None;
    }

    let masks = 1usize << q;
    let mut dp = vec![f64::INFINITY; masks * n];
    let mut back = vec![Back::Leaf; masks * n];
    let idx = |mask: u32, v: usize| mask as usize * n + v;

    // Base: singleton masks are the distance rows of their terminal.
    for (ti, t) in subset_terms.iter().enumerate() {
        let mask = 1u32 << ti;
        let run = &runs[t.index()];
        for v in 0..n {
            if run.dist[v].is_finite() {
                dp[idx(mask, v)] = run.dist[v];
                back[idx(mask, v)] = Back::Move(*t);
            }
        }
        dp[idx(mask, t.index())] = 0.0;
        back[idx(mask, t.index())] = Back::Leaf;
    }

    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        // Merge step: combine complementary submasks at every vertex.
        // Iterating proper submasks that contain the lowest set bit
        // visits each {m1, m2} partition once.
        let low = mask & mask.wrapping_neg();
        let rest = mask ^ low;
        let mut inner = vec![f64::INFINITY; n];
        let mut inner_back = vec![Back::Leaf; n];
        let mut sub = rest;
        loop {
            let m1 = sub | low;
            let m2 = mask ^ m1;
            if m2 != 0 {
                for v in 0..n {
                    let c = dp[idx(m1, v)] + dp[idx(m2, v)];
                    if c < inner[v] {
                        inner[v] = c;
                        inner_back[v] = Back::Merge(m1);
                    }
                }
            } else {
                // m1 == mask: not a proper split.
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }

        // Move step: dp[mask][v] = min_u inner[u] + dist(u, v). Quadratic
        // over the metric closure; fine at oracle scale.
        for v in 0..n {
            let mut best = inner[v];
            let mut best_back = inner_back[v];
            for (u, &cost_u) in inner.iter().enumerate() {
                if u == v || !cost_u.is_finite() {
                    continue;
                }
                let d = runs[u].dist[v];
                if d.is_finite() && cost_u + d < best {
                    best = cost_u + d;
                    best_back = Back::Move(NodeId(u as u32));
                }
            }
            dp[idx(mask, v)] = best;
            back[idx(mask, v)] = best_back;
        }
    }

    if !dp[idx(full, root.index())].is_finite() {
        return None;
    }

    // Reconstruction: expand (mask, v) cells into underlying graph edges.
    let mut stack: Vec<(u32, NodeId)> = vec![(full, root)];
    out.insert_node(root);
    while let Some((mask, v)) = stack.pop() {
        match back[idx(mask, v.index())] {
            Back::Leaf => {
                out.insert_node(v);
            }
            Back::Move(u) => {
                // Walk the shortest path u → v, then continue from u.
                if let Some(path) = runs[u.index()].path_to(g, v) {
                    for e in path {
                        out.insert_edge(g, e);
                    }
                }
                if mask.count_ones() >= 2 {
                    stack.push((mask, u));
                } else {
                    out.insert_node(u);
                }
            }
            Back::Merge(m1) => {
                stack.push((m1, v));
                stack.push((mask ^ m1, v));
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsum_graph::{EdgeKind, Graph, NodeKind};

    /// Path graph 0-1-2-3 with unit costs.
    fn path4() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(NodeKind::Entity)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0, EdgeKind::Attribute);
        }
        (g, ids)
    }

    /// The classic 3-terminal star: exact uses the hub, pairwise paths
    /// through the rim are more expensive.
    ///
    /// Terminals a, b, c each connect to hub h with cost 2, and pairwise
    /// rim edges cost 3. Optimal Steiner tree = {ah, bh, ch} (cost 6);
    /// any hub-free tree costs ≥ 6 too... make rim cost 3.5 so exact is
    /// strictly better (6 < 7).
    fn star_with_rim() -> (Graph, NodeId, Vec<NodeId>) {
        let mut g = Graph::new();
        let h = g.add_node(NodeKind::Entity);
        let terms: Vec<_> = (0..3).map(|_| g.add_node(NodeKind::Item)).collect();
        for &t in &terms {
            g.add_edge(h, t, 2.0, EdgeKind::Attribute);
        }
        g.add_edge(terms[0], terms[1], 3.5, EdgeKind::Attribute);
        g.add_edge(terms[1], terms[2], 3.5, EdgeKind::Attribute);
        (g, h, terms)
    }

    fn unit_costs(g: &Graph) -> EdgeCosts {
        EdgeCosts::uniform(g, 1.0)
    }

    #[test]
    fn empty_and_singleton_terminals() {
        let (g, ids) = path4();
        let c = unit_costs(&g);
        let t0 = exact_steiner_tree(&g, &c, &[]).unwrap();
        assert!(t0.is_empty());
        let t1 = exact_steiner_tree(&g, &c, &[ids[2]]).unwrap();
        assert_eq!(t1.node_count(), 1);
        assert_eq!(t1.edge_count(), 0);
    }

    #[test]
    fn two_terminals_is_shortest_path() {
        let (g, ids) = path4();
        let c = unit_costs(&g);
        let t = exact_steiner_tree(&g, &c, &[ids[0], ids[3]]).unwrap();
        assert_eq!(t.edge_count(), 3);
        assert!(t.is_tree(&g));
    }

    #[test]
    fn three_terminals_on_path() {
        let (g, ids) = path4();
        let c = unit_costs(&g);
        let t = exact_steiner_tree(&g, &c, &[ids[0], ids[1], ids[3]]).unwrap();
        assert_eq!(t.edge_count(), 3);
        assert!(t.contains_node(ids[2])); // Steiner node
    }

    #[test]
    fn picks_steiner_hub_when_cheaper() {
        let (g, h, terms) = star_with_rim();
        let mut costs = vec![0.0; g.edge_count()];
        for e in g.edge_ids() {
            costs[e.index()] = g.weight(e);
        }
        let c = EdgeCosts(costs);
        let t = exact_steiner_tree(&g, &c, &terms).unwrap();
        assert!(t.contains_node(h), "optimal tree must route via the hub");
        assert_eq!(t.edge_count(), 3);
        let cost: f64 = t.edges().iter().map(|&e| c.get(e)).sum();
        assert!((cost - 6.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_terminals_abstain() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::User);
        let b = g.add_node(NodeKind::Item);
        // No edge between a and b.
        let c = EdgeCosts(Vec::new());
        assert!(exact_steiner_tree(&g, &c, &[a, b]).is_none());
    }

    #[test]
    fn too_many_terminals_abstain() {
        let mut g = Graph::new();
        let hub = g.add_node(NodeKind::Entity);
        let terms: Vec<_> = (0..MAX_EXACT_TERMINALS + 1)
            .map(|_| {
                let t = g.add_node(NodeKind::Item);
                g.add_edge(hub, t, 1.0, EdgeKind::Attribute);
                t
            })
            .collect();
        let c = unit_costs(&g);
        assert!(exact_steiner_tree(&g, &c, &terms).is_none());
    }

    #[test]
    fn exact_never_beats_is_never_beaten_by_kmb() {
        // On a grid-ish graph, exact ≤ KMB always.
        use crate::steiner::steiner_tree;
        let mut g = Graph::new();
        let ids: Vec<_> = (0..9).map(|_| g.add_node(NodeKind::Entity)).collect();
        // 3x3 grid
        for r in 0..3 {
            for col in 0..3 {
                let v = r * 3 + col;
                if col + 1 < 3 {
                    g.add_edge(ids[v], ids[v + 1], 1.0, EdgeKind::Attribute);
                }
                if r + 1 < 3 {
                    g.add_edge(ids[v], ids[v + 3], 1.0, EdgeKind::Attribute);
                }
            }
        }
        let c = unit_costs(&g);
        let terms = vec![ids[0], ids[2], ids[6], ids[8]];
        let exact = exact_steiner_cost(&g, &c, &terms).unwrap();
        let kmb = steiner_tree(&g, &c, &terms);
        let kmb_cost: f64 = kmb.edges().iter().map(|&e| c.get(e)).sum();
        assert!(exact <= kmb_cost + 1e-9);
        assert!(kmb_cost <= 2.0 * exact + 1e-9);
        // Corners of a 3x3 grid need at least 6 unit edges.
        assert!((exact - 6.0).abs() < 1e-9);
    }

    #[test]
    fn optimality_gap_on_summary_input() {
        use crate::input::SummaryInput;
        use crate::steiner::SteinerConfig;
        use xsum_graph::LoosePath;

        // u rated i0, i0–e, e–i1 / e–i2: two 3-hop explanation paths.
        let mut g = Graph::new();
        let u = g.add_node(NodeKind::User);
        let i0 = g.add_node(NodeKind::Item);
        let i1 = g.add_node(NodeKind::Item);
        let i2 = g.add_node(NodeKind::Item);
        let e = g.add_node(NodeKind::Entity);
        g.add_edge(u, i0, 5.0, EdgeKind::Interaction);
        g.add_edge(i0, e, 0.0, EdgeKind::Attribute);
        g.add_edge(e, i1, 0.0, EdgeKind::Attribute);
        g.add_edge(e, i2, 0.0, EdgeKind::Attribute);
        let p1 = LoosePath::ground(&g, vec![u, i0, e, i1]);
        let p2 = LoosePath::ground(&g, vec![u, i0, e, i2]);
        let input = SummaryInput::user_centric(u, vec![p1, p2]);

        let gap = optimality_gap(&g, &input, &SteinerConfig::default()).unwrap();
        // The scope graph is itself a tree, so both solvers must agree.
        assert!((gap.ratio() - 1.0).abs() < 1e-9, "ratio {}", gap.ratio());
        assert!(gap.exact_cost > 0.0);
    }

    #[test]
    fn output_is_a_tree_spanning_terminals() {
        let (g, _, terms) = star_with_rim();
        let c = unit_costs(&g);
        let t = exact_steiner_tree(&g, &c, &terms).unwrap();
        assert!(t.is_tree(&g));
        for &term in &terms {
            assert!(t.contains_node(term));
        }
    }
}
