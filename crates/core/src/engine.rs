//! The persistent summarization engine.
//!
//! [`crate::summarize_batch`] is fast *within* a call but rebuilds its
//! world on every call: worker threads are spawned and joined, each
//! worker's [`SteinerWorkspace`] and private cost-table copy are
//! allocated from scratch, and the Eq. 1 base table is derived again —
//! O(workers · |E|) of setup per batch. A serving deployment issues
//! *many* batches (and many single summaries) against one long-lived
//! graph, so [`SummaryEngine`] makes all of that state persistent:
//!
//! * a pinned [`WorkerPool`] — threads spawned once and parked between
//!   calls, woken per batch with one condvar broadcast;
//! * one [`EngineWorker`] per pool thread, owning a [`SteinerWorkspace`]
//!   and an Eq. 1 cost buffer that survive across batches, so a warm
//!   batch patches O(|paths|) per summary and never touches the
//!   allocator for search state;
//! * a [`CostModelCache`] keyed by (graph epoch, config), shared by the
//!   batched and single-summary paths, so switching λ or serving an
//!   updated graph rebuilds the O(|E|) base table exactly once;
//! * a [`SessionStore`](crate::session::SessionStore) of incremental
//!   per-user sessions (k grows as the user scrolls), with LRU eviction
//!   and graph-epoch invalidation.
//!
//! The whole stack is **delta-aware**: a weight-only mutation recorded
//! in the [`Graph::delta_since`] ledger is absorbed in O(|touched
//! edges|) at every layer instead of cascading into O(|E| + caches +
//! sessions) of rebuild. The [`CostModelCache`] patches its resident
//! Eq. 1 table in place ([`CostModelCache::patches`] counts these);
//! each [`EngineWorker`]'s private cost buffer refreshes only the
//! touched entries when its recorded anchor bits match the new model's
//! ([`EngineWorker::begin_summary`]); and the session store keeps every
//! session whose touched-edge fingerprint is disjoint from the delta.
//! Structural mutations (or an anchor-moving delta) still take the
//! rebuild path — the ledger only certifies what is provably
//! bit-identical.
//!
//! Everything the engine produces is **bit-identical** to the free
//! functions ([`steiner_summary`](crate::steiner_summary) /
//! [`steiner_summary_fast`](crate::steiner_summary_fast) /
//! [`pcst_summary`](crate::pcst_summary) /
//! [`gw_pcst_summary`](crate::gw_pcst_summary)) and to
//! [`crate::summarize_batch`]; the property suites in
//! `tests/prop_engine.rs` pin that contract across random graphs,
//! configs, and worker counts.

use std::borrow::Borrow;
use std::panic::{catch_unwind, AssertUnwindSafe};

use xsum_graph::{num_threads, EdgeCosts, EdgeId, Graph, WorkerPool};

use crate::batch::BatchMethod;
use crate::input::SummaryInput;
use crate::session::SessionStore;
use crate::steiner::{
    steiner_tree_fast_with, steiner_tree_with, CostModelCache, CostModelKey, SteinerCostModel,
    SteinerWorkspace,
};
use crate::summary::Summary;

/// A worker panic surfaced as a recoverable serving error.
///
/// The engine's state survives the panic that produced one of these:
/// the pool catches worker panics and finishes the dispatch, and any
/// cost buffer that was mid-patch is left flagged dirty
/// ([`EngineWorker::begin_summary`]) so the next call re-copies the
/// Eq. 1 base instead of serving leftover patched costs. A front-end
/// holding the engine can therefore log the error and keep serving —
/// see [`SummaryEngine::try_summarize_batch`].
#[derive(Debug, Clone)]
pub struct EngineError {
    message: String,
}

impl EngineError {
    /// A serving error that did not come from a panic payload — e.g.
    /// the admission queue failing tickets it can no longer serve.
    pub(crate) fn from_message(message: impl Into<String>) -> Self {
        EngineError {
            message: message.into(),
        }
    }

    pub(crate) fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "summarization worker panicked".to_string());
        EngineError { message }
    }

    /// The panic message of the failed worker.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "summarization worker panicked: {}", self.message)
    }
}

impl std::error::Error for EngineError {}

/// Persistent per-worker state: the full KMB/Mehlhorn scratch plus a
/// private Eq. 1 cost buffer tagged with the model it was copied from.
#[derive(Debug, Default)]
struct EngineWorker {
    ws: SteinerWorkspace,
    /// Private copy of the cost-model base, patched and unpatched around
    /// each summary. `None` until first use.
    costs: Option<EdgeCosts>,
    /// Which (epoch, config) model `costs` mirrors; a key mismatch (new
    /// graph epoch, different λ/δ) triggers a base re-sync.
    costs_key: Option<CostModelKey>,
    /// `base_max` bits of the model `costs` mirrors — the anchor every
    /// entry of the buffer was derived from. When a same-config key
    /// change keeps these bits, the old and new bases are bit-identical
    /// off the delta-touched edges, so the buffer re-syncs in
    /// O(|touched|) instead of one full memcpy.
    costs_anchor: u64,
    /// Touched-edge log for patch/unpatch.
    touched: Vec<(EdgeId, u32)>,
}

impl EngineWorker {
    /// Synchronize the worker's cost buffer to `model` (free when
    /// already warm; O(|touched|) across a ledger-covered weight delta
    /// with an unmoved anchor; one memcpy otherwise) and mark it **in
    /// flight**: `costs_key` stays `None` until
    /// [`EngineWorker::finish_summary`] restores it after a successful
    /// unpatch. A panic mid-summary (e.g. an out-of-range terminal id
    /// unwinding out of the tree construction) therefore leaves the
    /// buffer flagged dirty, and the next call re-syncs the base
    /// instead of silently computing against leftover patched costs.
    /// Callers borrow `self.costs` directly so `touched` and `ws` stay
    /// independently borrowable.
    fn begin_summary(&mut self, g: &Graph, key: CostModelKey, model: &SteinerCostModel) {
        if self.costs_key != Some(key) {
            // Delta fast path: the buffer mirrors an earlier epoch of
            // the same config, the ledger covers the gap, and the Eq. 1
            // anchor bits are unchanged — only the touched entries of
            // the two bases can differ.
            let delta = self
                .costs_key
                .filter(|old| old.same_config(&key))
                .filter(|_| model.base_max().to_bits() == self.costs_anchor)
                .and_then(|old| g.delta_since(old.epoch()));
            match (&mut self.costs, delta) {
                (Some(c), Some(touched)) => model.copy_touched_into(c, &touched),
                (Some(c), None) => model.copy_base_into(c),
                (None, _) => self.costs = Some(model.fresh_costs()),
            }
            self.costs_anchor = model.base_max().to_bits();
        }
        self.costs_key = None;
    }

    /// Declare the buffer clean again (patch fully undone).
    fn finish_summary(&mut self, key: CostModelKey) {
        self.costs_key = Some(key);
    }

    /// One ST/ST-fast summary on this worker's warm state — the single
    /// body both [`SummaryEngine::summarize`] and the batch closure run,
    /// so the bit-identity contract between the two paths cannot drift.
    fn run_st(
        &mut self,
        g: &Graph,
        input: &SummaryInput,
        key: CostModelKey,
        model: &SteinerCostModel,
        fast: bool,
        label: &'static str,
    ) -> Summary {
        self.begin_summary(g, key, model);
        let costs = self.costs.as_mut().expect("buffer just synced");
        model.patch(g, input, costs, &mut self.touched);
        let subgraph = if fast {
            steiner_tree_fast_with(g, costs, &input.terminals, &mut self.ws)
        } else {
            steiner_tree_with(g, costs, &input.terminals, &mut self.ws)
        };
        model.unpatch(costs, &self.touched);
        self.finish_summary(key);
        Summary {
            method: label,
            scenario: input.scenario,
            subgraph,
            terminals: input.terminals.clone(),
        }
    }
}

/// A long-lived, multi-threaded summarization engine (see module docs).
///
/// Construction pins the worker pool; afterwards
/// [`SummaryEngine::summarize_batch`] and [`SummaryEngine::summarize`]
/// can be called any number of times, against any graph — per-graph
/// derived state is keyed by the graph's mutation epoch and refreshed
/// transparently when it changes.
///
/// ```
/// use xsum_core::{BatchMethod, SteinerConfig, SummaryEngine, SummaryInput};
/// use xsum_core::render::table1_example;
///
/// let ex = table1_example();
/// let mut engine = SummaryEngine::with_threads(2);
/// let method = BatchMethod::Steiner(SteinerConfig::default());
/// let batch = engine.summarize_batch(&ex.graph, &[ex.input()], method);
/// let single = engine.summarize(&ex.graph, &ex.input(), method);
/// assert_eq!(
///     batch[0].subgraph.sorted_edges(),
///     single.subgraph.sorted_edges()
/// );
/// ```
#[derive(Debug)]
pub struct SummaryEngine {
    pool: WorkerPool,
    workers: Vec<EngineWorker>,
    models: CostModelCache,
    sessions: SessionStore,
    /// Inner-parallelism budget a *lone* batch worker inherits (the
    /// |T| ≥ 24 metric-closure fan-out). Defaults to the worker count;
    /// see [`SummaryEngine::with_threads_and_budget`].
    lone_budget: usize,
}

impl Default for SummaryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SummaryEngine {
    /// Default capacity of the engine's cost-model cache: generous for a
    /// λ-sweep over a handful of live graph epochs.
    const MODEL_CACHE_CAPACITY: usize = 8;

    /// Default capacity of the engine's incremental-session store.
    const SESSION_CAPACITY: usize = 1024;

    /// An engine sized by [`num_threads`] (hardware parallelism, or
    /// `XSUM_THREADS`).
    pub fn new() -> Self {
        Self::with_threads(num_threads())
    }

    /// An engine with an explicit worker count (clamped to ≥ 1); `1`
    /// serves strictly sequentially on the calling thread.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        Self::with_threads_and_budget(threads, threads)
    }

    /// [`SummaryEngine::with_threads`] with a separate inner-parallelism
    /// budget for the lone-worker case — how the one-shot
    /// [`crate::summarize_batch_threads`] wrapper clamps its pool to the
    /// batch width without losing the caller's requested thread budget
    /// for the metric-closure fan-out.
    pub(crate) fn with_threads_and_budget(threads: usize, lone_budget: usize) -> Self {
        let threads = threads.max(1);
        SummaryEngine {
            pool: WorkerPool::new(threads),
            workers: (0..threads).map(|_| EngineWorker::default()).collect(),
            models: CostModelCache::new(Self::MODEL_CACHE_CAPACITY),
            sessions: SessionStore::new(Self::SESSION_CAPACITY),
            lone_budget: lone_budget.max(1),
        }
    }

    /// Number of pinned worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queue-depth probe of the pinned pool: how many workers are still
    /// running the current dispatch (`0` = parked). Forwarded from
    /// [`WorkerPool::in_flight`]; an admission front-end polls this to
    /// decide whether to keep coalescing while a batch is in flight.
    pub fn pool_in_flight(&self) -> usize {
        self.pool.in_flight()
    }

    /// Install (or clear, with `None`) a fault hook on the pinned
    /// pool's dispatch seam — the engine-level face of the
    /// fault-injection plane ([`crate::faults`]). The hook runs once on
    /// the dispatching thread per batch dispatch; a panicking hook
    /// behaves exactly like a worker panic, so
    /// [`SummaryEngine::try_summarize_batch`] catches it. Unset (the
    /// default), the seam costs one never-taken branch per dispatch.
    pub fn set_fault_hook(&mut self, hook: Option<xsum_graph::DispatchHook>) {
        self.pool.set_dispatch_hook(hook);
    }

    /// `(hits, misses)` of the engine's cost-model cache — a miss is one
    /// O(|E|) Eq. 1 base-table build. A structural mutation moves the
    /// epoch and shows up here as a miss on the next call; a
    /// ledger-covered weight-only delta is absorbed as a *patch*
    /// ([`SummaryEngine::cost_cache_patches`]) instead.
    pub fn cost_cache_stats(&self) -> (u64, u64) {
        (self.models.hits(), self.models.misses())
    }

    /// Resident cost models patched in O(|touched|) across a weight-only
    /// delta instead of being rebuilt.
    pub fn cost_cache_patches(&self) -> u64 {
        self.models.patches()
    }

    /// The engine's incremental-session store (per-user growing
    /// summaries with LRU eviction and epoch invalidation).
    pub fn sessions(&mut self) -> &mut SessionStore {
        &mut self.sessions
    }

    /// Override the deduplicated-terminal count from which a lone batch
    /// worker's metric closure fans out across threads (`0` restores
    /// the default; see
    /// [`SteinerWorkspace::set_parallel_threshold`]). Applied to every
    /// persistent worker workspace — shard replicas running few outer
    /// workers lower it so mid-sized terminal groups still use the
    /// replica's idle cores.
    pub fn set_metric_closure_threshold(&mut self, min_terminals: usize) {
        for w in &mut self.workers {
            w.ws.set_parallel_threshold(min_terminals);
        }
    }

    /// Compute one summary on the calling thread, reusing the engine's
    /// warm state (cost-model cache + worker-0 workspace and cost
    /// buffer). Bit-identical to the corresponding sequential free
    /// function; unlike it, a warm engine pays O(|paths|) — not O(|E|)
    /// — to materialize the Eq. 1 costs.
    pub fn summarize(&mut self, g: &Graph, input: &SummaryInput, method: BatchMethod) -> Summary {
        match method {
            BatchMethod::Steiner(cfg) | BatchMethod::SteinerFast(cfg) => {
                let fast = matches!(method, BatchMethod::SteinerFast(_));
                let (key, model) = self.models.get(g, &cfg);
                let worker = &mut self.workers[0];
                // The sequential entry points never spawn threads; keep
                // the engine's single-summary path identical.
                worker.ws.set_parallelism(1);
                worker.run_st(g, input, key, &model, fast, method.name())
            }
            BatchMethod::Pcst(_) | BatchMethod::GwPcst(_) => method.run(g, input),
        }
    }

    /// Summarize every input with `method` across the pinned worker
    /// pool, preserving input order. Semantics (and bits) match
    /// [`crate::summarize_batch`]; steady-state cost per call drops from
    /// O(workers · |E|) setup + spawns to one pool wake-up.
    pub fn summarize_batch(
        &mut self,
        g: &Graph,
        inputs: &[SummaryInput],
        method: BatchMethod,
    ) -> Vec<Summary> {
        self.summarize_batch_impl(g, inputs, method)
    }

    /// [`SummaryEngine::summarize_batch`] over borrowed inputs — the
    /// sharded front-end's scatter path, which routes a mixed batch
    /// into per-shard sub-batches without cloning any `SummaryInput`.
    /// Same body as the owned entry point (one generic
    /// implementation), so the two cannot drift.
    pub(crate) fn summarize_batch_refs(
        &mut self,
        g: &Graph,
        inputs: &[&SummaryInput],
        method: BatchMethod,
    ) -> Vec<Summary> {
        self.summarize_batch_impl(g, inputs, method)
    }

    fn summarize_batch_impl<T>(
        &mut self,
        g: &Graph,
        inputs: &[T],
        method: BatchMethod,
    ) -> Vec<Summary>
    where
        T: Borrow<SummaryInput> + Sync,
    {
        if inputs.is_empty() {
            // Nothing to do — in particular, don't build (and cache) an
            // Eq. 1 model for a batch that will never read it. Sharded
            // front-ends routinely dispatch empty sub-batches.
            return Vec::new();
        }
        // Freeze the CSR before fanning out so workers never contend on
        // the one-time adjacency build.
        g.freeze();
        let threads = self.workers.len();
        let active = threads.min(inputs.len()).max(1);
        match method {
            BatchMethod::Steiner(cfg) | BatchMethod::SteinerFast(cfg) => {
                let fast = matches!(method, BatchMethod::SteinerFast(_));
                let label = method.name();
                let (key, model) = self.models.get(g, &cfg);
                for w in &mut self.workers[..active] {
                    // One level of parallelism only: with several outer
                    // workers each summary's metric closure stays
                    // sequential; a lone worker inherits the engine's
                    // inner budget (matching `summarize_batch`).
                    w.ws.set_parallelism(if active > 1 { 1 } else { self.lone_budget });
                }
                let model_ref = &model;
                self.pool
                    .map_with(&mut self.workers[..active], inputs, move |w, _, input| {
                        w.run_st(g, input.borrow(), key, model_ref, fast, label)
                    })
            }
            BatchMethod::Pcst(_) | BatchMethod::GwPcst(_) => {
                let mut states = vec![(); active];
                self.pool.map_with(&mut states, inputs, |_, _, input| {
                    method.run(g, input.borrow())
                })
            }
        }
    }

    /// [`SummaryEngine::summarize_batch`] with worker panics surfaced
    /// as a recoverable [`EngineError`] instead of unwinding into the
    /// caller.
    ///
    /// A malformed input (e.g. a terminal id outside the graph) panics
    /// inside the worker that drew it; the pool already catches the
    /// panic, finishes the dispatch without deadlocking, and re-raises
    /// it on the calling thread. This wrapper converts that re-raise
    /// into an `Err`, leaving the engine fully serviceable: buffers the
    /// panic interrupted mid-patch stay flagged dirty and are rebuilt
    /// from the Eq. 1 base on the next call (property: post-error
    /// output is still bit-identical to the free functions).
    pub fn try_summarize_batch(
        &mut self,
        g: &Graph,
        inputs: &[SummaryInput],
        method: BatchMethod,
    ) -> Result<Vec<Summary>, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.summarize_batch(g, inputs, method)))
            .map_err(EngineError::from_panic)
    }

    /// [`SummaryEngine::summarize`] with panics surfaced as a
    /// recoverable [`EngineError`]; see
    /// [`SummaryEngine::try_summarize_batch`].
    pub fn try_summarize(
        &mut self,
        g: &Graph,
        input: &SummaryInput,
        method: BatchMethod,
    ) -> Result<Summary, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.summarize(g, input, method)))
            .map_err(EngineError::from_panic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcst::PcstConfig;
    use crate::render::table1_example;
    use crate::steiner::SteinerConfig;
    use crate::{gw_pcst_summary, pcst_summary, steiner_summary, steiner_summary_fast};

    fn assert_same(a: &Summary, b: &Summary) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.terminals, b.terminals);
        assert_eq!(a.subgraph.sorted_edges(), b.subgraph.sorted_edges());
        assert_eq!(a.subgraph.sorted_nodes(), b.subgraph.sorted_nodes());
    }

    #[test]
    fn engine_single_matches_free_functions() {
        let ex = table1_example();
        let input = ex.input();
        let st = SteinerConfig::default();
        let pc = PcstConfig::default();
        let mut engine = SummaryEngine::with_threads(2);
        assert_same(
            &engine.summarize(&ex.graph, &input, BatchMethod::Steiner(st)),
            &steiner_summary(&ex.graph, &input, &st),
        );
        assert_same(
            &engine.summarize(&ex.graph, &input, BatchMethod::SteinerFast(st)),
            &steiner_summary_fast(&ex.graph, &input, &st),
        );
        assert_same(
            &engine.summarize(&ex.graph, &input, BatchMethod::Pcst(pc)),
            &pcst_summary(&ex.graph, &input, &pc),
        );
        assert_same(
            &engine.summarize(&ex.graph, &input, BatchMethod::GwPcst(pc)),
            &gw_pcst_summary(&ex.graph, &input, &pc),
        );
    }

    #[test]
    fn engine_is_reusable_and_warm_across_calls() {
        let ex = table1_example();
        let input = ex.input();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut engine = SummaryEngine::with_threads(3);
        let inputs = vec![input.clone(), input.clone(), input.clone(), input];
        let first = engine.summarize_batch(&ex.graph, &inputs, method);
        for _ in 0..5 {
            let again = engine.summarize_batch(&ex.graph, &inputs, method);
            for (a, b) in first.iter().zip(&again) {
                assert_same(a, b);
            }
        }
        let (hits, misses) = engine.cost_cache_stats();
        assert_eq!(misses, 1, "one Eq. 1 base build serves every batch");
        assert_eq!(hits, 5);
    }

    #[test]
    fn graph_mutation_misses_the_cost_cache() {
        let mut ex = table1_example();
        let input = ex.input();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut engine = SummaryEngine::with_threads(2);
        engine.summarize(&ex.graph, &input, method);
        ex.graph.set_weight(xsum_graph::EdgeId(0), 0.25);
        let warm = engine.summarize(&ex.graph, &input, method);
        let (_, misses) = engine.cost_cache_stats();
        assert_eq!(misses, 2, "weight mutation must rebuild the model");
        // And the recomputation matches a cold engine exactly.
        let cold = SummaryEngine::with_threads(2).summarize(&ex.graph, &input, method);
        assert_same(&warm, &cold);
    }

    #[test]
    fn anchor_safe_weight_delta_patches_instead_of_missing() {
        let mut ex = table1_example();
        let input = ex.input();
        let method = BatchMethod::Steiner(SteinerConfig::default());
        let mut engine = SummaryEngine::with_threads(2);
        engine.summarize(&ex.graph, &input, method);
        // Raise a zero-weight attribute edge (EdgeId 5) to 0.5: below
        // the 5.0 anchor and not an anchor witness — patchable.
        ex.graph.set_weight(xsum_graph::EdgeId(5), 0.5);
        let warm = engine.summarize(&ex.graph, &input, method);
        let (_, misses) = engine.cost_cache_stats();
        assert_eq!(misses, 1, "covered delta must not rebuild the model");
        assert_eq!(engine.cost_cache_patches(), 1);
        // Bit-identical to a cold engine on the mutated graph.
        let cold = SummaryEngine::with_threads(2).summarize(&ex.graph, &input, method);
        assert_same(&warm, &cold);
        // Batches keep matching too (worker buffers re-synced via the
        // touched-entry fast path).
        ex.graph
            .apply_delta(&[(xsum_graph::EdgeId(5), 0.25), (xsum_graph::EdgeId(6), 1.5)]);
        let inputs = vec![input.clone(), input.clone(), input.clone()];
        let batch = engine.summarize_batch(&ex.graph, &inputs, method);
        let free = crate::summarize_batch(&ex.graph, &inputs, method);
        for (a, b) in batch.iter().zip(&free) {
            assert_same(a, b);
        }
        assert_eq!(engine.cost_cache_patches(), 2);
    }

    #[test]
    fn lambda_sweep_populates_distinct_models() {
        let ex = table1_example();
        let input = ex.input();
        let mut engine = SummaryEngine::with_threads(1);
        for lambda in [0.01, 1.0, 100.0] {
            let cfg = SteinerConfig { lambda, delta: 1.0 };
            let got = engine.summarize(&ex.graph, &input, BatchMethod::Steiner(cfg));
            assert_same(&got, &steiner_summary(&ex.graph, &input, &cfg));
        }
        let (hits, misses) = engine.cost_cache_stats();
        assert_eq!((hits, misses), (0, 3), "three configs, three models");
    }

    #[test]
    fn engine_default_threads_positive() {
        let engine = SummaryEngine::new();
        assert!(engine.threads() >= 1);
    }

    #[test]
    fn worker_panic_is_recoverable_not_fatal() {
        // Satellite regression: a malformed input panicking inside a
        // (possibly pooled) worker must come back as an `EngineError`,
        // and the engine must keep serving bit-identical results — the
        // dirty-buffer recovery rebuilds the interrupted cost buffer.
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        // Terminals entirely outside the graph: the first becomes a
        // Dijkstra *source* and unwinds out of the metric closure after
        // the worker's buffer was already patched. (Out-of-range
        // *targets* are deliberately total — treated as unreachable.)
        let mut bad = input.clone();
        bad.terminals = vec![
            xsum_graph::NodeId(u32::MAX - 2),
            xsum_graph::NodeId(u32::MAX - 1),
        ];
        for method in [BatchMethod::Steiner(cfg), BatchMethod::SteinerFast(cfg)] {
            for threads in [1usize, 2] {
                let mut engine = SummaryEngine::with_threads(threads);
                let good = vec![input.clone(), input.clone()];
                engine.summarize_batch(&ex.graph, &good, method); // warm
                let err =
                    engine.try_summarize_batch(&ex.graph, &[input.clone(), bad.clone()], method);
                assert!(err.is_err(), "out-of-range source must error");
                assert!(engine.try_summarize(&ex.graph, &bad, method).is_err());
                // Still serving, still bit-identical to the free path.
                let after = engine.summarize_batch(&ex.graph, &good, method);
                for s in &after {
                    assert_same(s, &method.run(&ex.graph, &input));
                }
            }
        }
    }

    #[test]
    fn unwound_summary_does_not_corrupt_cost_buffers() {
        // Simulate a panic unwinding out of the tree construction after
        // the worker's buffer was patched (patch done, unpatch and
        // finish_summary never reached). The buffer must be flagged
        // dirty so the next call re-copies the base — never serves
        // leftover boosted costs.
        let ex = table1_example();
        let input = ex.input();
        let cfg = SteinerConfig::default();
        let method = BatchMethod::Steiner(cfg);
        let mut engine = SummaryEngine::with_threads(1);
        engine.summarize(&ex.graph, &input, method); // warm buffer

        // A variant input with a different Eq. 1 denominator, so its
        // patch writes values no later patch of `input` would overwrite.
        let variant = crate::input::SummaryInput::user_centric(ex.user1, vec![ex.paths[0].clone()]);
        let (key, model) = engine.models.get(&ex.graph, &cfg);
        let w = &mut engine.workers[0];
        w.begin_summary(&ex.graph, key, &model);
        let costs = w.costs.as_mut().expect("warm buffer");
        model.patch(&ex.graph, &variant, costs, &mut w.touched);
        // ...unwind here: no unpatch, no finish_summary.
        assert_ne!(
            w.costs.as_ref().unwrap().0,
            model.fresh_costs().0,
            "the simulated unwind must leave real patched state behind"
        );
        assert!(
            engine.workers[0].costs_key.is_none(),
            "an in-flight summary's buffer is flagged dirty"
        );

        // The next call re-copies the base and produces the free-
        // function result; afterwards the buffer is exactly base again.
        let after = engine.summarize(&ex.graph, &input, method);
        let free = crate::steiner_summary(&ex.graph, &input, &cfg);
        assert_same(&after, &free);
        assert_eq!(
            engine.workers[0].costs.as_ref().unwrap().0,
            model.fresh_costs().0,
            "recovered buffer must be bit-identical to the model base"
        );
    }
}
