//! Incremental PCST summaries across k.
//!
//! The paper's consistency discussion (§V-B5) attributes PCST's cross-k
//! stability to the fact that as k grows "PCST adjusts only the node's
//! prize, preserving structural coherence". This module operationalizes
//! that, mirroring [`crate::IncrementalSteiner`] for the prize-collecting
//! side: a session object holds the growing union-of-paths scope, and
//! each new recommendation only *raises a prize* (marks its item a
//! terminal) and attaches it through the cheapest in-scope connection to
//! the existing structure — the previous summary is never torn down, so
//! `S_k ⊆ S_{k+1}` and the Jaccard consistency of Fig. 6 is maximal by
//! construction.
//!
//! Connections follow the §V-A experimental policy (unit edge costs,
//! prizes only on terminals): each attachment is the hop-minimal
//! in-scope route, found by BFS. The stored [`PcstConfig`] carries the
//! prize values for downstream reporting.

use std::collections::VecDeque;

use xsum_graph::{EdgeId, FxHashMap, FxHashSet, Graph, LoosePath, NodeId};

use crate::input::Scenario;
use crate::pcst::PcstConfig;
use crate::summary::Summary;

/// A PCST summary grown one explained recommendation at a time.
#[derive(Debug, Clone)]
pub struct IncrementalPcst {
    cfg: PcstConfig,
    scenario: Scenario,
    /// Growth scope: union of every path seen so far.
    scope_nodes: FxHashSet<NodeId>,
    scope_edges: FxHashSet<EdgeId>,
    subgraph: xsum_graph::Subgraph,
    terminals: Vec<NodeId>,
    /// BFS scratch reused across attachments (parent chain, visited set,
    /// frontier), so a warm session connects without allocating.
    bfs_parent: FxHashMap<NodeId, EdgeId>,
    bfs_seen: FxHashSet<NodeId>,
    bfs_queue: VecDeque<NodeId>,
}

impl IncrementalPcst {
    /// Start an empty session for `scenario` (terminals arrive later).
    pub fn new(scenario: Scenario, cfg: PcstConfig) -> Self {
        IncrementalPcst {
            cfg,
            scenario,
            scope_nodes: FxHashSet::default(),
            scope_edges: FxHashSet::default(),
            subgraph: xsum_graph::Subgraph::new(),
            terminals: Vec::new(),
            bfs_parent: FxHashMap::default(),
            bfs_seen: FxHashSet::default(),
            bfs_queue: VecDeque::new(),
        }
    }

    /// Extend the scope with one explanation path (no terminal change).
    fn absorb_path(&mut self, p: &LoosePath) {
        for &n in p.nodes() {
            self.scope_nodes.insert(n);
        }
        for e in p.grounded_edges() {
            self.scope_edges.insert(e);
        }
    }

    /// Cheapest in-scope connection from `t` to the current structure:
    /// BFS on unit costs (the §V-A policy), Dijkstra-like accumulation
    /// when edge weights are enabled.
    fn connect(&mut self, g: &Graph, t: NodeId) -> usize {
        if self.subgraph.is_empty() {
            self.subgraph.insert_node(t);
            return 0;
        }
        if self.subgraph.contains_node(t) {
            return 0;
        }
        // Unit-cost BFS over scope edges from t until a summary node,
        // on the session's reusable scratch.
        self.bfs_parent.clear();
        self.bfs_seen.clear();
        self.bfs_queue.clear();
        self.bfs_seen.insert(t);
        self.bfs_queue.push_back(t);
        let mut hit: Option<NodeId> = None;
        'bfs: while let Some(v) = self.bfs_queue.pop_front() {
            for &(nb, e) in g.neighbors(v) {
                if !self.scope_edges.contains(&e) || self.bfs_seen.contains(&nb) {
                    continue;
                }
                self.bfs_seen.insert(nb);
                self.bfs_parent.insert(nb, e);
                if self.subgraph.contains_node(nb) {
                    hit = Some(nb);
                    break 'bfs;
                }
                self.bfs_queue.push_back(nb);
            }
        }
        let Some(anchor) = hit else {
            // Disconnected within scope: keep the terminal as an
            // isolated mention, like the batch algorithms.
            self.subgraph.insert_node(t);
            return 0;
        };
        // Walk the parent chain anchor → t.
        let mut added = 0;
        let mut cur = anchor;
        while cur != t {
            let e = self.bfs_parent[&cur];
            if self.subgraph.insert_edge(g, e) {
                added += 1;
            }
            cur = g.edge(e).other(cur);
        }
        added
    }

    /// Raise a prize on `t` (mark it a terminal) and attach it through
    /// the cheapest in-scope connection — the "PCST adjusts only the
    /// node's prize" step without new scope. Returns edges added; `0`
    /// for an already-prized terminal.
    pub fn add_terminal(&mut self, g: &Graph, t: NodeId) -> usize {
        if self.terminals.contains(&t) {
            return 0;
        }
        self.terminals.push(t);
        self.connect(g, t)
    }

    /// Absorb one explained recommendation: the path joins the scope,
    /// the path's endpoints become terminals (prize `α`), and the new
    /// terminal is attached to the structure. Returns edges added.
    pub fn add_recommendation(&mut self, g: &Graph, path: &LoosePath) -> usize {
        self.absorb_path(path);
        let mut added = 0;
        for endpoint in [path.source(), path.target()] {
            added += self.add_terminal(g, endpoint);
        }
        added
    }

    /// The current summary snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            method: "PCST-incremental",
            scenario: self.scenario,
            subgraph: self.subgraph.clone(),
            terminals: self.terminals.clone(),
        }
    }

    /// Number of terminals (prized nodes) so far.
    pub fn terminal_count(&self) -> usize {
        self.terminals.len()
    }

    /// Current summary size `|E_S|`.
    pub fn size(&self) -> usize {
        self.subgraph.edge_count()
    }

    /// The configuration the session grows under.
    pub fn config(&self) -> &PcstConfig {
        &self.cfg
    }
}

/// The k-indexed series `S_1..S_K` for ranked explained recommendations.
pub fn incremental_pcst_series(
    g: &Graph,
    scenario: Scenario,
    cfg: PcstConfig,
    ranked_paths: &[LoosePath],
) -> Vec<Summary> {
    let mut inc = IncrementalPcst::new(scenario, cfg);
    let mut out = Vec::with_capacity(ranked_paths.len());
    for p in ranked_paths {
        inc.add_recommendation(g, p);
        out.push(inc.summary());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::table1_example;

    #[test]
    fn grows_monotonically_and_covers_terminals() {
        let ex = table1_example();
        let g = &ex.graph;
        let ranked: Vec<LoosePath> = ex.paths.clone();
        let series =
            incremental_pcst_series(g, Scenario::UserCentric, PcstConfig::default(), &ranked);
        assert_eq!(series.len(), ranked.len());
        for w in series.windows(2) {
            for e in w[0].subgraph.edges() {
                assert!(w[1].subgraph.contains_edge(*e), "S_k ⊄ S_{{k+1}}");
            }
        }
        let last = series.last().unwrap();
        assert_eq!(last.terminal_coverage(), 1.0);
    }

    #[test]
    fn consistency_is_maximal_by_construction() {
        let ex = table1_example();
        let g = &ex.graph;
        let series =
            incremental_pcst_series(g, Scenario::UserCentric, PcstConfig::default(), &ex.paths);
        // Jaccard(S_k, S_{k+1}) = |V_k| / |V_{k+1}| since V_k ⊆ V_{k+1}.
        for w in series.windows(2) {
            let j = w[0].subgraph.node_jaccard(&w[1].subgraph);
            let expect =
                w[0].subgraph.node_count() as f64 / w[1].subgraph.node_count().max(1) as f64;
            assert!((j - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn stays_within_scope() {
        let ex = table1_example();
        let g = &ex.graph;
        let mut inc = IncrementalPcst::new(Scenario::UserCentric, PcstConfig::default());
        let mut scope_edges: std::collections::HashSet<_> = Default::default();
        for p in &ex.paths {
            scope_edges.extend(p.grounded_edges());
            inc.add_recommendation(g, p);
        }
        for e in inc.summary().subgraph.edges() {
            assert!(scope_edges.contains(e), "edge outside the path union");
        }
    }

    #[test]
    fn duplicate_recommendations_are_idempotent() {
        let ex = table1_example();
        let g = &ex.graph;
        let mut inc = IncrementalPcst::new(Scenario::UserCentric, PcstConfig::default());
        inc.add_recommendation(g, &ex.paths[0]);
        let size = inc.size();
        let terms = inc.terminal_count();
        assert_eq!(inc.add_recommendation(g, &ex.paths[0]), 0);
        assert_eq!(inc.size(), size);
        assert_eq!(inc.terminal_count(), terms);
    }

    #[test]
    fn empty_session_is_empty() {
        let inc = IncrementalPcst::new(Scenario::UserGroup, PcstConfig::default());
        assert_eq!(inc.size(), 0);
        assert_eq!(inc.terminal_count(), 0);
        assert!(inc.summary().subgraph.is_empty());
        assert_eq!(inc.config().terminal_prize, 1.0);
    }
}
