//! Algorithm 2 — PCST-based summary explanations.
//!
//! The prize-collecting variant relaxes the Steiner connectivity
//! constraint: every terminal carries a prize and the solver may forgo a
//! prize instead of paying for the connection. The paper's Algorithm 2 is
//! a Prim-style greedy over a priority queue seeded with node prizes and a
//! disjoint-set forest; §V-A fixes the experimental policy to prizes
//! `p(v) = 1` for terminals / `0` otherwise and *ignores edge weights*
//! (unit costs), after finding weighted PCST summaries "excessively
//! large".
//!
//! Two readings of the pseudocode's queue (`V` = the whole graph vs the
//! relevant neighbourhood) differ enormously on a 19k-node KG; we follow
//! the behaviour the paper reports — summaries larger than ST but far
//! smaller than the graph, built from the explanation paths' surroundings
//! — by running the growth on a configurable [`PcstScope`] (default: the
//! union of the input paths expanded one hop around terminals). The
//! growth itself is faithful to Algorithm 2: pop the highest-priority
//! node (prize first), account its prize, relax incident edges through
//! the disjoint-set forest, and adopt an edge when it improves the
//! neighbor's connection cost.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use xsum_graph::{EdgeId, FxHashMap, FxHashSet, Graph, NodeId, Subgraph, UnionFind};

use crate::input::SummaryInput;
use crate::summary::Summary;

/// Which part of the graph the PCST growth may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcstScope {
    /// Exactly the nodes/edges of the input explanation paths.
    UnionOfPaths,
    /// The union of paths plus an `h`-hop neighbourhood around terminals
    /// (the paper-consistent default with `h = 1`).
    ExpandedUnion(usize),
    /// The whole knowledge graph (the literal pseudocode reading; only
    /// sensible on small graphs).
    FullGraph,
}

/// PCST summarizer parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcstConfig {
    /// Prize `α` for terminal nodes (§V-A: 1.0).
    pub terminal_prize: f64,
    /// Prize `β` for non-terminal nodes (§V-A: 0.0).
    pub nonterminal_prize: f64,
    /// Use the KG edge weights as costs; `false` (the §V-A setting) uses
    /// unit costs.
    pub use_edge_weights: bool,
    /// Growth scope (see [`PcstScope`]).
    pub scope: PcstScope,
    /// Prune non-terminal leaves after growth.
    pub prune: bool,
}

impl Default for PcstConfig {
    fn default() -> Self {
        // The §V-A behaviour: unit costs, 1/0 prizes, growth over the
        // explanation paths' own union, and no post-pruning — PCST "creates
        // larger trees than ST because, without edge weights to guide path
        // minimization, it focuses solely on connecting high-prize nodes,
        // often including additional nodes to ensure connectivity".
        PcstConfig {
            terminal_prize: 1.0,
            nonterminal_prize: 0.0,
            use_edge_weights: false,
            scope: PcstScope::UnionOfPaths,
            prune: false,
        }
    }
}

/// Compute the PCST-based summary explanation for `input` (Algorithm 2).
pub fn pcst_summary(g: &Graph, input: &SummaryInput, cfg: &PcstConfig) -> Summary {
    let scope = build_scope(g, input, cfg.scope);
    let subgraph = pcst_grow(g, &scope, input, cfg);
    Summary {
        method: "PCST",
        scenario: input.scenario,
        subgraph,
        terminals: input.terminals.clone(),
    }
}

/// The node/edge sets the growth is restricted to.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scope {
    pub(crate) nodes: FxHashSet<NodeId>,
    pub(crate) edges: FxHashSet<EdgeId>,
}

pub(crate) fn build_scope(g: &Graph, input: &SummaryInput, scope: PcstScope) -> Scope {
    let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
    let mut edges: FxHashSet<EdgeId> = FxHashSet::default();
    match scope {
        PcstScope::FullGraph => {
            nodes.extend(g.node_ids());
            edges.extend(g.edge_ids());
            return Scope { nodes, edges };
        }
        PcstScope::UnionOfPaths | PcstScope::ExpandedUnion(_) => {
            for p in &input.paths {
                nodes.extend(p.nodes().iter().copied());
                edges.extend(p.grounded_edges());
            }
            nodes.extend(input.terminals.iter().copied());
        }
    }
    if let PcstScope::ExpandedUnion(hops) = scope {
        // BFS expansion around terminals.
        let mut frontier: Vec<NodeId> = input.terminals.clone();
        for _ in 0..hops {
            let mut next = Vec::new();
            for n in frontier.drain(..) {
                for &(nb, _) in g.neighbors(n) {
                    if nodes.insert(nb) {
                        next.push(nb);
                    }
                }
            }
            frontier = next;
        }
    }
    // Close the edge set over the node set.
    for &n in &nodes {
        for &(nb, e) in g.neighbors(n) {
            if nodes.contains(&nb) {
                edges.insert(e);
            }
        }
    }
    Scope { nodes, edges }
}

#[derive(PartialEq)]
struct QueueEntry {
    /// Lower = extracted earlier ("highest priority" of the pseudocode:
    /// prizes enter as −p(v), adopted connections as their edge cost).
    key: f64,
    node: NodeId,
    via: Option<EdgeId>,
}

impl Eq for QueueEntry {}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The Algorithm 2 growth loop over a scope, with the default uniform
/// (α/β) prize assignment.
fn pcst_grow(g: &Graph, scope: &Scope, input: &SummaryInput, cfg: &PcstConfig) -> Subgraph {
    let term_set: FxHashSet<NodeId> = input.terminals.iter().copied().collect();
    let prize = move |n: NodeId| -> f64 {
        if term_set.contains(&n) {
            cfg.terminal_prize
        } else {
            cfg.nonterminal_prize
        }
    };
    pcst_grow_with_prizes(g, scope, input, cfg, &prize)
}

/// The Algorithm 2 growth loop with an arbitrary prize function — the
/// extension point for the paper's future-work "additional PCST prize
/// assignment policies" (see [`crate::prizes`]).
pub(crate) fn pcst_grow_with_prizes(
    g: &Graph,
    scope: &Scope,
    input: &SummaryInput,
    cfg: &PcstConfig,
    prize: &dyn Fn(NodeId) -> f64,
) -> Subgraph {
    let term_set: FxHashSet<NodeId> = input.terminals.iter().copied().collect();
    let edge_cost = |e: EdgeId| -> f64 {
        if cfg.use_edge_weights {
            g.weight(e).max(0.0)
        } else {
            1.0
        }
    };

    let mut uf = UnionFind::new(g.node_count());
    let mut in_solution: FxHashSet<NodeId> = FxHashSet::default();
    let mut chosen_edges: FxHashSet<EdgeId> = FxHashSet::default();
    // Q[v]: current best adoption key per node.
    let mut best_key: FxHashMap<NodeId, f64> = FxHashMap::default();
    let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();

    // Seed: every scope node enters with priority −p(v); with the 1/0
    // policy only terminals get a head start.
    for &n in &scope.nodes {
        let key = -prize(n);
        // Non-terminals with zero prize wait until an edge adopts them.
        if key < 0.0 {
            best_key.insert(n, key);
            heap.push(QueueEntry {
                key,
                node: n,
                via: None,
            });
        }
    }

    while let Some(QueueEntry { key, node, via }) = heap.pop() {
        if in_solution.contains(&node) {
            continue;
        }
        if let Some(best) = best_key.get(&node) {
            if key > *best + 1e-12 {
                continue; // stale entry
            }
        }
        // Adopt the node (and its connecting edge, if any).
        if let Some(e) = via {
            let edge = g.edge(e);
            if uf.connected(edge.src.index(), edge.dst.index()) {
                continue; // became redundant since queued
            }
            uf.union(edge.src.index(), edge.dst.index());
            chosen_edges.insert(e);
        }
        in_solution.insert(node);

        // Relax incident scope edges.
        for &(nb, e) in g.neighbors(node) {
            if !scope.edges.contains(&e) {
                continue;
            }
            if uf.connected(node.index(), nb.index()) {
                continue;
            }
            // Pseudocode line 15: `find(u) ≠ find(v)` also covers the case
            // where both endpoints were already adopted into different
            // clusters — the edge merges them ("including additional nodes
            // to ensure connectivity").
            if in_solution.contains(&nb) {
                uf.union(node.index(), nb.index());
                chosen_edges.insert(e);
                continue;
            }
            // Pseudocode line 16–21: cost < Q[v] adopts the edge; the
            // neighbor's prize offsets the cost.
            let cand = edge_cost(e) - prize(nb);
            let improves = match best_key.get(&nb) {
                Some(cur) => cand < *cur - 1e-12,
                None => cand <= cfg.terminal_prize, // affordable adoption
            };
            if improves {
                best_key.insert(nb, cand);
                heap.push(QueueEntry {
                    key: cand,
                    node: nb,
                    via: Some(e),
                });
            }
        }
    }

    let mut edges: Vec<EdgeId> = chosen_edges.into_iter().collect();
    if cfg.prune {
        edges = prune_leaves(g, edges, &term_set);
    }
    let mut out = Subgraph::from_edges(g, edges);
    // Forgone terminals still appear as isolated prize nodes: the summary
    // statement covers them even when connecting was not worth the cost.
    for t in &input.terminals {
        out.insert_node(*t);
    }
    out
}

/// Iteratively drop degree-1 non-terminal nodes.
fn prune_leaves(g: &Graph, edges: Vec<EdgeId>, terminals: &FxHashSet<NodeId>) -> Vec<EdgeId> {
    let mut edge_set: FxHashSet<EdgeId> = edges.into_iter().collect();
    loop {
        let mut degree: FxHashMap<NodeId, u32> = FxHashMap::default();
        for e in &edge_set {
            let edge = g.edge(*e);
            *degree.entry(edge.src).or_default() += 1;
            *degree.entry(edge.dst).or_default() += 1;
        }
        let removable: Vec<EdgeId> = edge_set
            .iter()
            .copied()
            .filter(|e| {
                let edge = g.edge(*e);
                (degree[&edge.src] == 1 && !terminals.contains(&edge.src))
                    || (degree[&edge.dst] == 1 && !terminals.contains(&edge.dst))
            })
            .collect();
        if removable.is_empty() {
            let mut v: Vec<EdgeId> = edge_set.into_iter().collect();
            v.sort_unstable();
            return v;
        }
        for e in removable {
            edge_set.remove(&e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsum_graph::LoosePath;
    use xsum_kg::{KgBuilder, KnowledgeGraph, RatingMatrix, WeightConfig};

    /// 1 user, 3 items, 1 shared entity + 1 decoy entity.
    fn fixture() -> (KnowledgeGraph, Vec<NodeId>, Vec<LoosePath>) {
        let mut m = RatingMatrix::new(1, 3);
        m.rate(0, 0, 5.0, 1.0);
        let mut b = KgBuilder::new(1, 3, 2, WeightConfig::paper_default(1.0));
        b.link_item(0, 0).link_item(1, 0).link_item(2, 0);
        b.link_item(2, 1);
        let kg = b.build(&m);
        let g = &kg.graph;
        let (u, i0, i1, i2) = (
            kg.user_node(0),
            kg.item_node(0),
            kg.item_node(1),
            kg.item_node(2),
        );
        let hub = kg.entity_node(0);
        let p1 = LoosePath::ground(g, vec![u, i0, hub, i1]);
        let p2 = LoosePath::ground(g, vec![u, i0, hub, i2]);
        assert!(p1.is_faithful() && p2.is_faithful());
        (kg, vec![u, i0, i1, i2, hub], vec![p1, p2])
    }

    #[test]
    fn covers_all_terminals_on_connected_scope() {
        let (kg, _, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let s = pcst_summary(&kg.graph, &input, &PcstConfig::default());
        assert_eq!(s.terminal_coverage(), 1.0);
        assert!(s.subgraph.edge_count() >= input.terminals.len() - 1);
    }

    #[test]
    fn union_scope_stays_within_paths() {
        let (kg, n, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths.clone());
        let cfg = PcstConfig {
            scope: PcstScope::UnionOfPaths,
            ..PcstConfig::default()
        };
        let s = pcst_summary(&kg.graph, &input, &cfg);
        // The decoy entity (n[4] is hub; decoy is entity 1) is outside the
        // union of paths.
        let decoy = kg.entity_node(1);
        assert!(!s.subgraph.contains_node(decoy));
        let _ = n;
    }

    #[test]
    fn full_graph_scope_matches_literal_pseudocode() {
        let (kg, _, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let cfg = PcstConfig {
            scope: PcstScope::FullGraph,
            ..PcstConfig::default()
        };
        let s = pcst_summary(&kg.graph, &input, &cfg);
        assert_eq!(s.terminal_coverage(), 1.0);
    }

    #[test]
    fn prune_removes_useless_branches() {
        let (kg, _, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let pruned = pcst_summary(
            &kg.graph,
            &input,
            &PcstConfig {
                prune: true,
                ..PcstConfig::default()
            },
        );
        let unpruned = pcst_summary(
            &kg.graph,
            &input,
            &PcstConfig {
                prune: false,
                ..PcstConfig::default()
            },
        );
        assert!(pruned.subgraph.edge_count() <= unpruned.subgraph.edge_count());
        // Pruned output has no non-terminal leaves.
        let g = &kg.graph;
        let term: FxHashSet<NodeId> = input.terminals.iter().copied().collect();
        let mut degree: FxHashMap<NodeId, u32> = FxHashMap::default();
        for e in pruned.subgraph.edges() {
            let edge = g.edge(*e);
            *degree.entry(edge.src).or_default() += 1;
            *degree.entry(edge.dst).or_default() += 1;
        }
        for (n, d) in degree {
            assert!(d > 1 || term.contains(&n), "non-terminal leaf survived");
        }
    }

    #[test]
    fn empty_input_yields_empty_summary() {
        let (kg, _, _) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), vec![]);
        let s = pcst_summary(&kg.graph, &input, &PcstConfig::default());
        // Only the user terminal, no edges required.
        assert!(s.subgraph.edge_count() <= 1);
        assert!(s.subgraph.contains_node(kg.user_node(0)));
    }

    #[test]
    fn isolated_terminal_is_kept_as_node() {
        // A terminal with no scope connection must still be mentioned.
        let mut m = RatingMatrix::new(1, 2);
        m.rate(0, 0, 5.0, 1.0);
        let kg = KgBuilder::new(1, 2, 0, WeightConfig::paper_default(1.0)).build(&m);
        // Item 1 has no edges at all.
        let p = LoosePath::ground(&kg.graph, vec![kg.user_node(0), kg.item_node(0)]);
        let mut input = SummaryInput::user_centric(kg.user_node(0), vec![p]);
        input.terminals.push(kg.item_node(1));
        input.terminals.sort_unstable();
        let s = pcst_summary(&kg.graph, &input, &PcstConfig::default());
        assert!(s.subgraph.contains_node(kg.item_node(1)));
        assert!(s.terminal_coverage() > 0.99);
    }

    #[test]
    fn weighted_costs_produce_no_larger_summaries_than_default_scope() {
        let (kg, _, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let weighted = pcst_summary(
            &kg.graph,
            &input,
            &PcstConfig {
                use_edge_weights: true,
                ..PcstConfig::default()
            },
        );
        assert!(weighted.terminal_coverage() > 0.0);
    }
}
