//! The per-replica circuit-breaker state machine, extracted from
//! [`shard`](crate::shard) so the protocol is a standalone, model-
//! checkable unit: `tests/model_concurrency.rs` drives *this* code
//! (behind a facade mutex) under the loom-shim scheduler to pin that
//! Closed → Open → HalfOpen transitions stay race-free, while
//! [`ShardedEngine`](crate::ShardedEngine) embeds one breaker per
//! replica for production routing.
//!
//! Time is virtual — a caller-supplied monotone `now` (the sharded
//! engine passes its per-serve-call `serve_clock`) — so backoff is
//! deterministic under test and under the model checker, which has no
//! clock at all.

/// The health of one replica's circuit breaker (see the `shard`
/// module-level *Failure semantics*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving normally; failures are counted toward the threshold.
    Closed,
    /// Tripped: routing prefers other replicas until the cooldown
    /// (measured in serve calls) elapses.
    Open,
    /// Cooldown elapsed: the replica is offered traffic as a probe —
    /// one success closes it, one failure re-opens it with doubled
    /// backoff.
    HalfOpen,
}

/// Tuning knobs of the per-replica circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitConfig {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// Initial cooldown, in serve calls, before an open breaker is
    /// probed half-open.
    pub cooldown: u32,
    /// Backoff cap: each failed half-open probe doubles the cooldown
    /// up to this many serve calls.
    pub max_cooldown: u32,
}

impl Default for CircuitConfig {
    fn default() -> Self {
        CircuitConfig {
            failure_threshold: 3,
            cooldown: 8,
            max_cooldown: 64,
        }
    }
}

/// One replica's breaker: consecutive-failure trip, virtual-time
/// cooldown, half-open probe with doubled-and-capped backoff.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBreaker {
    cfg: CircuitConfig,
    state: BreakerState,
    failures: u32,
    opened_at: u64,
    cooldown: u32,
}

impl CircuitBreaker {
    pub fn new(cfg: CircuitConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            failures: 0,
            opened_at: 0,
            cooldown: cfg.cooldown,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether routing should offer this replica traffic (closed or
    /// probing half-open).
    pub fn admits(&self) -> bool {
        self.state != BreakerState::Open
    }

    /// Advance virtual time: promote a cooled-down open breaker to its
    /// half-open probe. `now` must be monotone across calls.
    pub fn tick(&mut self, now: u64) {
        if self.state == BreakerState::Open
            && now.saturating_sub(self.opened_at) >= self.cooldown as u64
        {
            self.state = BreakerState::HalfOpen;
        }
    }

    /// A successful serve closes the breaker and resets failure count
    /// and backoff.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.failures = 0;
        self.cooldown = self.cfg.cooldown;
    }

    /// A failed serve: count toward the trip threshold when closed;
    /// re-open with doubled (capped) backoff when open or probing.
    pub fn record_failure(&mut self, now: u64) {
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                }
            }
            BreakerState::Open | BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = now;
                self.cooldown = self
                    .cooldown
                    .saturating_mul(2)
                    .min(self.cfg.max_cooldown.max(1));
            }
        }
    }

    /// Structural invariants, asserted by the model-concurrency suite
    /// after every step of every explored interleaving. Cheap enough to
    /// call anywhere; panics (= fails the model) on violation.
    pub fn assert_invariants(&self) {
        assert!(
            self.cooldown >= self.cfg.cooldown.min(self.cfg.max_cooldown.max(1)),
            "backoff fell below the configured floor"
        );
        assert!(
            self.cooldown <= self.cfg.cooldown.max(self.cfg.max_cooldown.max(1)),
            "backoff exceeded the configured cap"
        );
        match self.state {
            BreakerState::Closed => {}
            // An open or probing breaker never carries a partial
            // failure count toward a *second* trip: the count only
            // matters while closed.
            BreakerState::Open | BreakerState::HalfOpen => {
                assert!(
                    self.failures >= self.cfg.failure_threshold || self.failures == 0,
                    "tripped breaker with a partial failure count"
                );
            }
        }
    }
}
