//! Goemans–Williamson moat-growing 2-approximation for the
//! prize-collecting Steiner tree — the algorithm behind the paper's
//! complexity claim for Algorithm 2 ("a 2-approximation \[54\] ... in
//! O((|V|+|E|) log |V|)").
//!
//! This is the classical unrooted GW scheme:
//!
//! 1. **Growth.** Every node starts as a singleton cluster with potential
//!    equal to its prize. Active clusters grow a dual `y` uniformly; an
//!    edge becomes *tight* when the duals loaded on it reach its cost
//!    (merging the two clusters), and a cluster *deactivates* when its
//!    dual spend exhausts its total prize.
//! 2. **Strong pruning.** Each tree of the resulting forest is pruned
//!    bottom-up: a subtree survives only if its net worth
//!    (prize − connection cost) is positive.
//!
//! The implementation is event-driven over the scope subgraph (the same
//! [`PcstScope`](crate::PcstScope) machinery as Algorithm 2) and entirely
//! deterministic. It serves as the ablation-grade alternative PCST solver
//! in the benches and as a differential-testing oracle for Algorithm 2's
//! greedy (both must cover terminals on connected scopes with the 1/0
//! prize policy).

use xsum_graph::{EdgeId, FxHashMap, FxHashSet, Graph, NodeId, Subgraph, UnionFind};

use crate::input::SummaryInput;
use crate::pcst::{build_scope, PcstConfig};
use crate::summary::Summary;

/// Compute a GW-PCST summary explanation using the configuration's scope,
/// prizes, and edge costs.
pub fn gw_pcst_summary(g: &Graph, input: &SummaryInput, cfg: &PcstConfig) -> Summary {
    let scope = build_scope(g, input, cfg.scope);

    let term_set: FxHashSet<NodeId> = input.terminals.iter().copied().collect();
    let prize = |n: NodeId| -> f64 {
        if term_set.contains(&n) {
            cfg.terminal_prize
        } else {
            cfg.nonterminal_prize
        }
    };
    let cost = |e: EdgeId| -> f64 {
        if cfg.use_edge_weights {
            g.weight(e).max(0.0)
        } else {
            1.0
        }
    };

    // Dense-index scope nodes.
    let mut nodes: Vec<NodeId> = scope.nodes.iter().copied().collect();
    nodes.sort_unstable();
    let index: FxHashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut edges: Vec<EdgeId> = scope.edges.iter().copied().collect();
    edges.sort_unstable();

    let forest = gw_growth(g, &nodes, &index, &edges, &prize, &cost);
    let kept = strong_prune(g, &nodes, &index, &forest, &prize, &cost);

    let mut out = Subgraph::from_edges(g, kept);
    for t in &input.terminals {
        out.insert_node(*t);
    }
    Summary {
        method: "GW-PCST",
        scenario: input.scenario,
        subgraph: out,
        terminals: input.terminals.clone(),
    }
}

/// Growth phase: returns the merged (tight) edges.
fn gw_growth(
    g: &Graph,
    nodes: &[NodeId],
    index: &FxHashMap<NodeId, usize>,
    edges: &[EdgeId],
    prize: &dyn Fn(NodeId) -> f64,
    cost: &dyn Fn(EdgeId) -> f64,
) -> Vec<EdgeId> {
    let n = nodes.len();
    let mut uf = UnionFind::new(n);
    // Per-cluster (by representative) state.
    let mut potential: Vec<f64> = nodes.iter().map(|v| prize(*v)).collect();
    let mut active: Vec<bool> = potential.iter().map(|p| *p > 1e-12).collect();
    // Per-node accumulated dual (moat radius around the node's cluster
    // side of each incident edge). We track per-edge load from each side.
    let mut load: FxHashMap<EdgeId, f64> = FxHashMap::default();
    let mut forest = Vec::new();

    // Upper bound on events: each merges or deactivates a cluster.
    for _ in 0..2 * n + 1 {
        let any_active = (0..n).any(|i| uf.find(i) == i && active[i]);
        if !any_active {
            break;
        }

        // Find the minimal feasible growth delta.
        let mut best_edge: Option<(f64, EdgeId)> = None;
        for &e in edges {
            let edge = g.edge(e);
            let (Some(&ia), Some(&ib)) = (index.get(&edge.src), index.get(&edge.dst)) else {
                continue;
            };
            let (ra, rb) = (uf.find(ia), uf.find(ib));
            if ra == rb {
                continue;
            }
            let growing = active[ra] as u32 + active[rb] as u32;
            if growing == 0 {
                continue;
            }
            let slack = cost(e) - load.get(&e).copied().unwrap_or(0.0);
            let dt = slack.max(0.0) / growing as f64;
            if best_edge.is_none_or(|(bd, be)| dt < bd - 1e-15 || (dt <= bd + 1e-15 && e < be)) {
                best_edge = Some((dt, e));
            }
        }
        let mut best_cluster: Option<(f64, usize)> = None;
        for i in 0..n {
            if uf.find(i) == i && active[i] {
                let dt = potential[i];
                if best_cluster
                    .is_none_or(|(bd, bi)| dt < bd - 1e-15 || (dt <= bd + 1e-15 && i < bi))
                {
                    best_cluster = Some((dt, i));
                }
            }
        }

        let delta = match (best_edge, best_cluster) {
            (Some((de, _)), Some((dc, _))) => de.min(dc),
            (Some((de, _)), None) => de,
            (None, Some((dc, _))) => dc,
            (None, None) => break,
        };

        // Grow: charge active clusters, load edges on active frontiers.
        for i in 0..n {
            if uf.find(i) == i && active[i] {
                potential[i] -= delta;
            }
        }
        for &e in edges {
            let edge = g.edge(e);
            let (Some(&ia), Some(&ib)) = (index.get(&edge.src), index.get(&edge.dst)) else {
                continue;
            };
            let (ra, rb) = (uf.find(ia), uf.find(ib));
            if ra == rb {
                continue;
            }
            let growing = active[ra] as u32 + active[rb] as u32;
            if growing > 0 {
                *load.entry(e).or_insert(0.0) += delta * growing as f64;
            }
        }

        // Fire one event (ties: edge events first for connectivity).
        let edge_fired = if let Some((_, e)) = best_edge {
            let edge = g.edge(e);
            let ia = index[&edge.src];
            let ib = index[&edge.dst];
            let (ra, rb) = (uf.find(ia), uf.find(ib));
            let slack = cost(e) - load.get(&e).copied().unwrap_or(0.0);
            if ra != rb && slack <= 1e-9 {
                let (pa, pb) = (potential[ra], potential[rb]);
                let (aa, ab) = (active[ra], active[rb]);
                uf.union(ra, rb);
                let root = uf.find(ra);
                potential[root] = pa + pb;
                active[root] = (aa || ab) && potential[root] > 1e-12;
                forest.push(e);
                true
            } else {
                false
            }
        } else {
            false
        };
        if !edge_fired {
            // Deactivate the exhausted cluster.
            let mut fired = false;
            for i in 0..n {
                if uf.find(i) == i && active[i] && potential[i] <= 1e-9 {
                    active[i] = false;
                    fired = true;
                    break;
                }
            }
            if !fired {
                break; // numerical stalemate; stop growing
            }
        }
    }
    forest
}

/// Strong pruning: per tree, keep the subtrees whose prize exceeds their
/// connection cost.
fn strong_prune(
    g: &Graph,
    nodes: &[NodeId],
    index: &FxHashMap<NodeId, usize>,
    forest: &[EdgeId],
    prize: &dyn Fn(NodeId) -> f64,
    cost: &dyn Fn(EdgeId) -> f64,
) -> Vec<EdgeId> {
    // Adjacency over forest edges.
    let mut adj: FxHashMap<usize, Vec<(usize, EdgeId)>> = FxHashMap::default();
    for &e in forest {
        let edge = g.edge(e);
        let (ia, ib) = (index[&edge.src], index[&edge.dst]);
        adj.entry(ia).or_default().push((ib, e));
        adj.entry(ib).or_default().push((ia, e));
    }

    let mut kept: Vec<EdgeId> = Vec::new();
    let mut visited = vec![false; nodes.len()];
    for root in 0..nodes.len() {
        if visited[root] || !adj.contains_key(&root) {
            continue;
        }
        // Iterative post-order rooted at `root`.
        let mut order: Vec<(usize, Option<(usize, EdgeId)>)> = Vec::new();
        let mut stack = vec![(root, None)];
        visited[root] = true;
        while let Some((v, parent)) = stack.pop() {
            order.push((v, parent));
            for &(c, e) in adj.get(&v).map(|v| v.as_slice()).unwrap_or(&[]) {
                if !visited[c] {
                    visited[c] = true;
                    stack.push((c, Some((v, e))));
                }
            }
        }
        // Net value bottom-up; record which child edges survive.
        let mut value: FxHashMap<usize, f64> = FxHashMap::default();
        for &(v, _) in &order {
            value.insert(v, prize(nodes[v]));
        }
        let mut survives: FxHashSet<EdgeId> = FxHashSet::default();
        for &(v, parent) in order.iter().rev() {
            if let Some((p, e)) = parent {
                let net = value[&v] - cost(e);
                if net > 1e-12 {
                    *value.get_mut(&p).expect("parent visited") += net;
                    survives.insert(e);
                }
            }
        }
        // Keep surviving edges whose entire path to the root survives:
        // walk down from root again.
        let mut keep_stack = vec![root];
        let mut reachable: FxHashSet<usize> = FxHashSet::default();
        reachable.insert(root);
        while let Some(v) = keep_stack.pop() {
            for &(c, e) in adj.get(&v).map(|v| v.as_slice()).unwrap_or(&[]) {
                if !reachable.contains(&c) && survives.contains(&e) {
                    reachable.insert(c);
                    kept.push(e);
                    keep_stack.push(c);
                }
            }
        }
    }
    kept.sort_unstable();
    kept.dedup();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcst::PcstScope;
    use xsum_graph::LoosePath;
    use xsum_kg::{KgBuilder, KnowledgeGraph, RatingMatrix, WeightConfig};

    fn fixture() -> (KnowledgeGraph, Vec<LoosePath>) {
        let mut m = RatingMatrix::new(1, 3);
        m.rate(0, 0, 5.0, 1.0);
        let mut b = KgBuilder::new(1, 3, 2, WeightConfig::paper_default(1.0));
        b.link_item(0, 0).link_item(1, 0).link_item(2, 0);
        b.link_item(2, 1);
        let kg = b.build(&m);
        let g = &kg.graph;
        let (u, i0, i1, i2) = (
            kg.user_node(0),
            kg.item_node(0),
            kg.item_node(1),
            kg.item_node(2),
        );
        let hub = kg.entity_node(0);
        let p1 = LoosePath::ground(g, vec![u, i0, hub, i1]);
        let p2 = LoosePath::ground(g, vec![u, i0, hub, i2]);
        (kg, vec![p1, p2])
    }

    #[test]
    fn gw_covers_terminals_on_connected_scope() {
        let (kg, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let s = gw_pcst_summary(&kg.graph, &input, &PcstConfig::default());
        assert_eq!(s.method, "GW-PCST");
        assert_eq!(
            s.terminal_coverage(),
            1.0,
            "uniform prizes, unit costs: all connected"
        );
    }

    #[test]
    fn gw_output_is_acyclic() {
        let (kg, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let s = gw_pcst_summary(&kg.graph, &input, &PcstConfig::default());
        // Forest: edges ≤ nodes − components; a tree per component.
        assert!(s.subgraph.edge_count() < s.subgraph.node_count());
    }

    #[test]
    fn zero_prizes_yield_no_edges() {
        let (kg, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let cfg = PcstConfig {
            terminal_prize: 0.0,
            nonterminal_prize: 0.0,
            ..PcstConfig::default()
        };
        let s = gw_pcst_summary(&kg.graph, &input, &cfg);
        assert_eq!(s.subgraph.edge_count(), 0, "nothing is worth connecting");
        // Terminals still reported as isolated nodes.
        assert_eq!(s.terminal_coverage(), 1.0);
    }

    #[test]
    fn expensive_edges_are_forgone() {
        let (kg, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        // Edge weights as costs: interaction edge costs 5 ≫ prize 1, so
        // connecting through it cannot pay off.
        let cfg = PcstConfig {
            use_edge_weights: true,
            scope: PcstScope::UnionOfPaths,
            ..PcstConfig::default()
        };
        let s = gw_pcst_summary(&kg.graph, &input, &cfg);
        let interaction = kg
            .graph
            .find_edge(kg.user_node(0), kg.item_node(0))
            .unwrap();
        assert!(
            !s.subgraph.contains_edge(interaction),
            "a cost-5 edge cannot be bought with prize-2 moats"
        );
    }

    #[test]
    fn agrees_with_algorithm2_on_coverage() {
        let (kg, paths) = fixture();
        let input = SummaryInput::user_centric(kg.user_node(0), paths);
        let cfg = PcstConfig::default();
        let gw = gw_pcst_summary(&kg.graph, &input, &cfg);
        let greedy = crate::pcst::pcst_summary(&kg.graph, &input, &cfg);
        assert_eq!(gw.terminal_coverage(), greedy.terminal_coverage());
    }
}
