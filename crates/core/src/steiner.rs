//! Algorithm 1 — ST-based summary explanations.
//!
//! The classic Kou–Markowsky–Berman construction the paper's pseudocode
//! follows line by line:
//!
//! 1. Dijkstra from every terminal gives the metric closure over `T`;
//! 2. Kruskal's MST of that complete terminal graph;
//! 3. each MST edge is expanded back into its underlying shortest path;
//! 4. the expanded edge set is cleaned up: re-MST over the induced
//!    subgraph and repeated pruning of non-terminal leaves (the standard
//!    KMB post-passes that keep the 2-approximation guarantee).
//!
//! Edge costs come from the §IV-A transform of the λ-boosted weights
//! (Eq. 1): `cost(e) = (max_w + δ) − w(e)`, positive by construction, so
//! minimizing cost simultaneously minimizes edge count and maximizes
//! summed weight (see DESIGN.md §3.1 for why the paper's "multiply by −1"
//! is realized this way).
//!
//! Terminals unreachable from one another yield a Steiner *forest* plus
//! isolated terminal nodes — the summary still mentions every terminal,
//! mirroring the paper's requirement `R_u ⊆ V_S`.

use xsum_graph::{
    dijkstra, kruskal, EdgeCosts, EdgeId, FxHashMap, FxHashSet, Graph, MstEdge, NodeId, Subgraph,
};

use crate::input::SummaryInput;
use crate::summary::Summary;
use crate::weighting::adjusted_weights;

/// Parameters of the ST summarizer.
#[derive(Debug, Clone, Copy)]
pub struct SteinerConfig {
    /// Eq. 1 path-frequency boost (the paper sweeps 0.01 / 1 / 100).
    pub lambda: f64,
    /// Base edge cost of the weight→cost transform (edge-count pressure).
    pub delta: f64,
}

impl Default for SteinerConfig {
    fn default() -> Self {
        SteinerConfig {
            lambda: 1.0,
            delta: 1.0,
        }
    }
}

/// Compute the ST-based summary explanation for `input` (Algorithm 1).
///
/// Costs are anchored on the *unadjusted* maximum weight, so Eq. 1's boost
/// genuinely cheapens path edges instead of inflating the anchor: with a
/// large λ, edges shared by many explanation paths approach the cost floor
/// and the summary hugs the input explanations (whose weighted hops are
/// user–item interactions — the mechanism behind the paper's "ST's
/// relevance improves as λ increases" and its λ=100 actionability edge).
pub fn steiner_summary(g: &Graph, input: &SummaryInput, cfg: &SteinerConfig) -> Summary {
    let costs = steiner_costs(g, input, cfg);
    let subgraph = steiner_tree(g, &costs, &input.terminals);
    Summary {
        method: "ST",
        scenario: input.scenario,
        subgraph,
        terminals: input.terminals.clone(),
    }
}

/// The exact edge-cost table [`steiner_summary`] searches with: Eq. 1
/// boosted weights anchored on the unadjusted maximum, floored at
/// `δ/100`. Exposed so tests and ablations can reason about the same
/// costs the summarizer used.
pub fn steiner_costs(g: &Graph, input: &SummaryInput, cfg: &SteinerConfig) -> EdgeCosts {
    let weights = adjusted_weights(g, input, cfg.lambda);
    let base_max = g.edge_ids().map(|e| g.weight(e)).fold(0.0f64, f64::max);
    let floor = cfg.delta * 1e-2;
    EdgeCosts(
        weights
            .iter()
            .map(|w| ((base_max + cfg.delta) - w).max(floor))
            .collect(),
    )
}

/// The raw KMB Steiner construction over explicit costs and terminals.
///
/// Exposed for the ablation benches; [`steiner_summary`] is the paper's
/// entry point.
pub fn steiner_tree(g: &Graph, costs: &EdgeCosts, terminals: &[NodeId]) -> Subgraph {
    let mut terminals: Vec<NodeId> = terminals.to_vec();
    terminals.sort_unstable();
    terminals.dedup();

    let mut out = Subgraph::new();
    match terminals.len() {
        0 => return out,
        1 => {
            out.insert_node(terminals[0]);
            return out;
        }
        _ => {}
    }

    // 1. Shortest paths between all terminal pairs (|T| Dijkstra runs).
    let runs: Vec<_> = terminals
        .iter()
        .map(|t| dijkstra(g, costs, *t, &terminals))
        .collect();

    // 2. Metric closure: complete graph over terminal indices. The
    //    payload indexes the (source_run, target_terminal) pair so step 3
    //    can reconstruct the underlying path.
    let mut closure: Vec<MstEdge> = Vec::with_capacity(terminals.len() * terminals.len() / 2);
    let mut payloads: Vec<(usize, NodeId)> = Vec::new();
    for (si, run) in runs.iter().enumerate() {
        for (ti, t) in terminals.iter().enumerate().skip(si + 1) {
            if let Some(d) = run.distance(*t) {
                closure.push(MstEdge {
                    a: si,
                    b: ti,
                    cost: d,
                    payload: payloads.len(),
                });
                payloads.push((si, *t));
            }
        }
    }
    let mst = kruskal(terminals.len(), &closure);

    // 3. Expand each closure edge into its shortest path.
    let mut edge_set: FxHashSet<EdgeId> = FxHashSet::default();
    for ce in &mst {
        let (si, target) = payloads[ce.payload];
        let path = runs[si]
            .path_to(g, target)
            .expect("closure edges only exist for reachable pairs");
        edge_set.extend(path);
    }

    // 4a. Re-MST over the expanded subgraph to break any cycles formed by
    //     overlapping shortest paths.
    let pruned = subgraph_mst(g, costs, &edge_set);

    // 4b. Prune non-terminal leaves repeatedly.
    let term_set: FxHashSet<NodeId> = terminals.iter().copied().collect();
    let final_edges = prune_nonterminal_leaves(g, pruned, &term_set);

    let mut out = Subgraph::from_edges(g, final_edges);
    // Unreachable terminals are still part of the summary statement.
    for t in &terminals {
        out.insert_node(*t);
    }
    out
}

/// Kruskal restricted to `edges`, returning a spanning forest of the
/// subgraph they induce.
fn subgraph_mst(g: &Graph, costs: &EdgeCosts, edges: &FxHashSet<EdgeId>) -> Vec<EdgeId> {
    // Dense-index the touched nodes.
    let mut index: FxHashMap<NodeId, usize> = FxHashMap::default();
    let mut next = 0usize;
    let mut list: Vec<MstEdge> = Vec::with_capacity(edges.len());
    let mut ids: Vec<EdgeId> = Vec::with_capacity(edges.len());
    let mut sorted: Vec<EdgeId> = edges.iter().copied().collect();
    sorted.sort_unstable();
    for e in sorted {
        let edge = g.edge(e);
        let a = *index.entry(edge.src).or_insert_with(|| {
            let i = next;
            next += 1;
            i
        });
        let b = *index.entry(edge.dst).or_insert_with(|| {
            let i = next;
            next += 1;
            i
        });
        list.push(MstEdge {
            a,
            b,
            cost: costs.get(e),
            payload: ids.len(),
        });
        ids.push(e);
    }
    kruskal(next, &list)
        .into_iter()
        .map(|m| ids[m.payload])
        .collect()
}

/// Repeatedly remove degree-1 nodes that are not terminals.
fn prune_nonterminal_leaves(
    g: &Graph,
    edges: Vec<EdgeId>,
    terminals: &FxHashSet<NodeId>,
) -> Vec<EdgeId> {
    let mut edge_set: FxHashSet<EdgeId> = edges.into_iter().collect();
    loop {
        // Degree within the subgraph.
        let mut degree: FxHashMap<NodeId, u32> = FxHashMap::default();
        for e in &edge_set {
            let edge = g.edge(*e);
            *degree.entry(edge.src).or_default() += 1;
            *degree.entry(edge.dst).or_default() += 1;
        }
        let to_remove: Vec<EdgeId> = edge_set
            .iter()
            .copied()
            .filter(|e| {
                let edge = g.edge(*e);
                let leaf_src = degree[&edge.src] == 1 && !terminals.contains(&edge.src);
                let leaf_dst = degree[&edge.dst] == 1 && !terminals.contains(&edge.dst);
                leaf_src || leaf_dst
            })
            .collect();
        if to_remove.is_empty() {
            let mut v: Vec<EdgeId> = edge_set.into_iter().collect();
            v.sort_unstable();
            return v;
        }
        for e in to_remove {
            edge_set.remove(&e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsum_graph::{EdgeKind, NodeKind};

    /// The weighted fixture: a hub entity connecting three items, plus an
    /// expensive direct route. Terminals = the three items.
    fn hub_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let i1 = g.add_node(NodeKind::Item);
        let i2 = g.add_node(NodeKind::Item);
        let i3 = g.add_node(NodeKind::Item);
        let hub = g.add_node(NodeKind::Entity);
        let far = g.add_node(NodeKind::Entity);
        g.add_edge(i1, hub, 1.0, EdgeKind::Attribute);
        g.add_edge(i2, hub, 1.0, EdgeKind::Attribute);
        g.add_edge(i3, hub, 1.0, EdgeKind::Attribute);
        // Decoy longer route i1-far-i2.
        g.add_edge(i1, far, 1.0, EdgeKind::Attribute);
        g.add_edge(far, i2, 1.0, EdgeKind::Attribute);
        (g, vec![i1, i2, i3, hub, far])
    }

    #[test]
    fn star_through_hub_is_chosen() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0], n[1], n[2]]);
        assert_eq!(tree.edge_count(), 3, "hub star uses 3 edges");
        assert!(tree.contains_node(n[3]), "hub is the Steiner node");
        assert!(!tree.contains_node(n[4]), "decoy must be pruned");
        assert!(tree.is_tree(&g));
        for t in &n[0..3] {
            assert!(tree.contains_node(*t));
        }
    }

    #[test]
    fn two_terminals_is_shortest_path() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0], n[1]]);
        assert_eq!(tree.edge_count(), 2);
        assert!(tree.is_tree(&g));
    }

    #[test]
    fn single_and_empty_terminals() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0]]);
        assert_eq!(tree.edge_count(), 0);
        assert_eq!(tree.node_count(), 1);
        let empty = steiner_tree(&g, &costs, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn duplicate_terminals_are_deduped() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0], n[0], n[1], n[1]]);
        assert_eq!(tree.edge_count(), 2);
    }

    #[test]
    fn unreachable_terminal_included_as_isolated_node() {
        let (mut g, n) = hub_graph();
        let lonely = g.add_node(NodeKind::Item);
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0], n[1], lonely]);
        assert!(tree.contains_node(lonely));
        assert!(!tree.is_weakly_connected(&g), "forest + isolated node");
        assert_eq!(tree.edge_count(), 2);
    }

    #[test]
    fn weighted_costs_redirect_route() {
        let (g, n) = hub_graph();
        // Make hub edges expensive: the decoy route wins for {i1, i2}.
        let mut costs = EdgeCosts::uniform(&g, 1.0);
        costs.0[0] = 10.0;
        costs.0[1] = 10.0;
        let tree = steiner_tree(&g, &costs, &[n[0], n[1]]);
        assert!(tree.contains_node(n[4]), "should route via the decoy now");
        assert_eq!(tree.edge_count(), 2);
    }

    #[test]
    fn lambda_boost_steers_toward_input_paths() {
        // Two parallel 2-hop routes between u and i2; the input explanation
        // uses the *heavier-boosted* one once λ is large.
        let mut g = Graph::new();
        let u = g.add_node(NodeKind::User);
        let i1 = g.add_node(NodeKind::Item);
        let i2 = g.add_node(NodeKind::Item);
        let e_u_i1 = g.add_edge(u, i1, 1.0, EdgeKind::Interaction);
        let a = g.add_node(NodeKind::Entity);
        let b = g.add_node(NodeKind::Entity);
        let e1 = g.add_edge(i1, a, 1.0, EdgeKind::Attribute);
        let e2 = g.add_edge(a, i2, 1.0, EdgeKind::Attribute);
        let _f1 = g.add_edge(i1, b, 1.0, EdgeKind::Attribute);
        let _f2 = g.add_edge(b, i2, 1.0, EdgeKind::Attribute);
        let _ = (e_u_i1, e1, e2);

        // Build a KG-free summary via raw pieces: emulate adjusted weights.
        let path = xsum_graph::LoosePath::ground(&g, vec![u, i1, a, i2]);
        let input = SummaryInput::user_centric(u, vec![path]);
        let weights =
            crate::weighting::adjusted_weights_of_paths(&g, &input.paths, input.anchor_count, 100.0);
        let costs = Graph::cost_transform(&weights, 1.0);
        let tree = steiner_tree(&g, &costs, &input.terminals);
        assert!(
            tree.contains_node(a),
            "λ=100 must route the summary through the explanation's own entity"
        );
        assert!(!tree.contains_node(b));
    }
}
