//! Algorithm 1 — ST-based summary explanations.
//!
//! The classic Kou–Markowsky–Berman construction the paper's pseudocode
//! follows line by line:
//!
//! 1. Dijkstra from every terminal gives the metric closure over `T`;
//! 2. Kruskal's MST of that complete terminal graph;
//! 3. each MST edge is expanded back into its underlying shortest path;
//! 4. the expanded edge set is cleaned up: re-MST over the induced
//!    subgraph and repeated pruning of non-terminal leaves (the standard
//!    KMB post-passes that keep the 2-approximation guarantee).
//!
//! Edge costs come from the §IV-A transform of the λ-boosted weights
//! (Eq. 1): `cost(e) = (max_w + δ) − w(e)`, positive by construction, so
//! minimizing cost simultaneously minimizes edge count and maximizes
//! summed weight (see DESIGN.md §3.1 for why the paper's "multiply by −1"
//! is realized this way).
//!
//! Terminals unreachable from one another yield a Steiner *forest* plus
//! isolated terminal nodes — the summary still mentions every terminal,
//! mirroring the paper's requirement `R_u ⊆ V_S`.
//!
//! ## Which ST variant is the default?
//!
//! **Mehlhorn** ([`steiner_summary_fast`]) is the default ST path for
//! serving: the `xsum` CLI's `--method st` routes to it, and new callers
//! should prefer it. The §V-B quality gate behind that decision is
//! reproducible as `repro quality_stfast` — across all four scenarios ×
//! the λ ∈ {0.01, 1, 100} sweep × k, every metric's ST-fast-vs-KMB delta
//! is noise (mean |Δ| ≤ 0.001 absolute on the unit-scaled metrics and
//! ≤ 0.1% relative on relevance; faithfulness identical), while the
//! closure costs `O(|E| + |V| log |V|)` instead of the paper's
//! `O(|T|(|E| + |V| log |V|))`. KMB stays fully supported as the
//! **fidelity reference** — [`steiner_summary`] /
//! [`crate::BatchMethod::Steiner`] / the CLI's `--method st-kmb` — and
//! remains what the paper-reproduction figures run, since it is the
//! pseudocode of Algorithm 1 line by line.

use std::cell::RefCell;

use xsum_graph::{
    kruskal, num_threads, parallel_map_with, DijkstraWorkspace, EdgeCosts, EdgeId, FxHashMap,
    FxHashSet, Graph, MstEdge, NodeId, Subgraph, WeightDeltaRec,
};

use crate::input::SummaryInput;
use crate::summary::Summary;
use crate::weighting::adjusted_weights;

/// Default terminal count from which the metric closure fans its
/// Dijkstras out across threads. Below this, thread handoff costs more
/// than the |T| searches; the paper's user-centric k≤10 inputs always
/// stay sequential while group scenarios with hundreds of terminals
/// parallelize. The gate always counts **deduplicated** terminals (the
/// closure runs one Dijkstra per distinct terminal, so duplicates must
/// not buy a fan-out), and per-workspace overrides are available via
/// [`SteinerWorkspace::set_parallel_threshold`] — shard replicas with
/// few workers lower it so their rarer large groups still fan out.
const PARALLEL_TERMINAL_THRESHOLD: usize = 24;

/// Parameters of the ST summarizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteinerConfig {
    /// Eq. 1 path-frequency boost (the paper sweeps 0.01 / 1 / 100).
    pub lambda: f64,
    /// Base edge cost of the weight→cost transform (edge-count pressure).
    pub delta: f64,
}

impl Default for SteinerConfig {
    fn default() -> Self {
        SteinerConfig {
            lambda: 1.0,
            delta: 1.0,
        }
    }
}

/// Compute the ST-based summary explanation for `input` (Algorithm 1).
///
/// Costs are anchored on the *unadjusted* maximum weight, so Eq. 1's boost
/// genuinely cheapens path edges instead of inflating the anchor: with a
/// large λ, edges shared by many explanation paths approach the cost floor
/// and the summary hugs the input explanations (whose weighted hops are
/// user–item interactions — the mechanism behind the paper's "ST's
/// relevance improves as λ increases" and its λ=100 actionability edge).
///
/// Repeated calls against an unmutated graph reuse a thread-locally
/// cached [`SteinerCostModel`] (keyed by graph epoch and config), so the
/// per-call cost table costs one memcpy plus an O(|paths|) patch instead
/// of a full O(|E|) rebuild; a [`crate::engine::SummaryEngine`] goes one
/// step further and keeps even the patched buffer resident.
pub fn steiner_summary(g: &Graph, input: &SummaryInput, cfg: &SteinerConfig) -> Summary {
    let costs = cached_steiner_costs(g, input, cfg);
    let subgraph = steiner_tree(g, &costs, &input.terminals);
    Summary {
        method: "ST",
        scenario: input.scenario,
        subgraph,
        terminals: input.terminals.clone(),
    }
}

/// The exact edge-cost table [`steiner_summary`] searches with: Eq. 1
/// boosted weights anchored on the unadjusted maximum, floored at
/// `δ/100`. Exposed so tests and ablations can reason about the same
/// costs the summarizer used.
pub fn steiner_costs(g: &Graph, input: &SummaryInput, cfg: &SteinerConfig) -> EdgeCosts {
    let weights = adjusted_weights(g, input, cfg.lambda);
    let base_max = g.edge_ids().map(|e| g.weight(e)).fold(0.0f64, f64::max);
    let floor = cfg.delta * 1e-2;
    EdgeCosts(
        weights
            .iter()
            .map(|w| ((base_max + cfg.delta) - w).max(floor))
            .collect(),
    )
}

/// Cached base of the [`steiner_costs`] transform, for batch serving.
///
/// Eq. 1's λ boost only touches the edges of the input explanation
/// paths — every other edge's cost is a pure function of the graph and
/// `cfg`. Building one model per (graph, config) and patching the
/// handful of path edges per summary replaces the seed's per-summary
/// `O(|E|)` table construction (three full-length allocations plus two
/// passes) with `O(|paths|)` work. Patched costs are bit-identical to
/// [`steiner_costs`]' output: the formula and operation order are the
/// same.
#[derive(Debug, Clone)]
pub struct SteinerCostModel {
    /// Unboosted per-edge cost `((max_w + δ) − w(e)).max(δ/100)`.
    base: Vec<f64>,
    /// The unadjusted maximum weight the transform anchors on.
    base_max: f64,
    cfg: SteinerConfig,
}

impl SteinerCostModel {
    /// Build the base table (one `O(|E|)` pass, once per batch).
    pub fn new(g: &Graph, cfg: &SteinerConfig) -> Self {
        let base_max = g.edge_ids().map(|e| g.weight(e)).fold(0.0f64, f64::max);
        let floor = cfg.delta * 1e-2;
        let base = g
            .edge_ids()
            .map(|e| ((base_max + cfg.delta) - g.weight(e)).max(floor))
            .collect();
        SteinerCostModel {
            base,
            base_max,
            cfg: *cfg,
        }
    }

    /// The configuration the model was built for.
    pub fn config(&self) -> &SteinerConfig {
        &self.cfg
    }

    /// The unadjusted maximum weight the transform anchors on.
    pub fn base_max(&self) -> f64 {
        self.base_max
    }

    /// Patch the resident base table across a weight-only delta in
    /// O(|touched|), or report `false` (leaving the table untouched)
    /// when the delta may move the `base_max` anchor — in which case
    /// every entry of a rebuilt table could change and a full rebuild is
    /// the only bit-faithful option. On success the table is
    /// bit-identical to [`SteinerCostModel::new`] on the post-delta
    /// graph: the per-entry expression is the same, and
    /// [`delta_keeps_anchor`] guarantees the rebuilt fold would produce
    /// the same anchor.
    pub fn patch_weight_delta(&mut self, touched: &[WeightDeltaRec]) -> bool {
        if !delta_keeps_anchor(self.base_max, touched) {
            return false;
        }
        let floor = self.cfg.delta * 1e-2;
        for rec in touched {
            let w = f64::from_bits(rec.new_bits);
            self.base[rec.edge.index()] = ((self.base_max + self.cfg.delta) - w).max(floor);
        }
        true
    }

    /// A fresh full copy of the base table (per-worker warmup).
    pub fn fresh_costs(&self) -> EdgeCosts {
        EdgeCosts(self.base.clone())
    }

    /// Overwrite `costs` entries for `input`'s path edges with their
    /// Eq. 1-boosted values, recording the touched edge ids (with their
    /// path frequency) in `touched` for [`SteinerCostModel::unpatch`].
    ///
    /// `costs` must be a base copy from [`SteinerCostModel::fresh_costs`]
    /// (or an unpatched previous use); `touched` is cleared first.
    pub fn patch(
        &self,
        g: &Graph,
        input: &SummaryInput,
        costs: &mut EdgeCosts,
        touched: &mut Vec<(xsum_graph::EdgeId, u32)>,
    ) {
        debug_assert_eq!(costs.len(), self.base.len(), "cost buffer shape mismatch");
        touched.clear();
        for p in &input.paths {
            for e in p.grounded_edges() {
                touched.push((e, 1));
            }
        }
        // Sort-and-merge frequency count: O(P log P) over the grounded
        // path edges, no hashing.
        touched.sort_unstable_by_key(|(e, _)| *e);
        let mut write = 0;
        for read in 0..touched.len() {
            if write > 0 && touched[write - 1].0 == touched[read].0 {
                touched[write - 1].1 += 1;
            } else {
                touched[write] = touched[read];
                write += 1;
            }
        }
        touched.truncate(write);
        let denom = input.anchor_count.max(1) as f64;
        let floor = self.cfg.delta * 1e-2;
        for &(e, f) in touched.iter() {
            let boost = 1.0 + self.cfg.lambda * f as f64 / denom;
            let w = g.weight(e) * boost;
            costs.0[e.index()] = ((self.base_max + self.cfg.delta) - w).max(floor);
        }
    }

    /// Restore `costs` to the base table after a patched summary.
    pub fn unpatch(&self, costs: &mut EdgeCosts, touched: &[(xsum_graph::EdgeId, u32)]) {
        for &(e, _) in touched {
            costs.0[e.index()] = self.base[e.index()];
        }
    }

    /// Overwrite `costs` with a copy of the base table, reusing its
    /// allocation (resizing if the model covers a different edge count).
    /// The persistent-engine sibling of [`SteinerCostModel::fresh_costs`].
    pub fn copy_base_into(&self, costs: &mut EdgeCosts) {
        costs.0.clone_from(&self.base);
    }

    /// Refresh only the delta-touched entries of `costs` from the base
    /// table — the O(|touched|) sibling of
    /// [`SteinerCostModel::copy_base_into`] for a buffer that already
    /// mirrors a previous epoch's base of the **same config and anchor
    /// bits** (off-delta entries of the two bases are then bit-identical
    /// by the shared expression, so only the touched ones can differ).
    pub fn copy_touched_into(&self, costs: &mut EdgeCosts, touched: &[WeightDeltaRec]) {
        debug_assert_eq!(costs.len(), self.base.len(), "cost buffer shape mismatch");
        for rec in touched {
            costs.0[rec.edge.index()] = self.base[rec.edge.index()];
        }
    }
}

/// Whether a weight-only delta provably leaves the Eq. 1 anchor
/// (`base_max = fold(0.0, max)` over the raw weights) bit-unchanged —
/// the soundness condition for O(|touched|) patching of any state
/// derived from the transform.
///
/// Checked per touched edge, O(|delta|) total:
/// * a new weight strictly above the anchor raises it → rebuild;
/// * an old weight whose bits *equalled* the anchor may have been its
///   sole witness, so lowering it may shrink the anchor → rebuild
///   (conservative: another edge might still attain it, but finding out
///   costs O(|E|));
/// * everything else (including NaN, which `f64::max` folds away, and
///   `-0.0`, whose bits never equal the `0.0`-seeded fold's) cannot move
///   the fold.
pub(crate) fn delta_keeps_anchor(base_max: f64, touched: &[WeightDeltaRec]) -> bool {
    let anchor_bits = base_max.to_bits();
    touched.iter().all(|rec| {
        let raises = f64::from_bits(rec.new_bits) > base_max;
        let shrinks = rec.old_bits == anchor_bits && rec.new_bits != anchor_bits;
        !raises && !shrinks
    })
}

/// Identity of one Eq. 1 cost model: the graph's mutation epoch plus the
/// exact [`SteinerConfig`] bits.
///
/// [`Graph::epoch`] stamps are process-globally unique per mutation, so
/// equal keys imply identical graph weight content and config — a model
/// cached under this key can never be served stale (mutating any edge
/// weight or the structure moves the epoch and misses the cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModelKey {
    epoch: u64,
    lambda_bits: u64,
    delta_bits: u64,
}

impl CostModelKey {
    /// The cache key for `g` under `cfg`.
    pub fn of(g: &Graph, cfg: &SteinerConfig) -> Self {
        CostModelKey {
            epoch: g.epoch(),
            lambda_bits: cfg.lambda.to_bits(),
            delta_bits: cfg.delta.to_bits(),
        }
    }

    /// The graph epoch this key was taken at.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether two keys share the exact config bits (epochs may differ)
    /// — the precondition for bridging them with a weight-only delta.
    pub(crate) fn same_config(&self, other: &CostModelKey) -> bool {
        self.lambda_bits == other.lambda_bits && self.delta_bits == other.delta_bits
    }
}

/// A small LRU cache of [`SteinerCostModel`]s keyed by
/// [`CostModelKey`].
///
/// One instance backs each [`crate::engine::SummaryEngine`]; a
/// thread-local instance backs the sequential [`steiner_summary`] /
/// [`steiner_summary_fast`] entry points, which previously rebuilt the
/// O(|E|) Eq. 1 table on every call. Models are shared out as [`Arc`]s
/// so workers can hold them across a parallel region without borrowing
/// the cache.
#[derive(Debug)]
pub struct CostModelCache {
    capacity: usize,
    /// MRU ordering: least-recently-used first.
    entries: Vec<(CostModelKey, std::sync::Arc<SteinerCostModel>)>,
    hits: u64,
    misses: u64,
    patches: u64,
}

impl CostModelCache {
    /// A cache retaining at most `capacity` models (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        CostModelCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            patches: 0,
        }
    }

    /// The model for `(g, cfg)`: a keyed hit, a resident model **patched
    /// across a weight-only delta** in O(|touched|), or a full build, in
    /// that preference order. Returns the key alongside so callers can
    /// tag per-worker cost buffers derived from the model.
    ///
    /// The patch path fires when a resident entry has the same config
    /// bits, the graph's [`Graph::delta_since`] ledger covers the epoch
    /// gap, and [`delta_keeps_anchor`] holds — then the entry's table is
    /// rewritten in place (bit-identical to a rebuild) and re-keyed to
    /// the current epoch. Anything else misses wholesale, exactly as
    /// before the ledger existed.
    pub fn get(
        &mut self,
        g: &Graph,
        cfg: &SteinerConfig,
    ) -> (CostModelKey, std::sync::Arc<SteinerCostModel>) {
        let key = CostModelKey::of(g, cfg);
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let entry = self.entries.remove(pos);
            let model = entry.1.clone();
            self.entries.push(entry);
            self.hits += 1;
            return (key, model);
        }
        // Delta patch: a same-config entry whose epoch the ledger chains
        // to the current one.
        let candidate = self.entries.iter().enumerate().find_map(|(pos, (k, _))| {
            if k.lambda_bits == key.lambda_bits && k.delta_bits == key.delta_bits {
                g.delta_since(k.epoch).map(|touched| (pos, touched))
            } else {
                None
            }
        });
        if let Some((pos, touched)) = candidate {
            let (stale_key, mut model) = self.entries.remove(pos);
            // `make_mut` is O(1) when the Arc is unshared (the steady
            // state — workers hold copies of the *table*, not the Arc);
            // a shared Arc clones once, which is no worse than the
            // rebuild it replaces.
            if std::sync::Arc::make_mut(&mut model).patch_weight_delta(&touched) {
                self.patches += 1;
                self.entries.push((key, model.clone()));
                return (key, model);
            }
            // Anchor moved: the stale entry is still valid *for its own
            // epoch* (an unmutated clone may yet hit it) — keep it.
            self.entries.insert(pos, (stale_key, model));
        }
        self.misses += 1;
        let model = std::sync::Arc::new(SteinerCostModel::new(g, cfg));
        self.entries.push((key, model.clone()));
        if self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
        (key, model)
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (model builds) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident models patched across a weight-only delta instead of
    /// being rebuilt.
    pub fn patches(&self) -> u64 {
        self.patches
    }

    /// Number of models currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

thread_local! {
    /// Cost models backing the workspace-free sequential entry points —
    /// the "(graph-epoch, config)-keyed cache for the sequential entry
    /// points" the ROADMAP called for. Capacity 4 comfortably covers the
    /// paper's λ sweep over one graph.
    static COST_MODELS: RefCell<CostModelCache> = RefCell::new(CostModelCache::new(4));
}

/// The cached Eq. 1 cost model for `(g, cfg)` on this thread.
pub(crate) fn cached_cost_model(
    g: &Graph,
    cfg: &SteinerConfig,
) -> std::sync::Arc<SteinerCostModel> {
    COST_MODELS.with(|c| c.borrow_mut().get(g, cfg).1)
}

/// Drop this thread's cached Eq. 1 cost models.
///
/// Each cached model holds an O(|E|) table that outlives the graph it
/// was built from (the cache keys on the graph's epoch, not its
/// lifetime). Long-lived threads that are done summarizing against a
/// large graph can call this to release that memory instead of waiting
/// for capacity eviction that may never come.
pub fn flush_cost_model_cache() {
    COST_MODELS.with(|c| {
        *c.borrow_mut() = CostModelCache::new(4);
    });
}

/// [`steiner_costs`] through the thread-local model cache: one O(|E|)
/// memcpy plus an O(|paths|) patch on cache hits, instead of the three
///-pass table rebuild. Bit-identical to [`steiner_costs`] (property-
/// tested, and the patch/unpatch identity is asserted in unit tests).
pub(crate) fn cached_steiner_costs(
    g: &Graph,
    input: &SummaryInput,
    cfg: &SteinerConfig,
) -> EdgeCosts {
    let model = cached_cost_model(g, cfg);
    let mut costs = model.fresh_costs();
    let mut touched = Vec::new();
    model.patch(g, input, &mut costs, &mut touched);
    costs
}

/// Reusable scratch state for [`steiner_tree_with`].
///
/// Owns the per-call buffers of the KMB construction — the deduplicated
/// terminal list, the metric-closure edge list, and a flat edge-id arena
/// holding every pair's expanded shortest path — plus one
/// [`DijkstraWorkspace`] per potential worker thread. After the first
/// call at a given problem size, a summary computes without allocating
/// anything but its output subgraph.
#[derive(Debug, Default)]
pub struct SteinerWorkspace {
    /// Sorted, deduplicated terminal scratch.
    terminals: Vec<NodeId>,
    /// Metric-closure edges (`a`/`b` index `terminals`, payload indexes
    /// `spans`).
    closure: Vec<MstEdge>,
    /// `spans[payload]` delimits the pair's path inside `arena`.
    spans: Vec<(u32, u32)>,
    /// Flat storage for all closure paths.
    arena: Vec<EdgeId>,
    /// Mehlhorn pair reduction: cheapest boundary bridge per terminal
    /// pair, `(cost, bridge edge id)` in a dense upper-triangular T×T
    /// matrix.
    pair_best: Vec<(f64, u32)>,
    /// One Dijkstra workspace per worker (index 0 doubles as the
    /// sequential workspace).
    workers: Vec<DijkstraWorkspace>,
    /// Thread budget for the metric closure's inner fan-out: 0 = use
    /// [`num_threads`]; 1 = stay sequential (set by outer parallel
    /// regions so worker threads never nest thread pools).
    parallelism: usize,
    /// Deduplicated-terminal count from which the metric closure fans
    /// out: 0 = the built-in [`PARALLEL_TERMINAL_THRESHOLD`] default.
    parallel_threshold: usize,
    /// Worker count the most recent metric closure actually ran with
    /// (1 = sequential); 0 until the first closure builds.
    last_closure_workers: usize,
}

impl SteinerWorkspace {
    /// Fresh workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the metric closure's inner thread fan-out (`0` = hardware
    /// default, `1` = strictly sequential). Outer parallel drivers —
    /// e.g. [`crate::summarize_batch`]'s per-summary workers — pin
    /// their workspaces to 1 so parallelism lives at exactly one level.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads;
    }

    /// Override the deduplicated-terminal count from which the metric
    /// closure fans out across threads (`0` restores the built-in
    /// default of [`PARALLEL_TERMINAL_THRESHOLD`]; values below 2 clamp
    /// to 2, the smallest terminal set with a closure to build). Only
    /// observable when [`SteinerWorkspace::set_parallelism`] grants a
    /// budget above 1 — shard replicas running few outer workers lower
    /// this so mid-sized groups still use their idle cores.
    pub fn set_parallel_threshold(&mut self, min_terminals: usize) {
        self.parallel_threshold = if min_terminals == 0 {
            0
        } else {
            min_terminals.max(2)
        };
    }

    /// How many workers the most recent metric closure actually used:
    /// `1` means the sequential branch ran, `> 1` the parallel
    /// fan-out, `0` that no closure has been built yet. A probe for
    /// workload tests asserting that [`set_parallel_threshold`] /
    /// [`set_parallelism`] really flip the gate — results are
    /// bit-identical either way, so only this observable can tell the
    /// branches apart.
    ///
    /// [`set_parallel_threshold`]: SteinerWorkspace::set_parallel_threshold
    /// [`set_parallelism`]: SteinerWorkspace::set_parallelism
    pub fn last_closure_workers(&self) -> usize {
        self.last_closure_workers
    }

    /// The active fan-out gate (post-dedup terminal count).
    fn parallel_threshold(&self) -> usize {
        match self.parallel_threshold {
            0 => PARALLEL_TERMINAL_THRESHOLD,
            n => n,
        }
    }

    /// Build the metric closure over `terminals` into `closure` /
    /// `spans` / `arena`, running the |T| Dijkstras sequentially or
    /// across worker threads.
    fn metric_closure(&mut self, g: &Graph, costs: &EdgeCosts) {
        self.closure.clear();
        self.spans.clear();
        self.arena.clear();
        let t = self.terminals.len();

        let budget = match self.parallelism {
            0 => num_threads(),
            n => n,
        };
        // `t` counts `self.terminals` *after* the callers' sort+dedup —
        // the gate must never let duplicate terminals (which cost no
        // extra Dijkstras) buy a thread fan-out.
        let workers = if t >= self.parallel_threshold() {
            budget.min(t)
        } else {
            1
        };
        self.last_closure_workers = workers;
        if self.workers.len() < workers {
            self.workers.resize_with(workers, DijkstraWorkspace::new);
        }

        if workers == 1 {
            // Sequential: reuse worker 0 across all |T| sources, writing
            // paths straight into the shared arena.
            let ws = &mut self.workers[0];
            for si in 0..t - 1 {
                let source = self.terminals[si];
                let targets = &self.terminals[si + 1..];
                ws.run(g, costs, source, targets);
                for (off, &target) in targets.iter().enumerate() {
                    if let Some(d) = ws.distance(target) {
                        let start = self.arena.len() as u32;
                        if !ws.append_path_to(g, target, &mut self.arena) {
                            continue;
                        }
                        self.closure.push(MstEdge {
                            a: si,
                            b: si + 1 + off,
                            cost: d,
                            payload: self.spans.len(),
                        });
                        self.spans.push((start, self.arena.len() as u32 - start));
                    }
                }
            }
            return;
        }

        // Parallel: every source index is an independent task; workers
        // carry their own DijkstraWorkspace and return (pair, dist,
        // local path span) batches that merge into the shared arena.
        g.freeze();
        let terminals = &self.terminals;
        let sources: Vec<usize> = (0..t - 1).collect();
        let per_source = parallel_map_with(&mut self.workers[..workers], &sources, |ws, _, &si| {
            let targets = &terminals[si + 1..];
            ws.run(g, costs, terminals[si], targets);
            let mut paths: Vec<EdgeId> = Vec::new();
            let mut pairs: Vec<(usize, f64, u32, u32)> = Vec::new();
            for (off, &target) in targets.iter().enumerate() {
                if let Some(d) = ws.distance(target) {
                    let start = paths.len() as u32;
                    if ws.append_path_to(g, target, &mut paths) {
                        pairs.push((si + 1 + off, d, start, paths.len() as u32 - start));
                    }
                }
            }
            (si, pairs, paths)
        });
        for (si, pairs, paths) in per_source {
            let base = self.arena.len() as u32;
            self.arena.extend_from_slice(&paths);
            for (ti, d, start, len) in pairs {
                self.closure.push(MstEdge {
                    a: si,
                    b: ti,
                    cost: d,
                    payload: self.spans.len(),
                });
                self.spans.push((base + start, len));
            }
        }
    }
}

thread_local! {
    /// Per-thread engine state backing the workspace-free entry points.
    /// Pinned to sequential execution so the public `steiner_*`
    /// functions never spawn threads behind the caller's back (the
    /// paper-reproduction timings measure sequential Algorithm 1, and
    /// callers running their own thread pools must not get nested
    /// fan-out). Parallel metric closures are an explicit choice:
    /// [`summarize_batch`](crate::summarize_batch) or
    /// [`steiner_tree_with`] + [`SteinerWorkspace::set_parallelism`].
    static STEINER_SCRATCH: RefCell<SteinerWorkspace> = RefCell::new({
        let mut ws = SteinerWorkspace::new();
        ws.set_parallelism(1);
        ws
    });
}

/// The raw KMB Steiner construction over explicit costs and terminals.
///
/// Exposed for the ablation benches; [`steiner_summary`] is the paper's
/// entry point. Scratch state lives in a per-thread
/// [`SteinerWorkspace`], so repeated calls are allocation-free after
/// warmup; use [`steiner_tree_with`] to manage the workspace explicitly.
pub fn steiner_tree(g: &Graph, costs: &EdgeCosts, terminals: &[NodeId]) -> Subgraph {
    STEINER_SCRATCH.with(|ws| steiner_tree_with(g, costs, terminals, &mut ws.borrow_mut()))
}

/// [`steiner_tree`] with an explicit reusable workspace.
pub fn steiner_tree_with(
    g: &Graph,
    costs: &EdgeCosts,
    terminals: &[NodeId],
    ws: &mut SteinerWorkspace,
) -> Subgraph {
    ws.terminals.clear();
    ws.terminals.extend_from_slice(terminals);
    ws.terminals.sort_unstable();
    ws.terminals.dedup();

    let mut out = Subgraph::new();
    match ws.terminals.len() {
        0 => return out,
        1 => {
            out.insert_node(ws.terminals[0]);
            return out;
        }
        _ => {}
    }

    // 1 + 2. Shortest paths between all terminal pairs (|T| Dijkstra
    //        runs, parallel for large |T|) and the metric closure over
    //        terminal indices, with each pair's path parked in the arena.
    ws.metric_closure(g, costs);
    let mst = kruskal(ws.terminals.len(), &ws.closure);

    // 3. Expand each chosen closure edge into its underlying path.
    let mut edge_set: FxHashSet<EdgeId> = FxHashSet::default();
    for ce in &mst {
        let (start, len) = ws.spans[ce.payload];
        edge_set.extend(
            ws.arena[start as usize..(start + len) as usize]
                .iter()
                .copied(),
        );
    }

    // 4a. Re-MST over the expanded subgraph to break any cycles formed by
    //     overlapping shortest paths.
    let pruned = subgraph_mst(g, costs, &edge_set);

    // 4b. Prune non-terminal leaves repeatedly.
    let term_set: FxHashSet<NodeId> = ws.terminals.iter().copied().collect();
    let final_edges = prune_nonterminal_leaves(g, pruned, &term_set);

    let mut out = Subgraph::from_edges(g, final_edges);
    // Unreachable terminals are still part of the summary statement.
    for t in &ws.terminals {
        out.insert_node(*t);
    }
    out
}

/// Compute the ST summary with the Mehlhorn metric closure —
/// [`steiner_summary`]'s serving-scale sibling.
///
/// Kou–Markowsky–Berman (Algorithm 1) runs |T| single-source Dijkstras;
/// Mehlhorn's 1988 refinement replaces them with **one** multi-source
/// Dijkstra that partitions the graph into Voronoi cells around the
/// terminals, then connects cells through their cheapest boundary
/// edges. The approximation guarantee is the same factor 2, the
/// asymptotic cost drops from `O(|T|(|E| + |V| log |V|))` (the paper's
/// quoted bound) to `O(|E| + |V| log |V|)`, and the produced tree is
/// usually — but not always — identical to KMB's. Use this for
/// throughput-critical batches; use [`steiner_summary`] to reproduce
/// the paper's pseudocode exactly.
pub fn steiner_summary_fast(g: &Graph, input: &SummaryInput, cfg: &SteinerConfig) -> Summary {
    let costs = cached_steiner_costs(g, input, cfg);
    let subgraph = steiner_tree_fast(g, &costs, &input.terminals);
    Summary {
        method: "ST-fast",
        scenario: input.scenario,
        subgraph,
        terminals: input.terminals.clone(),
    }
}

/// [`steiner_tree`]'s Mehlhorn-accelerated sibling (per-thread scratch).
pub fn steiner_tree_fast(g: &Graph, costs: &EdgeCosts, terminals: &[NodeId]) -> Subgraph {
    STEINER_SCRATCH.with(|ws| steiner_tree_fast_with(g, costs, terminals, &mut ws.borrow_mut()))
}

/// [`steiner_tree_fast`] with an explicit reusable workspace.
pub fn steiner_tree_fast_with(
    g: &Graph,
    costs: &EdgeCosts,
    terminals: &[NodeId],
    ws: &mut SteinerWorkspace,
) -> Subgraph {
    ws.terminals.clear();
    ws.terminals.extend_from_slice(terminals);
    ws.terminals.sort_unstable();
    ws.terminals.dedup();

    let mut out = Subgraph::new();
    match ws.terminals.len() {
        0 => return out,
        1 => {
            out.insert_node(ws.terminals[0]);
            return out;
        }
        _ => {}
    }

    // 1. One multi-source Dijkstra: Voronoi cells around the terminals.
    if ws.workers.is_empty() {
        ws.workers.push(DijkstraWorkspace::new());
    }
    let dij = &mut ws.workers[0];
    dij.run_voronoi(g, costs, &ws.terminals);

    // 2. Candidate inter-cell connections: every edge whose endpoints
    //    lie in different cells connects its two terminals at cost
    //    d(u, t_u) + c(e) + d(v, t_v). Boundary edges can number O(|E|),
    //    so reduce to the cheapest bridge per terminal pair in a dense
    //    upper-triangular matrix first — kruskal then sorts at most
    //    T·(T−1)/2 entries instead of thousands. Iterating edges in id
    //    order with a strict `<` keeps the smallest-id bridge on ties,
    //    mirroring KMB's insertion-order affinity.
    let t = ws.terminals.len();
    ws.pair_best.clear();
    ws.pair_best.resize(t * t, (f64::INFINITY, u32::MAX));
    for e in g.edge_ids() {
        let edge = g.edge(e);
        if let (Some(ou), Some(ov)) = (dij.origin_of(edge.src), dij.origin_of(edge.dst)) {
            if ou != ov {
                let du = dij.distance(edge.src).expect("origin implies distance");
                let dv = dij.distance(edge.dst).expect("origin implies distance");
                let cost = du + costs.get(e) + dv;
                let idx = (ou.min(ov) as usize) * t + ou.max(ov) as usize;
                if cost < ws.pair_best[idx].0 {
                    ws.pair_best[idx] = (cost, e.0);
                }
            }
        }
    }
    ws.closure.clear();
    for a in 0..t {
        for b in (a + 1)..t {
            let (cost, e) = ws.pair_best[a * t + b];
            if e != u32::MAX {
                ws.closure.push(MstEdge {
                    a,
                    b,
                    cost,
                    payload: e as usize,
                });
            }
        }
    }
    let mst = kruskal(t, &ws.closure);

    // 3. Expand each chosen bridge into bridge + both endpoint-to-
    //    terminal paths.
    ws.arena.clear();
    let mut edge_set: FxHashSet<EdgeId> = FxHashSet::default();
    for ce in &mst {
        let e = EdgeId(ce.payload as u32);
        let edge = g.edge(e);
        edge_set.insert(e);
        ws.arena.clear();
        dij.append_path_to_origin(g, edge.src, &mut ws.arena);
        dij.append_path_to_origin(g, edge.dst, &mut ws.arena);
        edge_set.extend(ws.arena.iter().copied());
    }

    // 4. Same KMB post-passes: re-MST, then prune non-terminal leaves.
    let pruned = subgraph_mst(g, costs, &edge_set);
    let term_set: FxHashSet<NodeId> = ws.terminals.iter().copied().collect();
    let final_edges = prune_nonterminal_leaves(g, pruned, &term_set);

    let mut out = Subgraph::from_edges(g, final_edges);
    for t in &ws.terminals {
        out.insert_node(*t);
    }
    out
}

/// Kruskal restricted to `edges`, returning a spanning forest of the
/// subgraph they induce.
fn subgraph_mst(g: &Graph, costs: &EdgeCosts, edges: &FxHashSet<EdgeId>) -> Vec<EdgeId> {
    // Dense-index the touched nodes.
    let mut index: FxHashMap<NodeId, usize> = FxHashMap::default();
    let mut next = 0usize;
    let mut list: Vec<MstEdge> = Vec::with_capacity(edges.len());
    let mut ids: Vec<EdgeId> = Vec::with_capacity(edges.len());
    let mut sorted: Vec<EdgeId> = edges.iter().copied().collect();
    sorted.sort_unstable();
    for e in sorted {
        let edge = g.edge(e);
        let a = *index.entry(edge.src).or_insert_with(|| {
            let i = next;
            next += 1;
            i
        });
        let b = *index.entry(edge.dst).or_insert_with(|| {
            let i = next;
            next += 1;
            i
        });
        list.push(MstEdge {
            a,
            b,
            cost: costs.get(e),
            payload: ids.len(),
        });
        ids.push(e);
    }
    kruskal(next, &list)
        .into_iter()
        .map(|m| ids[m.payload])
        .collect()
}

/// Repeatedly remove degree-1 nodes that are not terminals.
fn prune_nonterminal_leaves(
    g: &Graph,
    edges: Vec<EdgeId>,
    terminals: &FxHashSet<NodeId>,
) -> Vec<EdgeId> {
    let mut edge_set: FxHashSet<EdgeId> = edges.into_iter().collect();
    loop {
        // Degree within the subgraph.
        let mut degree: FxHashMap<NodeId, u32> = FxHashMap::default();
        for e in &edge_set {
            let edge = g.edge(*e);
            *degree.entry(edge.src).or_default() += 1;
            *degree.entry(edge.dst).or_default() += 1;
        }
        let to_remove: Vec<EdgeId> = edge_set
            .iter()
            .copied()
            .filter(|e| {
                let edge = g.edge(*e);
                let leaf_src = degree[&edge.src] == 1 && !terminals.contains(&edge.src);
                let leaf_dst = degree[&edge.dst] == 1 && !terminals.contains(&edge.dst);
                leaf_src || leaf_dst
            })
            .collect();
        if to_remove.is_empty() {
            let mut v: Vec<EdgeId> = edge_set.into_iter().collect();
            v.sort_unstable();
            return v;
        }
        for e in to_remove {
            edge_set.remove(&e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsum_graph::{EdgeKind, NodeKind};

    /// The weighted fixture: a hub entity connecting three items, plus an
    /// expensive direct route. Terminals = the three items.
    fn hub_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let i1 = g.add_node(NodeKind::Item);
        let i2 = g.add_node(NodeKind::Item);
        let i3 = g.add_node(NodeKind::Item);
        let hub = g.add_node(NodeKind::Entity);
        let far = g.add_node(NodeKind::Entity);
        g.add_edge(i1, hub, 1.0, EdgeKind::Attribute);
        g.add_edge(i2, hub, 1.0, EdgeKind::Attribute);
        g.add_edge(i3, hub, 1.0, EdgeKind::Attribute);
        // Decoy longer route i1-far-i2.
        g.add_edge(i1, far, 1.0, EdgeKind::Attribute);
        g.add_edge(far, i2, 1.0, EdgeKind::Attribute);
        (g, vec![i1, i2, i3, hub, far])
    }

    #[test]
    fn star_through_hub_is_chosen() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0], n[1], n[2]]);
        assert_eq!(tree.edge_count(), 3, "hub star uses 3 edges");
        assert!(tree.contains_node(n[3]), "hub is the Steiner node");
        assert!(!tree.contains_node(n[4]), "decoy must be pruned");
        assert!(tree.is_tree(&g));
        for t in &n[0..3] {
            assert!(tree.contains_node(*t));
        }
    }

    #[test]
    fn two_terminals_is_shortest_path() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0], n[1]]);
        assert_eq!(tree.edge_count(), 2);
        assert!(tree.is_tree(&g));
    }

    #[test]
    fn single_and_empty_terminals() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0]]);
        assert_eq!(tree.edge_count(), 0);
        assert_eq!(tree.node_count(), 1);
        let empty = steiner_tree(&g, &costs, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn duplicate_terminals_are_deduped() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0], n[0], n[1], n[1]]);
        assert_eq!(tree.edge_count(), 2);
    }

    #[test]
    fn unreachable_terminal_included_as_isolated_node() {
        let (mut g, n) = hub_graph();
        let lonely = g.add_node(NodeKind::Item);
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree(&g, &costs, &[n[0], n[1], lonely]);
        assert!(tree.contains_node(lonely));
        assert!(!tree.is_weakly_connected(&g), "forest + isolated node");
        assert_eq!(tree.edge_count(), 2);
    }

    #[test]
    fn weighted_costs_redirect_route() {
        let (g, n) = hub_graph();
        // Make hub edges expensive: the decoy route wins for {i1, i2}.
        let mut costs = EdgeCosts::uniform(&g, 1.0);
        costs.0[0] = 10.0;
        costs.0[1] = 10.0;
        let tree = steiner_tree(&g, &costs, &[n[0], n[1]]);
        assert!(tree.contains_node(n[4]), "should route via the decoy now");
        assert_eq!(tree.edge_count(), 2);
    }

    #[test]
    fn fast_variant_finds_the_hub_star() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let tree = steiner_tree_fast(&g, &costs, &[n[0], n[1], n[2]]);
        assert_eq!(tree.edge_count(), 3, "hub star uses 3 edges");
        assert!(tree.contains_node(n[3]));
        assert!(!tree.contains_node(n[4]));
        assert!(tree.is_tree(&g));
    }

    #[test]
    fn fast_variant_edge_cases_match_kmb() {
        let (mut g, n) = hub_graph();
        let lonely = g.add_node(NodeKind::Item);
        let costs = EdgeCosts::uniform(&g, 1.0);
        // Duplicates, single, empty, unreachable — all mirror KMB.
        assert_eq!(
            steiner_tree_fast(&g, &costs, &[n[0], n[0], n[1]]).edge_count(),
            2
        );
        let single = steiner_tree_fast(&g, &costs, &[n[0]]);
        assert_eq!((single.edge_count(), single.node_count()), (0, 1));
        assert!(steiner_tree_fast(&g, &costs, &[]).is_empty());
        let forest = steiner_tree_fast(&g, &costs, &[n[0], n[1], lonely]);
        assert!(forest.contains_node(lonely));
        assert_eq!(forest.edge_count(), 2);
    }

    #[test]
    fn fast_variant_within_2x_of_kmb_cost() {
        // Both carry the factor-2 guarantee against OPT, so fast can
        // never exceed 2× KMB (and vice versa).
        let (g, n) = hub_graph();
        let costs = g.cost_transform_own(1.0);
        let kmb = steiner_tree(&g, &costs, &[n[0], n[1], n[2]]);
        let fast = steiner_tree_fast(&g, &costs, &[n[0], n[1], n[2]]);
        let cost_of = |s: &Subgraph| s.edges().iter().map(|e| costs.get(*e)).sum::<f64>();
        assert!(cost_of(&fast) <= 2.0 * cost_of(&kmb) + 1e-9);
        assert!(cost_of(&kmb) <= 2.0 * cost_of(&fast) + 1e-9);
        for t in &n[0..3] {
            assert!(fast.contains_node(*t));
        }
    }

    #[test]
    fn cost_model_patches_match_steiner_costs() {
        let (g, n) = hub_graph();
        let path = xsum_graph::LoosePath::ground(&g, vec![n[0], n[3], n[1]]);
        let input = SummaryInput::user_centric(n[0], vec![path]);
        for lambda in [0.0, 1.0, 100.0] {
            let cfg = SteinerConfig { lambda, delta: 1.0 };
            let model = SteinerCostModel::new(&g, &cfg);
            let mut costs = model.fresh_costs();
            let mut touched = Vec::new();
            model.patch(&g, &input, &mut costs, &mut touched);
            let want = steiner_costs(&g, &input, &cfg);
            assert_eq!(
                costs.0, want.0,
                "patched table must be bit-identical (λ={lambda})"
            );
            model.unpatch(&mut costs, &touched);
            assert_eq!(costs.0, model.fresh_costs().0, "unpatch restores base");
        }
    }

    #[test]
    fn cached_costs_match_direct_costs() {
        let (mut g, n) = hub_graph();
        let path = xsum_graph::LoosePath::ground(&g, vec![n[0], n[3], n[1]]);
        let input = SummaryInput::user_centric(n[0], vec![path]);
        let cfg = SteinerConfig::default();
        assert_eq!(
            cached_steiner_costs(&g, &input, &cfg).0,
            steiner_costs(&g, &input, &cfg).0,
            "cache path must be bit-identical"
        );
        // Mutating a weight moves the epoch: the cached model may not be
        // served stale.
        g.set_weight(xsum_graph::EdgeId(0), 3.0);
        assert_eq!(
            cached_steiner_costs(&g, &input, &cfg).0,
            steiner_costs(&g, &input, &cfg).0,
            "post-mutation cache path must track the new weights"
        );
    }

    #[test]
    fn flush_releases_thread_local_models() {
        let (g, n) = hub_graph();
        let path = xsum_graph::LoosePath::ground(&g, vec![n[0], n[3], n[1]]);
        let input = SummaryInput::user_centric(n[0], vec![path]);
        let cfg = SteinerConfig::default();
        steiner_summary(&g, &input, &cfg); // populate
        flush_cost_model_cache();
        COST_MODELS.with(|c| assert!(c.borrow().is_empty(), "flush drops all models"));
        // And the path keeps working (rebuilds on demand).
        let s = steiner_summary(&g, &input, &cfg);
        assert_eq!(s.terminal_coverage(), 1.0);
    }

    #[test]
    fn cost_model_cache_hits_and_evicts() {
        let (g, _) = hub_graph();
        let mut cache = CostModelCache::new(2);
        let a = SteinerConfig {
            lambda: 1.0,
            delta: 1.0,
        };
        let b = SteinerConfig {
            lambda: 100.0,
            delta: 1.0,
        };
        let c = SteinerConfig {
            lambda: 0.01,
            delta: 1.0,
        };
        let (ka, m1) = cache.get(&g, &a);
        let (ka2, m2) = cache.get(&g, &a);
        assert_eq!(ka, ka2);
        assert!(
            std::sync::Arc::ptr_eq(&m1, &m2),
            "hit returns the same model"
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.get(&g, &b);
        cache.get(&g, &c); // capacity 2: evicts the LRU entry (a)
        assert_eq!(cache.len(), 2);
        cache.get(&g, &a);
        assert_eq!(
            (cache.hits(), cache.misses()),
            (1, 4),
            "evicted key must rebuild"
        );
    }

    /// A fixture with *distinct* weights so the Eq. 1 anchor (max
    /// weight) sits on a known edge and other edges can move freely.
    fn ramp_graph() -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = (0..6).map(|_| g.add_node(NodeKind::Entity)).collect();
        for (i, w) in [1.0, 2.0, 3.0, 4.0, 5.0].iter().enumerate() {
            g.add_edge(nodes[i], nodes[i + 1], *w, EdgeKind::Attribute);
        }
        g
    }

    #[test]
    fn cost_model_cache_patches_weight_deltas() {
        let mut g = ramp_graph();
        let cfg = SteinerConfig::default();
        let mut cache = CostModelCache::new(2);
        cache.get(&g, &cfg);
        assert_eq!((cache.misses(), cache.patches()), (1, 0));
        // Anchor-safe delta: lower a non-max edge.
        g.apply_delta(&[(xsum_graph::EdgeId(1), 0.25)]);
        let (_, model) = cache.get(&g, &cfg);
        assert_eq!(
            (cache.misses(), cache.patches()),
            (1, 1),
            "a covered weight-only delta must patch, not rebuild"
        );
        let rebuilt = SteinerCostModel::new(&g, &cfg);
        assert_eq!(
            model.fresh_costs().0,
            rebuilt.fresh_costs().0,
            "patched table must be bit-identical to a rebuild"
        );
        // The re-keyed entry now hits directly.
        cache.get(&g, &cfg);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn anchor_moving_delta_forces_rebuild() {
        let cfg = SteinerConfig::default();
        // Raising an edge above the anchor changes base_max: no patch.
        let mut g = ramp_graph();
        let mut cache = CostModelCache::new(2);
        cache.get(&g, &cfg);
        g.apply_delta(&[(xsum_graph::EdgeId(0), 9.0)]);
        let (_, model) = cache.get(&g, &cfg);
        assert_eq!((cache.misses(), cache.patches()), (2, 0));
        assert_eq!(
            model.fresh_costs().0,
            SteinerCostModel::new(&g, &cfg).fresh_costs().0
        );

        // Lowering the anchor edge itself also changes base_max: no patch.
        let mut g = ramp_graph();
        let mut cache = CostModelCache::new(2);
        cache.get(&g, &cfg);
        g.apply_delta(&[(xsum_graph::EdgeId(4), 0.5)]);
        let (_, model) = cache.get(&g, &cfg);
        assert_eq!((cache.misses(), cache.patches()), (2, 0));
        assert_eq!(
            model.fresh_costs().0,
            SteinerCostModel::new(&g, &cfg).fresh_costs().0
        );
    }

    #[test]
    fn patched_model_matches_rebuild_on_nan_and_negative_zero() {
        let cfg = SteinerConfig::default();
        let mut g = ramp_graph();
        let mut cache = CostModelCache::new(2);
        cache.get(&g, &cfg);
        // NaN folds away under f64::max and −0.0 can't raise the anchor:
        // both are patchable, and the patch must reproduce the rebuild's
        // exact bits (NaN weight ⇒ the `.max(floor)` clamp fires).
        g.apply_delta(&[
            (xsum_graph::EdgeId(1), f64::NAN),
            (xsum_graph::EdgeId(2), -0.0),
        ]);
        let (_, model) = cache.get(&g, &cfg);
        assert_eq!((cache.misses(), cache.patches()), (1, 1));
        let rebuilt = SteinerCostModel::new(&g, &cfg);
        let (got, want) = (model.fresh_costs().0, rebuilt.fresh_costs().0);
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(want.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-identity incl. NaN payloads");
        }
    }

    #[test]
    fn structural_mutation_still_misses_wholesale() {
        let mut g = ramp_graph();
        let cfg = SteinerConfig::default();
        let mut cache = CostModelCache::new(2);
        cache.get(&g, &cfg);
        let a = g.add_node(NodeKind::Entity);
        let b = g.add_node(NodeKind::Entity);
        g.add_edge(a, b, 1.0, EdgeKind::Attribute);
        cache.get(&g, &cfg);
        assert_eq!(
            (cache.misses(), cache.patches()),
            (2, 0),
            "structural epochs break the delta chain"
        );
    }

    #[test]
    fn parallel_gate_counts_terminals_post_dedup() {
        // 30 copies of 3 distinct terminals, a thread budget of 4: a
        // pre-dedup gate would see 30 ≥ 24 and fan out; the correct
        // post-dedup gate sees 3 and must stay sequential (worker 0
        // only — no extra Dijkstra workspaces materialize).
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let mut dup = Vec::new();
        for _ in 0..10 {
            dup.extend_from_slice(&[n[0], n[1], n[2]]);
        }
        let mut ws = SteinerWorkspace::new();
        ws.set_parallelism(4);
        let tree = steiner_tree_with(&g, &costs, &dup, &mut ws);
        assert_eq!(tree.edge_count(), 3);
        assert!(
            ws.workers.len() <= 1,
            "duplicate terminals must not trigger the parallel closure"
        );
    }

    #[test]
    fn parallel_threshold_is_configurable_and_preserves_output() {
        let (g, n) = hub_graph();
        let costs = EdgeCosts::uniform(&g, 1.0);
        let terminals = [n[0], n[1], n[2]];
        let mut seq_ws = SteinerWorkspace::new();
        seq_ws.set_parallelism(1);
        let want = steiner_tree_with(&g, &costs, &terminals, &mut seq_ws);

        // Lowered threshold + a real budget: 3 distinct terminals now
        // fan out (3 workspaces), and the tree is bit-identical.
        let mut ws = SteinerWorkspace::new();
        ws.set_parallelism(4);
        ws.set_parallel_threshold(2);
        let got = steiner_tree_with(&g, &costs, &terminals, &mut ws);
        assert_eq!(ws.workers.len(), 3, "lowered gate must fan out");
        assert_eq!(want.sorted_edges(), got.sorted_edges());
        assert_eq!(want.sorted_nodes(), got.sorted_nodes());

        // `0` restores the default; `1` clamps to the smallest closure.
        ws.set_parallel_threshold(0);
        assert_eq!(ws.parallel_threshold(), PARALLEL_TERMINAL_THRESHOLD);
        ws.set_parallel_threshold(1);
        assert_eq!(ws.parallel_threshold(), 2);
    }

    #[test]
    fn lambda_boost_steers_toward_input_paths() {
        // Two parallel 2-hop routes between u and i2; the input explanation
        // uses the *heavier-boosted* one once λ is large.
        let mut g = Graph::new();
        let u = g.add_node(NodeKind::User);
        let i1 = g.add_node(NodeKind::Item);
        let i2 = g.add_node(NodeKind::Item);
        let e_u_i1 = g.add_edge(u, i1, 1.0, EdgeKind::Interaction);
        let a = g.add_node(NodeKind::Entity);
        let b = g.add_node(NodeKind::Entity);
        let e1 = g.add_edge(i1, a, 1.0, EdgeKind::Attribute);
        let e2 = g.add_edge(a, i2, 1.0, EdgeKind::Attribute);
        let _f1 = g.add_edge(i1, b, 1.0, EdgeKind::Attribute);
        let _f2 = g.add_edge(b, i2, 1.0, EdgeKind::Attribute);
        let _ = (e_u_i1, e1, e2);

        // Build a KG-free summary via raw pieces: emulate adjusted weights.
        let path = xsum_graph::LoosePath::ground(&g, vec![u, i1, a, i2]);
        let input = SummaryInput::user_centric(u, vec![path]);
        let weights = crate::weighting::adjusted_weights_of_paths(
            &g,
            &input.paths,
            input.anchor_count,
            100.0,
        );
        let costs = Graph::cost_transform(&weights, 1.0);
        let tree = steiner_tree(&g, &costs, &input.terminals);
        assert!(
            tree.contains_node(a),
            "λ=100 must route the summary through the explanation's own entity"
        );
        assert!(!tree.contains_node(b));
    }
}
