//! Bayesian Personalized Ranking matrix factorization, from scratch.
//!
//! All four baseline emulators share this scorer: it supplies the "learned
//! preference model" that PGPR's policy, CAFE's ranking stage and the
//! LM decoders' semantic-similarity fallback consult. BPR-MF optimizes
//! `σ(x̂_ui − x̂_uj)` over (user, rated item, unrated item) triples by
//! stochastic gradient descent — the standard implicit-feedback objective.
//!
//! Entity embeddings are derived after training as the mean of adjacent
//! item embeddings, giving every KG node a vector for path scoring.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xsum_graph::{NodeId, NodeKind};
use xsum_kg::KnowledgeGraph;
use xsum_kg::RatingMatrix;

/// Hyper-parameters of the BPR-MF trainer.
#[derive(Debug, Clone, Copy)]
pub struct MfConfig {
    /// Embedding dimensionality.
    pub dims: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub regularization: f32,
    /// Full passes over the interaction list.
    pub epochs: usize,
    /// RNG seed for init and negative sampling.
    pub seed: u64,
}

impl Default for MfConfig {
    fn default() -> Self {
        MfConfig {
            dims: 16,
            learning_rate: 0.05,
            regularization: 0.01,
            epochs: 4,
            seed: 17,
        }
    }
}

/// Trained factor model: one embedding per user, item, and entity.
#[derive(Debug, Clone)]
pub struct MfModel {
    dims: usize,
    user_emb: Vec<f32>,
    item_emb: Vec<f32>,
    entity_emb: Vec<f32>,
    n_users: usize,
    n_items: usize,
    n_entities: usize,
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl MfModel {
    /// Train on the interactions of `kg`'s rating matrix.
    pub fn train(kg: &KnowledgeGraph, ratings: &RatingMatrix, cfg: &MfConfig) -> Self {
        let (n_users, n_items, n_entities) = (kg.n_users(), kg.n_items(), kg.n_entities());
        let d = cfg.dims;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = 1.0 / (d as f32).sqrt();
        let mut init = |n: usize| -> Vec<f32> {
            (0..n * d)
                .map(|_| (rng.gen::<f32>() - 0.5) * scale)
                .collect()
        };
        let mut user_emb = init(n_users);
        let mut item_emb = init(n_items);

        // Flat (user, item) positive list for shuffled SGD.
        let positives: Vec<(u32, u32)> = ratings.iter().map(|(u, x)| (u as u32, x.item)).collect();

        let lr = cfg.learning_rate;
        let reg = cfg.regularization;
        let mut order: Vec<usize> = (0..positives.len()).collect();
        for epoch in 0..cfg.epochs {
            // Deterministic Fisher–Yates reshuffle per epoch.
            let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed ^ (epoch as u64 + 1));
            for i in (1..order.len()).rev() {
                let j = shuffle_rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                let (u, i) = positives[idx];
                // Rejection-sample a negative item for u.
                let mut j = rng.gen_range(0..n_items as u32);
                let mut guard = 0;
                while ratings.has_rated(u as usize, j as usize) && guard < 16 {
                    j = rng.gen_range(0..n_items as u32);
                    guard += 1;
                }
                if ratings.has_rated(u as usize, j as usize) {
                    continue; // ultra-dense row; skip this triple
                }
                let (us, is_, js) = (u as usize * d, i as usize * d, j as usize * d);
                let x_ui = dot(&user_emb[us..us + d], &item_emb[is_..is_ + d]);
                let x_uj = dot(&user_emb[us..us + d], &item_emb[js..js + d]);
                let g = 1.0 - sigmoid(x_ui - x_uj); // d loss / d (x_ui − x_uj)
                for f in 0..d {
                    let (wu, wi, wj) = (user_emb[us + f], item_emb[is_ + f], item_emb[js + f]);
                    user_emb[us + f] += lr * (g * (wi - wj) - reg * wu);
                    item_emb[is_ + f] += lr * (g * wu - reg * wi);
                    item_emb[js + f] += lr * (-g * wu - reg * wj);
                }
            }
        }

        // Entities: average of adjacent item embeddings.
        let mut entity_emb = vec![0.0f32; n_entities * d];
        for a in 0..n_entities {
            let node = kg.entity_node(a);
            let mut count = 0usize;
            for &(nb, _) in kg.graph.neighbors(node) {
                if let Some(i) = kg.item_index(nb) {
                    for f in 0..d {
                        entity_emb[a * d + f] += item_emb[i * d + f];
                    }
                    count += 1;
                }
            }
            if count > 0 {
                for f in 0..d {
                    entity_emb[a * d + f] /= count as f32;
                }
            }
        }

        MfModel {
            dims: d,
            user_emb,
            item_emb,
            entity_emb,
            n_users,
            n_items,
            n_entities,
        }
    }

    /// Embedding dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// User embedding by dataset index.
    pub fn user(&self, u: usize) -> &[f32] {
        &self.user_emb[u * self.dims..(u + 1) * self.dims]
    }

    /// Item embedding by dataset index.
    pub fn item(&self, i: usize) -> &[f32] {
        &self.item_emb[i * self.dims..(i + 1) * self.dims]
    }

    /// Entity embedding by dataset index.
    pub fn entity(&self, a: usize) -> &[f32] {
        &self.entity_emb[a * self.dims..(a + 1) * self.dims]
    }

    /// Preference score `x̂_ui`.
    pub fn score(&self, u: usize, i: usize) -> f32 {
        dot(self.user(u), self.item(i))
    }

    /// Embedding of an arbitrary graph node (via the kg's layout).
    pub fn node_embedding<'a>(&'a self, kg: &KnowledgeGraph, n: NodeId) -> &'a [f32] {
        match kg.graph.kind(n) {
            NodeKind::User => self.user(kg.user_index(n).expect("layout")),
            NodeKind::Item => self.item(kg.item_index(n).expect("layout")),
            NodeKind::Entity => self.entity(kg.entity_index(n).expect("layout")),
        }
    }

    /// Similarity of a user to an arbitrary node — the shared "policy
    /// score" of the path-reasoning emulators.
    pub fn user_node_similarity(&self, kg: &KnowledgeGraph, u: usize, n: NodeId) -> f32 {
        dot(self.user(u), self.node_embedding(kg, n))
    }

    /// Top-`k` unrated items for `u` by score, deterministic order.
    pub fn top_k_items(&self, ratings: &RatingMatrix, u: usize, k: usize) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = (0..self.n_items)
            .filter(|i| !ratings.has_rated(u, *i))
            .map(|i| (i, self.score(u, i)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Population sizes `(users, items, entities)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.n_users, self.n_items, self.n_entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsum_kg::{KgBuilder, WeightConfig};

    /// Two user "communities": users 0–4 rate items 0–4, users 5–9 rate
    /// items 5–9. BPR must learn to score in-community items higher.
    fn community_kg() -> (KnowledgeGraph, RatingMatrix) {
        let mut m = RatingMatrix::new(10, 10);
        for u in 0..5 {
            for i in 0..5 {
                if (u + i) % 5 != 4 {
                    // leave one unrated item per user to recommend
                    m.rate(u, i, 5.0, 1.0);
                }
            }
        }
        for u in 5..10 {
            for i in 5..10 {
                if (u + i) % 5 != 4 {
                    m.rate(u, i, 5.0, 1.0);
                }
            }
        }
        let mut b = KgBuilder::new(10, 10, 2, WeightConfig::paper_default(1.0));
        for i in 0..5 {
            b.link_item(i, 0);
        }
        for i in 5..10 {
            b.link_item(i, 1);
        }
        (b.build(&m), m)
    }

    fn train_small() -> (KnowledgeGraph, RatingMatrix, MfModel) {
        let (kg, m) = community_kg();
        let cfg = MfConfig {
            epochs: 30,
            ..MfConfig::default()
        };
        let model = MfModel::train(&kg, &m, &cfg);
        (kg, m, model)
    }

    #[test]
    fn learns_community_structure() {
        let (_, m, model) = train_small();
        // Each user's held-out in-community item should outrank the mean
        // out-community item.
        let mut wins = 0;
        for u in 0..5usize {
            let held_out = (0..5).find(|i| !m.has_rated(u, *i)).unwrap();
            let in_score = model.score(u, held_out);
            let out_mean: f32 = (5..10).map(|i| model.score(u, i)).sum::<f32>() / 5.0;
            if in_score > out_mean {
                wins += 1;
            }
        }
        assert!(wins >= 4, "BPR failed to learn communities ({wins}/5)");
    }

    #[test]
    fn top_k_excludes_rated_items() {
        let (_, m, model) = train_small();
        for u in 0..10 {
            for (i, _) in model.top_k_items(&m, u, 5) {
                assert!(!m.has_rated(u, i), "recommended an already-rated item");
            }
        }
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let (_, m, model) = train_small();
        let top = model.top_k_items(&m, 0, 4);
        assert!(top.len() <= 4);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn deterministic_training() {
        let (kg, m) = community_kg();
        let cfg = MfConfig::default();
        let a = MfModel::train(&kg, &m, &cfg);
        let b = MfModel::train(&kg, &m, &cfg);
        assert_eq!(a.user(0), b.user(0));
        assert_eq!(a.item(3), b.item(3));
        assert_eq!(a.entity(1), b.entity(1));
    }

    #[test]
    fn entity_embedding_is_item_mean() {
        let (kg, m) = community_kg();
        let model = MfModel::train(&kg, &m, &MfConfig::default());
        let mut mean = vec![0.0f32; model.dims()];
        for i in 0..5 {
            for (f, m) in mean.iter_mut().enumerate() {
                *m += model.item(i)[f];
            }
        }
        for f in &mut mean {
            *f /= 5.0;
        }
        for (f, m) in mean.iter().enumerate() {
            assert!((model.entity(0)[f] - m).abs() < 1e-5);
        }
    }

    #[test]
    fn node_embedding_dispatches_by_kind() {
        let (kg, m, model) = {
            let (kg, m) = community_kg();
            let model = MfModel::train(&kg, &m, &MfConfig::default());
            (kg, m, model)
        };
        let _ = m;
        assert_eq!(model.node_embedding(&kg, kg.user_node(2)), model.user(2));
        assert_eq!(model.node_embedding(&kg, kg.item_node(7)), model.item(7));
        assert_eq!(
            model.node_embedding(&kg, kg.entity_node(1)),
            model.entity(1)
        );
    }
}
